// Network-model configuration (DESIGN.md §7): plain value types.
//
// The paper proves its stabilization guarantees over an idealized
// transport — one global uniform delay plus iid loss — and until this
// subsystem the simulator hard-coded exactly that.  A model_config
// describes the transport declaratively: it travels inside
// sim::simulator_config and engine::scenario values, so an experiment's
// network shape is part of its reproducible identity (same scenario +
// seed + net config ⇒ bit-identical run).
//
// Three models (built by net::make_model in net/model.h):
//
//  * uniform_model_config — the paper's transport: one delay range and
//    one iid drop probability for every link.  The default-constructed
//    value reproduces the legacy hard-coded behavior bit-for-bit.
//  * cluster_model_config — WAN/datacenter shape: peers are assigned to
//    clusters as they join; each (cluster, cluster) pair has its own
//    delay range (intra fast, inter slow by default), plus a per-link
//    deterministic jitter so no two links are identical.
//  * dynamic_model_config — time-varying effects layered on either base
//    model: partitions between peer sets with later heal, per-link
//    degradation ramps, and stacked loss / duplication / reordering
//    knobs.  Partition and degradation are *runtime* controls (driven by
//    scenario phases); the knobs here are the static layer.
#ifndef DRT_NET_CONFIG_H
#define DRT_NET_CONFIG_H

#include <cstddef>
#include <variant>
#include <vector>

namespace drt::net {

/// The paper's transport: uniform(min_delay, max_delay) latency and iid
/// loss on every link.  Defaults mirror sim::simulator_config's legacy
/// fields, and the model consumes the RNG in the identical order, so the
/// golden determinism hashes do not move.
struct uniform_model_config {
  double min_delay = 0.5;
  double max_delay = 1.5;
  double loss = 0.0;  ///< iid drop probability per message
};

/// Topology-aware latency: `clusters` groups of peers with per-pair
/// delay ranges.  Peers are assigned to a cluster when they join
/// (round-robin by default — deterministic and balanced — or uniformly
/// at random).  The full matrices win over the intra/inter shorthand
/// when non-empty; both are `clusters x clusters`, row-major,
/// [from][to].
struct cluster_model_config {
  std::size_t clusters = 2;

  /// Shorthand: diagonal (intra-cluster) and off-diagonal
  /// (inter-cluster) delay ranges, used when the matrices are empty.
  double intra_min = 0.2;
  double intra_max = 0.6;
  double inter_min = 2.0;
  double inter_max = 6.0;

  /// Explicit per-pair delay matrices (row-major, clusters^2 entries).
  /// Either both empty (use the shorthand) or both full.
  std::vector<double> min_matrix;
  std::vector<double> max_matrix;

  /// Per-link deterministic jitter: every (from, to) link scales its
  /// drawn delay by a fixed factor in [1 - jitter, 1 + jitter], derived
  /// by hashing the link identity (no RNG stream consumed, so two runs
  /// agree and adding links never perturbs others).
  double jitter = 0.0;

  double loss = 0.0;  ///< iid drop probability per message

  /// false: round-robin assignment (deterministic, balanced).
  /// true: uniform random cluster per join (consumes one RNG draw).
  bool random_assignment = false;
};

/// Time-varying effects over a base model.  The static knobs stack on
/// every send; partitions and degradation ramps are installed at runtime
/// (sim::simulator::partition / degrade_links, driven by the engine's
/// partition / heal / degrade_links scenario phases).
struct dynamic_model_config {
  std::variant<uniform_model_config, cluster_model_config> base{};

  double extra_loss = 0.0;  ///< iid loss stacked on the base model's
  double duplicate = 0.0;   ///< probability a delivered message is duplicated
  double reorder = 0.0;     ///< probability a message's delay is stretched
  double reorder_factor = 3.0;  ///< stretch multiplier for reordered sends
};

using model_config =
    std::variant<uniform_model_config, cluster_model_config,
                 dynamic_model_config>;

/// Stable model label for tables and digests.
const char* model_name(const model_config& config);

/// Abort (via util/expect.h) on invalid configuration: delay ranges
/// ordered and non-negative, probabilities in [0, 1], cluster matrices
/// square / non-negative / consistently sized.  Called by the simulator
/// at construction so a bad net config fails loudly instead of silently
/// misbehaving.
void validate(const model_config& config);

}  // namespace drt::net

#endif  // DRT_NET_CONFIG_H
