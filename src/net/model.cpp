#include "net/model.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace drt::net {

// ------------------------------------------------------------ validation

namespace {

void validate_uniform(const uniform_model_config& c) {
  DRT_EXPECT(c.min_delay >= 0.0);
  DRT_EXPECT(c.max_delay >= c.min_delay);
  DRT_EXPECT(c.loss >= 0.0 && c.loss <= 1.0);
}

void validate_cluster(const cluster_model_config& c) {
  DRT_EXPECT(c.clusters >= 1);
  DRT_EXPECT(c.loss >= 0.0 && c.loss <= 1.0);
  DRT_EXPECT(c.jitter >= 0.0 && c.jitter < 1.0);
  const std::size_t cells = c.clusters * c.clusters;
  // Either both matrices empty (shorthand) or both square and ordered.
  DRT_EXPECT(c.min_matrix.size() == c.max_matrix.size());
  if (c.min_matrix.empty()) {
    DRT_EXPECT(c.intra_min >= 0.0 && c.intra_max >= c.intra_min);
    DRT_EXPECT(c.inter_min >= 0.0 && c.inter_max >= c.inter_min);
  } else {
    DRT_EXPECT(c.min_matrix.size() == cells);
    for (std::size_t i = 0; i < cells; ++i) {
      DRT_EXPECT(c.min_matrix[i] >= 0.0);
      DRT_EXPECT(c.max_matrix[i] >= c.min_matrix[i]);
    }
  }
}

void validate_dynamic(const dynamic_model_config& c) {
  if (const auto* u = std::get_if<uniform_model_config>(&c.base)) {
    validate_uniform(*u);
  } else {
    validate_cluster(std::get<cluster_model_config>(c.base));
  }
  DRT_EXPECT(c.extra_loss >= 0.0 && c.extra_loss <= 1.0);
  DRT_EXPECT(c.duplicate >= 0.0 && c.duplicate <= 1.0);
  DRT_EXPECT(c.reorder >= 0.0 && c.reorder <= 1.0);
  DRT_EXPECT(c.reorder_factor >= 1.0);
}

struct validate_visitor {
  void operator()(const uniform_model_config& c) const { validate_uniform(c); }
  void operator()(const cluster_model_config& c) const { validate_cluster(c); }
  void operator()(const dynamic_model_config& c) const { validate_dynamic(c); }
};

struct name_visitor {
  const char* operator()(const uniform_model_config&) const {
    return "uniform";
  }
  const char* operator()(const cluster_model_config&) const {
    return "cluster";
  }
  const char* operator()(const dynamic_model_config&) const {
    return "dynamic";
  }
};

/// splitmix64-style mix of one link identity into [0, 1): the source of
/// the cluster model's per-link jitter.  Pure function of (from, to), so
/// it consumes no RNG state and never perturbs other draws.
double link_hash01(sim::process_id from, sim::process_id to) {
  std::uint64_t x = (static_cast<std::uint64_t>(from) << 32) |
                    (static_cast<std::uint64_t>(to) + 1);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* model_name(const model_config& config) {
  return std::visit(name_visitor{}, config);
}

void validate(const model_config& config) {
  std::visit(validate_visitor{}, config);
}

// ---------------------------------------------------------- uniform model

link_decision uniform_model::on_send(sim::process_id /*from*/,
                                     sim::process_id /*to*/,
                                     sim::sim_time /*now*/, util::rng& rng) {
  // RNG order is the legacy send path's, verbatim: the loss Bernoulli
  // only when loss > 0, then exactly one delay draw.  The golden trace
  // hashes depend on this.
  link_decision d;
  if (config_.loss > 0.0 && rng.chance(config_.loss)) {
    d.deliver = false;
    ++counters_.dropped;
    return d;
  }
  d.delay = rng.uniform_real(config_.min_delay, config_.max_delay);
  return d;
}

// ---------------------------------------------------------- cluster model

cluster_model::cluster_model(const cluster_model_config& config)
    : config_(config) {
  const std::size_t k = config_.clusters;
  if (config_.min_matrix.empty()) {
    // Expand the intra/inter shorthand into full matrices.
    min_matrix_.assign(k * k, config_.inter_min);
    max_matrix_.assign(k * k, config_.inter_max);
    for (std::size_t i = 0; i < k; ++i) {
      min_matrix_[i * k + i] = config_.intra_min;
      max_matrix_[i * k + i] = config_.intra_max;
    }
  } else {
    min_matrix_ = config_.min_matrix;
    max_matrix_ = config_.max_matrix;
  }
}

void cluster_model::on_process_added(sim::process_id id, util::rng& rng) {
  if (assignment_.size() <= id) assignment_.resize(id + 1, 0);
  if (config_.random_assignment) {
    assignment_[id] = static_cast<std::uint32_t>(rng.index(config_.clusters));
  } else {
    assignment_[id] = static_cast<std::uint32_t>(next_cluster_);
    next_cluster_ = (next_cluster_ + 1) % config_.clusters;
  }
}

link_decision cluster_model::on_send(sim::process_id from,
                                     sim::process_id to,
                                     sim::sim_time /*now*/, util::rng& rng) {
  link_decision d;
  if (config_.loss > 0.0 && rng.chance(config_.loss)) {
    d.deliver = false;
    ++counters_.dropped;
    return d;
  }
  const std::size_t cf = cluster_of(from);
  const std::size_t ct = cluster_of(to);
  ++(cf == ct ? counters_.intra_cluster : counters_.inter_cluster);
  const std::size_t cell = cf * config_.clusters + ct;
  d.delay = rng.uniform_real(min_matrix_[cell], max_matrix_[cell]);
  if (config_.jitter > 0.0) {
    // Fixed per-link factor in [1 - jitter, 1 + jitter].
    d.delay *= 1.0 + config_.jitter * (2.0 * link_hash01(from, to) - 1.0);
  }
  return d;
}

void cluster_model::delay_bounds(sim::sim_time& lo, sim::sim_time& hi) const {
  lo = *std::min_element(min_matrix_.begin(), min_matrix_.end());
  hi = *std::max_element(max_matrix_.begin(), max_matrix_.end());
  lo *= 1.0 - config_.jitter;
  hi *= 1.0 + config_.jitter;
}

// ---------------------------------------------------------- dynamic model

dynamic_model::dynamic_model(const dynamic_model_config& config)
    : config_(config) {
  if (const auto* u = std::get_if<uniform_model_config>(&config_.base)) {
    base_ = std::make_unique<uniform_model>(*u);
  } else {
    base_ = std::make_unique<cluster_model>(
        std::get<cluster_model_config>(config_.base));
  }
}

void dynamic_model::partition(const std::vector<sim::process_id>& side_b) {
  group_.clear();
  for (const auto p : side_b) {
    if (group_.size() <= p) group_.resize(p + 1, 0);
    group_[p] = 1;
  }
  // An all-side-A "partition" is a heal.
  if (side_b.empty()) group_.clear();
}

void dynamic_model::heal() { group_.clear(); }

void dynamic_model::degrade(sim::sim_time start, sim::sim_time ramp,
                            double latency_factor, double extra_loss) {
  DRT_EXPECT(ramp >= 0.0);
  DRT_EXPECT(latency_factor >= 1.0);
  DRT_EXPECT(extra_loss >= 0.0 && extra_loss <= 1.0);
  degrade_active_ = true;
  degrade_start_ = start;
  degrade_ramp_ = ramp;
  degrade_latency_factor_ = latency_factor;
  degrade_extra_loss_ = extra_loss;
}

double dynamic_model::degrade_level(sim::sim_time now) const {
  if (!degrade_active_ || now < degrade_start_) return 0.0;
  if (degrade_ramp_ <= 0.0) return 1.0;  // instant degradation
  return std::min(1.0, (now - degrade_start_) / degrade_ramp_);
}

link_decision dynamic_model::on_send(sim::process_id from,
                                     sim::process_id to, sim::sim_time now,
                                     util::rng& rng) {
  // Fixed decision order (the determinism contract): partition cut
  // (no draw), base model, stacked loss, degradation, reorder,
  // duplication.
  if (!allows(from, to)) {
    link_decision d;
    d.deliver = false;
    d.partitioned = true;
    ++counters_.partitioned;
    return d;
  }
  link_decision d = base_->on_send(from, to, now, rng);
  if (!d.deliver) {
    ++counters_.dropped;
    return d;
  }
  double stacked_loss = config_.extra_loss;
  const double level = degrade_level(now);
  if (level > 0.0) {
    ++counters_.degraded;
    stacked_loss = std::min(1.0, stacked_loss + level * degrade_extra_loss_);
    d.delay *= 1.0 + level * (degrade_latency_factor_ - 1.0);
  }
  if (stacked_loss > 0.0 && rng.chance(stacked_loss)) {
    d.deliver = false;
    ++counters_.dropped;
    return d;
  }
  if (config_.reorder > 0.0 && rng.chance(config_.reorder)) {
    d.delay *= config_.reorder_factor;
    ++counters_.reordered;
  }
  if (config_.duplicate > 0.0 && rng.chance(config_.duplicate)) {
    d.duplicate_lag = rng.uniform_real(0.0, d.delay);
    ++counters_.duplicated;
  }
  return d;
}

// --------------------------------------------------------------- factory

std::unique_ptr<link_model> make_model(const model_config& config) {
  validate(config);
  if (const auto* u = std::get_if<uniform_model_config>(&config)) {
    return std::make_unique<uniform_model>(*u);
  }
  if (const auto* c = std::get_if<cluster_model_config>(&config)) {
    return std::make_unique<cluster_model>(*c);
  }
  return std::make_unique<dynamic_model>(
      std::get<dynamic_model_config>(config));
}

}  // namespace drt::net
