// Pluggable link models (DESIGN.md §7): the simulator consults one
// link_model on every send to decide a message's fate — deliver after
// some delay, drop, duplicate — replacing the hard-coded
// uniform-delay/iid-loss fields of the original substrate.
//
// Determinism contract: a model draws from the simulator's RNG stream in
// a fixed per-send order, so the (seed, config) pair still pins every
// run bit-for-bit.  uniform_model consumes the stream exactly as the
// legacy inline code did (loss Bernoulli only when loss > 0, then one
// uniform delay draw), which is what keeps the golden trace hashes of
// tests/sim_determinism_test.cpp unchanged.
//
// dynamic_model additionally owns the runtime fault state — the
// partition group map and the degradation ramp — and exposes
// `allows(from, to)`, the reachability predicate the overlay's failure
// detector queries (a partitioned peer is indistinguishable from a
// crashed one, which is precisely the split-brain scenario).
//
// Shard safety (DESIGN.md §8): every simulator constructs its *own*
// model instance from the config value and draws from its own RNG, so
// models carry no cross-simulator state — sim::kernel shards can run
// their passes on parallel threads without any coordination here.
#ifndef DRT_NET_MODEL_H
#define DRT_NET_MODEL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "net/config.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace drt::net {

class dynamic_model;

/// Fate of one message send, decided by the model at send time.
struct link_decision {
  bool deliver = true;       ///< false: the message never arrives
  bool partitioned = false;  ///< the drop was a partition cut, not loss
  sim::sim_time delay = 0.0; ///< latency when delivered
  /// >= 0: a duplicate copy arrives this long *after* the original
  /// (network-level duplication); < 0: no duplicate.
  sim::sim_time duplicate_lag = -1.0;
};

/// Per-model counters, kept next to the simulator's sim_metrics: the
/// sim counts message outcomes, the model counts *why* (which knob or
/// fault produced them).
struct model_counters {
  std::uint64_t dropped = 0;      ///< random loss (base + stacked)
  std::uint64_t partitioned = 0;  ///< blocked by an active partition
  std::uint64_t duplicated = 0;   ///< sends that grew a duplicate copy
  std::uint64_t reordered = 0;    ///< sends with a stretched delay
  std::uint64_t degraded = 0;     ///< sends under an active degradation
  std::uint64_t intra_cluster = 0;///< cluster model: same-cluster sends
  std::uint64_t inter_cluster = 0;///< cluster model: cross-cluster sends
};

class link_model {
 public:
  virtual ~link_model() = default;

  virtual const char* name() const = 0;

  /// A process joined the simulation (cluster assignment happens here).
  /// Must not consume the RNG unless the configuration says so.
  virtual void on_process_added(sim::process_id id, util::rng& rng) {
    (void)id;
    (void)rng;
  }

  /// Decide the fate of one send at virtual time `now`.  RNG draws
  /// happen in a fixed per-send order (see the determinism contract
  /// above).
  virtual link_decision on_send(sim::process_id from, sim::process_id to,
                                sim::sim_time now, util::rng& rng) = 0;

  /// Delay bounds over every link (used for calendar-queue bucket
  /// sizing; correctness never depends on them).
  virtual void delay_bounds(sim::sim_time& lo, sim::sim_time& hi) const = 0;

  /// The dynamic fault layer, when this model has one.
  virtual dynamic_model* as_dynamic() { return nullptr; }

  const model_counters& counters() const { return counters_; }

 protected:
  model_counters counters_;
};

/// The paper's transport (and the default): one uniform delay range and
/// one iid drop probability for every link.  Bit-for-bit identical to
/// the pre-subsystem hard-coded send path.
class uniform_model final : public link_model {
 public:
  explicit uniform_model(const uniform_model_config& config)
      : config_(config) {}

  const char* name() const override { return "uniform"; }
  link_decision on_send(sim::process_id from, sim::process_id to,
                        sim::sim_time now, util::rng& rng) override;
  void delay_bounds(sim::sim_time& lo, sim::sim_time& hi) const override {
    lo = config_.min_delay;
    hi = config_.max_delay;
  }

 private:
  uniform_model_config config_;
};

/// Topology-aware latency: peers are assigned to clusters at join;
/// each (from-cluster, to-cluster) pair has its own delay range, and
/// each individual link carries a fixed hash-derived jitter factor.
class cluster_model final : public link_model {
 public:
  explicit cluster_model(const cluster_model_config& config);

  const char* name() const override { return "cluster"; }
  void on_process_added(sim::process_id id, util::rng& rng) override;
  link_decision on_send(sim::process_id from, sim::process_id to,
                        sim::sim_time now, util::rng& rng) override;
  void delay_bounds(sim::sim_time& lo, sim::sim_time& hi) const override;

  std::size_t cluster_of(sim::process_id id) const {
    return id < assignment_.size() ? assignment_[id] : 0;
  }

 private:
  cluster_model_config config_;
  std::vector<double> min_matrix_;  // resolved (shorthand expanded)
  std::vector<double> max_matrix_;
  std::vector<std::uint32_t> assignment_;  // process id -> cluster
  std::size_t next_cluster_ = 0;           // round-robin cursor
};

/// Time-varying fault layer over any base model: partitions between
/// peer sets with later heal, a per-link degradation ramp, and stacked
/// loss / duplication / reordering.
class dynamic_model final : public link_model {
 public:
  explicit dynamic_model(const dynamic_model_config& config);

  const char* name() const override { return "dynamic"; }
  void on_process_added(sim::process_id id, util::rng& rng) override {
    base_->on_process_added(id, rng);
  }
  link_decision on_send(sim::process_id from, sim::process_id to,
                        sim::sim_time now, util::rng& rng) override;
  void delay_bounds(sim::sim_time& lo, sim::sim_time& hi) const override {
    base_->delay_bounds(lo, hi);
  }
  dynamic_model* as_dynamic() override { return this; }

  // ------------------------------------------------------- partitions
  /// Install a partition: processes in `side_b` form one side, everyone
  /// else (including processes added later) the other.  Messages across
  /// the cut are dropped and `allows` reports the cut to failure
  /// detectors.  Replaces any previous partition.
  void partition(const std::vector<sim::process_id>& side_b);
  /// Remove the partition; all links work again.
  void heal();
  bool partitioned() const { return !group_.empty(); }

  /// Reachability under the current partition (always true when none is
  /// active).  This is what makes a partitioned peer look dead to the
  /// overlay's failure detector.
  bool allows(sim::process_id from, sim::process_id to) const {
    return group_.empty() || group_of(from) == group_of(to);
  }

  // ------------------------------------------------------ degradation
  /// Ramp every link's latency multiplier from 1 to `latency_factor`
  /// and stacked loss from 0 to `extra_loss` over `ramp` virtual time
  /// starting at `start`, then hold until cleared.
  void degrade(sim::sim_time start, sim::sim_time ramp,
               double latency_factor, double extra_loss);
  void clear_degradation() { degrade_active_ = false; }
  bool degraded() const { return degrade_active_; }

  const link_model& base() const { return *base_; }

 private:
  std::uint32_t group_of(sim::process_id id) const {
    return id < group_.size() ? group_[id] : 0;
  }
  /// Ramp progress in [0, 1] at time `now`.
  double degrade_level(sim::sim_time now) const;

  dynamic_model_config config_;
  std::unique_ptr<link_model> base_;

  std::vector<std::uint32_t> group_;  // empty: no partition active

  bool degrade_active_ = false;
  sim::sim_time degrade_start_ = 0.0;
  sim::sim_time degrade_ramp_ = 0.0;
  double degrade_latency_factor_ = 1.0;
  double degrade_extra_loss_ = 0.0;
};

/// Build the model a config describes (validates first).
std::unique_ptr<link_model> make_model(const model_config& config);

}  // namespace drt::net

#endif  // DRT_NET_MODEL_H
