#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace drt::workload {

using spatial::box;
using spatial::pt;

namespace {

double side(const box& ws, std::size_t dim) {
  return ws.hi[dim] - ws.lo[dim];
}

box rect_at(const box& ws, double cx, double cy, double w, double h) {
  // Clamp into the workspace, preserving the requested size when possible.
  const double x0 = std::clamp(cx - w / 2, ws.lo[0], ws.hi[0] - w);
  const double y0 = std::clamp(cy - h / 2, ws.lo[1], ws.hi[1] - h);
  return geo::make_rect2(x0, y0, x0 + w, y0 + h);
}

std::vector<box> uniform_rects(std::size_t n, util::rng& rng,
                               const subscription_params& p) {
  std::vector<box> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = side(p.workspace, 0) *
                     rng.uniform_real(p.min_side_frac, p.max_side_frac);
    const double h = side(p.workspace, 1) *
                     rng.uniform_real(p.min_side_frac, p.max_side_frac);
    const double cx = rng.uniform_real(p.workspace.lo[0], p.workspace.hi[0]);
    const double cy = rng.uniform_real(p.workspace.lo[1], p.workspace.hi[1]);
    out.push_back(rect_at(p.workspace, cx, cy, w, h));
  }
  return out;
}

std::vector<box> clustered_rects(std::size_t n, util::rng& rng,
                                 const subscription_params& p) {
  std::vector<pt> centers;
  for (std::size_t c = 0; c < p.clusters; ++c) {
    centers.push_back(
        {{rng.uniform_real(p.workspace.lo[0], p.workspace.hi[0]),
          rng.uniform_real(p.workspace.lo[1], p.workspace.hi[1])}});
  }
  std::vector<box> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng.index(centers.size())];
    const double sx = side(p.workspace, 0) * p.cluster_spread;
    const double sy = side(p.workspace, 1) * p.cluster_spread;
    const double w = side(p.workspace, 0) *
                     rng.uniform_real(p.min_side_frac, p.max_side_frac);
    const double h = side(p.workspace, 1) *
                     rng.uniform_real(p.min_side_frac, p.max_side_frac);
    out.push_back(rect_at(p.workspace, rng.normal(c[0], sx),
                          rng.normal(c[1], sy), w, h));
  }
  return out;
}

std::vector<box> zipf_sized_rects(std::size_t n, util::rng& rng,
                                  const subscription_params& p) {
  // Few huge filters, many tiny ones: the Zipf draw concentrates on low
  // ranks, which map to the *smallest* sides, so broad filters are rare
  // and the bulk of the population is tiny.
  std::vector<box> out;
  out.reserve(n);
  const auto dn = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto rank = static_cast<double>(rng.zipf(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(n)),
        p.zipf_exponent));
    const double grow = std::pow(rank / dn, 1.5);  // rare high ranks: big
    const double frac = std::clamp(p.max_side_frac * 4 * grow,
                                   p.min_side_frac, 1.0);
    const double w = side(p.workspace, 0) * frac;
    const double h = side(p.workspace, 1) * frac;
    const double cx = rng.uniform_real(p.workspace.lo[0], p.workspace.hi[0]);
    const double cy = rng.uniform_real(p.workspace.lo[1], p.workspace.hi[1]);
    out.push_back(rect_at(p.workspace, cx, cy, w, h));
  }
  return out;
}

std::vector<box> nested_rects(std::size_t n, util::rng& rng,
                              const subscription_params& p) {
  // Containment chains: each chain starts from a broad filter and shrinks
  // strictly inside the previous one — the workload the containment-
  // awareness properties (3.1/3.2) are about.
  std::vector<box> out;
  out.reserve(n);
  while (out.size() < n) {
    double w = side(p.workspace, 0) *
               rng.uniform_real(p.max_side_frac, p.max_side_frac * 3);
    double h = side(p.workspace, 1) *
               rng.uniform_real(p.max_side_frac, p.max_side_frac * 3);
    double cx = rng.uniform_real(p.workspace.lo[0], p.workspace.hi[0]);
    double cy = rng.uniform_real(p.workspace.lo[1], p.workspace.hi[1]);
    box current = rect_at(p.workspace, cx, cy, w, h);
    for (std::size_t k = 0; k < p.chain_length && out.size() < n; ++k) {
      out.push_back(current);
      // Shrink strictly inside, drifting the center a little.
      w *= rng.uniform_real(0.4, 0.7);
      h *= rng.uniform_real(0.4, 0.7);
      const double max_dx = (current.hi[0] - current.lo[0] - w) / 2;
      const double max_dy = (current.hi[1] - current.lo[1] - h) / 2;
      cx = (current.lo[0] + current.hi[0]) / 2 +
           rng.uniform_real(-max_dx, max_dx);
      cy = (current.lo[1] + current.hi[1]) / 2 +
           rng.uniform_real(-max_dy, max_dy);
      current = geo::make_rect2(cx - w / 2, cy - h / 2, cx + w / 2,
                                cy + h / 2);
    }
  }
  return out;
}

}  // namespace

std::vector<box> make_subscriptions(subscription_family family, std::size_t n,
                                    util::rng& rng,
                                    const subscription_params& params) {
  DRT_EXPECT(n > 0);
  switch (family) {
    case subscription_family::uniform:
      return uniform_rects(n, rng, params);
    case subscription_family::clustered:
      return clustered_rects(n, rng, params);
    case subscription_family::zipf_sized:
      return zipf_sized_rects(n, rng, params);
    case subscription_family::nested:
      return nested_rects(n, rng, params);
    case subscription_family::mixed: {
      std::vector<box> out;
      const std::size_t quarter = std::max<std::size_t>(1, n / 4);
      for (const auto f :
           {subscription_family::uniform, subscription_family::clustered,
            subscription_family::zipf_sized}) {
        const auto part = make_subscriptions(f, quarter, rng, params);
        out.insert(out.end(), part.begin(), part.end());
      }
      while (out.size() < n) {
        const auto part = make_subscriptions(subscription_family::nested,
                                             n - out.size(), rng, params);
        out.insert(out.end(), part.begin(), part.end());
      }
      out.resize(n);
      rng.shuffle(out);
      return out;
    }
  }
  return {};
}

pt make_event_point(event_family family, util::rng& rng,
                    const box& workspace, const std::vector<box>& subs,
                    double hotspot_spread) {
  switch (family) {
    case event_family::uniform:
      return {{rng.uniform_real(workspace.lo[0], workspace.hi[0]),
               rng.uniform_real(workspace.lo[1], workspace.hi[1])}};
    case event_family::hotspot: {
      // Deterministic hot spots at 1/4 and 3/4 of the workspace diagonal.
      const double fx = rng.chance(0.5) ? 0.25 : 0.75;
      const double sx = (workspace.hi[0] - workspace.lo[0]) * hotspot_spread;
      const double sy = (workspace.hi[1] - workspace.lo[1]) * hotspot_spread;
      const double cx =
          workspace.lo[0] + (workspace.hi[0] - workspace.lo[0]) * fx;
      const double cy =
          workspace.lo[1] + (workspace.hi[1] - workspace.lo[1]) * fx;
      return {{std::clamp(rng.normal(cx, sx), workspace.lo[0],
                          workspace.hi[0]),
               std::clamp(rng.normal(cy, sy), workspace.lo[1],
                          workspace.hi[1])}};
    }
    case event_family::matching: {
      DRT_EXPECT(!subs.empty());
      const auto& s = subs[rng.index(subs.size())];
      return {{rng.uniform_real(s.lo[0], s.hi[0]),
               rng.uniform_real(s.lo[1], s.hi[1])}};
    }
  }
  return {};
}

std::vector<churn_op> poisson_churn(double join_rate, double leave_rate,
                                    double horizon, util::rng& rng) {
  DRT_EXPECT(horizon > 0.0);
  std::vector<churn_op> ops;
  if (join_rate > 0.0) {
    double t = rng.exponential(join_rate);
    while (t < horizon) {
      ops.push_back({t, true});
      t += rng.exponential(join_rate);
    }
  }
  if (leave_rate > 0.0) {
    double t = rng.exponential(leave_rate);
    while (t < horizon) {
      ops.push_back({t, false});
      t += rng.exponential(leave_rate);
    }
  }
  std::sort(ops.begin(), ops.end(),
            [](const churn_op& a, const churn_op& b) { return a.at < b.at; });
  return ops;
}

}  // namespace drt::workload
