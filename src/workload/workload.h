// Synthetic workload generators.
//
// The paper's experimental claims ("the false positive rate is in the
// order of 2-3% with most workloads", §4) reference workloads in the
// unavailable companion technical report; these generators provide the
// standard families used by the content-based pub/sub literature so the
// claims can be swept across plausible workloads (DESIGN.md §2).
#ifndef DRT_WORKLOAD_WORKLOAD_H
#define DRT_WORKLOAD_WORKLOAD_H

#include <cstddef>
#include <string>
#include <vector>

#include "spatial/types.h"
#include "util/rng.h"

namespace drt::workload {

enum class subscription_family {
  uniform,     ///< centers and sides uniform over the workspace
  clustered,   ///< centers drawn around a few interest hot spots
  zipf_sized,  ///< few huge filters, many tiny ones (Zipf areas)
  nested,      ///< chains of strictly contained filters
  mixed,       ///< 1/4 of each of the above
};

inline const char* to_string(subscription_family f) {
  switch (f) {
    case subscription_family::uniform: return "uniform";
    case subscription_family::clustered: return "clustered";
    case subscription_family::zipf_sized: return "zipf";
    case subscription_family::nested: return "nested";
    case subscription_family::mixed: return "mixed";
  }
  return "?";
}

inline const std::vector<subscription_family>& all_subscription_families() {
  static const std::vector<subscription_family> families = {
      subscription_family::uniform, subscription_family::clustered,
      subscription_family::zipf_sized, subscription_family::nested,
      subscription_family::mixed};
  return families;
}

struct subscription_params {
  spatial::box workspace = geo::make_rect2(0, 0, 1000, 1000);
  double min_side_frac = 0.01;  ///< min side length / workspace side
  double max_side_frac = 0.15;  ///< max side length / workspace side
  std::size_t clusters = 8;     ///< clustered: number of hot spots
  double cluster_spread = 0.05; ///< clustered: stddev / workspace side
  double zipf_exponent = 1.1;   ///< zipf_sized: area skew
  std::size_t chain_length = 6; ///< nested: filters per containment chain
};

/// Generate `n` subscription rectangles of the given family.
std::vector<spatial::box> make_subscriptions(subscription_family family,
                                             std::size_t n, util::rng& rng,
                                             const subscription_params& params = {});

enum class event_family {
  uniform,   ///< uniform points over the workspace
  hotspot,   ///< points around a few centers (biased workload of §3.2)
  matching,  ///< points drawn inside a random subscription (high match rate)
};

inline const char* to_string(event_family f) {
  switch (f) {
    case event_family::uniform: return "uniform";
    case event_family::hotspot: return "hotspot";
    case event_family::matching: return "matching";
  }
  return "?";
}

/// One event point.  For `matching`, `subs` must be non-empty.
spatial::pt make_event_point(event_family family, util::rng& rng,
                             const spatial::box& workspace,
                             const std::vector<spatial::box>& subs = {},
                             double hotspot_spread = 0.05);

/// Poisson churn schedule (Lemma 3.7 model: "arrivals and departures
/// modeled by a Poisson distribution").
struct churn_op {
  double at = 0.0;   ///< virtual time of the operation
  bool join = false; ///< true: a peer joins; false: a peer departs
};

/// Generate operations over [0, horizon) with the given rates.
std::vector<churn_op> poisson_churn(double join_rate, double leave_rate,
                                    double horizon, util::rng& rng);

}  // namespace drt::workload

#endif  // DRT_WORKLOAD_WORKLOAD_H
