#include "pubsub/broker.h"

#include <algorithm>

#include "drtree/checker.h"
#include "util/expect.h"

namespace drt::pubsub {

using spatial::kNoPeer;
using spatial::peer_id;

broker::broker(broker_config config)
    : config_(config), overlay_(config.dr, config.net) {}

client_id broker::add_client() {
  const auto id = next_client_++;
  clients_.emplace(id, client_state{});
  return id;
}

subscription_handle broker::subscribe(client_id client,
                                      const spatial::box& filter) {
  DRT_EXPECT(clients_.count(client) > 0);
  DRT_EXPECT(!filter.is_empty());
  const auto peer = overlay_.add_peer_and_settle(filter);
  clients_[client].peers.push_back(peer);
  owner_of_[peer] = client;
  return {client, peer};
}

bool broker::unsubscribe(const subscription_handle& handle) {
  auto it = clients_.find(handle.client);
  if (it == clients_.end()) return false;
  auto& peers = it->second.peers;
  const auto pos = std::find(peers.begin(), peers.end(), handle.peer);
  if (pos == peers.end()) return false;
  if (overlay_.alive(handle.peer)) {
    overlay_.controlled_leave(handle.peer);
    overlay_.settle();
  }
  peers.erase(pos);
  owner_of_.erase(handle.peer);
  return true;
}

std::size_t broker::unsubscribe_all(client_id client) {
  const auto it = clients_.find(client);
  if (it == clients_.end()) return 0;
  std::size_t removed = 0;
  for (const auto p : it->second.peers) {
    if (overlay_.alive(p)) {
      overlay_.controlled_leave(p);
      overlay_.settle();
    }
    owner_of_.erase(p);
    ++removed;
  }
  it->second.peers.clear();
  return removed;
}

bool broker::remove_client(client_id client) {
  if (clients_.find(client) == clients_.end()) return false;
  unsubscribe_all(client);
  clients_.erase(client);
  return true;
}

std::vector<spatial::box> broker::subscriptions_of(client_id client) const {
  std::vector<spatial::box> out;
  const auto it = clients_.find(client);
  if (it == clients_.end()) return out;
  for (const auto p : it->second.peers) {
    if (overlay_.alive(p)) out.push_back(overlay_.peer(p).filter());
  }
  return out;
}

peer_id broker::entry_peer(client_id publisher) {
  DRT_EXPECT(clients_.count(publisher) > 0);
  // Inject through one of the publisher's own subscribers when it has
  // any, otherwise through any live overlay peer (a pure producer).
  peer_id via = kNoPeer;
  for (const auto p : clients_[publisher].peers) {
    if (overlay_.alive(p)) {
      via = p;
      break;
    }
  }
  if (via == kNoPeer) {
    overlay_.for_each_live([&](peer_id p) {
      via = p;
      return false;  // first live peer — same pick as the old snapshot
    });
    DRT_EXPECT(via != kNoPeer);
  }
  return via;
}

publish_outcome broker::publish(client_id publisher,
                                const spatial::pt& value) {
  const auto via = entry_peer(publisher);
  const auto r = overlay_.publish_and_drain(via, value);
  return outcome_for(r, via, value);
}

std::vector<publish_outcome> broker::publish_batch(client_id publisher,
                                                   const spatial::pt* values,
                                                   std::size_t n) {
  std::vector<publish_outcome> out;
  if (n == 0) return out;
  const auto via = entry_peer(publisher);
  const auto results = overlay_.multi_publish_and_drain(via, values, n);
  out.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    out.push_back(outcome_for(results[i], via, values[i]));
  }
  return out;
}

publish_outcome broker::outcome_for(const overlay::publish_result& r,
                                    peer_id via, const spatial::pt& value) {
  publish_outcome out;
  out.event_id = r.event_id;
  out.messages = r.messages;
  out.max_hops = r.max_hops;

  // Client-level aggregation: notified once per client, exact matching
  // against the client's own filters.
  std::vector<client_id> notified;
  for (const auto p : r.receivers) {
    const auto it = owner_of_.find(p);
    if (it == owner_of_.end()) continue;
    if (std::find(notified.begin(), notified.end(), it->second) ==
        notified.end()) {
      notified.push_back(it->second);
    }
  }
  std::sort(notified.begin(), notified.end());
  out.notified = notified;

  spatial::event ev;
  ev.id = r.event_id;
  ev.publisher = via;
  ev.value = value;
  // A client matches iff any of its live subscription peers' filters
  // contains the value; the overlay's ground-truth index yields those
  // peers directly instead of a scan over every client's peer list.
  overlay_.matching_live_peers(value, match_scratch_);
  matched_clients_.clear();
  for (const auto p : match_scratch_) {
    const auto it = owner_of_.find(p);
    if (it == owner_of_.end()) continue;
    matched_clients_.push_back(it->second);
  }
  std::sort(matched_clients_.begin(), matched_clients_.end());
  matched_clients_.erase(
      std::unique(matched_clients_.begin(), matched_clients_.end()),
      matched_clients_.end());
  for (const auto& [client, state] : clients_) {
    const bool matches = std::binary_search(matched_clients_.begin(),
                                            matched_clients_.end(), client);
    const bool got = std::binary_search(notified.begin(), notified.end(),
                                        client);
    if (matches) ++out.matching_clients;
    if (got && !matches) ++out.client_false_positives;
    if (!got && matches) ++out.client_false_negatives;
    if (got && on_delivery_) on_delivery_(client, ev);
  }
  return out;
}

int broker::stabilize(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    if (overlay_legal()) return round;
    overlay_.advance(config_.dr.stabilize_period);
    overlay_.settle();
  }
  return overlay_legal() ? max_rounds : -1;
}

bool broker::overlay_legal() const {
  return overlay::checker(overlay_).check().legal();
}

}  // namespace drt::pubsub
