// Application-facing publish/subscribe façade over the DR-tree overlay.
//
// The paper's exposition assumes one subscription per process "for the
// sake of simplicity" (§2.1); real deployments host several.  The broker
// implements the general case the standard way: each subscription becomes
// one logical overlay subscriber (a DR-tree peer) owned by the client,
// and deliveries are de-duplicated and exact-matched per client, so a
// client with several overlapping filters receives each event once.
//
// This is the API a downstream application links against:
//
//   broker b(cfg);
//   auto alice = b.add_client();
//   auto sub = b.subscribe(alice, filter_rect);
//   b.unsubscribe(sub);                  // controlled departure
//   auto out = b.publish(alice, point);  // who got it, exactness stats
#ifndef DRT_PUBSUB_BROKER_H
#define DRT_PUBSUB_BROKER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "drtree/overlay.h"
#include "spatial/types.h"

namespace drt::pubsub {

using client_id = std::uint32_t;

/// Identifies one registered subscription of one client.
struct subscription_handle {
  client_id client = 0;
  spatial::peer_id peer = spatial::kNoPeer;  ///< owning overlay subscriber

  friend bool operator==(const subscription_handle&,
                         const subscription_handle&) = default;
};

struct broker_config {
  overlay::dr_config dr{};
  sim::simulator_config net{};
};

/// Outcome of one publication at client granularity.
struct publish_outcome {
  std::uint64_t event_id = 0;
  std::vector<client_id> notified;     ///< clients that received the event
  std::size_t matching_clients = 0;    ///< clients with a matching filter
  std::size_t client_false_positives = 0;  ///< notified, nothing matched
  std::size_t client_false_negatives = 0;  ///< matched, not notified
  std::uint64_t messages = 0;
  std::size_t max_hops = 0;            ///< longest delivery path
};

class broker {
 public:
  explicit broker(broker_config config = {});

  broker(const broker&) = delete;
  broker& operator=(const broker&) = delete;

  // -------------------------------------------------------------- clients
  client_id add_client();
  std::size_t client_count() const { return clients_.size(); }

  /// Register a filter for `client`; the filter joins the overlay as a
  /// logical subscriber owned by the client.
  subscription_handle subscribe(client_id client, const spatial::box& filter);

  /// Controlled departure of one subscription (Fig. 9).  Returns false if
  /// the handle is unknown or already removed.
  bool unsubscribe(const subscription_handle& handle);

  /// Tear down every subscription of `client` (each a controlled
  /// departure) without deregistering the client, so callers need not
  /// track handles themselves.  Returns the number removed (0 when the
  /// client is unknown or had none).
  std::size_t unsubscribe_all(client_id client);

  /// Remove a client entirely: every subscription departs (controlled),
  /// future publishes from it are rejected.  Returns false if unknown.
  bool remove_client(client_id client);

  /// Filters currently registered by `client`.
  std::vector<spatial::box> subscriptions_of(client_id client) const;

  /// Optional push interface: invoked once per (event, notified client).
  using delivery_callback =
      std::function<void(client_id, const spatial::event&)>;
  void set_delivery_callback(delivery_callback cb) { on_delivery_ = std::move(cb); }

  // ---------------------------------------------------------- publication
  /// Publish an event from one of `publisher`'s subscriptions (or, for a
  /// publisher with none, through any overlay peer) and drain the
  /// network.
  publish_outcome publish(client_id publisher, const spatial::pt& value);

  /// Publish `n` events in one overlay batch (DESIGN.md §9): the events
  /// share envelopes and tree descents, so the network cost is far below
  /// n scalar publishes.  Returns one outcome per event with the same
  /// client-level accounting as publish(); the shared batch message total
  /// is reported on the FIRST outcome (0 on the rest).
  std::vector<publish_outcome> publish_batch(client_id publisher,
                                             const spatial::pt* values,
                                             std::size_t n);

  // --------------------------------------------------------------- admin
  /// Run stabilization rounds until the overlay is legal (or the budget
  /// runs out); returns rounds or -1.
  int stabilize(int max_rounds = 100);
  bool overlay_legal() const;

  overlay::dr_overlay& raw_overlay() { return overlay_; }
  const overlay::dr_overlay& raw_overlay() const { return overlay_; }

 private:
  struct client_state {
    std::vector<spatial::peer_id> peers;  // live logical subscribers
  };

  /// The overlay peer a publication from `publisher` enters through: one
  /// of its own live subscribers when it has any, else any live peer.
  spatial::peer_id entry_peer(client_id publisher);
  /// Client-level aggregation of one drained overlay publication (the
  /// shared back half of publish and publish_batch).
  publish_outcome outcome_for(const overlay::publish_result& r,
                              spatial::peer_id via, const spatial::pt& value);

  broker_config config_;
  overlay::dr_overlay overlay_;
  std::unordered_map<client_id, client_state> clients_;
  std::unordered_map<spatial::peer_id, client_id> owner_of_;
  client_id next_client_ = 1;
  delivery_callback on_delivery_;
  // publish() scratch: exact matching goes through the overlay's filter
  // index; these buffers make the per-event client aggregation
  // allocation-free once warm.
  std::vector<spatial::peer_id> match_scratch_;
  std::vector<client_id> matched_clients_;
};

}  // namespace drt::pubsub

/// Handles are value types meant for client-side bookkeeping; hashing
/// lets applications keep them in unordered containers directly.
template <>
struct std::hash<drt::pubsub::subscription_handle> {
  std::size_t operator()(const drt::pubsub::subscription_handle& h) const
      noexcept {
    // splitmix64 finalizer over the (client, peer) pair: cheap and well
    // mixed even though both ids are small sequential integers.
    std::uint64_t x = (static_cast<std::uint64_t>(h.client) << 32) ^
                      static_cast<std::uint64_t>(h.peer);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

#endif  // DRT_PUBSUB_BROKER_H
