#include "sim/kernel.h"

#include <algorithm>
#include <thread>

#include "util/expect.h"

namespace drt::sim {

kernel::kernel(kernel_config config) : config_(config) {
  DRT_EXPECT(config_.shards >= 1);
  DRT_EXPECT(config_.window > 0.0);
  sims_.assign(config_.shards, nullptr);
  inbox_.resize(config_.shards);
}

void kernel::attach(std::size_t shard, simulator& sim) {
  DRT_EXPECT(shard < sims_.size());
  sims_[shard] = &sim;
}

simulator& kernel::shard(std::size_t i) {
  DRT_EXPECT(i < sims_.size() && sims_[i] != nullptr);
  return *sims_[i];
}

void kernel::post(std::size_t src, std::size_t dst, std::uint64_t bytes,
                  std::function<void(simulator&)> deliver) {
  DRT_EXPECT(src < sims_.size() && dst < sims_.size());
  ++metrics_.cross_messages;
  metrics_.cross_bytes += bytes;
  inbox_[dst].push_back({bytes, std::move(deliver)});
}

bool kernel::flush() {
  bool any = false;
  for (std::size_t dst = 0; dst < inbox_.size(); ++dst) {
    for (auto& inj : inbox_[dst]) {
      inj.deliver(shard(dst));
      any = true;
    }
    inbox_[dst].clear();
  }
  return any;
}

void kernel::run_pass(const std::function<void(std::size_t)>& fn) {
  if (!config_.parallel || sims_.size() == 1) {
    for (std::size_t i = 0; i < sims_.size(); ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(sims_.size());
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    workers.emplace_back([&fn, i] { fn(i); });
  }
  for (auto& w : workers) w.join();
}

void kernel::run_pass_on(const std::vector<std::size_t>& idx,
                         const std::function<void(std::size_t)>& fn) {
  if (!config_.parallel || idx.size() <= 1) {
    for (const auto i : idx) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(idx.size());
  for (const auto i : idx) workers.emplace_back([&fn, i] { fn(i); });
  for (auto& w : workers) w.join();
}

std::uint64_t kernel::settle(std::uint64_t max_steps) {
  if (sims_.size() == 1) {
    // Single shard: any buffered injections run now, then the plain
    // drain — byte-identical to calling run_steps() directly.
    flush();
    return shard(0).run_steps(max_steps);
  }
  std::vector<std::uint64_t> steps(sims_.size(), 0);
  std::uint64_t total = 0;
  while (true) {
    flush();
    run_pass([&](std::size_t i) { steps[i] = shard(i).run_steps(max_steps); });
    ++metrics_.barriers;
    for (const auto s : steps) total += s;
    bool pending = false;
    for (std::size_t i = 0; i < sims_.size(); ++i) {
      pending = pending || shard(i).pending_work() > 0 || !inbox_[i].empty();
    }
    if (!pending) return total;
  }
}

void kernel::advance(sim_time dt) {
  if (sims_.size() == 1) {
    flush();
    auto& s = shard(0);
    s.run_until(s.now() + dt);
    ++metrics_.windows;
    return;
  }
  // Each shard keeps its own clock (settle() drains stop at different
  // times); windows are lockstep *offsets* from each shard's start.
  std::vector<sim_time> start(sims_.size(), 0.0);
  for (std::size_t i = 0; i < sims_.size(); ++i) start[i] = shard(i).now();
  sim_time done = 0.0;
  while (done < dt) {
    const sim_time step = std::min(config_.window, dt - done);
    done += step;
    flush();
    // Dispatch a worker only where an event is actually due inside the
    // window; an idle shard just gets its clock moved (one queue peek).
    // This is what makes a quiescent forest cheap under dirty-mode
    // stabilization: parked timers push next_event_time() K periods
    // out, so clean shards fall through to the inline branch.
    active_scratch_.clear();
    for (std::size_t i = 0; i < sims_.size(); ++i) {
      if (shard(i).next_event_time() <= start[i] + done) {
        active_scratch_.push_back(i);
      } else {
        shard(i).run_until(start[i] + done);
        ++metrics_.shard_windows_idle;
      }
    }
    run_pass_on(active_scratch_,
                [&](std::size_t i) { shard(i).run_until(start[i] + done); });
    ++metrics_.windows;
    ++metrics_.barriers;
  }
}

}  // namespace drt::sim
