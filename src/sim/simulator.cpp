#include "sim/simulator.h"

#include <algorithm>
#include <limits>

namespace drt::sim {

namespace {
/// The model a config describes: the explicit one when set, else a
/// uniform model from the legacy shorthand fields.  net::make_model
/// validates (the shorthand path re-checks the legacy invariants the
/// old constructor asserted inline).
net::model_config resolve_model(const simulator_config& config) {
  if (config.model.has_value()) return *config.model;
  net::uniform_model_config u;
  u.min_delay = config.min_delay;
  u.max_delay = config.max_delay;
  u.loss = config.message_loss;
  return u;
}

/// Calendar-queue bucket width: ~1/8 of the model's mean link delay, so
/// a typical in-flight message population spreads over tens of buckets.
/// Clamped away from zero for degenerate (zero-delay) configurations,
/// where the queue gracefully decays to one sorted bucket.
double bucket_width_for(const net::link_model& model) {
  sim_time lo = 0.0;
  sim_time hi = 0.0;
  model.delay_bounds(lo, hi);
  return std::max(0.5 * (lo + hi) / 8.0, 1e-6);
}
}  // namespace

simulator::simulator(simulator_config config)
    : config_(config),
      net_(net::make_model(resolve_model(config))),
      dynamic_(net_->as_dynamic()),
      rng_(config.seed),
      queue_(bucket_width_for(*net_)) {}

simulator::~simulator() = default;

process_id simulator::add_process(std::unique_ptr<process> p) {
  DRT_EXPECT(p != nullptr);
  const auto id = static_cast<process_id>(processes_.size());
  p->id_ = id;
  p->sim_ = this;
  p->alive_ = true;
  processes_.push_back(std::move(p));
  net_->on_process_added(id, rng_);
  processes_.back()->on_start();
  return id;
}

bool simulator::partition(const std::vector<process_id>& side_b) {
  if (dynamic_ == nullptr) return false;
  dynamic_->partition(side_b);
  // Sever in-flight traffic too: a partition cuts links, and packets on
  // a cut link are lost, not delayed until the heal.
  const auto purged = queue_.erase_if([this](const pending_event& ev) {
    return ev.what == pending_event::kind::message &&
           !dynamic_->allows(ev.from, ev.to);
  });
  metrics_.messages_partitioned += purged;
  DRT_ENSURE(pending_work_ >= purged);
  pending_work_ -= purged;
  return true;
}

bool simulator::heal_partition() {
  if (dynamic_ == nullptr) return false;
  dynamic_->heal();
  return true;
}

bool simulator::degrade_links(double latency_factor, double extra_loss,
                              sim_time ramp) {
  if (dynamic_ == nullptr) return false;
  dynamic_->degrade(now_, ramp, latency_factor, extra_loss);
  return true;
}

bool simulator::clear_degradation() {
  if (dynamic_ == nullptr) return false;
  dynamic_->clear_degradation();
  return true;
}

void simulator::crash(process_id id) {
  auto& p = get(id);
  if (!p.alive_) return;
  p.alive_ = false;
  // Dead-letter purge: in-flight messages to the crashed process would
  // otherwise sit in the queue until their delivery times, spinning
  // run_steps() budget one pop per dead letter.  Drop and count them now.
  // Timers are kept: periodic chains must survive a crash/restart cycle.
  const auto purged = queue_.erase_if([id](const pending_event& ev) {
    return ev.what == pending_event::kind::message && ev.to == id;
  });
  metrics_.messages_to_dead += purged;
  DRT_ENSURE(pending_work_ >= purged);
  pending_work_ -= purged;
  p.on_crash();
}

void simulator::restart(process_id id) {
  auto& p = get(id);
  if (p.alive_) return;
  p.alive_ = true;
  p.on_start();
}

std::vector<process_id> simulator::live_processes() const {
  std::vector<process_id> out;
  out.reserve(processes_.size());
  for_each_live([&out](process_id id) { out.push_back(id); });
  return out;
}

void simulator::send(process_id from, process_id to, std::uint64_t type) {
  post_message(from, to, type, envelope{});
}

void simulator::post_message(process_id from, process_id to,
                             std::uint64_t type, envelope msg) {
  DRT_EXPECT(to < processes_.size());
  ++metrics_.messages_sent;
  if (link_filter_ && !link_filter_(from, to)) {
    ++metrics_.messages_partitioned;
    return;
  }
  const net::link_decision d = net_->on_send(from, to, now_, rng_);
  if (!d.deliver) {
    ++(d.partitioned ? metrics_.messages_partitioned
                     : metrics_.messages_dropped);
    return;
  }
  pending_event ev;
  ev.at = now_ + d.delay;
  ev.what = pending_event::kind::message;
  ev.from = from;
  ev.to = to;
  ev.type = type;
  ev.payload = std::move(msg);
  if (d.duplicate_lag >= 0.0) {
    // Network-level duplication: the payload block is shared between the
    // two deliveries, so the duplicate is flagged on the event (the
    // message kinds repurpose the periodic-only generation/period slots)
    // and re-queued after the first delivery instead of copied.
    ++metrics_.messages_duplicated;
    ev.generation = 1;
    ev.period = ev.at + d.duplicate_lag;
  }
  push_event(std::move(ev));
}

void simulator::schedule_timer(process_id target, std::uint64_t timer_type,
                               sim_time delay) {
  DRT_EXPECT(target < processes_.size());
  DRT_EXPECT(delay >= 0.0);
  pending_event ev;
  ev.at = now_ + delay;
  ev.what = pending_event::kind::timer;
  ev.to = target;
  ev.type = timer_type;
  push_event(std::move(ev));
}

void simulator::schedule_quiet_timer(process_id target,
                                     std::uint64_t timer_type,
                                     sim_time delay) {
  DRT_EXPECT(target < processes_.size());
  DRT_EXPECT(delay >= 0.0);
  pending_event ev;
  ev.at = now_ + delay;
  ev.what = pending_event::kind::quiet;
  ev.to = target;
  ev.type = timer_type;
  push_event(std::move(ev));
}

void simulator::schedule_periodic(process_id target, std::uint64_t timer_type,
                                  sim_time period, sim_time phase) {
  DRT_EXPECT(target < processes_.size());
  DRT_EXPECT(period > 0.0);
  auto& state = periodic_[periodic_key{target, timer_type}];
  pending_event ev;
  ev.at = now_ + phase;
  ev.what = pending_event::kind::periodic;
  ev.to = target;
  ev.type = timer_type;
  ev.period = period;
  ev.generation = state.generation;
  push_event(std::move(ev));
}

void simulator::cancel_periodic(process_id target, std::uint64_t timer_type) {
  // Outstanding firings with the old generation are ignored on pop.
  ++periodic_[periodic_key{target, timer_type}].generation;
}

void simulator::push_event(pending_event ev) {
  ev.seq = next_seq_++;
  if (ev.what == pending_event::kind::message ||
      ev.what == pending_event::kind::timer) {
    ++pending_work_;
  }
  queue_.push(std::move(ev));
}

bool simulator::pop_and_execute() {
  if (queue_.empty()) return false;
  pending_event ev = queue_.pop();
  if (ev.what == pending_event::kind::message ||
      ev.what == pending_event::kind::timer) {
    DRT_ENSURE(pending_work_ > 0);
    --pending_work_;
  }
  DRT_ENSURE(ev.at + 1e-12 >= now_);
  now_ = std::max(now_, ev.at);

  auto& target = *processes_[ev.to];
  switch (ev.what) {
    case pending_event::kind::message:
      if (!target.alive_) {
        // Sent while the target was already down (crash-time purge
        // removed everything in flight at that point).  Any pending
        // duplicate dies with it.
        ++metrics_.messages_to_dead;
        return true;
      }
      ++metrics_.messages_delivered;
      ++metrics_.handler_steps;
      if (trace_) trace_({now_, ev.from, ev.to, ev.type});
      target.on_message(ev.from, ev.type, ev.payload);
      if (ev.generation != 0) {
        // Duplicated by the network (see post_message): re-queue the
        // same event — payload block included — for its second arrival.
        pending_event dup = std::move(ev);
        dup.at = dup.period;
        dup.generation = 0;
        push_event(std::move(dup));
      }
      return true;
    case pending_event::kind::timer:
    case pending_event::kind::quiet:
      if (!target.alive_) return true;
      ++metrics_.timers_fired;
      ++metrics_.handler_steps;
      target.on_timer(ev.type);
      return true;
    case pending_event::kind::periodic: {
      const auto it = periodic_.find(periodic_key{ev.to, ev.type});
      if (it == periodic_.end() || it->second.generation != ev.generation) {
        return true;  // cancelled
      }
      // Re-arm first so a handler cancelling the timer also stops this
      // chain, then fire.
      pending_event next;
      next.at = now_ + ev.period;
      next.what = pending_event::kind::periodic;
      next.to = ev.to;
      next.type = ev.type;
      next.period = ev.period;
      next.generation = ev.generation;
      push_event(std::move(next));
      if (target.alive_) {
        ++metrics_.timers_fired;
        ++metrics_.handler_steps;
        target.on_timer(ev.type);
      }
      return true;
    }
  }
  return true;
}

sim_time simulator::next_event_time() {
  const pending_event* top = queue_.peek();
  return top != nullptr ? top->at
                        : std::numeric_limits<sim_time>::infinity();
}

void simulator::run_until(sim_time until) {
  DRT_EXPECT(until >= now_);
  while (const pending_event* top = queue_.peek()) {
    if (top->at > until) break;
    pop_and_execute();
  }
  now_ = std::max(now_, until);
}

std::uint64_t simulator::run_steps(std::uint64_t max_steps) {
  const auto start = metrics_.handler_steps;
  while (metrics_.handler_steps - start < max_steps && pending_work_ > 0) {
    pop_and_execute();
  }
  return metrics_.handler_steps - start;
}

}  // namespace drt::sim
