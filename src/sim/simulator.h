// Deterministic discrete-event simulator: the distributed-system substrate
// the DR-tree overlay runs on.
//
// The paper's system model (§2.1) is an asynchronous message-passing
// network of processes that join, leave, crash, and suffer transient
// state corruption.  This engine models exactly that: virtual time, typed
// messages delivered after a per-link delay, optional message loss,
// periodic timers (the paper's "periodically triggered" stabilization
// events), and crash/restart of processes.  Everything is driven by one
// seeded RNG, so every experiment is bit-reproducible.
//
// The messaging core is allocation-free on the hot path: payloads travel
// in typed sim::envelope values (sim/message.h) and the scheduler is a
// two-level calendar queue (sim/event_queue.h) with O(1) amortized
// schedule/pop.  Event execution follows the strict total order
// (at, seq) — see the determinism contract in DESIGN.md.
//
// Message fate (latency, loss, partition cuts, duplication) is decided
// by a pluggable net::link_model consulted on the send path (DESIGN.md
// §7).  The default uniform model reproduces the legacy hard-coded
// uniform-delay/iid-loss behavior bit-for-bit.
#ifndef DRT_SIM_SIMULATOR_H
#define DRT_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/model.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "util/expect.h"
#include "util/rng.h"

namespace drt::sim {

class simulator;

/// A process: owns local state, reacts to messages and timers.  Handlers
/// run atomically (the scheduler interleaves handler executions, never
/// preempts one), matching the locally-atomic step semantics the paper's
/// proofs assume.
class process {
 public:
  virtual ~process() = default;

  process_id id() const { return id_; }
  simulator& sim() const { return *sim_; }
  bool alive() const { return alive_; }

  /// Called once when the process is added to the simulation.
  virtual void on_start() {}
  /// A message from `from` (which may have crashed since sending).  Read
  /// the payload with msg.visit<Payload>() — nullptr for payload-less
  /// messages, and the cast is tag-checked (aborts on type confusion).
  virtual void on_message(process_id from, std::uint64_t type,
                          const envelope& msg) = 0;
  /// A timer registered via simulator::schedule_timer fired.
  virtual void on_timer(std::uint64_t /*timer_type*/) {}
  /// The process crashed (uncontrolled departure).  State is NOT cleared
  /// automatically: a restarted process resumes with stale state, which is
  /// precisely the transient-fault model self-stabilization handles.
  virtual void on_crash() {}

 private:
  friend class simulator;
  process_id id_ = kNoProcess;
  simulator* sim_ = nullptr;
  bool alive_ = false;
};

struct simulator_config {
  std::uint64_t seed = 1;
  /// Legacy shorthand for the default transport: when `model` is unset,
  /// the simulator runs a net::uniform_model built from these three
  /// fields (identical behavior to the original hard-coded send path).
  sim_time min_delay = 0.5;      ///< per-message latency lower bound
  sim_time max_delay = 1.5;      ///< per-message latency upper bound
  double message_loss = 0.0;     ///< iid drop probability per message
  /// Explicit network model; overrides the shorthand fields when set.
  /// Validated (net::validate) at simulator construction.
  std::optional<net::model_config> model;
};

/// Counters the experiment harnesses read.
struct sim_metrics {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     ///< random loss (any model)
  std::uint64_t messages_partitioned = 0; ///< blocked by filter or partition
  std::uint64_t messages_duplicated = 0;  ///< extra copies the network grew
  std::uint64_t messages_to_dead = 0;     ///< purged at crash or sent to dead
  std::uint64_t timers_fired = 0;
  std::uint64_t handler_steps = 0;  ///< total handler executions
};

class simulator {
 public:
  explicit simulator(simulator_config config = {});
  ~simulator();

  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  // ----------------------------------------------------------- topology
  /// Register a process; it becomes alive and receives on_start().
  process_id add_process(std::unique_ptr<process> p);

  /// Uncontrolled departure: the process stops receiving messages/timers.
  /// Messages already in flight *to* it are purged from the queue and
  /// counted as messages_to_dead; timers stay queued (periodic chains
  /// survive a crash/restart cycle).
  void crash(process_id id);

  /// Restart a crashed process (keeps its — possibly stale — state).
  void restart(process_id id);

  bool is_alive(process_id id) const {
    return id < processes_.size() && processes_[id]->alive_;
  }
  process& get(process_id id) {
    DRT_EXPECT(id < processes_.size());
    return *processes_[id];
  }
  const process& get(process_id id) const {
    DRT_EXPECT(id < processes_.size());
    return *processes_[id];
  }

  /// Visit every live process id without materializing a vector (the
  /// per-tick accounting loops in the overlay/harness run on this).
  /// The visitor may return void, or bool with false meaning "stop
  /// early" (selection walks shouldn't scan past their target).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (const auto& p : processes_) {
      if (!p->alive_) continue;
      if constexpr (std::is_void_v<std::invoke_result_t<Fn&, process_id>>) {
        fn(p->id_);
      } else {
        if (!fn(p->id_)) return;
      }
    }
  }
  std::size_t live_count() const {
    std::size_t n = 0;
    for (const auto& p : processes_) n += p->alive_ ? 1 : 0;
    return n;
  }
  /// Allocating snapshot; prefer for_each_live()/live_count() in loops.
  std::vector<process_id> live_processes() const;
  std::size_t process_count() const { return processes_.size(); }

  // ----------------------------------------------------------- messaging
  /// Send message `type` with payload `body` (may be omitted).  The
  /// configured net::link_model decides the fate: delivery delay, random
  /// loss, partition cuts, duplication.  Payloads up to
  /// envelope::kMaxPooledPayload travel in slab-recycled pool blocks —
  /// allocation-free once the simulation reaches a steady state.
  template <typename Payload>
  void send(process_id from, process_id to, std::uint64_t type,
            Payload body) {
    post_message(from, to, type, envelope::wrap(pool_, std::move(body)));
  }
  void send(process_id from, process_id to, std::uint64_t type);

  /// Send only the initialized prefix of a fixed-capacity payload (see
  /// envelope::wrap_prefix): a k-event batch rides one block sized to the
  /// k events actually present, not to the struct's full capacity.
  template <typename Payload>
  void send_prefix(process_id from, process_id to, std::uint64_t type,
                   const Payload& body, std::size_t payload_bytes) {
    post_message(from, to, type,
                 envelope::wrap_prefix(pool_, body, payload_bytes));
  }

  /// The payload pool backing pooled sends (slab/footprint accounting).
  const payload_pool& pool() const { return pool_; }

  /// Install a link filter: messages with allow(from, to) == false are
  /// dropped at send time (counted as partitioned).  Pass nullptr to
  /// heal.  A test hook for arbitrary link predicates; declarative
  /// partitions should use partition()/heal_partition() on a dynamic
  /// net model instead (those also inform the reachability oracle).
  using link_filter = std::function<bool(process_id from, process_id to)>;
  void set_link_filter(link_filter allow) { link_filter_ = std::move(allow); }

  // ------------------------------------------------------ network model
  const net::link_model& net_model() const { return *net_; }
  net::link_model& net_model() { return *net_; }
  /// The dynamic fault layer, or nullptr when the configured model has
  /// none (partition/degrade calls then return false).
  net::dynamic_model* dynamic_net() { return dynamic_; }
  const net::dynamic_model* dynamic_net() const { return dynamic_; }

  /// Partition the network: `side_b` on one side, everyone else on the
  /// other.  Cross-cut messages already in flight are purged (a cut
  /// severs links, not just future sends) and counted as partitioned;
  /// subsequent cross-cut sends are dropped the same way.  Returns false
  /// (and does nothing) when the model has no dynamic layer.
  bool partition(const std::vector<process_id>& side_b);
  /// Remove the active partition.  False when the model is not dynamic.
  bool heal_partition();
  /// Ramp all links to `latency_factor` x latency and `extra_loss`
  /// stacked loss over `ramp` virtual time starting now, then hold.
  bool degrade_links(double latency_factor, double extra_loss,
                     sim_time ramp);
  bool clear_degradation();

  /// Reachability under the active partition (true when none): the
  /// failure-detector oracle overlay protocols consult.  A partitioned
  /// peer is indistinguishable from a crashed one.
  bool reachable(process_id from, process_id to) const {
    return dynamic_ == nullptr || dynamic_->allows(from, to);
  }

  /// Trace hook: invoked at every message *delivery* (after the latency,
  /// before the handler).  For logging/analysis tooling; pass nullptr to
  /// disable.
  struct trace_event {
    sim_time at = 0.0;
    process_id from = kNoProcess;
    process_id to = kNoProcess;
    std::uint64_t type = 0;
  };
  using trace_hook = std::function<void(const trace_event&)>;
  void set_trace(trace_hook hook) { trace_ = std::move(hook); }

  /// One-shot timer for `target` after `delay`.
  void schedule_timer(process_id target, std::uint64_t timer_type,
                      sim_time delay);
  /// One-shot timer that — like a periodic — does NOT count toward
  /// pending_work(): run_steps()-style quiescence ignores it, and it is
  /// silently dropped if the target is dead when it comes due.  The
  /// dirty-mode stabilizer arms its future passes with these, so an
  /// armed pass never keeps settle() spinning.
  void schedule_quiet_timer(process_id target, std::uint64_t timer_type,
                            sim_time delay);
  /// Recurring timer with the given period, first firing after `phase`.
  /// Periodic timers drive the paper's CHECK_* stabilization modules.
  void schedule_periodic(process_id target, std::uint64_t timer_type,
                         sim_time period, sim_time phase);
  /// Cancel all periodic timers of one type for a process.
  void cancel_periodic(process_id target, std::uint64_t timer_type);

  // ----------------------------------------------------------- execution
  /// Run until the event queue drains or `until` virtual time is reached.
  /// Periodic timers alone do not keep the run alive past `until`.
  void run_until(sim_time until);

  /// Process events — executing any periodic timers that come due along
  /// the way — until no non-periodic work (messages, one-shot timers)
  /// remains queued, or the step budget is exhausted.  Returns the number
  /// of handler steps taken.  This is how experiments "drain" the protocol
  /// to quiescence.
  std::uint64_t run_steps(std::uint64_t max_steps);

  /// Non-periodic events currently queued (messages + one-shot timers;
  /// quiet timers and periodics excluded).
  std::size_t pending_work() const { return pending_work_; }

  /// Virtual time of the earliest queued event of any kind, or +infinity
  /// when the queue is empty.  The sharded kernel peeks this to skip
  /// dispatching workers at shards with nothing due inside a window.
  sim_time next_event_time();

  sim_time now() const { return now_; }
  const sim_metrics& metrics() const { return metrics_; }
  util::rng& rng() { return rng_; }
  const simulator_config& config() const { return config_; }

 private:
  /// (target, timer type) identity of one periodic chain.  The full pair
  /// is the key — no bit-packing, so timer types with bits above 32 can
  /// never alias another process's chain.
  struct periodic_key {
    process_id target = kNoProcess;
    std::uint64_t type = 0;
    friend bool operator==(const periodic_key&,
                           const periodic_key&) = default;
  };
  struct periodic_key_hash {
    std::size_t operator()(const periodic_key& k) const {
      std::uint64_t x =
          k.type ^ (0x9e3779b97f4a7c15ull * (std::uint64_t{k.target} + 1));
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };
  struct periodic_state {
    std::uint64_t generation = 0;  // bump to cancel outstanding firings
  };

  void post_message(process_id from, process_id to, std::uint64_t type,
                    envelope msg);
  void push_event(pending_event ev);
  bool pop_and_execute();

  simulator_config config_;
  std::unique_ptr<net::link_model> net_;
  net::dynamic_model* dynamic_ = nullptr;  ///< net_'s fault layer, if any
  util::rng rng_;
  sim_time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_work_ = 0;
  sim_metrics metrics_;
  link_filter link_filter_;
  trace_hook trace_;
  std::vector<std::unique_ptr<process>> processes_;
  std::unordered_map<periodic_key, periodic_state, periodic_key_hash>
      periodic_;
  payload_pool pool_;
  calendar_queue queue_;
};

}  // namespace drt::sim

#endif  // DRT_SIM_SIMULATOR_H
