// Typed, zero-allocation message payloads for the simulator substrate.
//
// The original messaging core heap-allocated a shared_ptr<void> plus two
// std::function closures for every payload-carrying send() — three mallocs
// on the hottest path in the codebase — and dragged them through every
// event-queue move.  This header replaces that with:
//
//  * `payload_pool` — a slab allocator with per-size-class free lists.
//    Blocks are carved from 64 KiB slabs in cache-line multiples and
//    recycled LIFO on release, so steady-state traffic never touches the
//    global allocator and keeps re-touching hot blocks.
//  * `envelope` — a move-only, type-tagged payload handle of exactly one
//    pointer.  Payload bytes live inline in a pool block, prefixed by a
//    32-byte header (owning pool, destructor, type tag, block size), so a
//    pending event stays one cache line and queue moves are pointer
//    swaps.  Payload-less messages carry a null envelope and cost
//    nothing.
//
// Payload types are identified without RTTI: `payload_tag_of<T>()` yields
// one unique address per type, and `envelope::visit<T>()` checks the tag
// before handing out a typed pointer, turning the old unchecked
// `static_cast<const T*>(void*)` consumer pattern into a verified cast.
#ifndef DRT_SIM_MESSAGE_H
#define DRT_SIM_MESSAGE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/expect.h"

namespace drt::sim {

/// Unique per-type identity without RTTI: one static byte per payload
/// type, its address is the tag.
using payload_tag = const void*;

namespace detail {
template <typename T>
struct tag_holder {
  static constexpr char value = 0;
};
}  // namespace detail

template <typename T>
constexpr payload_tag payload_tag_of() {
  return &detail::tag_holder<T>::value;
}

/// Slab allocator for payload blocks.  Sizes are served in cache-line
/// (64 B) multiples up to kMaxPooledBytes from per-class LIFO free
/// lists; fresh blocks are carved from 64 KiB slabs.  Requests above the
/// largest class fall through to operator new/delete (no overlay message
/// is anywhere near that large).
class payload_pool {
 public:
  static constexpr std::size_t kMaxPooledBytes = 4096;

  payload_pool() : free_lists_(kClassCount, nullptr) {}
  ~payload_pool() {
    for (void* slab : slabs_) ::operator delete(slab);
  }

  payload_pool(const payload_pool&) = delete;
  payload_pool& operator=(const payload_pool&) = delete;

  void* acquire(std::size_t size) {
    if (size > kMaxPooledBytes) return ::operator new(size);
    const auto cls = size_class(size);
    if (free_node* node = free_lists_[cls]) {
      free_lists_[cls] = node->next;
      return node;
    }
    return carve((cls + 1) * kBlockQuantum);
  }

  void release(void* block, std::size_t size) {
    if (size > kMaxPooledBytes) {
      ::operator delete(block);
      return;
    }
    auto* node = static_cast<free_node*>(block);
    const auto cls = size_class(size);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  /// Slabs allocated so far — a proxy for "how often did the pool have to
  /// go to the global allocator" (should plateau in steady state).
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  static constexpr std::size_t kBlockQuantum = 64;
  static constexpr std::size_t kClassCount = kMaxPooledBytes / kBlockQuantum;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  struct free_node {
    free_node* next;
  };

  static std::size_t size_class(std::size_t size) {
    return size == 0 ? 0 : (size - 1) / kBlockQuantum;
  }

  void* carve(std::size_t block_bytes) {
    if (slabs_.empty() || slab_used_ + block_bytes > kSlabBytes) {
      // Plain operator new returns max_align_t-aligned storage; block
      // sizes are cache-line multiples, so every carved block keeps it.
      slabs_.push_back(::operator new(kSlabBytes));
      slab_used_ = 0;
    }
    auto* base = static_cast<std::byte*>(slabs_.back());
    void* block = base + slab_used_;
    slab_used_ += block_bytes;
    return block;
  }

  std::vector<free_node*> free_lists_;  // one LIFO list per size class
  std::vector<void*> slabs_;
  std::size_t slab_used_ = 0;
};

/// A typed message payload handle: one pointer into a pool block whose
/// 32-byte header records the owning pool, the payload destructor (null
/// for trivially destructible types), the type tag, and the block size.
/// Move-only; the simulator creates one per payload-carrying send() and
/// hands `process::on_message` a const reference.  Handlers read it with
/// `visit<T>()`, which returns nullptr for payload-less messages and
/// aborts on a type mismatch (the old void*-cast bug class).
class envelope {
 public:
  envelope() = default;
  envelope(envelope&& other) noexcept : payload_(other.payload_) {
    other.payload_ = nullptr;
  }
  envelope& operator=(envelope&& other) noexcept {
    if (this != &other) {
      reset();
      payload_ = other.payload_;
      other.payload_ = nullptr;
    }
    return *this;
  }
  envelope(const envelope&) = delete;
  envelope& operator=(const envelope&) = delete;
  ~envelope() { reset(); }

  /// Payloads up to this size ride pooled (recycled, allocation-free in
  /// steady state) blocks; bigger ones fall back to the global allocator.
  static constexpr std::size_t kMaxPooledPayload =
      payload_pool::kMaxPooledBytes - 32;

  /// Wrap `value` into a pool block.  The pool must outlive the envelope.
  template <typename T>
  static envelope wrap(payload_pool& pool, T value) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned payloads are not supported");
    static_assert(std::is_nothrow_move_constructible_v<T>,
                  "a throwing move during placement-new would leak the "
                  "acquired pool block");
    const std::size_t bytes = sizeof(block_header) + sizeof(T);
    auto* hdr = static_cast<block_header*>(pool.acquire(bytes));
    hdr->pool = &pool;
    hdr->destroy = nullptr;
    hdr->tag = payload_tag_of<T>();
    hdr->bytes = static_cast<std::uint32_t>(bytes);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      hdr->destroy = [](void* p) noexcept { static_cast<T*>(p)->~T(); };
    }
    envelope e;
    e.payload_ = hdr + 1;
    ::new (e.payload_) T(std::move(value));
    return e;
  }

  /// Wrap only the first `payload_bytes` of `value` — the variable-size
  /// variant of wrap() for fixed-capacity structs whose trailing array is
  /// partially used (one batch envelope instead of k per-event blocks).
  /// The pool block is sized to the used prefix, so a small batch rides a
  /// small size class.  The receiver sees the payload through the normal
  /// visit<T>() and must only read the initialized prefix (the struct's
  /// own count field says how much that is).
  template <typename T>
  static envelope wrap_prefix(payload_pool& pool, const T& value,
                              std::size_t payload_bytes) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "prefix wrapping memcpys raw bytes and never runs a "
                  "destructor over the truncated tail");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned payloads are not supported");
    DRT_EXPECT(payload_bytes <= sizeof(T));
    const std::size_t bytes = sizeof(block_header) + payload_bytes;
    auto* hdr = static_cast<block_header*>(pool.acquire(bytes));
    hdr->pool = &pool;
    hdr->destroy = nullptr;
    hdr->tag = payload_tag_of<T>();
    hdr->bytes = static_cast<std::uint32_t>(bytes);
    envelope e;
    e.payload_ = hdr + 1;
    std::memcpy(e.payload_, &value, payload_bytes);
    return e;
  }

  bool empty() const { return payload_ == nullptr; }
  explicit operator bool() const { return !empty(); }

  /// Typed read access.  nullptr when the envelope carries no payload;
  /// aborts when it carries a payload of a different type.
  template <typename T>
  const T* visit() const {
    if (payload_ == nullptr) return nullptr;
    DRT_EXPECT(header()->tag == payload_tag_of<T>());
    return static_cast<const T*>(payload_);
  }

  /// Destroy the payload and return the block to its pool.
  void reset() {
    if (payload_ == nullptr) return;
    block_header* hdr = header();
    if (hdr->destroy != nullptr) hdr->destroy(payload_);
    hdr->pool->release(hdr, hdr->bytes);
    payload_ = nullptr;
  }

 private:
  struct block_header {
    payload_pool* pool;
    void (*destroy)(void*);
    payload_tag tag;
    std::uint32_t bytes;  ///< total block size including this header
    std::uint32_t reserved;
  };
  static_assert(sizeof(block_header) == 32);
  static_assert(alignof(block_header) <= alignof(std::max_align_t));

  block_header* header() const {
    return static_cast<block_header*>(payload_) - 1;
  }

  void* payload_ = nullptr;  ///< block_header sits immediately before
};

}  // namespace drt::sim

#endif  // DRT_SIM_MESSAGE_H
