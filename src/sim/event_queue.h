// Two-level calendar queue: the simulator's event scheduler.
//
// The seed implementation kept every pending event in one binary heap —
// O(log n) comparisons and ~130-byte element moves per operation, at
// queue depths that reach millions of events in the churn/loss sweeps.
// This replaces it with the classic discrete-event-simulation structure:
//
//  * a ring of `kBuckets` time buckets, each `width` virtual-time wide,
//    covering the window [cur, cur + kBuckets*width).  push() appends to
//    the destination bucket (amortized O(1)); events land in (at, seq)
//    order by sorting each bucket once, lazily, when the cursor reaches
//    it (events are overwhelmingly pushed ahead of the cursor, so a
//    bucket is almost always complete by the time it is sorted);
//  * an overflow min-heap for events beyond the window (periodic timers
//    scheduled many delays ahead).  Each time the window slides, events
//    that fell inside it migrate to their bucket.
//
// Determinism contract: pop() returns events in the *strict total order*
// (at, seq) — exactly the order the seed binary heap produced (seq is
// unique, so the order is unique).  Bucketing never reorders:
// bucket_number(at) is one monotonic function of `at`, all events in
// bucket b precede all events in buckets > b and everything in overflow,
// and within the active bucket a full (at, seq) sort decides.  The
// golden-hash test in tests/sim_determinism_test.cpp pins this, bit for
// bit, against traces recorded with the seed scheduler.
#ifndef DRT_SIM_EVENT_QUEUE_H
#define DRT_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "util/expect.h"

namespace drt::sim {

using process_id = std::uint32_t;
inline constexpr process_id kNoProcess = static_cast<process_id>(-1);

/// Wall-clock-free virtual time.
using sim_time = double;

/// One scheduled occurrence: a message delivery, a one-shot timer, or a
/// periodic-timer firing.  Exactly one cache line: the payload is a
/// one-pointer envelope into a pooled block, so queue moves and bucket
/// sorts shuffle 64 bytes, never payload bytes.
struct pending_event {
  sim_time at = 0.0;
  std::uint64_t seq = 0;  ///< unique, FIFO tie-break => strict total order
  std::uint64_t type = 0;
  envelope payload;              ///< messages only
  sim_time period = 0.0;         ///< periodic only
  std::uint64_t generation = 0;  ///< periodic only
  process_id from = kNoProcess;
  process_id to = kNoProcess;
  /// `quiet` is a one-shot timer that does not count toward the
  /// simulator's pending-work total: run_steps()-style quiescence
  /// detection ignores it, the way it ignores periodics.  Dirty-mode
  /// stabilization timers ride this kind so an armed future pass never
  /// keeps settle() spinning.
  enum class kind : std::uint8_t { message, timer, periodic, quiet };
  kind what = kind::message;
};
static_assert(sizeof(pending_event) == 64);

class calendar_queue {
 public:
  /// `width` is the virtual-time span of one bucket.  The simulator picks
  /// it from its delay configuration (~1/8 of the mean link delay) so a
  /// typical in-flight message population spreads over tens of buckets.
  explicit calendar_queue(double width)
      : width_(width), inv_width_(1.0 / width), buckets_(kBuckets) {
    DRT_EXPECT(width > 0.0);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(pending_event ev) {
    ++size_;
    std::int64_t b = bucket_number(ev.at);
    // FP safety clamp: `at` is never below the cursor's bucket (events
    // schedule at >= now), but an event landing exactly on the cursor's
    // lower edge must join the active bucket, never a stale ring slot.
    if (b < cur_bno_) b = cur_bno_;
    if (b >= cur_bno_ + static_cast<std::int64_t>(kBuckets)) {
      overflow_.push_back(std::move(ev));
      std::push_heap(overflow_.begin(), overflow_.end(), later_first{});
      return;
    }
    ++wheel_count_;
    auto& slot = buckets_[ring_index(b)];
    if (b == cur_bno_ && active_sorted_) {
      // Rare: an event due inside the bucket currently being drained
      // (zero/short delays).  Keep the drained bucket sorted.
      slot.insert(std::upper_bound(slot.begin(), slot.end(), ev,
                                   later_first{}),
                  std::move(ev));
    } else {
      slot.push_back(std::move(ev));
    }
  }

  /// The (at, seq)-minimal event, or nullptr when empty.  Advances the
  /// cursor over empty buckets and sorts the active bucket on first
  /// contact; pop() consumes what peek() exposes.
  pending_event* peek() {
    if (size_ == 0) return nullptr;
    for (;;) {
      auto& slot = buckets_[ring_index(cur_bno_)];
      if (!slot.empty()) {
        if (!active_sorted_) {
          sort_active(slot);
          active_sorted_ = true;
        }
        return &slot.back();
      }
      active_sorted_ = false;
      if (wheel_count_ == 0) {
        if (overflow_.empty()) return nullptr;  // unreachable: size_ > 0
        // Wheel drained: jump the window straight to the earliest
        // overflow event instead of stepping bucket by bucket.
        cur_bno_ = bucket_number(overflow_.front().at);
      } else {
        ++cur_bno_;
      }
      drain_overflow_into_window();
    }
  }

  pending_event pop() {
    pending_event* top = peek();
    DRT_EXPECT(top != nullptr);
    pending_event ev = std::move(*top);
    buckets_[ring_index(cur_bno_)].pop_back();
    --wheel_count_;
    --size_;
    return ev;
  }

  /// Remove every event matching `pred` (crash-time dead-letter purge).
  /// Keeps relative order of survivors, so the active bucket stays
  /// sorted.  Returns the number removed.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t removed = 0;
    for (auto& slot : buckets_) {
      const auto it = std::remove_if(slot.begin(), slot.end(), pred);
      const auto n = static_cast<std::size_t>(slot.end() - it);
      slot.erase(it, slot.end());
      removed += n;
      wheel_count_ -= n;
    }
    const auto it = std::remove_if(overflow_.begin(), overflow_.end(), pred);
    const auto n = static_cast<std::size_t>(overflow_.end() - it);
    overflow_.erase(it, overflow_.end());
    if (n > 0) std::make_heap(overflow_.begin(), overflow_.end(), later_first{});
    removed += n;
    size_ -= removed;
    return removed;
  }

 private:
  static constexpr std::size_t kBuckets = 1024;  // power of two
  static constexpr std::size_t kRingMask = kBuckets - 1;

  /// "Less" for max-heap/descending use: the *later* event is smaller,
  /// so sorted vectors keep the earliest event at the back and
  /// std::push_heap keeps it at the front.
  struct later_first {
    bool operator()(const pending_event& a, const pending_event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Monotonic in `at` (positive multiply, then truncation): an event can
  /// never be assigned a strictly earlier bucket than any event with a
  /// smaller timestamp, which is what makes per-bucket ordering global.
  std::int64_t bucket_number(sim_time at) const {
    return static_cast<std::int64_t>(at * inv_width_);
  }

  std::size_t ring_index(std::int64_t bno) const {
    return static_cast<std::size_t>(bno) & kRingMask;
  }

  /// Sort the bucket the cursor just reached into descending (at, seq)
  /// order (minimum at the back).  Large buckets sort 24-byte
  /// (at, seq, index) keys and then apply the permutation with exactly
  /// one 64-byte event move each — sorting the events directly costs
  /// ~log(n) full-struct moves per event on the pop path.
  void sort_active(std::vector<pending_event>& slot) {
    if (slot.size() < 32) {
      std::sort(slot.begin(), slot.end(), later_first{});
      return;
    }
    keys_.clear();
    keys_.reserve(slot.size());
    for (std::uint32_t i = 0; i < slot.size(); ++i) {
      keys_.push_back({slot[i].at, slot[i].seq, i});
    }
    std::sort(keys_.begin(), keys_.end(), [](const sort_key& a,
                                             const sort_key& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    });
    scratch_.clear();
    scratch_.reserve(slot.size());
    for (const auto& k : keys_) scratch_.push_back(std::move(slot[k.idx]));
    slot.swap(scratch_);  // scratch_ keeps the old buffer for reuse
    scratch_.clear();
  }

  void drain_overflow_into_window() {
    const auto window_end = cur_bno_ + static_cast<std::int64_t>(kBuckets);
    while (!overflow_.empty() &&
           bucket_number(overflow_.front().at) < window_end) {
      std::pop_heap(overflow_.begin(), overflow_.end(), later_first{});
      pending_event ev = std::move(overflow_.back());
      overflow_.pop_back();
      std::int64_t b = bucket_number(ev.at);
      if (b < cur_bno_) b = cur_bno_;
      ++wheel_count_;
      buckets_[ring_index(b)].push_back(std::move(ev));
    }
  }

  struct sort_key {
    double at;
    std::uint64_t seq;
    std::uint32_t idx;
  };

  double width_;
  double inv_width_;
  std::vector<std::vector<pending_event>> buckets_;  ///< the ring
  std::vector<sort_key> keys_;            ///< sort_active scratch
  std::vector<pending_event> scratch_;    ///< sort_active scratch
  std::vector<pending_event> overflow_;  ///< min-(at,seq) binary heap
  std::int64_t cur_bno_ = 0;     ///< bucket number under the cursor
  bool active_sorted_ = false;   ///< cursor bucket sorted & draining
  std::size_t wheel_count_ = 0;  ///< events in buckets (not overflow)
  std::size_t size_ = 0;
};

}  // namespace drt::sim

#endif  // DRT_SIM_EVENT_QUEUE_H
