// Sharded simulator kernel: N independent event loops advanced in
// lockstep, with cross-shard traffic exchanged only at barriers.
//
// One drt::sim::simulator is one shard — its own calendar event_queue,
// payload_pool, RNG stream, and processes.  The kernel owns no
// simulators; callers attach them (the sharded overlay backend attaches
// one dr_overlay per shard) and the kernel drives them:
//
//   * settle()   — drain every shard to local quiescence, delivering
//     buffered cross-shard injections at each barrier, until no shard
//     has pending work and no injection is buffered.
//   * advance(dt) — run every shard forward dt of virtual time in
//     fixed-width windows; injections are delivered at window starts.
//
// Determinism argument (DESIGN.md §8): each shard's execution between
// two barriers is a function of (its own state, the injections delivered
// at the last barrier) only — shards never touch each other's state
// mid-pass.  Injections are delivered in a fixed order (destination
// shard ascending, then post order), so for a fixed shard count the
// whole run is bit-reproducible regardless of whether passes run
// sequentially or on worker threads.  With one shard, settle() and
// advance() delegate to run_steps()/run_until() verbatim, so kernel(1)
// reproduces the single-loop golden-trace hashes exactly.
#ifndef DRT_SIM_KERNEL_H
#define DRT_SIM_KERNEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"

namespace drt::sim {

struct kernel_config {
  std::size_t shards = 1;
  /// Barrier width for advance(): virtual time each shard runs between
  /// injection-exchange points.  Smaller windows mean more barriers but
  /// never change a run's result (injections are only created between
  /// passes, so any window width delivers them at the same pass edge).
  sim_time window = 10.0;
  /// Run shard passes on one std::thread per shard.  Results are
  /// bit-identical to the sequential schedule (see header comment); on a
  /// single core this only buys contention, so it is off by default.
  bool parallel = false;
};

/// Cross-shard traffic counters; per-shard message counts stay in each
/// shard's own sim_metrics.
struct kernel_metrics {
  std::uint64_t cross_messages = 0;  ///< injections posted
  std::uint64_t cross_bytes = 0;     ///< payload bytes carried by them
  std::uint64_t windows = 0;         ///< advance() windows executed
  std::uint64_t barriers = 0;        ///< injection-exchange points
  /// Shard-windows where the shard had no event due and was advanced
  /// inline (no worker dispatched).  With dirty-mode stabilization a
  /// quiescent shard's timers park K periods out, so this is the
  /// mechanism by which clean shards cost ~nothing per round.
  std::uint64_t shard_windows_idle = 0;
};

class kernel {
 public:
  explicit kernel(kernel_config config = {});

  kernel(const kernel&) = delete;
  kernel& operator=(const kernel&) = delete;

  std::size_t shards() const { return sims_.size(); }

  /// Attach the simulator driving shard `i`.  The kernel does not own
  /// it; the caller keeps it alive for the kernel's lifetime.
  void attach(std::size_t shard, simulator& sim);

  simulator& shard(std::size_t i);

  /// Buffer a cross-shard injection from `src` to `dst`: `deliver` runs
  /// against dst's simulator at the next barrier, before dst's pass.
  /// `bytes` is the logical payload size (accounting only).  Posts are
  /// orchestrator-side: call between passes, never from inside a
  /// process handler (shard passes must stay state-disjoint).
  void post(std::size_t src, std::size_t dst, std::uint64_t bytes,
            std::function<void(simulator&)> deliver);

  /// Drain every shard to quiescence (see header).  Returns total
  /// handler steps across shards; `max_steps` is the per-shard budget
  /// per barrier round.
  std::uint64_t settle(std::uint64_t max_steps = 1000000);

  /// Advance every shard by `dt` virtual time in lockstep windows.
  void advance(sim_time dt);

  const kernel_metrics& metrics() const { return metrics_; }

 private:
  /// Deliver all buffered injections (dst ascending, post order within a
  /// dst).  Returns true when anything was delivered.
  bool flush();
  /// Run fn(shard_index) for every shard, on worker threads when
  /// configured.  fn must touch only that shard's simulator.
  void run_pass(const std::function<void(std::size_t)>& fn);
  /// Same, but only for the listed shards (advance() dispatches workers
  /// only where an event is actually due inside the window).
  void run_pass_on(const std::vector<std::size_t>& idx,
                   const std::function<void(std::size_t)>& fn);

  struct injection {
    std::uint64_t bytes = 0;
    std::function<void(simulator&)> deliver;
  };

  kernel_config config_;
  std::vector<simulator*> sims_;
  std::vector<std::vector<injection>> inbox_;  ///< per destination shard
  std::vector<std::size_t> active_scratch_;    ///< advance() due-shard list
  kernel_metrics metrics_;
};

}  // namespace drt::sim

#endif  // DRT_SIM_KERNEL_H
