#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace drt::obs {

double histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum > rank) {
      double v = upper_bound(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

histogram& histogram::operator+=(const histogram& other) {
  if (other.count_ == 0) return *this;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  return *this;
}

void registry::merge(const registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.hists_) hists_[name] += h;
}

namespace {

// %.17g round-trips doubles exactly through parse_exposition's strtod.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string registry::expose() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters_) {
    out << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges_) {
    out << "# TYPE " << name << " gauge\n" << name << " " << num(v) << "\n";
  }
  for (const auto& [name, h] : hists_) {
    out << "# TYPE " << name << " histogram\n";
    // Cumulative buckets up to the last populated one; +Inf always closes.
    std::size_t last = 0;
    const auto& b = h.buckets();
    for (std::size_t i = 0; i < histogram::kBuckets; ++i) {
      if (b[i] != 0) last = i;
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last && h.count() != 0; ++i) {
      cum += b[i];
      out << name << "_bucket{le=\"" << num(histogram::upper_bound(i))
          << "\"} " << cum << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n"
        << name << "_sum " << num(h.sum()) << "\n"
        << name << "_count " << h.count() << "\n";
  }
  return out.str();
}

std::map<std::string, double> parse_exposition(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Sample name runs to the first space outside a {...} label block.
    std::size_t i = 0;
    bool in_labels = false;
    for (; i < line.size(); ++i) {
      if (line[i] == '{') in_labels = true;
      if (line[i] == '}') in_labels = false;
      if (line[i] == ' ' && !in_labels) break;
    }
    if (i == 0 || i >= line.size()) continue;
    const auto name = line.substr(0, i);
    const char* tail = line.c_str() + i + 1;
    char* end = nullptr;
    const double v = std::strtod(tail, &end);
    if (end == tail) continue;  // no numeric value — not a sample line
    out[name] = v;
  }
  return out;
}

}  // namespace drt::obs
