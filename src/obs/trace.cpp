#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace drt::obs {

const char* to_string(trace_kind k) {
  switch (k) {
    case trace_kind::none: return "none";
    case trace_kind::join: return "join";
    case trace_kind::leave: return "leave";
    case trace_kind::crash: return "crash";
    case trace_kind::restart: return "restart";
    case trace_kind::stab_begin: return "stabilize_begin";
    case trace_kind::stab_end: return "stabilize_end";
    case trace_kind::publish: return "publish";
    case trace_kind::delivery: return "delivery";
    case trace_kind::false_neg: return "false_negative";
    case trace_kind::repair: return "repair";
    case trace_kind::violation: return "violation";
    case trace_kind::message: return "message";
    case trace_kind::service: return "service";
  }
  return "?";
}

std::vector<trace_record> merge_traces(
    const std::vector<const trace_ring*>& rings) {
  std::vector<trace_record> out;
  std::size_t total = 0;
  for (const auto* r : rings) {
    if (r != nullptr) total += r->size();
  }
  out.reserve(total);
  for (const auto* r : rings) {
    if (r == nullptr) continue;
    const auto snap = r->snapshot();
    out.insert(out.end(), snap.begin(), snap.end());
  }
  // Stable: equal timestamps keep (input ring, emit) order, so merging is
  // a pure function of the per-shard streams.
  std::stable_sort(out.begin(), out.end(),
                   [](const trace_record& x, const trace_record& y) {
                     return x.ts < y.ts;
                   });
  return out;
}

std::string to_chrome_trace(const std::vector<trace_record>& records,
                            double us_per_tick) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& r : records) {
    const auto kind = static_cast<trace_kind>(r.kind);
    const char* ph = "i";
    if (kind == trace_kind::stab_begin) ph = "B";
    if (kind == trace_kind::stab_end) ph = "E";
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << to_string(kind) << "\",\"cat\":\"drt\",\"ph\":\""
        << ph << "\",\"ts\":" << r.ts * us_per_tick << ",\"pid\":" << r.shard
        << ",\"tid\":" << r.peer;
    if (*ph == 'i') out << ",\"s\":\"t\"";
    // E events carry no args so begin/end pairs stay symmetric for viewers
    // that fold them into complete events.
    if (kind != trace_kind::stab_end) {
      out << ",\"args\":{\"a\":" << r.a << ",\"b\":" << r.b << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

namespace {

std::string slug(const std::string& s) {
  std::string out;
  for (const char c : s) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out.push_back(keep ? c : '-');
  }
  return out;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const auto n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return n == text.size();
}

}  // namespace

std::string write_flight_dump(const std::string& reason,
                              const std::vector<trace_record>& records,
                              std::size_t last_n,
                              const std::string& context) {
  static std::atomic<std::uint64_t> seq{0};
  const char* dir = std::getenv("DRT_DUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  std::ostringstream name;
  name << dir << "/drt_flight_" << slug(reason) << "_" << ::getpid() << "_"
       << seq.fetch_add(1);
  const auto base = name.str();

  const std::size_t start =
      records.size() > last_n ? records.size() - last_n : 0;
  std::ostringstream out;
  out << "DR-tree flight recorder dump\n"
      << "reason: " << reason << "\n"
      << "records: " << records.size() - start << " (of " << records.size()
      << " held; chrome trace of the same tail in " << base
      << ".trace.json)\n\n";
  if (!context.empty()) out << context << "\n";
  out << "--- trace tail (oldest first) ---\n"
      << "ts  kind  shard  peer  a  b\n";
  std::vector<trace_record> tail(records.begin() + static_cast<long>(start),
                                 records.end());
  for (const auto& r : tail) {
    out << r.ts << "  " << to_string(static_cast<trace_kind>(r.kind)) << "  "
        << r.shard << "  " << r.peer << "  " << r.a << "  " << r.b << "\n";
  }
  if (!write_file(base + ".txt", out.str())) return {};
  write_file(base + ".trace.json", to_chrome_trace(tail));
  return base + ".txt";
}

}  // namespace drt::obs
