// Flight-recorder tracing (DESIGN.md §12): per-shard SPSC rings of
// fixed-size binary trace records covering the overlay's protocol life —
// membership (join/leave/crash/restart), stabilize passes and the repairs
// they performed, publish fan-out (delivery hops, false negatives) — plus
// an exporter to Chrome trace-event JSON (loadable in Perfetto) and a
// last-N "flight dump" written when a checker violation or the first
// false negative of a sweep is observed.
//
// Cost model: with `dr_config::trace == off` no ring exists and every
// emit site is a single branch on a null pointer — zero allocations,
// zero stores, and (pinned by tests) bit-identical metrics digests.
// `ring` mode writes 32-byte records into a preallocated power-of-two
// ring, overwriting the oldest; `full` mode grows without bound and
// additionally records every simulator message delivery.
//
// Timestamps are the owning simulator's virtual time, so traces are as
// deterministic as the run that produced them; drtd's service-level
// records use the daemon's steady clock instead (rpc/service.cpp).
#ifndef DRT_OBS_TRACE_H
#define DRT_OBS_TRACE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace drt::obs {

enum class trace_mode : std::uint8_t {
  off,   ///< no ring, emit sites compile to a null check
  ring,  ///< bounded ring, oldest records overwritten
  full,  ///< unbounded append + per-message simulator records
};

inline const char* to_string(trace_mode m) {
  switch (m) {
    case trace_mode::off: return "off";
    case trace_mode::ring: return "ring";
    case trace_mode::full: return "full";
  }
  return "?";
}

/// What one record describes.  The `a`/`b` payload fields are
/// kind-specific; see the emit sites (drtree/overlay.cpp, drtree/peer.cpp)
/// and the exporter's `args` rendering for the mapping.
enum class trace_kind : std::uint16_t {
  none = 0,
  join = 1,        ///< peer created, join protocol started
  leave = 2,       ///< controlled departure (a = efficient_leave)
  crash = 3,       ///< silent crash
  restart = 4,     ///< dead peer revived
  stab_begin = 5,  ///< stabilize pass started (a = top height)
  stab_end = 6,    ///< pass finished (a = repairs performed, b = messages)
  publish = 7,     ///< event published (a = event id)
  delivery = 8,    ///< event delivered (a = event id, b = hop count)
  false_neg = 9,   ///< interested peer missed (a = event id)
  repair = 10,     ///< one repair action (a = module, b = height)
  violation = 11,  ///< checker found the structure illegal (a = count)
  message = 12,    ///< simulator delivery, full mode only (a = type, b = from)
  service = 13,    ///< drtd service event (a = code, b = detail)
};

const char* to_string(trace_kind k);

/// One fixed-size binary record.  32 bytes, trivially copyable — the
/// ring is a flat array and merge/export/dump treat streams as bytes.
struct trace_record {
  double ts = 0.0;          ///< sim time (or steady-clock seconds in drtd)
  std::uint16_t kind = 0;   ///< trace_kind
  std::uint16_t shard = 0;  ///< owning shard (0 when unsharded)
  std::uint32_t peer = 0;   ///< subject peer id
  std::uint64_t a = 0;      ///< kind-specific
  std::uint64_t b = 0;      ///< kind-specific
};
static_assert(sizeof(trace_record) == 32);
static_assert(std::is_trivially_copyable_v<trace_record>);

/// The flight recorder: one writer (the owning shard's thread), readers
/// only between passes / at barriers — the same single-writer discipline
/// the sharded kernel already enforces on everything shard-local.
class trace_ring {
 public:
  explicit trace_ring(trace_mode mode, std::size_t capacity = 1u << 14)
      : mode_(mode) {
    if (mode_ == trace_mode::ring) {
      std::size_t cap = 16;
      while (cap < capacity) cap <<= 1;  // power of two for cheap wrap
      buf_.resize(cap);
      mask_ = cap - 1;
    }
  }

  trace_mode mode() const { return mode_; }
  std::uint16_t shard() const { return shard_; }
  void set_shard(std::uint16_t s) { shard_ = s; }

  /// Hot path: one store into a preallocated slot (ring) or an amortized
  /// append (full).  Never called in off mode — emit sites hold a null
  /// pointer instead of an off-mode ring.
  void emit(double ts, trace_kind kind, std::uint32_t peer,
            std::uint64_t a = 0, std::uint64_t b = 0) {
    trace_record r;
    r.ts = ts;
    r.kind = static_cast<std::uint16_t>(kind);
    r.shard = shard_;
    r.peer = peer;
    r.a = a;
    r.b = b;
    if (mode_ == trace_mode::ring) {
      buf_[head_ & mask_] = r;
    } else {
      buf_.push_back(r);
    }
    ++head_;
  }

  /// Total records ever emitted (>= size() once the ring wrapped).
  std::uint64_t emitted() const { return head_; }

  /// Records currently held.
  std::size_t size() const {
    if (mode_ == trace_mode::ring) {
      return head_ < buf_.size() ? static_cast<std::size_t>(head_)
                                 : buf_.size();
    }
    return buf_.size();
  }

  std::size_t capacity() const {
    return mode_ == trace_mode::ring ? buf_.size() : SIZE_MAX;
  }

  /// Oldest-to-newest copy of the held records.
  std::vector<trace_record> snapshot() const {
    std::vector<trace_record> out;
    const auto n = size();
    out.reserve(n);
    if (mode_ == trace_mode::ring && head_ > buf_.size()) {
      const auto start = head_ & mask_;  // oldest surviving slot
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(buf_[(start + i) & mask_]);
      }
    } else {
      out.assign(buf_.begin(), buf_.begin() + static_cast<long>(n));
    }
    return out;
  }

  /// The newest `n` records, oldest first.
  std::vector<trace_record> tail(std::size_t n) const {
    auto all = snapshot();
    if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<long>(n));
    return all;
  }

  void clear() {
    if (mode_ != trace_mode::ring) buf_.clear();
    head_ = 0;
  }

 private:
  trace_mode mode_;
  std::uint16_t shard_ = 0;
  std::uint64_t head_ = 0;  ///< total emits; next write slot = head_ & mask_
  std::size_t mask_ = 0;
  std::vector<trace_record> buf_;
};

/// Merge per-shard streams into one timeline: stable-sorted by timestamp,
/// so records at equal times keep (shard, emit) order and the merged
/// stream is a pure function of the input streams — the property the
/// 1-vs-N-shard determinism tests pin.
std::vector<trace_record> merge_traces(
    const std::vector<const trace_ring*>& rings);

/// Chrome trace-event JSON ("traceEvents" array format, loadable in
/// Perfetto / chrome://tracing).  pid = shard, tid = peer; stabilize
/// passes become B/E duration events, everything else instants.
/// Timestamps are scaled by `us_per_tick` (sim time unit -> microseconds).
std::string to_chrome_trace(const std::vector<trace_record>& records,
                            double us_per_tick = 1000.0);

/// Write the flight dump: `reason` and `context` (violations, instance
/// chains, ...) followed by the last `last_n` records as text, plus a
/// sibling `<path>.trace.json` Chrome export of the same records.  Files
/// land in $DRT_DUMP_DIR (default ".").  Returns the text file's path,
/// or "" when the directory is not writable — diagnostics never abort
/// the run they are diagnosing.
std::string write_flight_dump(const std::string& reason,
                              const std::vector<trace_record>& records,
                              std::size_t last_n,
                              const std::string& context);

}  // namespace drt::obs

#endif  // DRT_OBS_TRACE_H
