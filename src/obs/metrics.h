// Counter + histogram registry (DESIGN.md §12): named monotonic counters,
// free-standing gauges, and log-bucketed histograms that answer
// p50/p99/p999 without storing samples.  Per-shard registries merge by
// plain addition (counters and bucket counts are sums, gauges last-write),
// and the whole registry renders to the Prometheus text exposition format
// drtd serves live — obs::parse_exposition round-trips it for tests and
// tooling.
//
// Histogram buckets are powers of 2^(1/4) (four buckets per octave), so a
// quantile estimate is off by at most ~19% of the true value — the usual
// contract of log-bucketed latency tracking — while the footprint stays a
// fixed 256 * 8 bytes per histogram.
#ifndef DRT_OBS_METRICS_H
#define DRT_OBS_METRICS_H

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>

namespace drt::obs {

class histogram {
 public:
  static constexpr std::size_t kBuckets = 256;
  /// Bucket index of v == 1.0; the range spans 2^-32 .. 2^32 around it.
  static constexpr int kOffset = 128;

  void record(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++buckets_[bucket_index(v)];
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Quantile estimate (q in [0,1]) from bucket counts: the containing
  /// bucket's upper bound, clamped to the observed [min, max].
  double quantile(double q) const;

  histogram& operator+=(const histogram& other);

  static std::size_t bucket_index(double v) {
    if (!(v > 0.0)) return 0;
    const int i = kOffset + static_cast<int>(std::floor(std::log2(v) * 4.0));
    if (i < 0) return 0;
    if (i >= static_cast<int>(kBuckets)) return kBuckets - 1;
    return static_cast<std::size_t>(i);
  }

  /// Upper boundary of bucket `i` (the `le` label in the exposition).
  static double upper_bound(std::size_t i) {
    return std::exp2(static_cast<double>(static_cast<int>(i) + 1 - kOffset) /
                     4.0);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Named metrics, deterministically ordered (std::map) so the exposition
/// text — and anything hashed over it — is stable across runs.
class registry {
 public:
  /// Monotonic counter cell; returns a reference stable for the
  /// registry's lifetime (node-based map).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Last-write-wins gauge cell.
  double& gauge(const std::string& name) { return gauges_[name]; }
  histogram& hist(const std::string& name) { return hists_[name]; }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, histogram>& hists() const { return hists_; }

  /// Merge semantics (DESIGN.md §12): counters and histogram buckets add,
  /// gauges take the other side's value.  Used at shard barriers; with
  /// one shard, merge(x) == x.
  void merge(const registry& other);

  void clear() {
    counters_.clear();
    gauges_.clear();
    hists_.clear();
  }

  /// Prometheus text exposition (version 0.0.4): `# TYPE` comments,
  /// cumulative `_bucket{le="..."}` lines per histogram plus `_sum` and
  /// `_count`.  Empty trailing buckets are elided (a legal boundary
  /// subset) so hop-depth histograms don't render 200 zero lines.
  std::string expose() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, histogram> hists_;
};

/// Parse an exposition back into {sample name (labels included) -> value}.
/// Accepts exactly what expose() emits plus arbitrary comment lines —
/// the round-trip contract the obs tests pin.
std::map<std::string, double> parse_exposition(const std::string& text);

}  // namespace drt::obs

#endif  // DRT_OBS_METRICS_H
