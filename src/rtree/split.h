// Node-splitting policies (§3.2 "there are three classical methods for
// splitting a children set, which are supported by our DR-tree structure"):
//
//  * linear    — Guttman's linear-cost split [18]
//  * quadratic — Guttman's quadratic-cost split [18]
//  * rstar     — the R*-tree topological split [5] (axis by minimum margin
//                sum, distribution by minimum overlap)
//
// The same implementation is used by the sequential R-tree (src/rtree) and
// by the DR-tree overlay (src/drtree), so the split-policy ablation (E13)
// compares identical code.
#ifndef DRT_RTREE_SPLIT_H
#define DRT_RTREE_SPLIT_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "geometry/rect.h"
#include "util/expect.h"

namespace drt::rtree {

enum class split_method { linear, quadratic, rstar };

inline const char* to_string(split_method m) {
  switch (m) {
    case split_method::linear: return "linear";
    case split_method::quadratic: return "quadratic";
    case split_method::rstar: return "rstar";
  }
  return "?";
}

/// One element of the set being split: an MBR plus an opaque handle the
/// caller uses to identify the child/object.  The arena-backed R-tree
/// passes the entry's slot index within the overflowing node; the DR-tree
/// overlay passes peer ids.  Policies only ever group handles — they
/// never interpret them — so the same code serves both representations.
template <std::size_t D>
struct split_entry {
  geo::rect<D> mbr;
  std::uint64_t handle = 0;
};

template <std::size_t D>
struct split_outcome {
  std::vector<split_entry<D>> left;
  std::vector<split_entry<D>> right;
};

namespace detail {

template <std::size_t D>
geo::rect<D> mbr_of(const std::vector<split_entry<D>>& entries) {
  auto r = geo::rect<D>::empty();
  for (const auto& e : entries) r = join(r, e.mbr);
  return r;
}

/// Guttman linear split: seeds with greatest normalized separation.
template <std::size_t D>
std::pair<std::size_t, std::size_t> linear_seeds(
    const std::vector<split_entry<D>>& entries) {
  double best_sep = -1.0;
  std::pair<std::size_t, std::size_t> best{0, 1};
  for (std::size_t d = 0; d < D; ++d) {
    // Entry with the highest low side and entry with the lowest high side.
    std::size_t high_lo = 0;
    std::size_t low_hi = 0;
    double min_lo = std::numeric_limits<double>::infinity();
    double max_hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& r = entries[i].mbr;
      if (r.lo[d] > entries[high_lo].mbr.lo[d]) high_lo = i;
      if (r.hi[d] < entries[low_hi].mbr.hi[d]) low_hi = i;
      min_lo = std::min(min_lo, r.lo[d]);
      max_hi = std::max(max_hi, r.hi[d]);
    }
    const double width = max_hi - min_lo;
    if (width <= 0.0 || high_lo == low_hi) continue;
    const double sep =
        (entries[high_lo].mbr.lo[d] - entries[low_hi].mbr.hi[d]) / width;
    if (sep > best_sep) {
      best_sep = sep;
      best = {low_hi, high_lo};
    }
  }
  if (best.first == best.second) best = {0, entries.size() - 1};
  return best;
}

/// Guttman quadratic split: seeds wasting the most area if grouped.
template <std::size_t D>
std::pair<std::size_t, std::size_t> quadratic_seeds(
    const std::vector<split_entry<D>>& entries) {
  double worst = -std::numeric_limits<double>::infinity();
  std::pair<std::size_t, std::size_t> best{0, 1};
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = join(entries[i].mbr, entries[j].mbr).area() -
                           entries[i].mbr.area() - entries[j].mbr.area();
      if (waste > worst) {
        worst = waste;
        best = {i, j};
      }
    }
  }
  return best;
}

/// Common seed-and-distribute loop for the two Guttman methods.
template <std::size_t D>
split_outcome<D> guttman_split(std::vector<split_entry<D>> entries,
                               std::size_t min_fill, bool quadratic) {
  const auto [seed_a, seed_b] = quadratic ? quadratic_seeds(entries)
                                          : linear_seeds(entries);
  split_outcome<D> out;
  out.left.push_back(entries[seed_a]);
  out.right.push_back(entries[seed_b]);
  auto left_mbr = entries[seed_a].mbr;
  auto right_mbr = entries[seed_b].mbr;

  std::vector<split_entry<D>> rest;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(entries[i]);
  }

  while (!rest.empty()) {
    // Honor the minimum fill: if one group *must* take everything left.
    if (out.left.size() + rest.size() == min_fill) {
      for (const auto& e : rest) out.left.push_back(e);
      break;
    }
    if (out.right.size() + rest.size() == min_fill) {
      for (const auto& e : rest) out.right.push_back(e);
      break;
    }

    std::size_t pick = 0;
    if (quadratic) {
      // PickNext: entry with maximal preference difference between groups.
      double best_diff = -1.0;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        const double dl = left_mbr.enlargement(rest[i].mbr);
        const double dr = right_mbr.enlargement(rest[i].mbr);
        const double diff = std::abs(dl - dr);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
        }
      }
    }
    const auto entry = rest[pick];
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick));

    const double dl = left_mbr.enlargement(entry.mbr);
    const double dr = right_mbr.enlargement(entry.mbr);
    bool to_left;
    if (dl != dr) {
      to_left = dl < dr;
    } else if (left_mbr.area() != right_mbr.area()) {
      to_left = left_mbr.area() < right_mbr.area();
    } else {
      to_left = out.left.size() <= out.right.size();
    }
    if (to_left) {
      out.left.push_back(entry);
      left_mbr = join(left_mbr, entry.mbr);
    } else {
      out.right.push_back(entry);
      right_mbr = join(right_mbr, entry.mbr);
    }
  }
  return out;
}

/// R* split: choose the axis minimizing the margin sum over all candidate
/// distributions, then the distribution minimizing overlap (area breaking
/// ties).
template <std::size_t D>
split_outcome<D> rstar_split(std::vector<split_entry<D>> entries,
                             std::size_t min_fill) {
  const std::size_t total = entries.size();
  const std::size_t max_k = total - min_fill;  // split index range

  double best_margin = std::numeric_limits<double>::infinity();
  std::size_t best_axis = 0;
  bool best_by_lo = true;

  auto sort_entries = [&](std::size_t axis, bool by_lo) {
    std::stable_sort(entries.begin(), entries.end(),
                     [&](const split_entry<D>& a, const split_entry<D>& b) {
                       return by_lo ? a.mbr.lo[axis] < b.mbr.lo[axis]
                                    : a.mbr.hi[axis] < b.mbr.hi[axis];
                     });
  };

  for (std::size_t axis = 0; axis < D; ++axis) {
    for (bool by_lo : {true, false}) {
      sort_entries(axis, by_lo);
      double margin_sum = 0.0;
      for (std::size_t k = min_fill; k <= max_k; ++k) {
        auto left = geo::rect<D>::empty();
        auto right = geo::rect<D>::empty();
        for (std::size_t i = 0; i < k; ++i) left = join(left, entries[i].mbr);
        for (std::size_t i = k; i < total; ++i) {
          right = join(right, entries[i].mbr);
        }
        margin_sum += left.margin() + right.margin();
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis = axis;
        best_by_lo = by_lo;
      }
    }
  }

  sort_entries(best_axis, best_by_lo);
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  std::size_t best_k = min_fill;
  for (std::size_t k = min_fill; k <= max_k; ++k) {
    auto left = geo::rect<D>::empty();
    auto right = geo::rect<D>::empty();
    for (std::size_t i = 0; i < k; ++i) left = join(left, entries[i].mbr);
    for (std::size_t i = k; i < total; ++i) right = join(right, entries[i].mbr);
    const double overlap = left.overlap_area(right);
    const double area = left.area() + right.area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  split_outcome<D> out;
  out.left.assign(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(best_k));
  out.right.assign(entries.begin() + static_cast<std::ptrdiff_t>(best_k),
                   entries.end());
  return out;
}

}  // namespace detail

/// Split `entries` into two groups of at least `min_fill` members each.
/// Requires entries.size() >= 2 * min_fill (the paper requires M >= 2m).
template <std::size_t D>
split_outcome<D> split_entries(std::vector<split_entry<D>> entries,
                               std::size_t min_fill, split_method method) {
  DRT_EXPECT(min_fill >= 1);
  DRT_EXPECT(entries.size() >= 2 * min_fill);
  split_outcome<D> out;
  switch (method) {
    case split_method::linear:
      out = detail::guttman_split<D>(std::move(entries), min_fill, false);
      break;
    case split_method::quadratic:
      out = detail::guttman_split<D>(std::move(entries), min_fill, true);
      break;
    case split_method::rstar:
      out = detail::rstar_split<D>(std::move(entries), min_fill);
      break;
  }
  DRT_ENSURE(out.left.size() >= min_fill);
  DRT_ENSURE(out.right.size() >= min_fill);
  return out;
}

}  // namespace drt::rtree

#endif  // DRT_RTREE_SPLIT_H
