// Sequential R-tree (Guttman [18]) with pluggable split policy and the R*
// forced-reinsertion improvement [5].
//
// Role in this repo: (1) the reference index of §2.2/Figs. 2-3; (2) the
// split-policy ablation substrate (E13) — the DR-tree overlay reuses the
// identical split code; (3) the ground-truth matcher used to validate
// overlay dissemination (an R-tree point query returns exactly the
// subscriptions an event must reach: no false negatives, no false
// positives) — dr_overlay keeps one per network and queries it once per
// published event, so this traversal is the hottest loop in the system.
//
// Memory layout (DESIGN.md §3b): all nodes live in one contiguous arena
// addressed by 32-bit node ids.  A node's child bounds are stored
// structure-of-arrays — per dimension, `cap` contiguous lows then `cap`
// contiguous highs — so a point/rect test against a whole node is a
// branch-light sweep the compiler vectorizes.  Freed nodes recycle
// through an in-slab free list; queries are allocation-free (visitor or
// caller-owned buffer, explicit traversal stack reused across calls).
#ifndef DRT_RTREE_RTREE_H
#define DRT_RTREE_RTREE_H

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/split.h"
#include "util/expect.h"

namespace drt::rtree {

struct rtree_config {
  std::size_t min_fill = 2;   ///< m: minimum entries per node (except root)
  std::size_t max_fill = 8;   ///< M: maximum entries per node; M >= 2m, < 64
  split_method method = split_method::quadratic;
  bool rstar_reinsert = false;  ///< R* forced reinsertion on first overflow
  double reinsert_fraction = 0.3;  ///< R* default: reinsert 30% of entries
};

/// Aggregate structure statistics (split-policy ablation, E13).
struct rtree_stats {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  std::size_t height = 0;           ///< 1 = root is a leaf
  double interior_area = 0.0;       ///< sum of interior-node MBR areas
  double interior_overlap = 0.0;    ///< pairwise sibling MBR overlap area
  std::size_t splits = 0;           ///< cumulative since construction
  std::size_t reinsertions = 0;     ///< cumulative since construction
  // Real substrate footprint (E4 memory accounting): the arena including
  // free-listed nodes, and the bytes actually reserved by its slabs.
  std::size_t node_count = 0;       ///< nodes in the arena (live + free)
  std::size_t bytes_allocated = 0;  ///< slab bytes reserved by the arena
};

template <std::size_t D>
class rtree {
 public:
  using rect_t = geo::rect<D>;
  using point_t = geo::point<D>;
  using node_id = std::uint32_t;

  explicit rtree(rtree_config config = {}) : config_(config) {
    DRT_EXPECT(config_.min_fill >= 1);
    DRT_EXPECT(config_.max_fill >= 2 * config_.min_fill);
    // Slot hit masks are one std::uint64_t per node sweep.
    DRT_EXPECT(config_.max_fill < 64);
    cap_ = static_cast<std::uint32_t>(config_.max_fill) + 1;  // overflow slot
    root_ = alloc_node(/*leaf=*/true);
  }

  // Copies duplicate the arena but not the traversal scratch (which is
  // lazily regrown); moves transfer everything.
  rtree(const rtree& other)
      : config_(other.config_),
        cap_(other.cap_),
        meta_(other.meta_),
        bounds_(other.bounds_),
        slots_(other.slots_),
        free_head_(other.free_head_),
        live_nodes_(other.live_nodes_),
        root_(other.root_),
        size_(other.size_),
        splits_(other.splits_),
        reinsertions_(other.reinsertions_),
        reinserted_levels_(other.reinserted_levels_) {}
  rtree& operator=(const rtree& other) {
    if (this != &other) {
      rtree copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  rtree(rtree&&) = default;
  rtree& operator=(rtree&&) = default;

  /// Sort-Tile-Recursive bulk loading: packs the items into a tree with
  /// near-100% node utilization in O(N log N), far better coverage than
  /// repeated insertion.  Items are (rectangle, payload) pairs.
  static rtree bulk_load(std::vector<std::pair<rect_t, std::uint64_t>> items,
                         rtree_config config = {}) {
    rtree t(config);
    if (items.empty()) return t;
    t.size_ = items.size();
    const auto cap = config.max_fill;
    // Secondary sort dimension (1-D trees tile on the only axis twice).
    [[maybe_unused]] constexpr std::size_t kY = D > 1 ? 1 : 0;

    // STR tiles on sort keys precomputed once per pass ((center, index)
    // pairs — 16 bytes), never recomputing center() inside a comparator
    // or moving full records through the sort.
    std::vector<std::pair<double, std::uint32_t>> keys;

    // Leaf level: sort by x-center, slice, sort each slice by y-center,
    // pack runs of max_fill straight into arena nodes.
    std::vector<node_id> level;
    {
      keys.resize(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        keys[i] = {items[i].first.center()[0], static_cast<std::uint32_t>(i)};
      }
      std::sort(keys.begin(), keys.end());
      const std::size_t pages = (items.size() + cap - 1) / cap;
      const auto slices = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(pages))));
      const std::size_t per_slice = (items.size() + slices - 1) / slices;
      for (std::size_t s = 0; s < slices; ++s) {
        const auto begin = std::min(s * per_slice, items.size());
        const auto end = std::min(begin + per_slice, items.size());
        if (begin >= end) break;
        for (std::size_t k = begin; k < end; ++k) {
          keys[k].first = items[keys[k].second].first.center()[kY];
        }
        std::sort(keys.begin() + static_cast<std::ptrdiff_t>(begin),
                  keys.begin() + static_cast<std::ptrdiff_t>(end));
        for (std::size_t i = begin; i < end; i += cap) {
          const node_id leaf = t.alloc_node(/*leaf=*/true);
          for (std::size_t j = i; j < std::min(i + cap, end); ++j) {
            const auto& it = items[keys[j].second];
            t.push_slot(leaf, it.first, it.second);
          }
          level.push_back(leaf);
        }
      }
      t.fix_min_fill(level);
    }

    // Interior levels: pack node MBRs the same way until one remains.
    // MBRs are computed once per level, not per comparison.
    std::vector<std::pair<rect_t, node_id>> ents;
    while (level.size() > 1) {
      ents.clear();
      ents.reserve(level.size());
      for (const node_id n : level) ents.emplace_back(t.node_mbr(n), n);
      keys.resize(ents.size());
      for (std::size_t i = 0; i < ents.size(); ++i) {
        keys[i] = {ents[i].first.center()[0], static_cast<std::uint32_t>(i)};
      }
      std::sort(keys.begin(), keys.end());
      const std::size_t pages = (ents.size() + cap - 1) / cap;
      const auto slices = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(pages))));
      const std::size_t per_slice = (ents.size() + slices - 1) / slices;
      std::vector<node_id> next;
      for (std::size_t s = 0; s < slices; ++s) {
        const auto begin = std::min(s * per_slice, ents.size());
        const auto end = std::min(begin + per_slice, ents.size());
        if (begin >= end) break;
        for (std::size_t k = begin; k < end; ++k) {
          keys[k].first = ents[keys[k].second].first.center()[kY];
        }
        std::sort(keys.begin() + static_cast<std::ptrdiff_t>(begin),
                  keys.begin() + static_cast<std::ptrdiff_t>(end));
        for (std::size_t i = begin; i < end; i += cap) {
          const node_id parent = t.alloc_node(/*leaf=*/false);
          for (std::size_t j = i; j < std::min(i + cap, end); ++j) {
            const auto& e = ents[keys[j].second];
            t.push_slot(parent, e.first, e.second);
          }
          next.push_back(parent);
        }
      }
      t.fix_min_fill(next);
      level = std::move(next);
    }
    t.free_node(t.root_);  // the constructor's empty leaf
    t.root_ = level.front();
    t.reinserted_levels_.assign(t.height(), false);
    return t;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const rtree_config& config() const { return config_; }

  /// Height in levels; 1 when the root is a leaf, 0 never.
  std::size_t height() const {
    std::size_t h = 1;
    node_id n = root_;
    while (!meta_[n].leaf) {
      DRT_ENSURE(meta_[n].count > 0);
      n = child_of(n, 0);
      ++h;
    }
    return h;
  }

  rect_t bounding_box() const { return node_mbr(root_); }

  void insert(const rect_t& r, std::uint64_t payload) {
    reinserted_levels_.assign(height(), false);
    insert_entry(r, payload, /*target_level=*/0);
    ++size_;
  }

  /// Remove one entry equal to (r, payload); returns false if absent.
  /// Follows Guttman's CondenseTree: underfull nodes are dissolved and
  /// their entries reinserted at their original level.
  bool erase(const rect_t& r, std::uint64_t payload) {
    auto& path = acquire_path();
    node_id leaf = knil;
    find_leaf(root_, r, payload, path, leaf);
    if (leaf == knil) {
      release_path();
      return false;
    }
    const std::uint32_t n = meta_[leaf].count;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (slots(leaf)[s] == payload && slot_mbr(leaf, s) == r) {
        remove_slot(leaf, s);
        break;
      }
    }
    condense(path);
    release_path();
    --size_;
    // Shrink the root if it has a single child and is not a leaf.
    while (!meta_[root_].leaf && meta_[root_].count == 1) {
      const node_id child = child_of(root_, 0);
      free_node(root_);
      root_ = child;
    }
    return true;
  }

  /// Visit the payload of every stored rectangle containing `p` (pub/sub
  /// matching: the subscriptions an event must be delivered to).
  /// Allocation-free: the traversal stack is a member reused across
  /// calls, and the per-node containment test is one SoA sweep over the
  /// node's slots.
  template <typename Visitor>
  void search_point(const point_t& p, Visitor&& visit) const {
    traverse(
        [&](node_id n, std::uint32_t count, std::uint8_t* ok) {
          sweep_point(n, count, p, ok);
        },
        [&](const std::uint8_t* ok, const std::uint64_t* sv,
            std::uint32_t count) {
          for (std::uint32_t s = 0; s < count; ++s) {
            if (ok[s]) visit(sv[s]);
          }
        });
  }

  /// Buffer-reuse overload: clears and fills `out`.  Matched payloads
  /// are gathered branch-free per node and appended in one splice, so
  /// this is the fastest path for callers that want the result set.
  void search_point(const point_t& p, std::vector<std::uint64_t>& out) const {
    out.clear();
    traverse(
        [&](node_id n, std::uint32_t count, std::uint8_t* ok) {
          sweep_point(n, count, p, ok);
        },
        gather_into(out));
  }

  /// Visit the payload of every stored rectangle intersecting `query`.
  /// An empty query (any inverted dimension) intersects nothing,
  /// matching geo::rect::intersects.
  template <typename Visitor>
  void search_intersects(const rect_t& query, Visitor&& visit) const {
    if (query.is_empty()) return;
    traverse(
        [&](node_id n, std::uint32_t count, std::uint8_t* ok) {
          sweep_rect(n, count, query, ok);
        },
        [&](const std::uint8_t* ok, const std::uint64_t* sv,
            std::uint32_t count) {
          for (std::uint32_t s = 0; s < count; ++s) {
            if (ok[s]) visit(sv[s]);
          }
        });
  }

  void search_intersects(const rect_t& query,
                         std::vector<std::uint64_t>& out) const {
    out.clear();
    if (query.is_empty()) return;
    traverse(
        [&](node_id n, std::uint32_t count, std::uint8_t* ok) {
          sweep_rect(n, count, query, ok);
        },
        gather_into(out));
  }

  /// Branch-and-bound nearest-neighbor: the stored entry whose rectangle
  /// is closest to `p` (MINDIST metric; 0 when `p` is inside).  Returns
  /// (payload, squared distance); empty tree -> nullopt.
  std::optional<std::pair<std::uint64_t, double>> nearest(
      const point_t& p) const {
    if (empty()) return std::nullopt;
    std::uint64_t best_payload = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    nearest_rec(root_, p, best_payload, best_d2);
    return std::make_pair(best_payload, best_d2);
  }

  /// Nodes visited by the last search (routing-cost metric).
  mutable std::size_t last_nodes_visited = 0;

  rtree_stats stats() const {
    rtree_stats s;
    s.height = height();
    s.splits = splits_;
    s.reinsertions = reinsertions_;
    s.node_count = meta_.size();
    s.bytes_allocated = bounds_.capacity() * sizeof(double) +
                        slots_.capacity() * sizeof(std::uint64_t) +
                        meta_.capacity() * sizeof(node_meta);
    collect_stats(root_, s);
    return s;
  }

  /// Validate the R-tree invariants of §2.2 plus arena bookkeeping (live
  /// node count matches the reachable tree); aborts on violation.  Used
  /// by tests after randomized insert/erase workloads.
  void check_invariants() const {
    const std::size_t reachable = check_node(root_, /*is_root=*/true,
                                             height());
    DRT_ENSURE(reachable == live_nodes_);
    DRT_ENSURE(live_nodes_ <= meta_.size());
  }

 private:
  static constexpr node_id knil = static_cast<node_id>(-1);

  struct node_meta {
    std::uint32_t count = 0;
    std::uint32_t next_free = knil;
    std::uint8_t leaf = 0;
  };

  rtree_config config_;
  std::uint32_t cap_ = 0;  ///< slots per node: max_fill + 1 overflow slot
  // The arena: parallel slabs indexed by node id.  bounds_ holds one
  // block of 2*D*cap_ doubles per node (per dimension: cap_ contiguous
  // lows, then cap_ contiguous highs); slots_ holds cap_ values per node
  // (leaf payload or child node id); meta_ holds the header.
  std::vector<node_meta> meta_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> slots_;
  node_id free_head_ = knil;
  std::size_t live_nodes_ = 0;
  node_id root_ = knil;
  std::size_t size_ = 0;
  std::size_t splits_ = 0;
  std::size_t reinsertions_ = 0;
  std::vector<bool> reinserted_levels_;  // R*: one forced reinsert per level
  // Reused traversal scratch: queries never allocate once the buffer has
  // grown to arena size (it is sized for the worst-case DFS plus one
  // slot of branch-free speculative-write slack per push); inserts reuse
  // a small pool of path buffers (insert_entry re-enters through R*
  // reinsertion and condense).
  mutable std::unique_ptr<node_id[]> stack_buf_;
  mutable std::size_t stack_cap_ = 0;
  // A deque, deliberately: acquire_path() hands out references that stay
  // live across nested acquire_path() calls (insert_entry re-enters via
  // R* reinsertion and condense), and deque growth never invalidates
  // references to existing elements.
  std::deque<std::vector<node_id>> path_pool_;
  std::size_t path_depth_ = 0;

  node_id* ensure_stack() const {
    if (stack_cap_ < live_nodes_ + 2) {
      stack_cap_ = std::max<std::size_t>(live_nodes_ + 2, 2 * stack_cap_);
      stack_buf_.reset(new node_id[stack_cap_]);
    }
    return stack_buf_.get();
  }

  // ------------------------------------------------------ arena access

  const double* lo(node_id n, std::size_t d) const {
    return &bounds_[(static_cast<std::size_t>(n) * 2 * D + 2 * d) * cap_];
  }
  const double* hi(node_id n, std::size_t d) const {
    return &bounds_[(static_cast<std::size_t>(n) * 2 * D + 2 * d + 1) * cap_];
  }
  double* lo(node_id n, std::size_t d) {
    return &bounds_[(static_cast<std::size_t>(n) * 2 * D + 2 * d) * cap_];
  }
  double* hi(node_id n, std::size_t d) {
    return &bounds_[(static_cast<std::size_t>(n) * 2 * D + 2 * d + 1) * cap_];
  }
  const std::uint64_t* slots(node_id n) const {
    return &slots_[static_cast<std::size_t>(n) * cap_];
  }
  std::uint64_t* slots(node_id n) {
    return &slots_[static_cast<std::size_t>(n) * cap_];
  }
  node_id child_of(node_id n, std::uint32_t s) const {
    return static_cast<node_id>(slots(n)[s]);
  }

  node_id alloc_node(bool leaf) {
    node_id n;
    if (free_head_ != knil) {
      n = free_head_;
      free_head_ = meta_[n].next_free;
    } else {
      n = static_cast<node_id>(meta_.size());
      meta_.emplace_back();
      bounds_.resize(bounds_.size() + 2 * D * cap_);
      slots_.resize(slots_.size() + cap_);
    }
    meta_[n] = node_meta{0, knil, leaf ? std::uint8_t{1} : std::uint8_t{0}};
    ++live_nodes_;
    return n;
  }

  void free_node(node_id n) {
    meta_[n].count = 0;
    meta_[n].next_free = free_head_;
    free_head_ = n;
    --live_nodes_;
  }

  rect_t slot_mbr(node_id n, std::uint32_t s) const {
    rect_t r;
    for (std::size_t d = 0; d < D; ++d) {
      r.lo[d] = lo(n, d)[s];
      r.hi[d] = hi(n, d)[s];
    }
    return r;
  }

  void set_slot_mbr(node_id n, std::uint32_t s, const rect_t& r) {
    for (std::size_t d = 0; d < D; ++d) {
      lo(n, d)[s] = r.lo[d];
      hi(n, d)[s] = r.hi[d];
    }
  }

  void push_slot(node_id n, const rect_t& r, std::uint64_t value) {
    const std::uint32_t s = meta_[n].count;
    DRT_ENSURE(s < cap_);
    set_slot_mbr(n, s, r);
    slots(n)[s] = value;
    meta_[n].count = s + 1;
  }

  /// Remove slot s, shifting later slots left (preserves entry order —
  /// the Guttman algorithms are order-sensitive).
  void remove_slot(node_id n, std::uint32_t s) {
    const std::uint32_t count = meta_[n].count;
    for (std::uint32_t i = s + 1; i < count; ++i) {
      for (std::size_t d = 0; d < D; ++d) {
        lo(n, d)[i - 1] = lo(n, d)[i];
        hi(n, d)[i - 1] = hi(n, d)[i];
      }
      slots(n)[i - 1] = slots(n)[i];
    }
    meta_[n].count = count - 1;
  }

  rect_t node_mbr(node_id n) const {
    auto r = rect_t::empty();
    const std::uint32_t count = meta_[n].count;
    for (std::uint32_t s = 0; s < count; ++s) r = join(r, slot_mbr(n, s));
    return r;
  }

  std::vector<node_id>& acquire_path() {
    if (path_depth_ == path_pool_.size()) path_pool_.emplace_back();
    auto& p = path_pool_[path_depth_++];
    p.clear();
    return p;
  }
  void release_path() { --path_depth_; }

  // ------------------------------------------------------- hot sweeps

  /// The one DFS body behind all four query entry points.  `sweep`
  /// fills ok[0..count) for a node; `leaf` consumes the matched slots
  /// of a leaf.  Children are pushed in reverse with branch-free
  /// speculative writes (the stack is sized for the whole arena plus
  /// one slot of slack), so nodes pop in slot order — the same
  /// pre-order DFS as the recursive formulation.
  template <typename Sweep, typename Leaf>
  void traverse(Sweep&& sweep, Leaf&& leaf) const {
    node_id* const base = ensure_stack();
    node_id* sp = base;
    *sp++ = root_;
    std::size_t visited = 0;
    std::uint8_t ok[64];
    while (sp != base) {
      const node_id n = *--sp;
      ++visited;
      const std::uint32_t count = meta_[n].count;
      sweep(n, count, ok);
      const std::uint64_t* sv = slots(n);
      if (meta_[n].leaf) {
        leaf(ok, sv, count);
      } else {
        for (std::uint32_t s = count; s > 0; --s) {
          *sp = static_cast<node_id>(sv[s - 1]);
          sp += ok[s - 1];
        }
      }
    }
    last_nodes_visited += visited;
  }

  /// Leaf consumer for the buffer overloads: gathers matched payloads
  /// branch-free into a local staging array, then appends in one splice.
  static auto gather_into(std::vector<std::uint64_t>& out) {
    return [&out](const std::uint8_t* ok, const std::uint64_t* sv,
                  std::uint32_t count) {
      std::uint64_t tmp[64];
      std::size_t k = 0;
      for (std::uint32_t s = 0; s < count; ++s) {
        tmp[k] = sv[s];
        k += ok[s];
      }
      out.insert(out.end(), tmp, tmp + k);
    };
  }

  /// ok[s] = 1 iff slot s's rectangle contains p.  One branch-free pass
  /// per dimension over the contiguous lows/highs; the compiler turns
  /// each pass into packed compares.
  void sweep_point(node_id n, std::uint32_t count, const point_t& p,
                   std::uint8_t* ok) const {
    {
      const double* lo_d = lo(n, 0);
      const double* hi_d = hi(n, 0);
      const double v = p[0];
      for (std::uint32_t s = 0; s < count; ++s) {
        ok[s] = static_cast<std::uint8_t>(
            static_cast<unsigned>(v >= lo_d[s]) &
            static_cast<unsigned>(v <= hi_d[s]));
      }
    }
    for (std::size_t d = 1; d < D; ++d) {
      const double* lo_d = lo(n, d);
      const double* hi_d = hi(n, d);
      const double v = p[d];
      for (std::uint32_t s = 0; s < count; ++s) {
        ok[s] &= static_cast<std::uint8_t>(
            static_cast<unsigned>(v >= lo_d[s]) &
            static_cast<unsigned>(v <= hi_d[s]));
      }
    }
  }

  /// ok[s] = 1 iff slot s's rectangle intersects q, exactly matching
  /// geo::rect::intersects: the query side is pre-screened by the
  /// callers' is_empty() guard, and the slot side carries an explicit
  /// lo <= hi validity factor so a stored rect inverted in any one
  /// dimension (empty by convention) never reports a hit.
  void sweep_rect(node_id n, std::uint32_t count, const rect_t& q,
                  std::uint8_t* ok) const {
    {
      const double* lo_d = lo(n, 0);
      const double* hi_d = hi(n, 0);
      const double qlo = q.lo[0];
      const double qhi = q.hi[0];
      for (std::uint32_t s = 0; s < count; ++s) {
        ok[s] = static_cast<std::uint8_t>(
            static_cast<unsigned>(qhi >= lo_d[s]) &
            static_cast<unsigned>(qlo <= hi_d[s]) &
            static_cast<unsigned>(lo_d[s] <= hi_d[s]));
      }
    }
    for (std::size_t d = 1; d < D; ++d) {
      const double* lo_d = lo(n, d);
      const double* hi_d = hi(n, d);
      const double qlo = q.lo[d];
      const double qhi = q.hi[d];
      for (std::uint32_t s = 0; s < count; ++s) {
        ok[s] &= static_cast<std::uint8_t>(
            static_cast<unsigned>(qhi >= lo_d[s]) &
            static_cast<unsigned>(qlo <= hi_d[s]) &
            static_cast<unsigned>(lo_d[s] <= hi_d[s]));
      }
    }
  }

  // --------------------------------------------------------- mutation

  /// Bulk-load helper: STR can leave the last packed node of a run below
  /// min_fill; rebalance it with its predecessor (both end up >= m).
  void fix_min_fill(std::vector<node_id>& level) {
    if (level.size() < 2) return;  // a lone root is exempt
    const node_id last = level.back();
    const node_id prev = level[level.size() - 2];
    while (meta_[last].count < config_.min_fill &&
           meta_[prev].count > config_.min_fill) {
      const std::uint32_t s = meta_[prev].count - 1;
      push_slot(last, slot_mbr(prev, s), slots(prev)[s]);
      meta_[prev].count = s;
    }
    if (meta_[last].count < config_.min_fill) {
      // Predecessor cannot donate: merge the two nodes (stays <= M
      // because min_fill <= M/2).
      const std::uint32_t n = meta_[last].count;
      for (std::uint32_t s = 0; s < n; ++s) {
        push_slot(prev, slot_mbr(last, s), slots(last)[s]);
      }
      free_node(last);
      level.pop_back();
    }
  }

  /// Guttman ChooseLeaf / R* ChooseSubtree descent to `target_level`
  /// levels above the leaves (0 = leaf).
  node_id choose_node(const rect_t& r, std::size_t target_level,
                      std::vector<node_id>& path) {
    node_id current = root_;
    std::size_t level = height() - 1;  // levels above leaf of `current`
    path.clear();
    while (!meta_[current].leaf && level > target_level) {
      path.push_back(current);
      const std::uint32_t count = meta_[current].count;
      std::uint32_t best = 0;
      bool found = false;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::uint32_t s = 0; s < count; ++s) {
        const rect_t m = slot_mbr(current, s);
        const double grow = m.enlargement(r);
        const double area = m.area();
        if (grow < best_enlargement ||
            (grow == best_enlargement && area < best_area)) {
          best_enlargement = grow;
          best_area = area;
          best = s;
          found = true;
        }
      }
      DRT_ENSURE(found);
      current = child_of(current, best);
      --level;
    }
    return current;
  }

  void insert_entry(const rect_t& r, std::uint64_t value,
                    std::size_t target_level) {
    auto& path = acquire_path();
    const node_id target = choose_node(r, target_level, path);
    push_slot(target, r, value);
    handle_overflow(target, path, target_level);
    release_path();
  }

  void handle_overflow(node_id n, std::vector<node_id>& path,
                       std::size_t level) {
    if (meta_[n].count <= config_.max_fill) {
      adjust_path_mbrs(path);
      return;
    }
    // R* forced reinsertion: once per level per top-level insertion.
    if (config_.rstar_reinsert && level < reinserted_levels_.size() &&
        !reinserted_levels_[level] && n != root_) {
      reinserted_levels_[level] = true;
      reinsert_some(n, path, level);
      return;
    }
    split_node(n, path, level);
  }

  /// R* forced reinsert: remove the `reinsert_fraction` of entries whose
  /// centers are farthest from the node's MBR center and reinsert them.
  void reinsert_some(node_id n, std::vector<node_id>& path,
                     std::size_t level) {
    const auto center = node_mbr(n).center();
    struct ent {
      rect_t mbr;
      std::uint64_t val;
    };
    std::vector<ent> entries;  // cold path; reinsertion recurses anyway
    const std::uint32_t count_all = meta_[n].count;
    entries.reserve(count_all);
    for (std::uint32_t s = 0; s < count_all; ++s) {
      entries.push_back({slot_mbr(n, s), slots(n)[s]});
    }
    auto distance2 = [&](const ent& e) {
      const auto c = e.mbr.center();
      double d2 = 0.0;
      for (std::size_t i = 0; i < D; ++i) {
        const double d = c[i] - center[i];
        d2 += d * d;
      }
      return d2;
    };
    std::stable_sort(entries.begin(), entries.end(),
                     [&](const ent& a, const ent& b) {
                       return distance2(a) > distance2(b);
                     });
    auto count = static_cast<std::size_t>(
        config_.reinsert_fraction * static_cast<double>(entries.size()));
    count = std::max<std::size_t>(1, count);
    // The node keeps the remainder, in far-to-near order (the stable
    // sort's tail), exactly as the entry-vector formulation left it.
    meta_[n].count = 0;
    for (std::size_t i = count; i < entries.size(); ++i) {
      push_slot(n, entries[i].mbr, entries[i].val);
    }
    adjust_path_mbrs(path);
    reinsertions_ += count;
    // Far-first reinsertion order (the R* paper's "distant" variant).
    for (std::size_t i = 0; i < count; ++i) {
      insert_entry(entries[i].mbr, entries[i].val, level);
    }
  }

  void split_node(node_id n, std::vector<node_id>& path, std::size_t level) {
    ++splits_;
    const std::uint32_t count = meta_[n].count;
    // Pack entries for the policy; handles index back into the slots.
    std::vector<split_entry<D>> packed(count);
    std::array<std::pair<rect_t, std::uint64_t>, 64> ents;
    for (std::uint32_t s = 0; s < count; ++s) {
      ents[s] = {slot_mbr(n, s), slots(n)[s]};
      packed[s] = {ents[s].first, s};
    }
    auto outcome = split_entries<D>(std::move(packed), config_.min_fill,
                                    config_.method);

    meta_[n].count = 0;
    for (const auto& se : outcome.left) {
      const auto& e = ents[static_cast<std::size_t>(se.handle)];
      push_slot(n, e.first, e.second);
    }
    const node_id sibling = alloc_node(meta_[n].leaf != 0);
    for (const auto& se : outcome.right) {
      const auto& e = ents[static_cast<std::size_t>(se.handle)];
      push_slot(sibling, e.first, e.second);
    }

    if (n == root_) {
      // Grow the tree: new root with the two halves as children.
      const node_id new_root = alloc_node(/*leaf=*/false);
      push_slot(new_root, node_mbr(n), n);
      push_slot(new_root, node_mbr(sibling), sibling);
      root_ = new_root;
      reinserted_levels_.assign(height(), false);
      return;
    }

    const node_id parent = path.back();
    path.pop_back();
    // Refresh the parent's entry for n and add the sibling.
    const std::uint32_t pcount = meta_[parent].count;
    for (std::uint32_t s = 0; s < pcount; ++s) {
      if (child_of(parent, s) == n) {
        set_slot_mbr(parent, s, node_mbr(n));
        break;
      }
    }
    push_slot(parent, node_mbr(sibling), sibling);
    handle_overflow(parent, path, level + 1);
  }

  void adjust_path_mbrs(std::vector<node_id>& path) {
    // Recompute MBRs bottom-up along the insertion path.
    for (std::size_t i = path.size(); i > 0; --i) {
      const node_id n = path[i - 1];
      const std::uint32_t count = meta_[n].count;
      for (std::uint32_t s = 0; s < count; ++s) {
        set_slot_mbr(n, s, node_mbr(child_of(n, s)));
      }
    }
  }

  void find_leaf(node_id n, const rect_t& r, std::uint64_t payload,
                 std::vector<node_id>& path, node_id& found) const {
    const std::uint32_t count = meta_[n].count;
    if (meta_[n].leaf) {
      for (std::uint32_t s = 0; s < count; ++s) {
        if (slots(n)[s] == payload && slot_mbr(n, s) == r) {
          found = n;
          return;
        }
      }
      return;
    }
    path.push_back(n);
    for (std::uint32_t s = 0; s < count; ++s) {
      if (slot_mbr(n, s).contains(r)) {
        find_leaf(child_of(n, s), r, payload, path, found);
        if (found != knil) return;
      }
    }
    path.pop_back();
  }

  void condense(std::vector<node_id>& path) {
    // Walk the recorded root->leaf path bottom-up; dissolve underfull
    // children and queue the *leaf* entries of their subtrees for
    // reinsertion.  (Guttman reinserts whole subtrees at matching levels;
    // reinserting leaf entries is the standard simplification — it only
    // costs extra reinsertion work, never correctness, and sidesteps
    // level bookkeeping while the tree height is in flux.)
    std::vector<std::pair<rect_t, std::uint64_t>> orphans;
    for (std::size_t i = path.size(); i > 0; --i) {
      const node_id n = path[i - 1];
      for (std::uint32_t c = 0; c < meta_[n].count;) {
        const node_id child = child_of(n, c);
        if (meta_[child].count < config_.min_fill) {
          collect_leaf_entries(child, orphans);
          remove_slot(n, c);
        } else {
          set_slot_mbr(n, c, node_mbr(child));
          ++c;
        }
      }
    }
    // If every child of the root dissolved, restart from an empty leaf.
    if (!meta_[root_].leaf && meta_[root_].count == 0) {
      free_node(root_);
      root_ = alloc_node(/*leaf=*/true);
    }
    reinserted_levels_.assign(height(), false);
    for (const auto& [r, payload] : orphans) insert_entry(r, payload, 0);
  }

  /// Collects the leaf entries of the subtree at n and returns its nodes
  /// to the free list.
  void collect_leaf_entries(
      node_id n, std::vector<std::pair<rect_t, std::uint64_t>>& out) {
    const std::uint32_t count = meta_[n].count;
    if (meta_[n].leaf) {
      for (std::uint32_t s = 0; s < count; ++s) {
        out.emplace_back(slot_mbr(n, s), slots(n)[s]);
      }
    } else {
      for (std::uint32_t s = 0; s < count; ++s) {
        collect_leaf_entries(child_of(n, s), out);
      }
    }
    free_node(n);
  }

  void nearest_rec(node_id n, const point_t& p, std::uint64_t& best_payload,
                   double& best_d2) const {
    // Visit entries in MINDIST order; prune subtrees that cannot beat
    // the best so far.  The node fan-out is < 64, so the order buffer
    // lives on the stack.
    std::array<std::pair<double, std::uint32_t>, 64> order;
    const std::uint32_t count = meta_[n].count;
    for (std::uint32_t s = 0; s < count; ++s) {
      order[s] = {slot_mbr(n, s).min_dist2(p), s};
    }
    std::sort(order.begin(), order.begin() + count,
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto [d2, s] = order[i];
      if (d2 >= best_d2) break;  // sorted: the rest cannot win either
      if (meta_[n].leaf) {
        best_d2 = d2;
        best_payload = slots(n)[s];
      } else {
        nearest_rec(child_of(n, s), p, best_payload, best_d2);
      }
    }
  }

  void collect_stats(node_id n, rtree_stats& s) const {
    ++s.nodes;
    if (meta_[n].leaf) {
      ++s.leaves;
      return;
    }
    s.interior_area += node_mbr(n).area();
    const std::uint32_t count = meta_[n].count;
    for (std::uint32_t i = 0; i < count; ++i) {
      for (std::uint32_t j = i + 1; j < count; ++j) {
        s.interior_overlap += slot_mbr(n, i).overlap_area(slot_mbr(n, j));
      }
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      collect_stats(child_of(n, i), s);
    }
  }

  std::size_t check_node(node_id n, bool is_root,
                         std::size_t levels_left) const {
    const std::uint32_t count = meta_[n].count;
    if (is_root) {
      if (!meta_[n].leaf) DRT_ENSURE(count >= 2);
    } else {
      DRT_ENSURE(count >= config_.min_fill);
    }
    DRT_ENSURE(count <= config_.max_fill);
    if (meta_[n].leaf) {
      DRT_ENSURE(levels_left == 1);  // all leaves at the same depth
      return 1;
    }
    std::size_t reachable = 1;
    for (std::uint32_t s = 0; s < count; ++s) {
      const node_id child = child_of(n, s);
      DRT_ENSURE(child < meta_.size());
      DRT_ENSURE(slot_mbr(n, s) == node_mbr(child));  // MBR exactness
      reachable += check_node(child, false, levels_left - 1);
    }
    return reachable;
  }
};

using rtree2 = rtree<2>;

}  // namespace drt::rtree

#endif  // DRT_RTREE_RTREE_H
