// Sequential R-tree (Guttman [18]) with pluggable split policy and the R*
// forced-reinsertion improvement [5].
//
// Role in this repo: (1) the reference index of §2.2/Figs. 2-3; (2) the
// split-policy ablation substrate (E13) — the DR-tree overlay reuses the
// identical split code; (3) the ground-truth matcher used to validate
// overlay dissemination (an R-tree point query returns exactly the
// subscriptions an event must reach: no false negatives, no false
// positives).
#ifndef DRT_RTREE_RTREE_H
#define DRT_RTREE_RTREE_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/split.h"
#include "util/expect.h"

namespace drt::rtree {

struct rtree_config {
  std::size_t min_fill = 2;   ///< m: minimum entries per node (except root)
  std::size_t max_fill = 8;   ///< M: maximum entries per node; M >= 2m
  split_method method = split_method::quadratic;
  bool rstar_reinsert = false;  ///< R* forced reinsertion on first overflow
  double reinsert_fraction = 0.3;  ///< R* default: reinsert 30% of entries
};

/// Aggregate structure statistics (split-policy ablation, E13).
struct rtree_stats {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  std::size_t height = 0;           ///< 1 = root is a leaf
  double interior_area = 0.0;       ///< sum of interior-node MBR areas
  double interior_overlap = 0.0;    ///< pairwise sibling MBR overlap area
  std::size_t splits = 0;           ///< cumulative since construction
  std::size_t reinsertions = 0;     ///< cumulative since construction
};

template <std::size_t D>
class rtree {
 public:
  using rect_t = geo::rect<D>;
  using point_t = geo::point<D>;

  explicit rtree(rtree_config config = {}) : config_(config) {
    DRT_EXPECT(config_.min_fill >= 1);
    DRT_EXPECT(config_.max_fill >= 2 * config_.min_fill);
    root_ = std::make_unique<node>(/*leaf=*/true);
  }

  /// Sort-Tile-Recursive bulk loading: packs the items into a tree with
  /// near-100% node utilization in O(N log N), far better coverage than
  /// repeated insertion.  Items are (rectangle, payload) pairs.
  static rtree bulk_load(std::vector<std::pair<rect_t, std::uint64_t>> items,
                         rtree_config config = {}) {
    rtree t(config);
    if (items.empty()) return t;
    t.size_ = items.size();

    // Leaf level: sort by x-center, slice, sort each slice by y-center,
    // pack runs of max_fill.
    std::vector<std::unique_ptr<node>> level;
    {
      std::sort(items.begin(), items.end(),
                [](const auto& a, const auto& b) {
                  return a.first.center()[0] < b.first.center()[0];
                });
      const auto cap = config.max_fill;
      const std::size_t pages =
          (items.size() + cap - 1) / cap;
      const auto slices = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(pages))));
      const std::size_t per_slice =
          (items.size() + slices - 1) / slices;
      for (std::size_t s = 0; s < slices; ++s) {
        const auto begin = std::min(s * per_slice, items.size());
        const auto end = std::min(begin + per_slice, items.size());
        if (begin >= end) break;
        std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin),
                  items.begin() + static_cast<std::ptrdiff_t>(end),
                  [](const auto& a, const auto& b) {
                    return a.first.center()[1] < b.first.center()[1];
                  });
        for (std::size_t i = begin; i < end; i += cap) {
          auto leaf = std::make_unique<node>(/*leaf=*/true);
          for (std::size_t j = i; j < std::min(i + cap, end); ++j) {
            entry e;
            e.mbr = items[j].first;
            e.payload = items[j].second;
            leaf->entries.push_back(std::move(e));
          }
          level.push_back(std::move(leaf));
        }
      }
      fix_min_fill(level, config.min_fill);
    }

    // Interior levels: pack node MBRs the same way until one remains.
    while (level.size() > 1) {
      std::sort(level.begin(), level.end(),
                [](const auto& a, const auto& b) {
                  return mbr_of(*a).center()[0] < mbr_of(*b).center()[0];
                });
      const auto cap = config.max_fill;
      const std::size_t pages = (level.size() + cap - 1) / cap;
      const auto slices = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(pages))));
      const std::size_t per_slice = (level.size() + slices - 1) / slices;
      std::vector<std::unique_ptr<node>> next;
      for (std::size_t s = 0; s < slices; ++s) {
        const auto begin = std::min(s * per_slice, level.size());
        const auto end = std::min(begin + per_slice, level.size());
        if (begin >= end) break;
        std::sort(level.begin() + static_cast<std::ptrdiff_t>(begin),
                  level.begin() + static_cast<std::ptrdiff_t>(end),
                  [](const auto& a, const auto& b) {
                    return mbr_of(*a).center()[1] < mbr_of(*b).center()[1];
                  });
        for (std::size_t i = begin; i < end; i += cap) {
          auto parent = std::make_unique<node>(/*leaf=*/false);
          for (std::size_t j = i; j < std::min(i + cap, end); ++j) {
            entry e;
            e.mbr = mbr_of(*level[j]);
            e.child = std::move(level[j]);
            parent->entries.push_back(std::move(e));
          }
          next.push_back(std::move(parent));
        }
      }
      fix_min_fill(next, config.min_fill);
      level = std::move(next);
    }
    t.root_ = std::move(level.front());
    t.reinserted_levels_.assign(t.height(), false);
    return t;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const rtree_config& config() const { return config_; }

  /// Height in levels; 1 when the root is a leaf, 0 never.
  std::size_t height() const { return height_of(*root_); }

  rect_t bounding_box() const { return mbr_of(*root_); }

  void insert(const rect_t& r, std::uint64_t payload) {
    reinserted_levels_.assign(height(), false);
    insert_entry(entry{r, nullptr, payload}, /*target_level=*/0);
    ++size_;
  }

  /// Remove one entry equal to (r, payload); returns false if absent.
  /// Follows Guttman's CondenseTree: underfull nodes are dissolved and
  /// their entries reinserted at their original level.
  bool erase(const rect_t& r, std::uint64_t payload) {
    node* leaf = nullptr;
    std::vector<node*> path;
    find_leaf(*root_, r, payload, path, leaf);
    if (leaf == nullptr) return false;
    for (std::size_t i = 0; i < leaf->entries.size(); ++i) {
      if (leaf->entries[i].payload == payload && leaf->entries[i].mbr == r) {
        leaf->entries.erase(leaf->entries.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    condense(path);
    --size_;
    // Shrink the root if it has a single child and is not a leaf.
    while (!root_->leaf && root_->entries.size() == 1) {
      auto child = std::move(root_->entries[0].child);
      root_ = std::move(child);
    }
    return true;
  }

  /// All payloads whose stored rectangle contains `p` (pub/sub matching:
  /// the subscriptions an event must be delivered to).
  std::vector<std::uint64_t> search_point(const point_t& p) const {
    std::vector<std::uint64_t> out;
    search_point_rec(*root_, p, out);
    return out;
  }

  /// All payloads whose stored rectangle intersects `query`.
  std::vector<std::uint64_t> search_intersects(const rect_t& query) const {
    std::vector<std::uint64_t> out;
    search_intersects_rec(*root_, query, out);
    return out;
  }

  /// Branch-and-bound nearest-neighbor: the stored entry whose rectangle
  /// is closest to `p` (MINDIST metric; 0 when `p` is inside).  Returns
  /// (payload, squared distance); empty tree -> nullopt.
  std::optional<std::pair<std::uint64_t, double>> nearest(
      const point_t& p) const {
    if (empty()) return std::nullopt;
    std::uint64_t best_payload = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    nearest_rec(*root_, p, best_payload, best_d2);
    return std::make_pair(best_payload, best_d2);
  }

  /// Nodes visited by the last search (routing-cost metric).
  mutable std::size_t last_nodes_visited = 0;

  rtree_stats stats() const {
    rtree_stats s;
    s.height = height();
    s.splits = splits_;
    s.reinsertions = reinsertions_;
    collect_stats(*root_, s);
    return s;
  }

  /// Validate the R-tree invariants of §2.2; aborts on violation.  Used by
  /// tests after randomized insert/erase workloads.
  void check_invariants() const {
    check_node(*root_, /*is_root=*/true, height());
  }

 private:
  struct node;

  struct entry {
    rect_t mbr = rect_t::empty();
    std::unique_ptr<node> child;  // interior entries
    std::uint64_t payload = 0;    // leaf entries
  };

  struct node {
    explicit node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<entry> entries;
  };

  rtree_config config_;
  std::unique_ptr<node> root_;
  std::size_t size_ = 0;
  std::size_t splits_ = 0;
  std::size_t reinsertions_ = 0;
  std::vector<bool> reinserted_levels_;  // R*: one forced reinsert per level

  static rect_t mbr_of(const node& n) {
    auto r = rect_t::empty();
    for (const auto& e : n.entries) r = join(r, e.mbr);
    return r;
  }

  /// Bulk-load helper: STR can leave the last packed node of a run below
  /// min_fill; rebalance it with its predecessor (both end up >= m).
  static void fix_min_fill(std::vector<std::unique_ptr<node>>& level,
                           std::size_t min_fill) {
    if (level.size() < 2) return;  // a lone root is exempt
    auto& last = *level.back();
    auto& prev = *level[level.size() - 2];
    while (last.entries.size() < min_fill &&
           prev.entries.size() > min_fill) {
      last.entries.push_back(std::move(prev.entries.back()));
      prev.entries.pop_back();
    }
    if (last.entries.size() < min_fill) {
      // Predecessor cannot donate: merge the two nodes (stays <= M
      // because min_fill <= M/2).
      for (auto& e : last.entries) prev.entries.push_back(std::move(e));
      level.pop_back();
    }
  }

  std::size_t height_of(const node& n) const {
    if (n.leaf) return 1;
    DRT_ENSURE(!n.entries.empty());
    return 1 + height_of(*n.entries.front().child);
  }

  /// Guttman ChooseLeaf / R* ChooseSubtree descent to `target_level`
  /// levels above the leaves (0 = leaf).
  node* choose_node(const rect_t& r, std::size_t target_level,
                    std::vector<node*>& path) {
    node* current = root_.get();
    std::size_t level = height() - 1;  // levels above leaf of `current`
    path.clear();
    while (!current->leaf && level > target_level) {
      path.push_back(current);
      entry* best = nullptr;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (auto& e : current->entries) {
        const double grow = e.mbr.enlargement(r);
        const double area = e.mbr.area();
        if (grow < best_enlargement ||
            (grow == best_enlargement && area < best_area)) {
          best_enlargement = grow;
          best_area = area;
          best = &e;
        }
      }
      DRT_ENSURE(best != nullptr);
      current = best->child.get();
      --level;
    }
    return current;
  }

  void insert_entry(entry e, std::size_t target_level) {
    std::vector<node*> path;
    node* target = choose_node(e.mbr, target_level, path);
    target->entries.push_back(std::move(e));
    handle_overflow(target, path, target_level);
  }

  void handle_overflow(node* n, std::vector<node*>& path,
                       std::size_t level) {
    if (n->entries.size() <= config_.max_fill) {
      adjust_path_mbrs(path);
      return;
    }
    // R* forced reinsertion: once per level per top-level insertion.
    if (config_.rstar_reinsert && level < reinserted_levels_.size() &&
        !reinserted_levels_[level] && n != root_.get()) {
      reinserted_levels_[level] = true;
      reinsert_some(n, path, level);
      return;
    }
    split_node(n, path, level);
  }

  /// R* forced reinsert: remove the `reinsert_fraction` of entries whose
  /// centers are farthest from the node's MBR center and reinsert them.
  void reinsert_some(node* n, std::vector<node*>& path, std::size_t level) {
    const auto center = mbr_of(*n).center();
    auto distance2 = [&](const entry& e) {
      const auto c = e.mbr.center();
      double d2 = 0.0;
      for (std::size_t i = 0; i < D; ++i) {
        const double d = c[i] - center[i];
        d2 += d * d;
      }
      return d2;
    };
    std::stable_sort(n->entries.begin(), n->entries.end(),
                     [&](const entry& a, const entry& b) {
                       return distance2(a) > distance2(b);
                     });
    auto count = static_cast<std::size_t>(
        config_.reinsert_fraction * static_cast<double>(n->entries.size()));
    count = std::max<std::size_t>(1, count);
    std::vector<entry> removed;
    removed.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      removed.push_back(std::move(n->entries[i]));
    }
    n->entries.erase(n->entries.begin(),
                     n->entries.begin() + static_cast<std::ptrdiff_t>(count));
    adjust_path_mbrs(path);
    reinsertions_ += removed.size();
    // Far-first reinsertion order (the R* paper's "distant" variant).
    for (auto& e : removed) insert_entry(std::move(e), level);
  }

  void split_node(node* n, std::vector<node*>& path, std::size_t level) {
    ++splits_;
    // Pack entries for the policy; handles index back into `n->entries`.
    std::vector<split_entry<D>> packed(n->entries.size());
    for (std::size_t i = 0; i < n->entries.size(); ++i) {
      packed[i] = {n->entries[i].mbr, i};
    }
    auto outcome = split_entries<D>(std::move(packed), config_.min_fill,
                                    config_.method);

    auto take = [&](const std::vector<split_entry<D>>& group) {
      std::vector<entry> out;
      out.reserve(group.size());
      for (const auto& se : group) {
        out.push_back(std::move(n->entries[se.handle]));
      }
      return out;
    };
    auto left_entries = take(outcome.left);
    auto right_entries = take(outcome.right);

    auto sibling = std::make_unique<node>(n->leaf);
    sibling->entries = std::move(right_entries);
    n->entries = std::move(left_entries);

    if (n == root_.get()) {
      // Grow the tree: new root with the two halves as children.
      auto new_root = std::make_unique<node>(/*leaf=*/false);
      entry left_e;
      left_e.mbr = mbr_of(*root_);
      left_e.child = std::move(root_);
      entry right_e;
      right_e.mbr = mbr_of(*sibling);
      right_e.child = std::move(sibling);
      new_root->entries.push_back(std::move(left_e));
      new_root->entries.push_back(std::move(right_e));
      root_ = std::move(new_root);
      reinserted_levels_.assign(height(), false);
      return;
    }

    node* parent = path.back();
    path.pop_back();
    // Refresh the parent's entry for n and add the sibling.
    for (auto& e : parent->entries) {
      if (e.child.get() == n) {
        e.mbr = mbr_of(*n);
        break;
      }
    }
    entry sibling_e;
    sibling_e.mbr = mbr_of(*sibling);
    sibling_e.child = std::move(sibling);
    parent->entries.push_back(std::move(sibling_e));
    handle_overflow(parent, path, level + 1);
  }

  void adjust_path_mbrs(std::vector<node*>& path) {
    // Recompute MBRs bottom-up along the insertion path.
    for (std::size_t i = path.size(); i > 0; --i) {
      node* n = path[i - 1];
      for (auto& e : n->entries) {
        if (e.child) e.mbr = mbr_of(*e.child);
      }
    }
  }

  void find_leaf(node& n, const rect_t& r, std::uint64_t payload,
                 std::vector<node*>& path, node*& found) {
    if (n.leaf) {
      for (const auto& e : n.entries) {
        if (e.payload == payload && e.mbr == r) {
          found = &n;
          return;
        }
      }
      return;
    }
    path.push_back(&n);
    for (auto& e : n.entries) {
      if (e.mbr.contains(r)) {
        find_leaf(*e.child, r, payload, path, found);
        if (found != nullptr) return;
      }
    }
    path.pop_back();
  }

  void condense(std::vector<node*>& path) {
    // Walk the recorded root->leaf path bottom-up; dissolve underfull
    // children and queue the *leaf* entries of their subtrees for
    // reinsertion.  (Guttman reinserts whole subtrees at matching levels;
    // reinserting leaf entries is the standard simplification — it only
    // costs extra reinsertion work, never correctness, and sidesteps
    // level bookkeeping while the tree height is in flux.)
    std::vector<entry> orphans;
    for (std::size_t i = path.size(); i > 0; --i) {
      node* n = path[i - 1];
      for (std::size_t c = 0; c < n->entries.size();) {
        node* child = n->entries[c].child.get();
        if (child != nullptr && child->entries.size() < config_.min_fill) {
          collect_leaf_entries(std::move(n->entries[c].child), orphans);
          n->entries.erase(n->entries.begin() +
                           static_cast<std::ptrdiff_t>(c));
        } else {
          if (child != nullptr) n->entries[c].mbr = mbr_of(*child);
          ++c;
        }
      }
    }
    // If every child of the root dissolved, restart from an empty leaf.
    if (!root_->leaf && root_->entries.empty()) {
      root_ = std::make_unique<node>(/*leaf=*/true);
    }
    reinserted_levels_.assign(height(), false);
    for (auto& orphan : orphans) insert_entry(std::move(orphan), 0);
  }

  void collect_leaf_entries(std::unique_ptr<node> n,
                            std::vector<entry>& out) {
    if (n->leaf) {
      for (auto& e : n->entries) out.push_back(std::move(e));
      return;
    }
    for (auto& e : n->entries) collect_leaf_entries(std::move(e.child), out);
  }

  void search_point_rec(const node& n, const point_t& p,
                        std::vector<std::uint64_t>& out) const {
    ++last_nodes_visited;
    for (const auto& e : n.entries) {
      if (!e.mbr.contains(p)) continue;
      if (n.leaf) {
        out.push_back(e.payload);
      } else {
        search_point_rec(*e.child, p, out);
      }
    }
  }

  void nearest_rec(const node& n, const point_t& p,
                   std::uint64_t& best_payload, double& best_d2) const {
    // Visit entries in MINDIST order; prune subtrees that cannot beat
    // the best so far.
    std::vector<std::pair<double, const entry*>> order;
    order.reserve(n.entries.size());
    for (const auto& e : n.entries) {
      order.emplace_back(e.mbr.min_dist2(p), &e);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [d2, e] : order) {
      if (d2 >= best_d2) break;  // sorted: the rest cannot win either
      if (n.leaf) {
        best_d2 = d2;
        best_payload = e->payload;
      } else {
        nearest_rec(*e->child, p, best_payload, best_d2);
      }
    }
  }

  void search_intersects_rec(const node& n, const rect_t& query,
                             std::vector<std::uint64_t>& out) const {
    ++last_nodes_visited;
    for (const auto& e : n.entries) {
      if (!e.mbr.intersects(query)) continue;
      if (n.leaf) {
        out.push_back(e.payload);
      } else {
        search_intersects_rec(*e.child, query, out);
      }
    }
  }

  void collect_stats(const node& n, rtree_stats& s) const {
    ++s.nodes;
    if (n.leaf) {
      ++s.leaves;
      return;
    }
    s.interior_area += mbr_of(n).area();
    for (std::size_t i = 0; i < n.entries.size(); ++i) {
      for (std::size_t j = i + 1; j < n.entries.size(); ++j) {
        s.interior_overlap +=
            n.entries[i].mbr.overlap_area(n.entries[j].mbr);
      }
    }
    for (const auto& e : n.entries) collect_stats(*e.child, s);
  }

  void check_node(const node& n, bool is_root, std::size_t levels_left) const {
    if (is_root) {
      if (!n.leaf) DRT_ENSURE(n.entries.size() >= 2);
    } else {
      DRT_ENSURE(n.entries.size() >= config_.min_fill);
    }
    DRT_ENSURE(n.entries.size() <= config_.max_fill);
    if (n.leaf) {
      DRT_ENSURE(levels_left == 1);  // all leaves at the same depth
      return;
    }
    for (const auto& e : n.entries) {
      DRT_ENSURE(e.child != nullptr);
      DRT_ENSURE(e.mbr == mbr_of(*e.child));  // MBR exactness
      check_node(*e.child, false, levels_left - 1);
    }
  }
};

using rtree2 = rtree<2>;

}  // namespace drt::rtree

#endif  // DRT_RTREE_RTREE_H
