// Named-attribute front end: builds rectangle filters from predicates of
// the form (name op value), e.g. (price < 100) AND (qty >= 4), exactly the
// filter language of Section 2.1.  Attributes a filter leaves undefined
// stay unbounded in the corresponding dimension.
#ifndef DRT_SPATIAL_SCHEMA_H
#define DRT_SPATIAL_SCHEMA_H

#include <string>
#include <vector>

#include "spatial/types.h"

namespace drt::spatial {

enum class op { eq, lt, gt, le, ge };

/// One predicate of a conjunctive filter: (attribute op value).
struct predicate {
  std::string attribute;
  op relation = op::eq;
  double value = 0.0;
};

/// Maps attribute names to dimensions; compiles predicate conjunctions
/// into rectangles and events into points.
class schema {
 public:
  /// Requires exactly kDims attribute names, all distinct.
  explicit schema(std::vector<std::string> attribute_names);

  std::size_t dims() const { return names_.size(); }
  const std::string& name(std::size_t dim) const { return names_.at(dim); }

  /// Index of a named attribute; throws std::invalid_argument if unknown.
  std::size_t dimension(const std::string& attribute) const;

  /// Compile a conjunction of predicates into its rectangle.  Strict
  /// comparisons are tightened by `strict_epsilon` so that the rectangle
  /// model (closed intervals) conservatively matches the predicate
  /// semantics.  Contradictory conjunctions yield an empty rectangle.
  box compile(const std::vector<predicate>& conjunction,
              double strict_epsilon = 1e-9) const;

  /// Build an event point from (name, value) pairs; every attribute must
  /// be assigned exactly once.
  pt make_event(const std::vector<std::pair<std::string, double>>& values) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace drt::spatial

#endif  // DRT_SPATIAL_SCHEMA_H
