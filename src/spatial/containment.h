// Subscription containment graph (Fig. 1, right): the Hasse diagram of the
// partial order defined by filter enclosure.  Used by the quickstart
// example, the containment-tree baseline [11], and the containment-
// awareness property checks (Properties 3.1/3.2).
#ifndef DRT_SPATIAL_CONTAINMENT_H
#define DRT_SPATIAL_CONTAINMENT_H

#include <cstddef>
#include <string>
#include <vector>

#include "spatial/types.h"

namespace drt::spatial {

/// Hasse diagram of subscription containment.  Node i corresponds to
/// subscriptions[i] of the input; edges point from container to the
/// *immediately* contained subscriptions (transitive reduction).
class containment_graph {
 public:
  explicit containment_graph(const std::vector<subscription>& subscriptions);

  std::size_t size() const { return subs_.size(); }
  const subscription& sub(std::size_t i) const { return subs_.at(i); }

  /// Direct containees of node i (Hasse successors).
  const std::vector<std::size_t>& children(std::size_t i) const {
    return children_.at(i);
  }
  /// Direct containers of node i (Hasse predecessors).
  const std::vector<std::size_t>& parents(std::size_t i) const {
    return parents_.at(i);
  }
  /// Nodes not contained in any other subscription.
  const std::vector<std::size_t>& roots() const { return roots_; }

  /// Full (transitive) relation: does sub(i) contain sub(j)?  (i != j;
  /// equal filters are mutually containing and both reported.)
  bool contains(std::size_t i, std::size_t j) const;

  /// Multi-line "A -> B, C" rendering for examples/logs.
  std::string to_string(const std::vector<std::string>& labels = {}) const;

 private:
  std::vector<subscription> subs_;
  std::vector<std::vector<bool>> full_;  // full_[i][j]: i strictly above j
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::vector<std::size_t>> parents_;
  std::vector<std::size_t> roots_;
};

}  // namespace drt::spatial

#endif  // DRT_SPATIAL_CONTAINMENT_H
