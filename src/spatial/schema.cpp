#include "spatial/schema.h"

#include <algorithm>
#include <stdexcept>

namespace drt::spatial {

schema::schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {
  if (names_.size() != kDims) {
    throw std::invalid_argument("schema requires exactly kDims attributes");
  }
  auto sorted = names_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("schema attribute names must be distinct");
  }
}

std::size_t schema::dimension(const std::string& attribute) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == attribute) return i;
  }
  throw std::invalid_argument("unknown attribute: " + attribute);
}

box schema::compile(const std::vector<predicate>& conjunction,
                    double strict_epsilon) const {
  box r = box::universe();
  for (const auto& p : conjunction) {
    const std::size_t d = dimension(p.attribute);
    switch (p.relation) {
      case op::eq:
        r.lo[d] = std::max(r.lo[d], p.value);
        r.hi[d] = std::min(r.hi[d], p.value);
        break;
      case op::lt:
        r.hi[d] = std::min(r.hi[d], p.value - strict_epsilon);
        break;
      case op::le:
        r.hi[d] = std::min(r.hi[d], p.value);
        break;
      case op::gt:
        r.lo[d] = std::max(r.lo[d], p.value + strict_epsilon);
        break;
      case op::ge:
        r.lo[d] = std::max(r.lo[d], p.value);
        break;
    }
  }
  return r;
}

pt schema::make_event(
    const std::vector<std::pair<std::string, double>>& values) const {
  if (values.size() != names_.size()) {
    throw std::invalid_argument("event must assign every attribute");
  }
  pt p{};
  std::vector<bool> seen(names_.size(), false);
  for (const auto& [name, value] : values) {
    const std::size_t d = dimension(name);
    if (seen[d]) {
      throw std::invalid_argument("attribute assigned twice: " + name);
    }
    seen[d] = true;
    p[d] = value;
  }
  return p;
}

}  // namespace drt::spatial
