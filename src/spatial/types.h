// Core publish/subscribe value types (Section 2.1).
//
// A *subscription* (content-based filter) is a conjunction of range
// predicates over attributes; geometrically a poly-space rectangle.  An
// *event* assigns a value to every attribute; geometrically a point.  The
// protocol layers are instantiated for kDims dimensions (the paper uses 2
// for exposition; the geometry and R-tree layers are fully generic).
#ifndef DRT_SPATIAL_TYPES_H
#define DRT_SPATIAL_TYPES_H

#include <cstdint>
#include <string>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace drt::spatial {

inline constexpr std::size_t kDims = 2;

using box = geo::rect<kDims>;
using pt = geo::point<kDims>;

/// Identifies a peer/subscriber.  Peers own their subscriptions, so a
/// subscription is identified by the peer that registered it.
using peer_id = std::uint32_t;
inline constexpr peer_id kNoPeer = static_cast<peer_id>(-1);

/// A registered content-based filter.
struct subscription {
  peer_id owner = kNoPeer;
  box filter = box::empty();

  /// Subscription containment (Section 2.1): s1 "contains" s2 iff every
  /// event matching s2 also matches s1, i.e. rectangle enclosure.
  bool contains(const subscription& other) const {
    return filter.contains(other.filter);
  }
};

/// A published event: a point plus bookkeeping identity.
struct event {
  std::uint64_t id = 0;
  peer_id publisher = kNoPeer;
  pt value{};

  bool matches(const subscription& s) const {
    return s.filter.contains(value);
  }
};

}  // namespace drt::spatial

#endif  // DRT_SPATIAL_TYPES_H
