#include "spatial/containment.h"

#include <sstream>

namespace drt::spatial {

containment_graph::containment_graph(
    const std::vector<subscription>& subscriptions)
    : subs_(subscriptions) {
  const std::size_t n = subs_.size();
  full_.assign(n, std::vector<bool>(n, false));
  children_.assign(n, {});
  parents_.assign(n, {});

  // Full strict-containment relation.  Ties (identical filters) are broken
  // by index so the relation stays antisymmetric and the Hasse diagram a
  // DAG.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool ij = subs_[i].contains(subs_[j]);
      const bool ji = subs_[j].contains(subs_[i]);
      if (ij && ji) {
        full_[i][j] = i < j;
      } else {
        full_[i][j] = ij;
      }
    }
  }

  // Transitive reduction: i -> j is a Hasse edge iff no k lies strictly
  // between them.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!full_[i][j]) continue;
      bool direct = true;
      for (std::size_t k = 0; k < n && direct; ++k) {
        if (k == i || k == j) continue;
        if (full_[i][k] && full_[k][j]) direct = false;
      }
      if (direct) {
        children_[i].push_back(j);
        parents_[j].push_back(i);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (parents_[i].empty()) roots_.push_back(i);
  }
}

bool containment_graph::contains(std::size_t i, std::size_t j) const {
  return full_.at(i).at(j);
}

std::string containment_graph::to_string(
    const std::vector<std::string>& labels) const {
  // Built via append (not `"S" + std::to_string(...)`) to sidestep the
  // GCC 12 -Wrestrict false positive on string concatenation (PR105651).
  auto label = [&](std::size_t i) {
    if (i < labels.size()) return labels[i];
    std::string s = "S";
    s += std::to_string(i + 1);
    return s;
  };
  std::ostringstream out;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    out << label(i);
    if (children_[i].empty()) {
      out << " -> (none)";
    } else {
      out << " -> ";
      for (std::size_t c = 0; c < children_[i].size(); ++c) {
        if (c) out << ", ";
        out << label(children_[i][c]);
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace drt::spatial
