#include "spatial/sample.h"

namespace drt::spatial {

std::vector<subscription> sample_subscriptions() {
  using geo::make_rect2;
  return {
      {1, make_rect2(45, 45, 68, 92)},  // S1: inside S5
      {2, make_rect2(8, 45, 40, 90)},   // S2: inside S5, overlaps S3
      {3, make_rect2(20, 15, 60, 75)},  // S3: inside S6 only, overlaps S2
      {4, make_rect2(25, 50, 38, 70)},  // S4: inside both S2 and S3
      {5, make_rect2(5, 40, 70, 95)},   // S5: inside S6
      {6, make_rect2(2, 2, 98, 98)},    // S6: top container
      {7, make_rect2(60, 5, 95, 55)},   // S7: inside S6
      {8, make_rect2(65, 10, 90, 50)},  // S8: inside S7
  };
}

std::vector<std::string> sample_labels() {
  return {"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"};
}

std::vector<event> sample_events() {
  return {
      {0, kNoPeer, {30.0, 60.0}},  // a: in S4 (and S2, S3, S5, S6)
      {1, kNoPeer, {75.0, 30.0}},  // b: in S8 (and S7, S6)
      {2, kNoPeer, {50.0, 20.0}},  // c: in S3, S6
      {3, kNoPeer, {3.0, 96.0}},   // d: in S6 only
  };
}

box sample_workspace() { return geo::make_rect2(0, 0, 100, 100); }

}  // namespace drt::spatial
