// A reconstruction of the paper's running example (Fig. 1): eight
// two-attribute subscriptions S1..S8 and four events a..d.
//
// The published figure gives no coordinates, so the rectangles below are
// chosen to reproduce the *relations the text states*: S4 is contained in
// both S2 and S3; S2 and S3 intersect without containment; event `a`
// matches S4 (hence also S2 and S3, so its dissemination from S2 causes
// no false positive, as in the paper's walkthrough of Fig. 4).
#ifndef DRT_SPATIAL_SAMPLE_H
#define DRT_SPATIAL_SAMPLE_H

#include <string>
#include <vector>

#include "spatial/types.h"

namespace drt::spatial {

/// S1..S8 with owner ids 1..8 in a [0,100]^2 workspace.
std::vector<subscription> sample_subscriptions();

/// Labels "S1".."S8" aligned with sample_subscriptions().
std::vector<std::string> sample_labels();

/// Events a..d (publisher unset; callers assign).
std::vector<event> sample_events();

/// The [0,100]^2 workspace the samples live in.
box sample_workspace();

}  // namespace drt::spatial

#endif  // DRT_SPATIAL_SAMPLE_H
