// Shared experiment drivers: building overlays from workloads, running
// them to a legitimate configuration, and sweeping publications for
// accuracy accounting.  Used by the test suite and by every bench binary
// so that experiments measure identical code paths.
#ifndef DRT_ANALYSIS_HARNESS_H
#define DRT_ANALYSIS_HARNESS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "drtree/overlay.h"
#include "workload/workload.h"

namespace drt::analysis {

struct harness_config {
  overlay::dr_config dr{};
  sim::simulator_config net{};
  workload::subscription_family family =
      workload::subscription_family::uniform;
  workload::subscription_params subs{};
  std::uint64_t workload_seed = 7;
};

/// An overlay populated from a synthetic workload, with converge and
/// accuracy helpers.
class testbed {
 public:
  explicit testbed(harness_config config = {});

  /// Add `n` peers with generated filters, settling after each join.
  void populate(std::size_t n);

  /// Add one peer with an explicit filter (settles the join traffic).
  spatial::peer_id add(const spatial::box& filter);

  /// Run stabilization rounds (one timer period each) until the checker
  /// reports a legitimate configuration; returns the number of rounds, or
  /// -1 if `max_rounds` elapsed without convergence.
  int converge(int max_rounds = 80);

  /// True iff the current configuration is legitimate (Definition 3.2).
  bool legal() const;
  overlay::check_report report(bool check_containment = false) const;

  /// Publish `count` events of the given family from random live peers;
  /// aggregates accuracy and cost.
  struct accuracy {
    std::size_t events = 0;
    std::size_t population = 0;  ///< live peers during the sweep
    std::uint64_t deliveries = 0;
    std::uint64_t interested = 0;
    std::uint64_t false_positives = 0;
    std::uint64_t false_negatives = 0;
    std::uint64_t messages = 0;
    std::uint64_t hops_total = 0;  ///< sum over events of the worst path
    std::size_t max_hops = 0;
    /// The paper's "false positive rate ... 2-3%": the probability that a
    /// peer receives an event it is not interested in, i.e. FP count over
    /// (events x population).
    double fp_rate() const {
      const auto denom = static_cast<double>(events) *
                         static_cast<double>(population);
      return denom == 0.0 ? 0.0
                          : static_cast<double>(false_positives) / denom;
    }
    /// FP share of deliveries (routing-precision view).
    double fp_per_delivery() const {
      return deliveries == 0
                 ? 0.0
                 : static_cast<double>(false_positives) /
                       static_cast<double>(deliveries);
    }
    double fn_rate() const {
      return interested == 0
                 ? 0.0
                 : static_cast<double>(false_negatives) /
                       static_cast<double>(interested);
    }
    double messages_per_event() const {
      return events == 0 ? 0.0
                         : static_cast<double>(messages) /
                               static_cast<double>(events);
    }
    double mean_hops() const {
      return events == 0 ? 0.0
                         : static_cast<double>(hops_total) /
                               static_cast<double>(events);
    }
  };
  accuracy publish_sweep(std::size_t count,
                         workload::event_family family =
                             workload::event_family::uniform);

  overlay::dr_overlay& overlay() { return *overlay_; }
  const overlay::dr_overlay& overlay() const { return *overlay_; }
  util::rng& workload_rng() { return workload_rng_; }
  const std::vector<spatial::box>& filters() const { return filters_; }
  const harness_config& config() const { return config_; }

 private:
  harness_config config_;
  std::unique_ptr<overlay::dr_overlay> overlay_;
  util::rng workload_rng_;
  std::vector<spatial::box> filters_;
};

}  // namespace drt::analysis

#endif  // DRT_ANALYSIS_HARNESS_H
