// Shared experiment drivers: building overlays from workloads, running
// them to a legitimate configuration, and sweeping publications for
// accuracy accounting.  Since the engine redesign (DESIGN.md §6) the
// testbed is a thin shim over engine::scenario_runner driving an
// engine::drtree_backend — kept because a large body of tests and benches
// speaks this vocabulary, and as the one-liner way to get a populated
// DR-tree.  New experiment code should use the engine API directly
// (declarative scenarios run on any backend).
#ifndef DRT_ANALYSIS_HARNESS_H
#define DRT_ANALYSIS_HARNESS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "drtree/checker.h"
#include "drtree/overlay.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "workload/workload.h"

namespace drt::analysis {

struct harness_config {
  overlay::dr_config dr{};
  sim::simulator_config net{};
  workload::subscription_family family =
      workload::subscription_family::uniform;
  workload::subscription_params subs{};
  std::uint64_t workload_seed = 7;
};

/// An overlay populated from a synthetic workload, with converge and
/// accuracy helpers.  All behavior delegates to the scenario runner's
/// primitives; the overlay accessor pierces the abstraction for
/// white-box tests.
class testbed {
 public:
  explicit testbed(harness_config config = {});

  /// Aggregate accuracy/cost of one publish sweep (the engine's
  /// sweep_stats under its historical name).
  using accuracy = engine::sweep_stats;

  /// Add `n` peers with generated filters, settling after each join.
  void populate(std::size_t n) { runner_->populate(n); }

  /// Add one peer with an explicit filter (settles the join traffic).
  spatial::peer_id add(const spatial::box& filter) {
    return static_cast<spatial::peer_id>(runner_->add(filter));
  }

  /// Run stabilization rounds (one timer period each) until the checker
  /// reports a legitimate configuration; returns the number of rounds, or
  /// -1 if `max_rounds` elapsed without convergence.
  int converge(int max_rounds = 80) { return runner_->converge(max_rounds); }

  /// True iff the current configuration is legitimate (Definition 3.2).
  bool legal() const { return backend_->legal(); }
  overlay::check_report report(bool check_containment = false) const {
    // Assertion-level check: tests treat a violation here as a failure,
    // so a tracing overlay's first illegal report writes the flight dump
    // (check_report::dump_path names it).
    return overlay::checker(backend_->overlay())
        .check(check_containment, /*dump_on_violation=*/true);
  }

  /// Publish `count` events of the given family from random live peers;
  /// aggregates accuracy and cost.
  accuracy publish_sweep(std::size_t count,
                         workload::event_family family =
                             workload::event_family::uniform) {
    return runner_->publish_sweep(count, family);
  }

  overlay::dr_overlay& overlay() { return backend_->overlay(); }
  const overlay::dr_overlay& overlay() const { return backend_->overlay(); }
  engine::drtree_backend& backend() { return *backend_; }
  engine::scenario_runner& runner() { return *runner_; }
  util::rng& workload_rng() { return runner_->rng(); }
  const std::vector<spatial::box>& filters() const {
    return runner_->filters();
  }
  const harness_config& config() const { return config_; }

 private:
  harness_config config_;
  std::unique_ptr<engine::drtree_backend> backend_;
  std::unique_ptr<engine::scenario_runner> runner_;
};

}  // namespace drt::analysis

#endif  // DRT_ANALYSIS_HARNESS_H
