#include "analysis/harness.h"

namespace drt::analysis {

testbed::testbed(harness_config config) : config_(config) {
  engine::overlay_backend_config bc;
  bc.dr = config_.dr;
  bc.net = config_.net;
  backend_ = std::make_unique<engine::drtree_backend>(bc);

  engine::runner_config rc;
  rc.workload.family = config_.family;
  rc.workload.subs = config_.subs;
  // The historical testbed clamped generated filters and events to the
  // overlay workspace; keep that so seed-tuned experiments reproduce.
  rc.workload.subs.workspace = config_.dr.workspace;
  rc.workload.seed = config_.workload_seed;
  runner_ = std::make_unique<engine::scenario_runner>(*backend_, rc);
}

}  // namespace drt::analysis
