#include "analysis/harness.h"

namespace drt::analysis {

testbed::testbed(harness_config config)
    : config_(config),
      overlay_(std::make_unique<overlay::dr_overlay>(config.dr, config.net)),
      workload_rng_(config.workload_seed) {}

void testbed::populate(std::size_t n) {
  auto params = config_.subs;
  params.workspace = config_.dr.workspace;
  const auto rects = workload::make_subscriptions(config_.family, n,
                                                  workload_rng_, params);
  for (const auto& r : rects) add(r);
}

spatial::peer_id testbed::add(const spatial::box& filter) {
  filters_.push_back(filter);
  return overlay_->add_peer_and_settle(filter);
}

int testbed::converge(int max_rounds) {
  const auto period = config_.dr.stabilize_period;
  for (int round = 0; round < max_rounds; ++round) {
    if (legal()) return round;
    overlay_->advance(period);
    overlay_->settle();
  }
  return legal() ? max_rounds : -1;
}

bool testbed::legal() const {
  return overlay::checker(*overlay_).check().legal();
}

overlay::check_report testbed::report(bool check_containment) const {
  return overlay::checker(*overlay_).check(check_containment);
}

testbed::accuracy testbed::publish_sweep(std::size_t count,
                                         workload::event_family family) {
  accuracy acc;
  // One live-set snapshot per sweep gives O(1) publisher picks; the
  // per-event accounting loops inside publish_and_drain are the
  // allocation-free for_each_live path.
  const auto live = overlay_->live_peers();
  if (live.empty()) return acc;
  acc.population = live.size();
  for (std::size_t i = 0; i < count; ++i) {
    const auto publisher = live[workload_rng_.index(live.size())];
    if (!overlay_->alive(publisher)) continue;
    const auto value = workload::make_event_point(
        family, workload_rng_, config_.dr.workspace, filters_);
    const auto r = overlay_->publish_and_drain(publisher, value);
    ++acc.events;
    acc.deliveries += r.delivered;
    acc.interested += r.interested;
    acc.false_positives += r.false_positives;
    acc.false_negatives += r.false_negatives;
    acc.messages += r.messages;
    acc.hops_total += r.max_hops;
    acc.max_hops = std::max(acc.max_hops, r.max_hops);
  }
  return acc;
}

}  // namespace drt::analysis
