#include "analysis/models.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace drt::analysis {

double predicted_height(std::size_t n, std::size_t m) {
  DRT_EXPECT(m >= 2);
  if (n <= 1) return 0.0;
  return std::log(static_cast<double>(n)) /
         std::log(static_cast<double>(m));
}

double predicted_memory(std::size_t n, std::size_t m, std::size_t big_m) {
  DRT_EXPECT(m >= 2);
  if (n <= 1) return static_cast<double>(big_m);
  const double log_n = std::log2(static_cast<double>(n));
  const double log_m = std::log2(static_cast<double>(m));
  return static_cast<double>(big_m) * log_n * log_n / log_m;
}

churn_bound expected_disconnect_time(std::size_t n, double delta,
                                     double lambda,
                                     churn_prefactor prefactor) {
  DRT_EXPECT(delta > 0.0);
  DRT_EXPECT(lambda > 0.0);
  churn_bound out;
  const double dn = static_cast<double>(n);
  const double dl = delta * lambda;
  if (dl >= dn) return out;  // bound degenerate: departures outpace size
  const double exponent = (dn - dl) * (dn - dl) / (4.0 * dl);
  const double pre = prefactor == churn_prefactor::delta_times_n
                         ? delta * dn
                         : delta / dn;
  // Saturate instead of overflowing to inf for tiny lambda.
  out.expected_time = exponent > 700.0
                          ? std::numeric_limits<double>::infinity()
                          : pre * std::exp(exponent);
  out.valid = true;
  return out;
}

}  // namespace drt::analysis
