// Closed-form models from the paper's analysis section (Lemmas 3.1 and
// 3.7), used to compare measured scaling against the predicted shape.
#ifndef DRT_ANALYSIS_MODELS_H
#define DRT_ANALYSIS_MODELS_H

#include <cstddef>

namespace drt::analysis {

/// Lemma 3.1: the DR-tree height is O(log_m N).
double predicted_height(std::size_t n, std::size_t m);

/// Lemma 3.1: memory complexity O(M log^2 N / log m) for structure
/// maintenance (per peer, counting links across all its instances).
double predicted_memory(std::size_t n, std::size_t m, std::size_t big_m);

/// Lemma 3.7: expected time before the DR-tree disconnects, given a
/// stabilization-free window Delta and Poisson departure rate lambda:
///
///     E[T] = prefactor(Delta, N) * exp((N - Delta*lambda)^2 / (4*Delta*lambda))
///
/// The published statement's prefactor typesets ambiguously ("∆N"); both
/// readings are provided — the exponential dominates the shape either
/// way.  `valid` is false outside the regime Delta*lambda < N where the
/// bound is meaningful.
struct churn_bound {
  double expected_time = 0.0;
  bool valid = false;
};

enum class churn_prefactor {
  delta_times_n,  ///< Delta * N
  delta_over_n,   ///< Delta / N
};

churn_bound expected_disconnect_time(std::size_t n, double delta,
                                     double lambda,
                                     churn_prefactor prefactor =
                                         churn_prefactor::delta_over_n);

}  // namespace drt::analysis

#endif  // DRT_ANALYSIS_MODELS_H
