// A DR-tree peer: one physical process owning one subscription and a chain
// of tree-node *instances* (§3: "a subscriber is recursively its own child
// in the subtree rooted at p", so a peer active at height h is active at
// every height 0..h and maintains children/parent/MBR state per height).
//
// Heights count from the leaves (leaf instance = height 0); the paper's
// levels count from the root.  Height numbering is stable when the root
// splits (DESIGN.md §5).
//
// Execution model: protocol steps are triggered by simulator messages and
// timers; a step may read, and for the paper's multi-node actions
// (Adjust_Parent, Merge_Children, splits) atomically update, the state of
// overlay neighbors — the same locally-atomic action granularity the
// paper's pseudo-code and proofs use.
#ifndef DRT_DRTREE_PEER_H
#define DRT_DRTREE_PEER_H

#include <cstdint>
#include <vector>

#include "drtree/arena.h"
#include "drtree/config.h"
#include "drtree/messages.h"
#include "sim/simulator.h"
#include "spatial/types.h"

namespace drt::overlay {

class dr_overlay;

/// Counts of repairs each stabilization module actually performed —
/// instrumentation for the corruption experiments ("which module does the
/// work"), aggregated overlay-wide by dr_overlay::total_repairs().
struct repair_stats {
  std::uint64_t mbr_fixed = 0;           ///< CHECK_MBR rewrote a value
  std::uint64_t own_chain_fixed = 0;     ///< CHECK_PARENT local fix
  std::uint64_t rejoins = 0;             ///< CHECK_PARENT oracle rejoins
  std::uint64_t children_discarded = 0;  ///< CHECK_CHILDREN drops
  std::uint64_t instances_dissolved = 0; ///< degenerate instance collapse
  std::uint64_t cover_promotions = 0;    ///< CHECK_COVER role exchanges
  std::uint64_t compactions = 0;         ///< CHECK_STRUCTURE merges
  std::uint64_t redistributions = 0;     ///< CHECK_STRUCTURE borrows
  std::uint64_t subtree_dissolutions = 0;///< INITIATE_NEW_CONNECTION sent

  repair_stats& operator+=(const repair_stats& other) {
    mbr_fixed += other.mbr_fixed;
    own_chain_fixed += other.own_chain_fixed;
    rejoins += other.rejoins;
    children_discarded += other.children_discarded;
    instances_dissolved += other.instances_dissolved;
    cover_promotions += other.cover_promotions;
    compactions += other.compactions;
    redistributions += other.redistributions;
    subtree_dissolutions += other.subtree_dissolutions;
    return *this;
  }
};

// Repair-module codes carried in the `a` field of flight-recorder repair
// records (obs::trace_kind::repair), mirroring repair_stats field order;
// the record's `b` field is the instance height repaired.
inline constexpr std::uint64_t kRepairMbr = 1;
inline constexpr std::uint64_t kRepairOwnChain = 2;
inline constexpr std::uint64_t kRepairRejoin = 3;
inline constexpr std::uint64_t kRepairChildDiscard = 4;
inline constexpr std::uint64_t kRepairDissolve = 5;
inline constexpr std::uint64_t kRepairCover = 6;
inline constexpr std::uint64_t kRepairCompact = 7;
inline constexpr std::uint64_t kRepairRedistribute = 8;
inline constexpr std::uint64_t kRepairSubtreeDissolve = 9;

class dr_peer : public sim::process {
 public:
  dr_peer(dr_overlay& overlay, spatial::box filter);
  ~dr_peer() override;

  // ------------------------------------------------------------- state
  const spatial::box& filter() const { return filter_; }
  spatial::peer_id pid() const { return static_cast<spatial::peer_id>(id()); }

  bool has_instance(std::size_t h) const { return find_ref(h) != nullptr; }
  instance& inst(std::size_t h);                    ///< aborts if missing
  const instance& inst(std::size_t h) const;        ///< aborts if missing
  instance* find_inst(std::size_t h);
  const instance* find_inst(std::size_t h) const;
  instance& ensure_inst(std::size_t h);             ///< creates if missing
  void erase_inst(std::size_t h);

  /// Greatest height with an instance; peers always keep the leaf (0).
  std::size_t top() const;
  /// True iff the topmost instance designates this peer as its own parent
  /// (the paper: "the parent of the root process is the process itself").
  bool is_root() const;
  /// All heights with instances, ascending (may be non-contiguous only
  /// while corrupted).
  std::vector<std::size_t> instance_heights() const;

  const repair_stats& repairs() const { return repairs_; }

  // ------------------------------------- dirty-set scheduling (§11)
  /// The arena slot dr_overlay::mark_dirty stamps for a mark at `h`:
  /// the instance at that height when present, else the lowest owned
  /// instance (the leaf always exists) — a mark anywhere schedules the
  /// whole chain, so nearest-height resolution never loses a repair.
  inst_slot slot_for_mark(std::size_t h) const;

  /// Called by the overlay when one of this peer's slots transitions
  /// clean→dirty: pulls the armed stabilize timer in to the next tick
  /// when it was parked at a later background-sweep tick.  No-op in
  /// full mode, during this peer's own pass, or before on_start armed.
  void note_marked();

  // ------------------------------------------------- protocol (joins)
  /// Connect this peer (leaf) through `contact` (§3.2 "Joins").  Pass the
  /// peer's own id when it is the first/only node: it becomes the root.
  void start_join(spatial::peer_id contact);

  /// Controlled departure (§3.2, Fig. 9): notify the parent of the
  /// topmost instance, then leave.  The caller crashes the process.
  void announce_leave();

  /// Efficient controlled departure (§3.2's "much more efficient
  /// variants ... reconnect whole subtrees"): before leaving, hand every
  /// instance group to a freshly elected leader, wiring the leaders into
  /// a chain that replaces this peer — no orphaned subtree ever has to
  /// rejoin through the oracle.  The caller crashes the process.
  void leave_with_handoff();

  /// Publish an event (§2.3/§3 dissemination).
  void publish(const spatial::event& ev);

  /// Publish `n` events as batch envelopes (DESIGN.md §9): the whole
  /// batch is routed once and split only where children's admit sets
  /// diverge, so k co-located events cost one tree traversal instead of
  /// k.  Per-event delivery/dedup semantics are identical to calling
  /// publish() n times on a quiescent tree.  Batches larger than
  /// dr_batch_msg::kMaxEvents are chunked.
  void multi_publish(const spatial::event* evs, std::size_t n);

  /// Start a distributed range search: route `query` to the root, then
  /// down every subtree whose MBR intersects it; every leaf whose filter
  /// intersects replies to this peer with SEARCH_HIT (collected by the
  /// overlay under `query_id`).
  void start_search(std::uint64_t query_id, const spatial::box& query);

  // --------------------------------------- stabilization (Figs. 10-14)
  // Public so unit tests can drive modules directly and deterministically.
  void check_mbr(std::size_t h);        // Fig. 10
  void check_parent(std::size_t h);     // Fig. 11
  void check_children(std::size_t h);   // Fig. 12
  void check_cover(std::size_t h);      // Fig. 13
  void check_structure(std::size_t h);  // Fig. 14
  /// One full pass of every enabled module over every instance height
  /// (what the periodic timer runs).
  void stabilize_pass();

  // ------------------------------------------------------ sim::process
  void on_start() override;
  void on_message(sim::process_id from, std::uint64_t type,
                  const sim::envelope& msg) override;
  void on_timer(std::uint64_t timer_type) override;

 private:
  // Message handlers.
  void handle_join(const dr_msg& m);
  void handle_add_child(const dr_msg& m);
  void handle_leave(const dr_msg& m);
  void handle_check_structure_msg(const dr_msg& m);
  void handle_initiate_new_connection(const dr_msg& m);
  void handle_event_up(spatial::peer_id from, const dr_event_msg& m);
  void handle_event_down(const dr_event_msg& m);
  void handle_batch_up(spatial::peer_id from, const dr_batch_msg& m);
  void handle_batch_down(const dr_batch_msg& m);
  void handle_search_up(const dr_msg& m);
  void handle_search_down(const dr_msg& m);

  // Join helpers.
  void descend_join(std::size_t h, dr_msg m);
  void root_grow(const dr_msg& m);
  /// ADD_CHILD(q, t) of Fig. 8: attach subtree root q of height t under
  /// this peer's instance at t+1 (splitting on overflow).
  void add_child_at(std::size_t t, spatial::peer_id q,
                    const spatial::box& q_mbr);

  // Fig. 7 helper functions.
  bool is_root_at(std::size_t h) const;
  spatial::peer_id choose_best_child(std::size_t h,
                                     const spatial::box& r) const;
  void compute_mbr(std::size_t h);  // Compute_MBR(p, l)

  // Subtree-summary maintenance (DESIGN.md §9).  rebuild_summary re-frames
  // and re-rasterizes an instance from its children (leaf: from the
  // filter); it rides compute_mbr, so the stabilizer's CHECK_MBR probes
  // double as summary refresh — no extra message round.  When the
  // recomputed MBR is unchanged the interior rebuild is skipped except
  // every kSummaryRefreshStride-th time: additions mark eagerly so a
  // skipped rebuild only delays *tightening* (clearing bits of departed
  // subtrees), never soundness, and quiescent trees would otherwise pay
  // a full re-rasterization per instance per stabilize period.
  // summary_mark is the incremental delta: join paths OR the arriving
  // subtree's MBR in without a rebuild.  Both are no-ops when
  // dr_config::summary == summary_mode::mbr.
  void rebuild_summary(std::size_t h);
  void summary_mark(instance& ins, const spatial::box& b);
  /// The fan-out admit test: MBR containment plus (when enabled) the
  /// occupancy-bitmap probe.
  bool admits(const instance& ins, const spatial::pt& v) const;
  bool is_better_mbr_cover(std::size_t h, spatial::peer_id q) const;
  /// Adjust_Parent generalized to keep instance chains contiguous: q
  /// replaces this peer at heights [h, top()].
  void promote_child(std::size_t h, spatial::peer_id q);

  /// Elect a group leader per the configured policy (Fig. 6: the member
  /// with the largest MBR coverage).
  spatial::peer_id elect(const std::vector<spatial::peer_id>& members,
                         const std::vector<spatial::box>& mbrs) const;

  /// Area clamped to the workspace so unbounded filters stay comparable.
  double coverage_area(const spatial::box& b) const;

  // Split path (Fig. 8, else-branch of ADD_CHILD).
  void split_and_push(std::size_t h, spatial::peer_id extra,
                      const spatial::box& extra_mbr);

  // Compaction (Fig. 14).
  spatial::peer_id search_compaction_candidate(std::size_t h,
                                               spatial::peer_id q) const;
  /// Best_Set_Cover: among s and t, who better covers the union of their
  /// children sets (smaller uncovered area wins).
  spatial::peer_id best_set_cover(std::size_t h, spatial::peer_id s,
                                  spatial::peer_id t) const;
  void compact(std::size_t h, spatial::peer_id q, spatial::peer_id cand);
  void merge_children(std::size_t h, spatial::peer_id leader,
                      spatial::peer_id absorbed);
  /// Rebalance when no merge fits within M: borrow children for the
  /// underloaded child `needy` (at h-1) from its richest sibling.
  /// Returns true when `needy` reached the m bound.
  bool redistribute(std::size_t h, spatial::peer_id needy);

  // Dissemination helpers.  `hop` counts network messages traversed.
  void deliver_local(const spatial::event& ev, std::size_t hop);
  void forward_down(std::size_t h, const spatial::event& ev,
                    std::size_t hop);
  /// The sibling fan-out shared by forward_down and handle_event_up: push
  /// `ev` into every child subtree of `ins` (an instance at height `h`)
  /// that admits it, skipping `skip` — the child the event arrived from
  /// (kNoPeer when descending, where nothing is skipped).
  void fan_out_children(const instance& ins, std::size_t h,
                        const spatial::event& ev, std::size_t hop,
                        spatial::peer_id skip);
  /// Batch analogue of fan_out_children + forward_down: push the events
  /// into every child subtree of the instance at `h`, re-filtering the
  /// batch against each child's admit test and sending one (smaller)
  /// envelope per diverging child.  Recurses down the own-instance chain.
  void fan_out_batch(std::size_t h, const spatial::event* evs,
                     std::uint32_t n, std::size_t hop, spatial::peer_id skip);
  bool already_seen(std::uint64_t event_id);

  // FP-driven reorganization (§3.2, E15).
  void record_instance_event(std::size_t h, const spatial::event& ev);
  void maybe_reorganize(std::size_t h);

  void send_msg(spatial::peer_id to, dr_msg m);
  void send_event(spatial::peer_id to, const dr_event_msg& m);
  /// Sends only the used prefix of the batch (bytes_for(count)), so small
  /// batches ride small pool size classes.
  void send_batch(spatial::peer_id to, const dr_batch_msg& m);
  void rejoin_fragment(std::size_t h);

  /// This peer's failure detector: q is alive and no network partition
  /// separates it from us.  Every protocol-level liveness check routes
  /// through here (never overlay_.alive directly), so an unreachable
  /// peer is treated exactly like a crashed one — the precondition for
  /// honest split-brain behavior under partitions.
  bool sees(spatial::peer_id q) const;

  /// One entry per owned instance, ascending by height.  The instance
  /// data itself lives in the overlay's shard-local instance_arena; the
  /// peer holds only (height, slot) handles, so iterating a peer's chain
  /// is a scan over a tiny inline vector and the state it points at is
  /// packed in arena slabs.
  struct level_ref {
    std::size_t height = 0;
    inst_slot slot = kNoSlot;
  };
  const level_ref* find_ref(std::size_t h) const;
  level_ref* find_ref(std::size_t h);

  // Dirty-mode stabilize scheduling (DESIGN.md §11).  The peer keeps a
  // virtual tick chain — tick i at phase + i*period, advanced stepwise
  // with the same `+= period` arithmetic the periodic re-arm uses, so
  // tick times are bit-identical across modes — and arms one quiet
  // one-shot timer at either the next tick (chain dirty, or root: the
  // probe keeps fragment discovery prompt and costs O(1) per period) or
  // the next background-sweep tick with (idx + pid) % sweep_stride == 0.
  // Timers carry the generation in the type's high 32 bits; a bumped
  // generation strands any superseded timer.
  void stab_advance_chain_past(sim::sim_time t);
  bool stab_chain_dirty() const;
  void stab_arm();
  void stab_on_fire(std::uint32_t gen);

  dr_overlay& overlay_;
  spatial::box filter_;
  std::vector<level_ref> levels_;
  repair_stats repairs_;

  // Dissemination loop guard under corrupted topologies: recently seen
  // event ids (bounded ring).
  std::vector<std::uint64_t> seen_events_;
  std::size_t seen_cursor_ = 0;

  /// Counts compute_mbr calls that left an interior MBR unchanged; every
  /// kSummaryRefreshStride-th one still rebuilds the summary so bits of
  /// departed subtrees eventually clear (see rebuild_summary).
  std::uint64_t summary_refresh_tick_ = 0;

  // Hot-path scratch, reused across messages so the publish/search loops
  // never allocate: the local-descent worklist of handle_search_down and
  // the per-pass height snapshot of stabilize_pass.
  std::vector<std::size_t> search_scratch_;
  std::vector<std::size_t> heights_scratch_;

  // Dirty-mode scheduling state (full mode never touches these).
  sim::sim_time stab_tick_time_ = 0.0;  ///< time of tick stab_tick_idx_
  std::int64_t stab_tick_idx_ = 0;      ///< next tick not yet passed
  std::int64_t stab_armed_idx_ = -1;    ///< tick the live timer targets
  std::int64_t stab_last_fired_idx_ = -1;
  std::uint32_t stab_gen_ = 0;  ///< stamps quiet timers; bump = cancel
  bool stab_in_pass_ = false;   ///< suppress pull-ins from own repairs
  /// Root-probe sends (counted in both modes, read by the dirty-mode
  /// safety net): the one message a fixed-point pass still emits.
  std::uint64_t stab_probe_msgs_ = 0;
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_PEER_H
