#include "drtree/dot.h"

#include <map>
#include <set>
#include <sstream>

namespace drt::overlay {

std::string to_dot_instances(const dr_overlay& overlay) {
  std::ostringstream out;
  out << "digraph drtree {\n  rankdir=TB;\n  node [shape=box];\n";
  // Group instances of equal height on one rank.
  std::map<std::size_t, std::vector<std::string>> ranks;
  overlay.for_each_live([&](spatial::peer_id p) {
    const auto& peer = overlay.peer(p);
    for (const auto h : peer.instance_heights()) {
      std::ostringstream name;
      name << "\"p" << p << "@h" << h << "\"";
      ranks[h].push_back(name.str());
      const auto& ins = peer.inst(h);
      const bool root = h == peer.top() && ins.parent == p;
      out << "  " << name.str() << " [label=\"" << p << " @" << h;
      if (root) out << " (root)";
      out << "\"";
      if (root) out << ", style=bold";
      out << "];\n";
      if (h > 0) {
        for (const auto c : ins.children) {
          out << "  " << name.str() << " -> \"p" << c << "@h" << (h - 1)
              << "\";\n";
        }
      }
    }
  });
  for (const auto& [h, names] : ranks) {
    out << "  { rank=same;";
    for (const auto& n : names) out << ' ' << n << ';';
    out << " }\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot_peers(const dr_overlay& overlay) {
  std::ostringstream out;
  out << "graph drtree_peers {\n  node [shape=circle];\n";
  std::set<std::pair<spatial::peer_id, spatial::peer_id>> edges;
  auto add_edge = [&](spatial::peer_id a, spatial::peer_id b) {
    if (a == b) return;
    edges.insert({std::min(a, b), std::max(a, b)});
  };
  overlay.for_each_live([&](spatial::peer_id p) {
    const auto& peer = overlay.peer(p);
    for (const auto h : peer.instance_heights()) {
      const auto& ins = peer.inst(h);
      for (const auto c : ins.children) add_edge(p, c);
      if (h == peer.top() && ins.parent != p) add_edge(p, ins.parent);
    }
  });
  for (const auto& [a, b] : edges) {
    out << "  " << a << " -- " << b << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace drt::overlay
