#include "drtree/dot.h"

#include <map>
#include <set>
#include <sstream>

namespace drt::overlay {

std::string to_dot_instances(const dr_overlay& overlay) {
  std::ostringstream out;
  out << "digraph drtree {\n  rankdir=TB;\n  node [shape=box];\n";
  // Group instances of equal height on one rank.
  std::map<std::size_t, std::vector<std::string>> ranks;
  overlay.for_each_live([&](spatial::peer_id p) {
    const auto& peer = overlay.peer(p);
    for (const auto h : peer.instance_heights()) {
      std::ostringstream name;
      name << "\"p" << p << "@h" << h << "\"";
      ranks[h].push_back(name.str());
      const auto& ins = peer.inst(h);
      const bool root = h == peer.top() && ins.parent == p;
      out << "  " << name.str() << " [label=\"" << p << " @" << h;
      if (root) out << " (root)";
      out << "\"";
      if (root) out << ", style=bold";
      out << "];\n";
      if (h > 0) {
        for (const auto c : ins.children) {
          out << "  " << name.str() << " -> \"p" << c << "@h" << (h - 1)
              << "\";\n";
        }
      }
    }
  });
  for (const auto& [h, names] : ranks) {
    out << "  { rank=same;";
    for (const auto& n : names) out << ' ' << n << ';';
    out << " }\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot_peers(const dr_overlay& overlay) {
  std::ostringstream out;
  out << "graph drtree_peers {\n  node [shape=circle];\n";
  std::set<std::pair<spatial::peer_id, spatial::peer_id>> edges;
  auto add_edge = [&](spatial::peer_id a, spatial::peer_id b) {
    if (a == b) return;
    edges.insert({std::min(a, b), std::max(a, b)});
  };
  overlay.for_each_live([&](spatial::peer_id p) {
    const auto& peer = overlay.peer(p);
    for (const auto h : peer.instance_heights()) {
      const auto& ins = peer.inst(h);
      for (const auto c : ins.children) add_edge(p, c);
      if (h == peer.top() && ins.parent != p) add_edge(p, ins.parent);
    }
  });
  for (const auto& [a, b] : edges) {
    out << "  " << a << " -- " << b << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot_instance_chain(const dr_overlay& overlay,
                                  spatial::peer_id p) {
  std::ostringstream out;
  out << "digraph chain_p" << p << " {\n  rankdir=TB;\n  node [shape=box];\n";
  if (static_cast<std::size_t>(p) >= overlay.sim().process_count()) {
    out << "}\n";
    return out.str();
  }
  const auto& peer = overlay.peer(p);
  auto node = [](spatial::peer_id q, std::size_t h) {
    std::ostringstream n;
    n << "\"p" << q << "@h" << h << "\"";
    return n.str();
  };
  for (const auto h : peer.instance_heights()) {
    const auto& ins = peer.inst(h);
    const bool root = h == peer.top() && ins.parent == p;
    out << "  " << node(p, h) << " [label=\"" << p << " @" << h;
    if (root) out << " (root)";
    if (!overlay.alive(p)) out << " (dead)";
    out << "\", style=" << (root ? "bold" : "filled") << "];\n";
    if (h == peer.top() && ins.parent != p &&
        ins.parent != spatial::kNoPeer) {
      out << "  " << node(ins.parent, h + 1) << " [label=\"" << ins.parent
          << " @" << (h + 1)
          << (overlay.alive(ins.parent) ? "" : " (dead)") << "\"];\n"
          << "  " << node(ins.parent, h + 1) << " -> " << node(p, h)
          << " [style=dashed];\n";
    }
    if (h > 0) {
      for (const auto c : ins.children) {
        if (c != p) {
          out << "  " << node(c, h - 1) << " [label=\"" << c << " @"
              << (h - 1) << (overlay.alive(c) ? "" : " (dead)") << "\"];\n";
        }
        out << "  " << node(p, h) << " -> " << node(c, h - 1) << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string describe_instance_chain(const dr_overlay& overlay,
                                    spatial::peer_id p) {
  std::ostringstream out;
  if (static_cast<std::size_t>(p) >= overlay.sim().process_count()) {
    out << "peer " << p << ": unknown\n";
    return out.str();
  }
  const auto& peer = overlay.peer(p);
  out << "peer " << p << (overlay.alive(p) ? "" : " (dead)") << " filter "
      << peer.filter().to_string() << "\n";
  for (const auto h : peer.instance_heights()) {
    const auto& ins = peer.inst(h);
    out << "  @h" << h << " mbr " << ins.mbr.to_string() << " parent "
        << ins.parent;
    if (ins.parent != spatial::kNoPeer && !overlay.alive(ins.parent)) {
      out << " (dead)";
    }
    if (ins.underloaded) out << " underloaded";
    if (h > 0) {
      out << " children [";
      bool first = true;
      for (const auto c : ins.children) {
        if (!first) out << ' ';
        first = false;
        out << c;
        if (!overlay.alive(c)) out << "(dead)";
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace drt::overlay
