// Global-view validator for the DR-tree legal state (Definition 3.1) and
// the containment-awareness properties (Properties 3.1/3.2).
//
// The checker reads every live peer's state through the overlay — it is
// the experimenter's omniscient observer, not part of the protocol — and
// reports every violated predicate plus structural statistics (height,
// degree, memory) used by experiments E4-E9.
#ifndef DRT_DRTREE_CHECKER_H
#define DRT_DRTREE_CHECKER_H

#include <cstddef>
#include <string>
#include <vector>

#include "drtree/overlay.h"

namespace drt::overlay {

struct check_report {
  std::vector<std::string> violations;

  /// Peers named by the violations, in first-complaint order without
  /// duplicates — the subjects whose instance chains a violation dump
  /// renders (DESIGN.md §12).
  std::vector<spatial::peer_id> offenders;

  /// Flight-recorder dump written for this report (first violating check
  /// of a tracing overlay; see dr_overlay::claim_violation_dump).  Empty
  /// when tracing is off, dumps are disabled, or the structure is legal.
  /// Callers should name this file in any error message they raise.
  std::string dump_path;

  /// Definition 3.2: the configuration is legitimate iff no predicate of
  /// Definition 3.1 (plus single-root/reachability) is violated.
  bool legal() const { return violations.empty(); }

  // ------------------------------------------------------------- stats
  std::size_t live_peers = 0;
  std::size_t roots = 0;           ///< peers whose top instance self-parents
  std::size_t instances = 0;       ///< total per-level node instances
  std::size_t height = 0;          ///< root topmost height (leaf = 0)
  std::size_t reachable = 0;       ///< peers reachable from the root
  double avg_interior_children = 0.0;
  std::size_t max_interior_children = 0;
  /// Total stored links (children entries + parent pointers): the memory
  /// complexity Lemma 3.1 bounds by O(M log^2 N / log m) per peer.
  std::size_t memory_links = 0;
  std::size_t max_peer_links = 0;  ///< worst single peer

  /// Subtree-summary soundness (DESIGN.md §9): instances whose occupancy
  /// summary fails to over-approximate some live reachable leaf filter
  /// below them.  Any nonzero count means the summary could prune an
  /// event a subscriber matches — a structural false negative — so each
  /// one is also a legality violation.  Always 0 when summaries are off.
  std::size_t summary_violations = 0;

  // Property 3.1 / 3.2 accounting (over strictly-contained filter pairs).
  std::size_t containment_pairs = 0;
  std::size_t weak_violations = 0;    ///< containee top is ancestor of container top
  std::size_t strong_satisfied = 0;   ///< container (or common container) is ancestor/sibling
};

class checker {
 public:
  explicit checker(const dr_overlay& overlay) : overlay_(overlay) {}

  /// Full legality check.  `check_containment` enables the O(N^2 * height)
  /// Property 3.1/3.2 sweep (keep off for large N in hot loops).
  /// `dump_on_violation` marks this as an assertion-level check: on the
  /// overlay's first violating such check with tracing enabled, the
  /// violation dump (offender instance chains + trace-ring tail) is
  /// written and its path recorded in the report.  It defaults off
  /// because convergence loops poll check() every round while the
  /// structure is *expected* to be transiently illegal — only callers
  /// that treat a violation as a failure should claim the dump.
  check_report check(bool check_containment = false,
                     bool dump_on_violation = false) const;

  /// Write the violation dump for `report` unconditionally (the one-shot
  /// auto-dump claim is bypassed): offender instance chains, their DOT
  /// subgraph, and the trace-ring tail.  Returns the file path ("" when
  /// nothing to write or the dump directory is unwritable) — name it in
  /// the error message so CI failures are diagnosable from artifacts.
  std::string dump(const check_report& report) const;

  /// Lemma 3.1 height bound: height <= ceil(log_m(N)) + slack.
  static bool within_height_bound(std::size_t height, std::size_t m,
                                  std::size_t n, std::size_t slack = 1);

 private:
  const dr_overlay& overlay_;
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_CHECKER_H
