// Protocol messages of the DR-tree overlay (Figures 8-14 of the paper).
//
// All messages are one value type dispatched on `kind`; unused fields stay
// defaulted.  Heights count from the leaves (leaf = 0), see DESIGN.md §5 —
// the paper's level l at a node of height h is l = root_height - h.
#ifndef DRT_DRTREE_MESSAGES_H
#define DRT_DRTREE_MESSAGES_H

#include <cstdint>
#include <type_traits>

#include "sim/message.h"
#include "spatial/types.h"

namespace drt::overlay {

enum class msg_kind : std::uint8_t {
  // Membership (Figures 8 and 9).
  join_request,   ///< route a joining subtree toward the insertion point
  add_child,      ///< attach subtree `subject` at height `h` (Fig. 8)
  leave,          ///< controlled departure of child `subject` (Fig. 9)

  // Stabilization triggers that travel between peers (Figures 9, 14).
  check_structure,          ///< compaction request at height `h`
  initiate_new_connection,  ///< dissolve subtree: every leaf rejoins

  // Event dissemination (§2.3/§3).
  event_up,    ///< event climbing toward the root
  event_down,  ///< event descending a subtree at height `h`

  // Distributed range search (§1: the balanced structure "makes it
  // suitable for performing efficient data storage or search").
  search_up,    ///< query climbing toward the root
  search_down,  ///< query descending a subtree at height `h`
  search_hit,   ///< a leaf whose filter intersects the query reports back
};

inline const char* to_string(msg_kind k) {
  switch (k) {
    case msg_kind::join_request: return "JOIN";
    case msg_kind::add_child: return "ADD_CHILD";
    case msg_kind::leave: return "LEAVE";
    case msg_kind::check_structure: return "CHECK_STRUCTURE";
    case msg_kind::initiate_new_connection: return "INITIATE_NEW_CONNECTION";
    case msg_kind::event_up: return "EVENT_UP";
    case msg_kind::event_down: return "EVENT_DOWN";
    case msg_kind::search_up: return "SEARCH_UP";
    case msg_kind::search_down: return "SEARCH_DOWN";
    case msg_kind::search_hit: return "SEARCH_HIT";
  }
  return "?";
}

struct dr_msg {
  msg_kind kind = msg_kind::join_request;

  /// The peer the message is about (joining subtree root, leaving child,
  /// subtree to attach, ...).  Not necessarily the sender.
  spatial::peer_id subject = spatial::kNoPeer;

  /// Height the operation applies to (see file comment).
  std::size_t h = 0;

  /// MBR of the subject subtree (join/add_child) — carried so the
  /// receiver can route without a remote read.
  spatial::box mbr = spatial::box::empty();

  /// Remaining hop budget for routed messages.
  std::size_t hops_left = 0;

  /// join_request phase: false while climbing to the root, true while
  /// descending toward the insertion point (Fig. 8).
  bool descending = false;

  /// Event payload (event_up / event_down).
  spatial::event ev{};

  /// Network messages traversed so far by this event copy (latency metric
  /// of experiment E11).
  std::size_t hop = 0;

  /// search_*: query identity and the peer collecting the hits.
  std::uint64_t query_id = 0;
  spatial::peer_id reply_to = spatial::kNoPeer;
};

// The protocol message must ride the simulator's allocation-free payload
// path: trivially copyable (no per-message destructor work) and within
// the envelope's pooled small-buffer capacity (blocks recycle instead of
// hitting the global allocator).  If a new field grows dr_msg past the
// limit, shrink the message — don't silently fall back to operator new
// on every send.
static_assert(std::is_trivially_copyable_v<dr_msg>);
static_assert(sizeof(dr_msg) <= sim::envelope::kMaxPooledPayload);

/// Timer types (sim::process::on_timer).
enum : std::uint64_t {
  kTimerStabilize = 1,  ///< periodic CHECK_* pass (the paper's timeout)
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_MESSAGES_H
