// Protocol messages of the DR-tree overlay (Figures 8-14 of the paper).
//
// All messages are one value type dispatched on `kind`; unused fields stay
// defaulted.  Heights count from the leaves (leaf = 0), see DESIGN.md §5 —
// the paper's level l at a node of height h is l = root_height - h.
#ifndef DRT_DRTREE_MESSAGES_H
#define DRT_DRTREE_MESSAGES_H

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sim/message.h"
#include "spatial/types.h"

namespace drt::overlay {

enum class msg_kind : std::uint8_t {
  // Membership (Figures 8 and 9).
  join_request,   ///< route a joining subtree toward the insertion point
  add_child,      ///< attach subtree `subject` at height `h` (Fig. 8)
  leave,          ///< controlled departure of child `subject` (Fig. 9)

  // Stabilization triggers that travel between peers (Figures 9, 14).
  check_structure,          ///< compaction request at height `h`
  initiate_new_connection,  ///< dissolve subtree: every leaf rejoins

  // Event dissemination (§2.3/§3).
  event_up,    ///< event climbing toward the root
  event_down,  ///< event descending a subtree at height `h`

  // Distributed range search (§1: the balanced structure "makes it
  // suitable for performing efficient data storage or search").
  search_up,    ///< query climbing toward the root
  search_down,  ///< query descending a subtree at height `h`
  search_hit,   ///< a leaf whose filter intersects the query reports back

  // Batched event dissemination (DESIGN.md §9): k co-located events share
  // one envelope and one tree descent, splitting only where children's
  // summaries diverge.  Appended at the end — kind values are wire
  // identity (the golden trace digests hash them).
  batch_up,    ///< event batch climbing toward the root
  batch_down,  ///< event batch descending a subtree at height `h`
};

inline const char* to_string(msg_kind k) {
  switch (k) {
    case msg_kind::join_request: return "JOIN";
    case msg_kind::add_child: return "ADD_CHILD";
    case msg_kind::leave: return "LEAVE";
    case msg_kind::check_structure: return "CHECK_STRUCTURE";
    case msg_kind::initiate_new_connection: return "INITIATE_NEW_CONNECTION";
    case msg_kind::event_up: return "EVENT_UP";
    case msg_kind::event_down: return "EVENT_DOWN";
    case msg_kind::search_up: return "SEARCH_UP";
    case msg_kind::search_down: return "SEARCH_DOWN";
    case msg_kind::search_hit: return "SEARCH_HIT";
    case msg_kind::batch_up: return "BATCH_UP";
    case msg_kind::batch_down: return "BATCH_DOWN";
  }
  return "?";
}

struct dr_msg {
  msg_kind kind = msg_kind::join_request;

  /// The peer the message is about (joining subtree root, leaving child,
  /// subtree to attach, ...).  Not necessarily the sender.
  spatial::peer_id subject = spatial::kNoPeer;

  /// Height the operation applies to (see file comment).
  std::size_t h = 0;

  /// MBR of the subject subtree (join/add_child) — carried so the
  /// receiver can route without a remote read.
  spatial::box mbr = spatial::box::empty();

  /// Remaining hop budget for routed messages.
  std::size_t hops_left = 0;

  /// join_request phase: false while climbing to the root, true while
  /// descending toward the insertion point (Fig. 8).
  bool descending = false;

  /// Network messages traversed so far by this message chain (latency
  /// metric of experiment E11).
  std::size_t hop = 0;

  /// search_*: query identity and the peer collecting the hits.
  std::uint64_t query_id = 0;
  spatial::peer_id reply_to = spatial::kNoPeer;
};

/// The lean message of the event hot path (event_up / event_down): just
/// the event plus routing counters.  Events used to ride the full dr_msg
/// — 32 bytes of MBR plus join/search fields that dissemination never
/// reads — pushing every hop into a 64-byte-larger pool size class.
struct dr_event_msg {
  msg_kind kind = msg_kind::event_down;
  std::uint32_t h = 0;          ///< target height (top() bounds it anyway)
  std::uint32_t hops_left = 0;  ///< remaining hop budget
  std::uint32_t hop = 0;        ///< network messages traversed so far
  spatial::event ev{};
};

/// A batch of co-located events sharing one envelope and one descent
/// (DESIGN.md §9).  Sent size-prefixed (sim::simulator::send_prefix): a
/// k-event batch occupies bytes_for(k), not the full-capacity struct, so
/// small batches ride small pool classes.  Receivers must only read
/// events[0..count).
struct dr_batch_msg {
  /// Capacity per envelope; multi_publish chunks larger requests.  Chosen
  /// so a full batch (32 B/event) stays well inside the payload pool's
  /// largest size class.
  static constexpr std::size_t kMaxEvents = 64;

  msg_kind kind = msg_kind::batch_down;
  std::uint32_t count = 0;
  std::uint32_t h = 0;
  std::uint32_t hops_left = 0;
  std::uint32_t hop = 0;
  spatial::event events[kMaxEvents];

  /// Wire size of a batch holding `n` events.
  static constexpr std::size_t bytes_for(std::size_t n) {
    return offsetof(dr_batch_msg, events) + n * sizeof(spatial::event);
  }
};

// Protocol messages must ride the simulator's allocation-free payload
// path: trivially copyable (no per-message destructor work) and within
// the envelope's pooled small-buffer capacity (blocks recycle instead of
// hitting the global allocator).  If a new field grows a message past a
// limit, shrink the message — don't silently fall back to operator new
// on every send.  The size bounds pin the pool size class each message
// rides (64 B quanta after the 32 B block header).
static_assert(std::is_trivially_copyable_v<dr_msg>);
static_assert(sizeof(dr_msg) <= 96, "dr_msg crossed into a larger class");
static_assert(std::is_trivially_copyable_v<dr_event_msg>);
static_assert(sizeof(dr_event_msg) <= 48,
              "the event hot path must stay one cache line with header");
static_assert(std::is_trivially_copyable_v<dr_batch_msg> &&
              std::is_trivially_destructible_v<dr_batch_msg>);
static_assert(dr_batch_msg::bytes_for(dr_batch_msg::kMaxEvents) <=
              sim::envelope::kMaxPooledPayload);
static_assert(sizeof(dr_msg) <= sim::envelope::kMaxPooledPayload);

/// Timer types (sim::process::on_timer).
enum : std::uint64_t {
  kTimerStabilize = 1,  ///< periodic CHECK_* pass (the paper's timeout)
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_MESSAGES_H
