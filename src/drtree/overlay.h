// The DR-tree overlay: owns the simulator and the peer processes, provides
// the membership API (join / controlled leave / crash), the contact oracle
// the paper assumes ("at connection time, a subscriber invokes an oracle
// that accurately provides a subscriber already in the structure"), and
// the publish/subscribe accounting used by the experiments.
#ifndef DRT_DRTREE_OVERLAY_H
#define DRT_DRTREE_OVERLAY_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "drtree/arena.h"
#include "drtree/config.h"
#include "drtree/peer.h"
#include "obs/trace.h"
#include "rtree/rtree.h"
#include "sim/simulator.h"
#include "spatial/types.h"

namespace drt::overlay {

/// How Get_Contact_Node picks the entry point for (re)joins.
enum class oracle_mode {
  random_live,  ///< uniformly random live peer (realistic)
  root,         ///< always the current root (fastest convergence)
};

/// Outcome of one publication, after the network drained.
struct publish_result {
  std::uint64_t event_id = 0;
  std::size_t interested = 0;        ///< ground truth |{p : filter_p ∋ e}|
  std::size_t delivered = 0;         ///< distinct peers that received e
  std::size_t false_positives = 0;   ///< delivered but not interested
  std::size_t false_negatives = 0;   ///< interested but not delivered
  std::uint64_t messages = 0;        ///< network messages spent
  std::size_t max_hops = 0;          ///< longest delivery path (E11)
  std::vector<spatial::peer_id> receivers;  ///< live peers that received it
};

/// Dirty-set scheduling counters (stabilize_mode::dirty, DESIGN.md §11).
/// `visited` counts stabilize passes that actually ran (both modes);
/// `skipped` counts periodic ticks a clean peer jumped over; `marks`
/// counts bitmap 0→1 transitions.
struct stabilize_stats {
  std::uint64_t marks = 0;
  std::uint64_t visited = 0;
  std::uint64_t skipped = 0;
};

class dr_overlay {
 public:
  explicit dr_overlay(dr_config config = {}, sim::simulator_config sim = {});

  dr_overlay(const dr_overlay&) = delete;
  dr_overlay& operator=(const dr_overlay&) = delete;

  // -------------------------------------------------------- membership
  /// Create a peer with the given filter and start its join protocol
  /// (via the oracle).  Does not advance time: call one of the run
  /// helpers afterwards.
  spatial::peer_id add_peer(const spatial::box& filter);

  /// Convenience: add a peer and drain the network until its join
  /// completes (or `max_steps` handler steps elapse).
  spatial::peer_id add_peer_and_settle(const spatial::box& filter,
                                       std::uint64_t max_steps = 100000);

  /// Controlled departure (Fig. 9): the peer notifies its parent, then
  /// disappears.
  void controlled_leave(spatial::peer_id p);

  /// Uncontrolled departure: the peer silently crashes.
  void crash(spatial::peer_id p);

  /// Revive a dead peer (crashed *or* departed) with its old filter.
  /// Goes through the overlay — not sim().restart() — so the
  /// ground-truth filter index is restored for peers whose controlled
  /// departure removed them from it.
  void restart(spatial::peer_id p);

  // ------------------------------------------------------------ access
  dr_peer& peer(spatial::peer_id p);
  const dr_peer& peer(spatial::peer_id p) const;
  bool alive(spatial::peer_id p) const { return sim_.is_alive(p); }

  /// The failure-detector oracle peer protocols use: `q` is alive AND no
  /// active network partition separates it from `p`.  With no partition
  /// this is exactly alive(); under one, an unreachable peer is
  /// indistinguishable from a crashed one — which is what lets each side
  /// of a split-brain stabilize independently.
  bool reachable(spatial::peer_id p, spatial::peer_id q) const {
    return sim_.is_alive(q) && sim_.reachable(p, q);
  }

  // ------------------------------------------------------ network faults
  /// Partition the overlay (requires a dynamic net model; returns false
  /// otherwise): `side_b` against everyone else.  Cuts messages and the
  /// reachability oracle; the contact oracle then only hands out
  /// same-side contacts, so rejoins stay within the joiner's side.
  bool partition(const std::vector<spatial::peer_id>& side_b);
  bool heal_partition();
  bool degrade_links(double latency_factor, double extra_loss,
                     sim::sim_time ramp) {
    return sim_.degrade_links(latency_factor, extra_loss, ramp);
  }
  /// True while a partition is installed.
  bool partitioned() const {
    const auto* dyn = sim_.dynamic_net();
    return dyn != nullptr && dyn->partitioned();
  }
  /// Allocating snapshot; prefer for_each_live()/live_count() in loops.
  std::vector<spatial::peer_id> live_peers() const;
  std::size_t live_count() const { return sim_.live_count(); }

  /// Visit every live peer id without materializing a vector.  As with
  /// sim::simulator::for_each_live, a bool-returning visitor stops on
  /// false.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    sim_.for_each_live([&fn](sim::process_id id) {
      return fn(static_cast<spatial::peer_id>(id));
    });
  }

  /// Aggregate per-module repair counters over all peers (dead included:
  /// their history still counts).
  repair_stats total_repairs() const;

  /// The unique root if exactly one live peer is a root, else kNoPeer.
  spatial::peer_id current_root() const;
  /// All live peers whose topmost instance points to themselves.
  std::vector<spatial::peer_id> root_peers() const;

  /// Get_Contact_Node(): a live peer other than `asking` per the oracle
  /// mode; kNoPeer when none exists.
  spatial::peer_id contact_node(spatial::peer_id asking) const;

  // ----------------------------------------------------- dissemination
  /// Publish from `publisher` and drain the network; returns accuracy and
  /// cost accounting against brute-force ground truth.
  publish_result publish_and_drain(spatial::peer_id publisher,
                                   const spatial::pt& value,
                                   std::uint64_t max_steps = 1000000);

  // Split publication path for callers that own the drive loop (the
  // sharded kernel backend publishes in one shard, injects into the
  // others, drains them all at kernel barriers, then collects per-shard
  // accounting).  publish_and_drain == begin + run_steps + finish.
  /// Start a publication with a caller-allocated event id; no draining.
  void publish_begin(spatial::peer_id publisher, std::uint64_t event_id,
                     const spatial::pt& value);
  /// Inject an externally published event into this overlay's tree: it
  /// enters at the root (first live root fragment, else any live peer)
  /// and disseminates as if published there.  The entry peer records a
  /// delivery unconditionally — up to one extra false positive per
  /// injected shard, the documented cost of cross-shard fan-out.
  void inject_publish(std::uint64_t event_id, const spatial::pt& value);
  /// Accuracy/cost accounting for `event_id` after the caller drained;
  /// `messages_before` is sim().metrics().messages_sent at begin time.
  publish_result publish_finish(std::uint64_t event_id,
                                const spatial::pt& value,
                                std::uint64_t messages_before);

  /// Publish all `values` from one publisher as batch envelopes (DESIGN.md
  /// §9) and drain; per-event accounting is identical to publishing each
  /// value alone on a quiescent tree, except that `messages` reports the
  /// shared batch total on the FIRST result (0 on the rest) — splitting a
  /// shared envelope's cost per event would be arbitrary.
  std::vector<publish_result> multi_publish_and_drain(
      spatial::peer_id publisher, const spatial::pt* values, std::size_t n,
      std::uint64_t max_steps = 1000000);

  // Split batch path, mirroring publish_begin/inject_publish for the
  // sharded kernel backend.  event_ids[i] pairs with values[i].
  void multi_publish_begin(spatial::peer_id publisher,
                           const std::uint64_t* event_ids,
                           const spatial::pt* values, std::size_t n);
  void inject_multi_publish(const std::uint64_t* event_ids,
                            const spatial::pt* values, std::size_t n);

  /// Record that `p` received event `id` after `hop` messages (called by
  /// peers).
  void record_delivery(std::uint64_t event_id, spatial::peer_id p,
                       std::size_t hop);

  std::uint64_t next_event_id() { return next_event_id_++; }

  // ------------------------------------------------------------ search
  /// Result of one distributed range search (§1 "data storage or
  /// search"): the subscriptions whose filters intersect the query.
  struct search_result {
    std::vector<spatial::peer_id> hits;
    std::uint64_t messages = 0;
    std::size_t max_hops = 0;
    std::size_t false_negatives = 0;  ///< vs brute-force ground truth
    std::size_t false_positives = 0;
  };

  /// Run a range query from `origin` and drain the network.
  search_result search_and_drain(spatial::peer_id origin,
                                 const spatial::box& query,
                                 std::uint64_t max_steps = 1000000);

  // ------------------------------------------------- ground-truth index
  // Filters are immutable for a peer's lifetime, so the overlay keeps
  // every filter ever registered in one sequential R-tree and prunes
  // dead peers by liveness at query time.  This replaces the O(N)
  // brute-force scan that used to run once per published event / range
  // search — the per-event matching cost is now O(log N + answers).

  /// Live peers whose filter contains `value`, ascending id order, into
  /// the caller-owned buffer (cleared first; no allocation once warm).
  void matching_live_peers(const spatial::pt& value,
                           std::vector<spatial::peer_id>& out) const;

  /// Live peers whose filter intersects `query`, ascending id order.
  void intersecting_live_peers(const spatial::box& query,
                               std::vector<spatial::peer_id>& out) const;

  /// Called by peers when a SEARCH_HIT arrives (or a local hit occurs).
  void record_search_hit(std::uint64_t query_id, spatial::peer_id p,
                         std::size_t hop);

  // --------------------------------------------------------- execution
  sim::simulator& sim() { return sim_; }
  const sim::simulator& sim() const { return sim_; }
  const dr_config& config() const { return config_; }
  util::rng& rng() { return sim_.rng(); }

  /// The shard-local arena holding every peer's per-height instances.
  instance_arena& arena() { return arena_; }
  const instance_arena& arena() const { return arena_; }

  // ---------------------------------------------------------- dirty set
  // Dirty-set scheduling (stabilize_mode::dirty, DESIGN.md §11): a bitmap
  // over arena slots plus a mark-order ring.  Every protocol mutation
  // that can invalidate an invariant marks the instances it touched; a
  // peer's periodic pass consumes its own marks and a clean peer skips
  // ahead to its next background-sweep tick.  All of this is a no-op in
  // full mode.

  /// Mark `p`'s instance at `height` dirty (nearest existing height when
  /// the exact one is missing — the leaf always exists).  Nudges the
  /// peer's stabilize timer forward when it was armed past the next tick.
  void mark_dirty(spatial::peer_id p, std::size_t height);

  /// Pass-start consumption: clear the slot's bit, returning whether it
  /// was set.  Called by the owning peer for each of its instances.
  bool test_and_clear_dirty(inst_slot s);

  /// Whether the slot is currently marked (no state change).
  bool is_dirty(inst_slot s) const {
    const std::size_t w = s / 64;
    return w < dirty_bits_.size() &&
           (dirty_bits_[w] & (1ull << (s % 64))) != 0;
  }

  /// Slots currently marked (the kernel skips shards where this is 0 and
  /// drtd reschedules its wall-clock stabilizer against it).
  std::size_t dirty_pending() const { return dirty_pending_; }

  /// Marked slots in mark order (may contain already-cleared entries
  /// until the next compaction; callers re-check the bitmap).
  const std::vector<inst_slot>& dirty_ring() const { return dirty_ring_; }

  stabilize_stats& stab_stats() { return stab_stats_; }
  const stabilize_stats& stab_stats() const { return stab_stats_; }

  // ----------------------------------------------------- flight recorder
  /// The trace ring, or nullptr when dr_config::trace == off.  Read it
  /// only between drains — the ring shares the shard's single-writer
  /// discipline.
  obs::trace_ring* trace() const { return trace_.get(); }

  /// Emit site used throughout the protocol: with tracing off this is one
  /// null-pointer branch (no stores, no allocation — the zero-overhead
  /// contract the obs tests pin).
  void trace_emit(obs::trace_kind kind, spatial::peer_id p,
                  std::uint64_t a = 0, std::uint64_t b = 0) {
    if (trace_) {
      trace_->emit(sim_.now(), kind, static_cast<std::uint32_t>(p), a, b);
    }
  }

  /// One-shot claims gating the automatic flight dumps (first checker
  /// violation, first false negative): true exactly once per overlay, and
  /// only when tracing and trace_dump are on.
  bool claim_violation_dump() const {
    if (trace_ == nullptr || !config_.trace_dump || violation_dumped_) {
      return false;
    }
    violation_dumped_ = true;
    return true;
  }

  /// Drain all in-flight work (join/leave/repair messages).
  std::uint64_t settle(std::uint64_t max_steps = 1000000) {
    return sim_.run_steps(max_steps);
  }

  /// Advance virtual time by `dt` (periodic stabilizers fire).
  void advance(sim::sim_time dt) { sim_.run_until(sim_.now() + dt); }

  oracle_mode oracle = oracle_mode::random_live;

 private:
  /// Dirty-mark every neighbor of `p` (parent above each instance, every
  /// child below) before a silent departure purges its links.
  void mark_neighbors_of(spatial::peer_id p);
  /// Reachability changed globally (partition installed or healed):
  /// every live peer must re-check against the new oracle.
  void mark_all_live();

  dr_config config_;
  /// Declared before sim_: the simulator owns the dr_peer processes,
  /// whose destructors release their arena slots, so the arena must
  /// outlive the simulator.
  instance_arena arena_;
  sim::simulator sim_;
  rtree::rtree<spatial::kDims> filter_index_;
  /// Peers whose controlled departure removed them from filter_index_;
  /// restart() re-indexes them.
  std::unordered_set<spatial::peer_id> departed_;
  mutable std::vector<spatial::peer_id> match_scratch_;
  std::uint64_t next_event_id_ = 1;
  std::unordered_map<std::uint64_t, std::unordered_set<spatial::peer_id>>
      deliveries_;
  std::unordered_map<std::uint64_t, std::size_t> delivery_hops_;
  std::unordered_map<std::uint64_t, std::unordered_set<spatial::peer_id>>
      search_hits_;
  std::unordered_map<std::uint64_t, std::size_t> search_hops_;

  // Dirty-set state (empty and untouched in full mode).
  std::vector<std::uint64_t> dirty_bits_;  ///< one bit per arena slot
  std::vector<inst_slot> dirty_ring_;      ///< marked slots in mark order
  std::size_t dirty_pending_ = 0;          ///< set bits in dirty_bits_
  stabilize_stats stab_stats_;

  // Flight recorder (null when config_.trace == off).  The dump claims
  // are mutable so the const checker can trigger the first-violation dump.
  std::unique_ptr<obs::trace_ring> trace_;
  mutable bool violation_dumped_ = false;
  bool fn_dumped_ = false;
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_OVERLAY_H
