// Configuration of the DR-tree overlay protocol.
#ifndef DRT_DRTREE_CONFIG_H
#define DRT_DRTREE_CONFIG_H

#include <cstddef>

#include "drtree/summary.h"
#include "obs/trace.h"
#include "rtree/split.h"
#include "sim/simulator.h"
#include "spatial/types.h"

namespace drt::overlay {

/// Parent/root election policy.  The paper (Fig. 6) elects the member
/// whose MBR has the largest coverage area; the alternatives exist for the
/// ablation experiment E12.
enum class election_policy {
  largest_mbr,   ///< the paper's rule
  smallest_mbr,  ///< adversarial control
  random_member  ///< containment-oblivious control
};

inline const char* to_string(election_policy p) {
  switch (p) {
    case election_policy::largest_mbr: return "largest_mbr";
    case election_policy::smallest_mbr: return "smallest_mbr";
    case election_policy::random_member: return "random";
  }
  return "?";
}

/// Which stabilization modules run on the periodic timer.  Disabling
/// modules is used by failure-injection tests to show each module is
/// *necessary* (the structure then fails to recover from the fault class
/// that module repairs).
struct stabilizer_switches {
  bool check_mbr = true;        // Fig. 10
  bool check_parent = true;     // Fig. 11
  bool check_children = true;   // Fig. 12
  bool check_cover = true;      // Fig. 13
  bool check_structure = true;  // Fig. 14
};

/// How the periodic stabilization pass is scheduled (DESIGN.md §11).
/// `full` is the paper's schedule, bit-for-bit: every peer runs every
/// CHECK_* module every period.  `dirty` visits a peer's chain only when
/// the overlay's dirty set marked one of its instances since the last
/// pass, plus a background full-sweep stride (each peer still runs every
/// `sweep_stride`-th tick unconditionally), so silent corruption — state
/// damaged without any protocol event — is found within `sweep_stride`
/// periods instead of one.  Self-stabilization is preserved; only the
/// detection latency for mutation-free faults grows, bounded by K.
enum class stabilize_mode {
  full,   ///< legacy: every peer, every period
  dirty,  ///< dirty-set + 1/K background sweep
};

inline const char* to_string(stabilize_mode m) {
  switch (m) {
    case stabilize_mode::full: return "full";
    case stabilize_mode::dirty: return "dirty";
  }
  return "?";
}

struct dr_config {
  /// R-tree degree bounds: every non-root interior node keeps between
  /// min_children (m) and max_children (M) children; the paper requires
  /// M >= 2m so splits can honor the lower bound.
  std::size_t min_children = 2;   ///< m
  std::size_t max_children = 8;   ///< M

  rtree::split_method split = rtree::split_method::quadratic;
  election_policy election = election_policy::largest_mbr;
  stabilizer_switches stabilizers{};

  /// Period of each peer's stabilization timer (virtual time).  The paper
  /// calls this the "timeout" driving the CHECK_* events.
  sim::sim_time stabilize_period = 10.0;

  /// Stabilization scheduling policy (see stabilize_mode above).
  stabilize_mode stabilize = stabilize_mode::full;

  /// Dirty mode's background-sweep factor K: a quiescent (never-marked)
  /// peer still runs its full pass every K-th period, staggered by peer
  /// id, bounding detection latency for silent corruption at K periods.
  std::size_t sweep_stride = 16;

  /// When true the FP-driven parent/child exchange of §3.2 ("Dynamic
  /// Reorganizations") runs on the stabilization timer (experiment E15).
  bool fp_reorganization = false;

  /// Controlled-departure repair strategy.  The paper's baseline (Fig. 9)
  /// merely notifies the parent and "relies on the stabilization
  /// mechanisms for repairing the subtree rooted at the departing node";
  /// it also notes "much more efficient variants are possible if the
  /// leave module drives the repair process and reconnects whole
  /// subtrees".  With this flag the departing peer hands each of its
  /// instance groups to a freshly elected leader on its way out, so no
  /// subtree ever needs to rejoin through the oracle.
  bool efficient_leave = false;

  /// Hop budget on routed messages: prevents livelock while routing over
  /// corrupted (possibly cyclic) parent pointers.  Generous — legal
  /// routes are O(log N).
  std::size_t max_route_hops = 64;

  /// Capacity of each peer's recently-seen event-id ring (the
  /// dissemination loop guard).  The ring is linear-scanned on every
  /// event arrival and costs 8 bytes per entry per peer, so million-peer
  /// runs shrink it; the default matches the historical constant.
  std::size_t seen_ring = 2048;

  /// The workspace used to clamp unbounded filters for area heuristics.
  spatial::box workspace = geo::make_rect2(0, 0, 1000, 1000);

  /// Publish-path subtree summaries (DESIGN.md §9).  `mbr` is the paper's
  /// routing, bit-for-bit; `grid`/`both` additionally maintain a k×k
  /// occupancy bitmap per instance so the event fan-out can prune a
  /// non-matching subtree with one bit probe.  Maintenance is incremental
  /// (join paths OR their delta in; full rebuilds piggyback on the
  /// CHECK_MBR stabilizer) — no extra message round ever.
  summary_mode summary = summary_mode::mbr;

  /// Occupancy-grid resolution k (k×k cells, 1..8) when summaries are
  /// enabled.  Higher k prunes more dead space per instance; k*k bits
  /// must fit the inline 64-bit word.
  std::size_t summary_grid = 8;

  /// When true, joins are routed up to the root before descending (the
  /// paper's default: "the odds of finding a good position ... are best
  /// when starting from the root").  When false, the descent starts at
  /// the contact node (measured in E5).
  bool join_via_root = true;

  /// Flight-recorder tracing (DESIGN.md §12).  `off` costs exactly one
  /// null-pointer branch per emit site — runs are bit-identical to the
  /// pre-trace code, pinned by the metrics-digest tests; `ring` records
  /// protocol events into a bounded ring; `full` grows without bound and
  /// adds a record per simulator message delivery.
  obs::trace_mode trace = obs::trace_mode::off;

  /// Ring capacity (records; rounded up to a power of two).
  std::size_t trace_capacity = 1u << 14;

  /// With tracing on, automatically write a flight dump on the overlay's
  /// first false negative and on the checker's first violation report
  /// ($DRT_DUMP_DIR, default "."); the checker names the file in its
  /// report so CI failures carry their own diagnosis.
  bool trace_dump = true;
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_CONFIG_H
