// Coarse subtree summaries for publish-path pruning (DESIGN.md §9).
//
// Routing an event down the DR-tree tests each child's full-precision MBR
// at every hop.  An MBR is the *join* of the children below it, so it
// over-approximates aggressively: the union of a few small filters in
// opposite corners becomes one big rectangle whose interior is almost all
// dead space, and every event landing in that dead space pays a full
// subtree descent before discovering nobody down there matches.
//
// A `subtree_summary` refines the MBR with a k×k occupancy bitmap over a
// bounded *frame* (the instance MBR clamped to the workspace at the last
// full rebuild): a bit is set iff some live leaf filter below the
// instance may overlap that cell.  The admit test is one array lookup and
// one bit probe — a non-matching subtree is pruned without descending.
//
// Soundness contract (checked by overlay::checker): the summary must
// OVER-approximate the true filter set below the instance.  Every point v
// of a live reachable leaf filter with mbr.contains(v) must be admitted:
//  * inside the frame the cell bit must be set,
//  * outside the frame the test falls back to the plain MBR — which is
//    what keeps unbounded filters and incremental MBR growth sound: marks
//    never have to chase a moving frame, points beyond it simply degrade
//    to today's MBR-only routing until the next rebuild re-frames.
// Staleness is one-sided by construction: additions mark eagerly along
// the join path, removals leave bits set until a rebuild clears them, so
// a stale summary admits too much, never too little.
//
// The grid is 2-D (spatial::kDims == 2), k <= 8, one std::uint64_t of
// bits — the summary adds 48 inline bytes per instance and no heap.
#ifndef DRT_DRTREE_SUMMARY_H
#define DRT_DRTREE_SUMMARY_H

#include <cstddef>
#include <cstdint>

#include "spatial/types.h"

namespace drt::overlay {

/// What the publish fan-out consults before descending into a child
/// (`dr_config::summary`).
enum class summary_mode : std::uint8_t {
  mbr,   ///< coarsened MBR only — the paper's routing, bit-for-bit
  grid,  ///< occupancy bitmap inside the frame, MBR fallback outside
  both,  ///< MBR test AND occupancy bitmap (tightest pruning)
};

inline const char* to_string(summary_mode m) {
  switch (m) {
    case summary_mode::mbr: return "mbr";
    case summary_mode::grid: return "grid";
    case summary_mode::both: return "both";
  }
  return "?";
}

struct subtree_summary {
  static constexpr std::size_t kMaxGrid = 8;  // k*k bits must fit 64

  spatial::box frame = spatial::box::empty();
  std::uint64_t bits = 0;
  std::uint8_t k = 0;  ///< grid resolution; 0 = absent (MBR-only routing)

  bool valid() const { return k != 0 && !frame.is_empty(); }

  void clear() {
    frame = spatial::box::empty();
    bits = 0;
    k = 0;
  }

  /// Start a full rebuild over `f` at resolution `kk`.  An empty or
  /// unbounded frame (a root whose children are all unbounded filters)
  /// leaves the summary absent: the admit test then degrades to the MBR.
  void reset_frame(const spatial::box& f, std::size_t kk) {
    bits = 0;
    if (kk == 0 || f.is_empty() || !f.is_bounded()) {
      frame = spatial::box::empty();
      k = 0;
      return;
    }
    frame = f;
    k = static_cast<std::uint8_t>(kk > kMaxGrid ? kMaxGrid : kk);
  }

  /// Cell index along dimension `dim` for coordinate `x` (clamped to the
  /// frame).  A degenerate frame axis maps everything to cell 0.
  std::size_t cell(double x, std::size_t dim) const {
    const double lo = frame.lo[dim];
    const double hi = frame.hi[dim];
    if (!(hi > lo)) return 0;
    const double t = (x - lo) / (hi - lo) * static_cast<double>(k);
    if (!(t > 0.0)) return 0;
    const auto i = static_cast<std::size_t>(t);
    return i >= k ? k - 1u : i;
  }

  /// The geometric extent of cell (i, j) — used to re-rasterize a child
  /// grid into a parent frame.
  spatial::box cell_box(std::size_t i, std::size_t j) const {
    const double w = (frame.hi[0] - frame.lo[0]) / static_cast<double>(k);
    const double h = (frame.hi[1] - frame.lo[1]) / static_cast<double>(k);
    return geo::make_rect2(frame.lo[0] + static_cast<double>(i) * w,
                           frame.lo[1] + static_cast<double>(j) * h,
                           frame.lo[0] + static_cast<double>(i + 1) * w,
                           frame.lo[1] + static_cast<double>(j + 1) * h);
  }

  bool test(const spatial::pt& v) const {
    return (bits >> (cell(v[1], 1) * k + cell(v[0], 0))) & 1u;
  }

  /// Set every cell intersecting `b` (clamped to the frame).  This is the
  /// incremental maintenance primitive: subscribe/join deltas OR the new
  /// subtree's MBR in without touching the rest of the grid.
  void mark_box(const spatial::box& b) {
    if (!valid() || b.is_empty()) return;
    const auto r = intersection(b, frame);
    if (r.is_empty()) return;
    const auto i0 = cell(r.lo[0], 0);
    const auto i1 = cell(r.hi[0], 0);
    const auto j0 = cell(r.lo[1], 1);
    const auto j1 = cell(r.hi[1], 1);
    for (std::size_t j = j0; j <= j1; ++j) {
      for (std::size_t i = i0; i <= i1; ++i) {
        bits |= std::uint64_t{1} << (j * k + i);
      }
    }
  }

  /// OR a child's occupied region into this grid (the interior-rebuild
  /// primitive).  The child occupies its set cells plus everything its
  /// MBR covers beyond its own frame (where its admit test falls back to
  /// the MBR), so both regions are re-rasterized conservatively.
  void merge(const subtree_summary& c, const spatial::box& c_mbr) {
    if (!valid()) return;
    if (!c.valid()) {
      mark_box(c_mbr);
      return;
    }
    for (std::size_t j = 0; j < c.k; ++j) {
      for (std::size_t i = 0; i < c.k; ++i) {
        if ((c.bits >> (j * c.k + i)) & 1u) mark_box(c.cell_box(i, j));
      }
    }
    if (c_mbr.is_empty() || c.frame.contains(c_mbr)) return;
    // The four strips of c_mbr sticking out of c's frame.
    const auto& f = c.frame;
    spatial::box strip = c_mbr;
    strip.hi[0] = f.lo[0];
    mark_box(strip);  // left
    strip = c_mbr;
    strip.lo[0] = f.hi[0];
    mark_box(strip);  // right
    strip = c_mbr;
    strip.hi[1] = f.lo[1];
    mark_box(strip);  // below
    strip = c_mbr;
    strip.lo[1] = f.hi[1];
    mark_box(strip);  // above
  }

  /// True iff every cell intersecting `region` (clamped to the frame) is
  /// set — the checker's no-false-pruning probe: any point of `region`
  /// inside the frame would pass the bitmap test.
  bool covers(const spatial::box& region) const {
    if (!valid() || region.is_empty()) return true;
    const auto r = intersection(region, frame);
    if (r.is_empty()) return true;
    const auto i0 = cell(r.lo[0], 0);
    const auto i1 = cell(r.hi[0], 0);
    const auto j0 = cell(r.lo[1], 1);
    const auto j1 = cell(r.hi[1], 1);
    for (std::size_t j = j0; j <= j1; ++j) {
      for (std::size_t i = i0; i <= i1; ++i) {
        if (((bits >> (j * k + i)) & 1u) == 0) return false;
      }
    }
    return true;
  }
};

/// The publish-path admit test: may a matching subscriber exist below an
/// instance with this summary and MBR for an event at `v`?
inline bool summary_admits(summary_mode mode, const subtree_summary& s,
                           const spatial::box& mbr, const spatial::pt& v) {
  if (mode == summary_mode::mbr) return mbr.contains(v);
  if (!s.valid() || !s.frame.contains(v)) return mbr.contains(v);
  const bool occupied = s.test(v);
  if (mode == summary_mode::grid) return occupied;
  return occupied && mbr.contains(v);
}

}  // namespace drt::overlay

#endif  // DRT_DRTREE_SUMMARY_H
