#include "drtree/peer.h"

#include <algorithm>
#include <limits>

#include "drtree/overlay.h"
#include "util/expect.h"

namespace drt::overlay {

using spatial::box;
using spatial::kNoPeer;
using spatial::peer_id;

// ------------------------------------------------------------- instance

bool instance::remove_child(peer_id q) {
  const auto it = std::find(children.begin(), children.end(), q);
  if (it == children.end()) return false;
  children.erase(it);
  return true;
}

// -------------------------------------------------------------- dr_peer

namespace {
constexpr std::uint64_t kReorgMinEvents = 16;
}  // namespace

dr_peer::dr_peer(dr_overlay& overlay, box filter)
    : overlay_(overlay), filter_(filter) {
  seen_events_.assign(std::max<std::size_t>(1, overlay.config().seen_ring), 0);
  // Every peer always owns its leaf instance; a fresh peer is the root of
  // its own single-node fragment.
  const auto slot = overlay_.arena().acquire(0);
  auto& leaf = overlay_.arena().at(slot);
  leaf.mbr = filter_;
  leaf.parent = kNoPeer;  // set to self id in on_start (id unknown here)
  levels_.push_back({0, slot});
  rebuild_summary(0);
}

dr_peer::~dr_peer() {
  // Slots go back to the arena only here: a crashed peer keeps its (now
  // stale) instances, exactly as the transient-fault model demands.
  for (const auto& ref : levels_) overlay_.arena().release(ref.slot);
}

const dr_peer::level_ref* dr_peer::find_ref(std::size_t h) const {
  for (const auto& ref : levels_) {
    if (ref.height == h) return &ref;
    if (ref.height > h) break;  // ascending order
  }
  return nullptr;
}

dr_peer::level_ref* dr_peer::find_ref(std::size_t h) {
  return const_cast<level_ref*>(
      static_cast<const dr_peer*>(this)->find_ref(h));
}

instance& dr_peer::inst(std::size_t h) {
  auto* ref = find_ref(h);
  DRT_ENSURE(ref != nullptr);
  return overlay_.arena().at(ref->slot);
}

const instance& dr_peer::inst(std::size_t h) const {
  const auto* ref = find_ref(h);
  DRT_ENSURE(ref != nullptr);
  return overlay_.arena().at(ref->slot);
}

instance* dr_peer::find_inst(std::size_t h) {
  auto* ref = find_ref(h);
  return ref == nullptr ? nullptr : &overlay_.arena().at(ref->slot);
}

const instance* dr_peer::find_inst(std::size_t h) const {
  const auto* ref = find_ref(h);
  return ref == nullptr ? nullptr : &overlay_.arena().at(ref->slot);
}

instance& dr_peer::ensure_inst(std::size_t h) {
  if (auto* ref = find_ref(h)) return overlay_.arena().at(ref->slot);
  const auto slot = overlay_.arena().acquire(h);
  const auto at = std::find_if(levels_.begin(), levels_.end(),
                               [h](const level_ref& r) { return r.height > h; });
  levels_.insert(at, {h, slot});
  // A freshly created instance is unvalidated state: schedule its owner.
  overlay_.mark_dirty(pid(), h);
  return overlay_.arena().at(slot);
}

void dr_peer::erase_inst(std::size_t h) {
  if (h == 0) return;  // the leaf instance is permanent
  const auto it = std::find_if(levels_.begin(), levels_.end(),
                               [h](const level_ref& r) { return r.height == h; });
  if (it == levels_.end()) return;
  // A released slot may be reacquired by another peer: its dirty bit must
  // not travel with it (and must not leak dirty_pending_).
  overlay_.test_and_clear_dirty(it->slot);
  overlay_.arena().release(it->slot);
  levels_.erase(it);
  overlay_.mark_dirty(pid(), 0);  // chain shape changed
}

std::size_t dr_peer::top() const {
  DRT_ENSURE(!levels_.empty());
  return levels_.back().height;
}

bool dr_peer::is_root() const {
  return overlay_.arena().at(levels_.back().slot).parent == pid();
}

bool dr_peer::is_root_at(std::size_t h) const {
  const auto* ins = find_inst(h);
  return ins != nullptr && ins->parent == pid() && h == top();
}

std::vector<std::size_t> dr_peer::instance_heights() const {
  std::vector<std::size_t> out;
  out.reserve(levels_.size());
  for (const auto& ref : levels_) out.push_back(ref.height);
  return out;
}

// --------------------------------- dirty-set scheduling (DESIGN.md §11)

inst_slot dr_peer::slot_for_mark(std::size_t h) const {
  const auto* ref = find_ref(h);
  // The leaf is permanent and levels_ is ascending, so front() is the
  // fallback for marks addressed at a height this peer no longer owns: a
  // mark anywhere schedules the whole chain.
  return ref != nullptr ? ref->slot : levels_.front().slot;
}

void dr_peer::note_marked() {
  if (overlay_.config().stabilize != stabilize_mode::dirty) return;
  if (stab_in_pass_) return;       // the pass-end re-arm sees the bit
  if (stab_armed_idx_ < 0) return;  // on_start has not armed yet
  stab_advance_chain_past(sim().now());
  if (stab_armed_idx_ <= stab_tick_idx_) return;  // already due next tick
  // Parked at a later background-sweep tick: pull the timer in.  The
  // generation bump strands the parked one-shot; stab_arm targets the
  // next tick because the chain is now dirty.
  ++stab_gen_;
  stab_arm();
}

void dr_peer::stab_advance_chain_past(sim::sim_time t) {
  const auto period = overlay_.config().stabilize_period;
  while (stab_tick_time_ <= t) {
    stab_tick_time_ += period;  // same arithmetic as the periodic re-arm
    ++stab_tick_idx_;
  }
}

bool dr_peer::stab_chain_dirty() const {
  for (const auto& ref : levels_) {
    if (overlay_.is_dirty(ref.slot)) return true;
  }
  return false;
}

void dr_peer::stab_arm() {
  const auto period = overlay_.config().stabilize_period;
  std::int64_t target = stab_tick_idx_;
  if (!stab_chain_dirty() && !is_root()) {
    // Clean non-root: park at the next background-sweep tick.  The
    // (idx + pid) % K stagger spreads the sweep so 1/K of a quiescent
    // population runs per period.  Roots fire every tick — their probe
    // is what lets detached fragments find the structure promptly, it
    // keeps the dirty-mode repair schedule aligned with full mode's, and
    // at one O(1) pass per period it never threatens the O(changed)
    // bound.  (The probe send is exempted from the pass-end safety net,
    // so an always-on root still reads as backlog-clean.)
    const auto k = static_cast<std::int64_t>(
        std::max<std::size_t>(std::size_t{1}, overlay_.config().sweep_stride));
    const auto offs = (target + static_cast<std::int64_t>(pid())) % k;
    if (offs != 0) target += k - offs;
  }
  stab_armed_idx_ = target;
  const auto at =
      stab_tick_time_ +
      static_cast<sim::sim_time>(target - stab_tick_idx_) * period;
  sim().schedule_quiet_timer(
      id(), kTimerStabilize | (static_cast<std::uint64_t>(stab_gen_) << 32),
      std::max<sim::sim_time>(0.0, at - sim().now()));
}

void dr_peer::stab_on_fire(std::uint32_t gen) {
  if (gen != stab_gen_) return;  // superseded by a pull-in or restart
  // Lazy skipped accounting: every tick between the last fired one and
  // the one this timer targeted was a pass full mode would have run.
  overlay_.stab_stats().skipped += static_cast<std::uint64_t>(
      stab_armed_idx_ - (stab_last_fired_idx_ + 1));
  stab_last_fired_idx_ = stab_armed_idx_;
  stab_armed_idx_ = -1;
  // Advance by index, not by time comparison: the fired tick is exactly
  // stab_last_fired_idx_, so the chain stays bit-exact under float
  // round-trips through the event queue.
  {
    const auto period = overlay_.config().stabilize_period;
    while (stab_tick_idx_ <= stab_last_fired_idx_) {
      stab_tick_time_ += period;
      ++stab_tick_idx_;
    }
  }
  // Consume this peer's marks up front; marks set during the pass (own
  // repairs touching own slots) survive into stab_arm and schedule the
  // revisit that drives repairs to a fixed point.
  for (const auto& ref : levels_) overlay_.test_and_clear_dirty(ref.slot);
  const auto msgs_before = sim().metrics().messages_sent;
  const auto probes_before = stab_probe_msgs_;
  const auto levels_before = levels_.size();
  const auto& r = repairs_;
  const auto repairs_before = r.mbr_fixed + r.own_chain_fixed + r.rejoins +
                              r.children_discarded + r.instances_dissolved +
                              r.cover_promotions + r.compactions +
                              r.redistributions + r.subtree_dissolutions;
  stab_in_pass_ = true;
  stabilize_pass();
  stab_in_pass_ = false;
  const auto repairs_after = r.mbr_fixed + r.own_chain_fixed + r.rejoins +
                             r.children_discarded + r.instances_dissolved +
                             r.cover_promotions + r.compactions +
                             r.redistributions + r.subtree_dissolutions;
  // The root's discovery probe is the one send a pass performs even at a
  // fixed point; exclude it or a stable root re-marks itself forever.
  const auto probe_sends = stab_probe_msgs_ - probes_before;
  if (sim().metrics().messages_sent - msgs_before != probe_sends ||
      levels_.size() != levels_before || repairs_after != repairs_before) {
    // The pass changed something: not at a fixed point yet, revisit next
    // tick even if no marking site fired (safety net).
    overlay_.mark_dirty(pid(), 0);
  }
  stab_arm();
}

// ----------------------------------------------------------- lifecycle

void dr_peer::on_start() {
  inst(0).parent = pid();  // fragment root until attached
  const auto period = overlay_.config().stabilize_period;
  if (overlay_.config().stabilize == stabilize_mode::dirty) {
    // Same phase draw as the periodic path (one uniform_real per
    // on_start in both modes keeps the RNG streams aligned); the virtual
    // tick chain replaces the periodic timer.  restart() re-enters here:
    // the generation bump strands any timer of the previous incarnation.
    const auto phase = sim().rng().uniform_real(0.1, period);
    stab_tick_time_ = sim().now() + phase;
    stab_tick_idx_ = 0;
    stab_armed_idx_ = -1;
    stab_last_fired_idx_ = -1;
    ++stab_gen_;
    // A freshly (re)started peer must stabilize promptly — its state may
    // be a stale pre-crash snapshot.
    overlay_.mark_dirty(pid(), 0);
    stab_arm();
    return;
  }
  // (Re)arm the stabilization timer; restart() re-enters here, so cancel
  // any previous chain first.
  sim().cancel_periodic(id(), kTimerStabilize);
  sim().schedule_periodic(id(), kTimerStabilize, period,
                          sim().rng().uniform_real(0.1, period));
}

void dr_peer::start_join(peer_id contact) {
  inst(0).parent = pid();
  overlay_.mark_dirty(pid(), 0);  // detached until the join lands
  if (contact == kNoPeer || contact == pid()) return;  // first peer: root
  dr_msg m;
  m.kind = msg_kind::join_request;
  m.subject = pid();
  m.h = top();
  m.mbr = inst(top()).mbr;
  m.hops_left = overlay_.config().max_route_hops;
  send_msg(contact, m);
}

void dr_peer::announce_leave() {
  if (is_root()) return;  // nobody to notify; children self-repair
  const auto& t = inst(top());
  dr_msg m;
  m.kind = msg_kind::leave;
  m.subject = pid();
  m.h = top();
  m.hops_left = 1;
  send_msg(t.parent, m);
}

void dr_peer::leave_with_handoff() {
  // Replace this peer's instance chain with a chain of elected leaders,
  // top-down.  At each height h the group C^h_p minus this peer elects a
  // leader (Fig. 6 rule) that takes over the instance; the leader at h is
  // wired as a child of the leader at h+1 (or of the old parent at the
  // top), so every subtree stays connected.
  peer_id upper = kNoPeer;  // leader elected one level above
  const auto heights = instance_heights();
  for (auto it = heights.rbegin(); it != heights.rend(); ++it) {
    const auto h = *it;
    if (h == 0) break;
    auto* ins = find_inst(h);
    if (ins == nullptr) continue;

    std::vector<peer_id> members;
    std::vector<box> mbrs;
    for (const auto c : ins->children) {
      if (c == pid() || !sees(c)) continue;
      const auto* ci = overlay_.peer(c).find_inst(h - 1);
      if (ci == nullptr) continue;
      members.push_back(c);
      mbrs.push_back(ci->mbr);
    }
    if (members.empty()) continue;  // degenerate group: nothing to save

    const auto leader = elect(members, mbrs);
    auto& lp = overlay_.peer(leader);
    auto& li = lp.ensure_inst(h);
    li.children = members;
    li.mbr = box::empty();
    for (std::size_t i = 0; i < members.size(); ++i) {
      li.mbr = join(li.mbr, mbrs[i]);
      if (auto* ci = overlay_.peer(members[i]).find_inst(h - 1)) {
        ci->parent = leader;
      }
    }
    li.underloaded = li.children.size() < overlay_.config().min_children;
    lp.rebuild_summary(h);
    overlay_.mark_dirty(leader, h);
    for (const auto c : members) overlay_.mark_dirty(c, h - 1);

    if (upper == kNoPeer) {
      // Topmost instance: splice the leader where this peer was.
      const auto old_parent = ins->parent;
      if (old_parent == pid()) {
        li.parent = leader;  // the leader becomes the new root
      } else {
        li.parent = old_parent;
        if (old_parent != kNoPeer && sees(old_parent)) {
          if (auto* pi = overlay_.peer(old_parent).find_inst(h + 1)) {
            if (pi->remove_child(pid())) pi->add_child(leader);
            overlay_.peer(old_parent).compute_mbr(h + 1);
            overlay_.mark_dirty(old_parent, h + 1);
          }
        }
      }
    } else {
      li.parent = upper;
      if (auto* ui = overlay_.peer(upper).find_inst(h + 1)) {
        ui->remove_child(pid());
        ui->add_child(leader);
        overlay_.peer(upper).compute_mbr(h + 1);
        ui->underloaded =
            ui->children.size() < overlay_.config().min_children;
        overlay_.mark_dirty(upper, h + 1);
      }
    }
    upper = leader;
  }
}

void dr_peer::on_timer(std::uint64_t timer_type) {
  // Dirty-mode one-shots stamp their arming generation into the high 32
  // bits of the type (full mode's periodic carries plain kTimerStabilize,
  // i.e. generation bits 0), so both modes dispatch on the low half.
  if ((timer_type & 0xffffffffull) != kTimerStabilize) return;
  if (overlay_.config().stabilize == stabilize_mode::dirty) {
    stab_on_fire(static_cast<std::uint32_t>(timer_type >> 32));
  } else {
    stabilize_pass();
  }
}

bool dr_peer::sees(peer_id q) const { return overlay_.reachable(pid(), q); }

void dr_peer::send_msg(peer_id to, dr_msg m) {
  if (to == kNoPeer) return;
  sim().send<dr_msg>(id(), to, static_cast<std::uint64_t>(m.kind),
                     std::move(m));
}

void dr_peer::send_event(peer_id to, const dr_event_msg& m) {
  if (to == kNoPeer) return;
  sim().send<dr_event_msg>(id(), to, static_cast<std::uint64_t>(m.kind), m);
}

void dr_peer::send_batch(peer_id to, const dr_batch_msg& m) {
  if (to == kNoPeer) return;
  sim().send_prefix<dr_batch_msg>(id(), to, static_cast<std::uint64_t>(m.kind),
                                  m, dr_batch_msg::bytes_for(m.count));
}

void dr_peer::on_message(sim::process_id from, std::uint64_t type,
                         const sim::envelope& msg) {
  // The wire type doubles as the msg_kind (send_msg/send_event/send_batch
  // all stamp it), so the payload struct can differ per kind: the event
  // hot path rides the lean dr_event_msg, batches ride the variable-size
  // dr_batch_msg, everything else the full dr_msg.
  switch (static_cast<msg_kind>(type)) {
    case msg_kind::event_up: {
      const auto* m = msg.visit<dr_event_msg>();
      DRT_EXPECT(m != nullptr);
      handle_event_up(static_cast<peer_id>(from), *m);
      return;
    }
    case msg_kind::event_down: {
      const auto* m = msg.visit<dr_event_msg>();
      DRT_EXPECT(m != nullptr);
      handle_event_down(*m);
      return;
    }
    case msg_kind::batch_up: {
      const auto* m = msg.visit<dr_batch_msg>();
      DRT_EXPECT(m != nullptr);
      handle_batch_up(static_cast<peer_id>(from), *m);
      return;
    }
    case msg_kind::batch_down: {
      const auto* m = msg.visit<dr_batch_msg>();
      DRT_EXPECT(m != nullptr);
      handle_batch_down(*m);
      return;
    }
    default: break;
  }
  const auto* mp = msg.visit<dr_msg>();
  DRT_EXPECT(mp != nullptr);
  const auto& m = *mp;
  switch (m.kind) {
    case msg_kind::join_request: handle_join(m); break;
    case msg_kind::add_child: handle_add_child(m); break;
    case msg_kind::leave: handle_leave(m); break;
    case msg_kind::check_structure: handle_check_structure_msg(m); break;
    case msg_kind::initiate_new_connection:
      handle_initiate_new_connection(m);
      break;
    case msg_kind::search_up: handle_search_up(m); break;
    case msg_kind::search_down: handle_search_down(m); break;
    case msg_kind::search_hit:
      overlay_.record_search_hit(m.query_id, m.subject, m.hop);
      break;
    default: break;
  }
}

// -------------------------------------------------------- join (Fig. 8)

void dr_peer::handle_join(const dr_msg& m) {
  if (m.subject == pid()) return;  // own probe came back around
  if (!sees(m.subject)) return;
  if (m.hops_left == 0) return;  // stabilization will retry

  if (m.descending) {
    descend_join(top(), m);
    return;
  }

  // Ascending phase: relay toward the root ("the joining subscriber is
  // recursively redirected upward the tree until it reaches the root").
  if (!is_root() && overlay_.config().join_via_root) {
    const auto parent = inst(top()).parent;
    if (parent != kNoPeer && parent != pid() && sees(parent)) {
      dr_msg fwd = m;
      --fwd.hops_left;
      send_msg(parent, fwd);
      return;
    }
    // Broken parent link: act as a fragment root below.
  }

  const std::size_t mine = top();
  if (m.h < mine) {
    dr_msg fwd = m;
    fwd.descending = true;
    descend_join(mine, fwd);
  } else if (m.h == mine) {
    // Two fragments of equal height merge under a freshly elected root.
    // Only the smaller id absorbs, so two roots probing each other
    // concurrently cannot build a cycle.
    if (pid() < m.subject) root_grow(m);
  } else {
    // The joining fragment is taller: reverse roles and join *it*.
    dr_msg reversed;
    reversed.kind = msg_kind::join_request;
    reversed.subject = pid();
    reversed.h = mine;
    reversed.mbr = inst(mine).mbr;
    reversed.hops_left = overlay_.config().max_route_hops;
    send_msg(m.subject, reversed);
  }
}

void dr_peer::descend_join(std::size_t h, dr_msg m) {
  // Route the joining subtree (height m.h) down from this peer's instance
  // at height h until reaching the last level above it.
  while (true) {
    auto* ins = find_inst(h);
    if (ins == nullptr || h <= m.h) return;  // corrupted route: retry later
    // "adjusts its MBR in order to include the new subscription"
    ins->mbr = join(ins->mbr, m.mbr);
    summary_mark(*ins, m.mbr);
    overlay_.mark_dirty(pid(), h);  // MBR grew on the descent path
    if (h == m.h + 1) {
      add_child_at(m.h, m.subject, m.mbr);
      return;
    }
    const auto best = choose_best_child(h, m.mbr);
    if (best == kNoPeer) return;  // childless interior: corrupt, bail out
    if (best == pid()) {
      --h;  // own lower instance: continue locally
      continue;
    }
    dr_msg fwd = m;
    fwd.descending = true;
    if (fwd.hops_left == 0) return;
    --fwd.hops_left;
    send_msg(best, fwd);
    return;
  }
}

peer_id dr_peer::choose_best_child(std::size_t h, const box& r) const {
  // Guttman ChooseLeaf criterion: least MBR enlargement, ties by area.
  const auto* ins = find_inst(h);
  if (ins == nullptr) return kNoPeer;
  peer_id best = kNoPeer;
  double best_grow = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto q : ins->children) {
    const box* qmbr = nullptr;
    if (q == pid()) {
      const auto* lower = find_inst(h - 1);
      if (lower == nullptr) continue;
      qmbr = &lower->mbr;
    } else {
      if (!sees(q)) continue;
      const auto* lower = overlay_.peer(q).find_inst(h - 1);
      if (lower == nullptr) continue;
      qmbr = &lower->mbr;
    }
    const auto clamped = qmbr->clamped(overlay_.config().workspace);
    const double grow = clamped.enlargement(r.clamped(overlay_.config().workspace));
    const double area = clamped.area();
    if (grow < best_grow || (grow == best_grow && area < best_area) ||
        (grow == best_grow && area == best_area && q < best)) {
      best_grow = grow;
      best_area = area;
      best = q;
    }
  }
  return best;
}

void dr_peer::root_grow(const dr_msg& m) {
  // Merge a same-height fragment rooted at m.subject: elect the new root
  // among the two, which creates an instance one level up with both as
  // children (the bootstrap case and Create_Root of Fig. 8).
  const std::size_t h = top();
  const auto q = m.subject;
  auto& qp = overlay_.peer(q);
  // Stale probe: the fragment has grown/shrunk since it was sent.
  if (!qp.has_instance(h) || qp.top() != h) return;

  const auto winner =
      elect({pid(), q}, {inst(h).mbr, qp.inst(h).mbr});
  auto& wp = overlay_.peer(winner);
  auto& wi = wp.ensure_inst(h + 1);
  wi.parent = winner;
  wi.children.clear();
  wi.add_child(pid());
  wi.add_child(q);
  wi.mbr = join(inst(h).mbr, qp.inst(h).mbr);
  wi.underloaded = wi.children.size() < overlay_.config().min_children;
  wp.rebuild_summary(h + 1);
  inst(h).parent = winner;
  qp.inst(h).parent = winner;
  overlay_.mark_dirty(pid(), h);
  overlay_.mark_dirty(q, h);
  overlay_.mark_dirty(winner, h + 1);
}

void dr_peer::add_child_at(std::size_t t, peer_id q, const box& q_mbr) {
  if (q == pid() || !sees(q)) return;
  // Stale request: the subject is no longer a subtree root of height t.
  if (overlay_.peer(q).top() != t) return;
  if (!has_instance(t + 1)) {
    if (is_root_at(t) ) {
      // A root leaf/low fragment accepting a same-height sibling.
      dr_msg m;
      m.subject = q;
      m.h = t;
      m.mbr = q_mbr;
      root_grow(m);
      return;
    }
    return;  // cannot attach here; the subject's stabilizer will retry
  }
  auto& ins = inst(t + 1);
  auto& qp = overlay_.peer(q);
  if (ins.has_child(q)) {
    if (auto* qi = qp.find_inst(t)) qi->parent = pid();
    compute_mbr(t + 1);
    overlay_.mark_dirty(pid(), t + 1);
    overlay_.mark_dirty(q, t);
    return;
  }
  if (ins.children.size() < overlay_.config().max_children) {
    // Adjust_Children(p, q, l).
    ins.add_child(q);
    auto& qi = qp.ensure_inst(t);
    qi.parent = pid();
    ins.mbr = join(ins.mbr, qi.mbr.is_empty() ? q_mbr : qi.mbr);
    summary_mark(ins, qi.mbr.is_empty() ? q_mbr : qi.mbr);
    ins.underloaded = ins.children.size() < overlay_.config().min_children;
    overlay_.mark_dirty(pid(), t + 1);
    overlay_.mark_dirty(q, t);
    // Fig. 8: "if Is_Better_MBR_Cover(p, q, l) then Adjust_Parent".
    if (is_better_mbr_cover(t + 1, q)) promote_child(t + 1, q);
  } else {
    split_and_push(t + 1, q, q_mbr);
  }
}

void dr_peer::split_and_push(std::size_t h, peer_id extra,
                             const box& extra_mbr) {
  auto& ins = inst(h);
  // Pack the live children plus the incoming one for the split policy.
  std::vector<rtree::split_entry<spatial::kDims>> entries;
  for (const auto c : ins.children) {
    const box* cmbr = nullptr;
    if (c == pid()) {
      const auto* lower = find_inst(h - 1);
      if (lower == nullptr) continue;
      cmbr = &lower->mbr;
    } else {
      if (!sees(c)) continue;
      const auto* lower = overlay_.peer(c).find_inst(h - 1);
      if (lower == nullptr) continue;
      cmbr = &lower->mbr;
    }
    entries.push_back({cmbr->clamped(overlay_.config().workspace), c});
  }
  entries.push_back({extra_mbr.clamped(overlay_.config().workspace), extra});

  const auto m_min = overlay_.config().min_children;
  if (entries.size() <= overlay_.config().max_children ||
      entries.size() < 2 * m_min) {
    // Dead children freed enough slots (or too few live entries to split
    // legally): attach directly.
    ins.children.clear();
    for (const auto& e : entries) ins.children.push_back(
        static_cast<peer_id>(e.handle));
    auto& qi = overlay_.peer(extra).ensure_inst(h - 1);
    qi.parent = pid();
    compute_mbr(h);
    ins.underloaded = ins.children.size() < m_min;
    overlay_.mark_dirty(pid(), h);
    overlay_.mark_dirty(extra, h - 1);
    return;
  }

  auto outcome = rtree::split_entries<spatial::kDims>(
      std::move(entries), m_min, overlay_.config().split);
  // The group containing this peer's own lower instance stays here so the
  // "recursively its own child" chain is preserved.
  auto in_group = [&](const std::vector<rtree::split_entry<spatial::kDims>>& g) {
    for (const auto& e : g) {
      if (static_cast<peer_id>(e.handle) == pid()) return true;
    }
    return false;
  };
  if (in_group(outcome.right)) std::swap(outcome.left, outcome.right);

  ins.children.clear();
  for (const auto& e : outcome.left) {
    const auto c = static_cast<peer_id>(e.handle);
    ins.children.push_back(c);
    if (c == pid()) continue;
    auto& ci = overlay_.peer(c).ensure_inst(h - 1);
    ci.parent = pid();
    overlay_.mark_dirty(c, h - 1);
  }
  compute_mbr(h);
  ins.underloaded = ins.children.size() < m_min;
  overlay_.mark_dirty(pid(), h);

  // Elect the right group's leader (Fig. 6 root election) and hand it the
  // group.
  std::vector<peer_id> members;
  std::vector<box> mbrs;
  for (const auto& e : outcome.right) {
    members.push_back(static_cast<peer_id>(e.handle));
    mbrs.push_back(e.mbr);
  }
  const auto leader = elect(members, mbrs);
  auto& lp = overlay_.peer(leader);
  auto& li = lp.ensure_inst(h);
  li.children.clear();
  li.mbr = box::empty();
  for (std::size_t i = 0; i < members.size(); ++i) {
    li.children.push_back(members[i]);
    li.mbr = join(li.mbr, mbrs[i]);
    if (members[i] == leader) continue;
    auto& ci = overlay_.peer(members[i]).ensure_inst(h - 1);
    ci.parent = leader;
    overlay_.mark_dirty(members[i], h - 1);
  }
  if (auto* own = lp.find_inst(h - 1)) own->parent = leader;
  li.underloaded = li.children.size() < m_min;
  lp.rebuild_summary(h);
  overlay_.mark_dirty(leader, h);

  if (is_root_at(h)) {
    // Root split: "this process eventually stops with the split of the
    // root, which generates ... the election of a new root".
    const auto winner = elect({pid(), leader}, {ins.mbr, li.mbr});
    auto& wp = overlay_.peer(winner);
    auto& wi = wp.ensure_inst(h + 1);
    wi.parent = winner;
    wi.children.clear();
    wi.add_child(pid());
    wi.add_child(leader);
    wi.mbr = join(ins.mbr, li.mbr);
    wi.underloaded = wi.children.size() < m_min;
    wp.rebuild_summary(h + 1);
    ins.parent = winner;
    li.parent = winner;
    overlay_.mark_dirty(winner, h + 1);
  } else {
    // Push the new sibling up: "the other subtree is pushed backward to
    // p's parent".
    li.parent = ins.parent;  // provisional; confirmed by the ADD_CHILD
    dr_msg m;
    m.kind = msg_kind::add_child;
    m.subject = leader;
    m.h = h;
    m.mbr = li.mbr;
    m.hops_left = 1;
    send_msg(ins.parent, m);
  }
}

// --------------------------------------------------- election (Fig. 6)

peer_id dr_peer::elect(const std::vector<peer_id>& members,
                       const std::vector<box>& mbrs) const {
  DRT_EXPECT(!members.empty());
  DRT_EXPECT(members.size() == mbrs.size());
  const auto policy = overlay_.config().election;
  if (policy == election_policy::random_member) {
    // Deterministic under the simulator's seeded RNG.
    return members[overlay_.rng().index(members.size())];
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < members.size(); ++i) {
    const double a = coverage_area(mbrs[i]);
    const double b = coverage_area(mbrs[best]);
    const bool better = policy == election_policy::largest_mbr
                            ? a > b
                            : a < b;
    if (better || (a == b && members[i] < members[best])) best = i;
  }
  return members[best];
}

double dr_peer::coverage_area(const box& b) const {
  return b.clamped(overlay_.config().workspace).area();
}

bool dr_peer::is_better_mbr_cover(std::size_t h, peer_id q) const {
  // Is_Better_MBR_Cover(p, q, l): compare q's MBR with this peer's own
  // lower-instance MBR (both are children at h-1).
  if (q == pid() || !sees(q)) return false;
  const auto policy = overlay_.config().election;
  if (policy == election_policy::random_member) return false;
  const auto* qi = overlay_.peer(q).find_inst(h - 1);
  if (qi == nullptr) return false;
  const auto* own = find_inst(h - 1);
  if (own == nullptr) return true;  // own chain broken: any child beats us
  const double qa = coverage_area(qi->mbr);
  const double pa = coverage_area(own->mbr);
  return policy == election_policy::largest_mbr ? qa > pa : qa < pa;
}

void dr_peer::promote_child(std::size_t h, peer_id q) {
  // Adjust_Parent(p, q, l), generalized so instance chains stay
  // contiguous: q replaces this peer at every height in [h, top()].
  if (q == pid() || !sees(q) || !has_instance(h)) return;
  auto& qp = overlay_.peer(q);
  const std::size_t t = top();
  for (std::size_t x = h; x <= t; ++x) {
    auto it = std::find_if(levels_.begin(), levels_.end(),
                           [x](const level_ref& r) { return r.height == x; });
    if (it == levels_.end()) continue;
    instance moved = std::move(overlay_.arena().at(it->slot));
    overlay_.test_and_clear_dirty(it->slot);  // the slot may be reused
    overlay_.arena().release(it->slot);
    levels_.erase(it);
    // Children at x-1 >= h were this peer's instances and move to q too:
    // rename the membership entry.
    if (x > h) {
      for (auto& c : moved.children) {
        if (c == pid()) c = q;
      }
    }
    // Rewire parent pointers of all (other) children.
    for (const auto c : moved.children) {
      if (c == q) continue;
      instance* ci = nullptr;
      if (c == pid()) {
        ci = find_inst(x - 1);
      } else if (sees(c)) {
        ci = overlay_.peer(c).find_inst(x - 1);
      }
      if (ci != nullptr) {
        ci->parent = q;
        overlay_.mark_dirty(c, x - 1);
      }
    }
    // Parent link of the moved instance.
    peer_id new_parent;
    if (x < t) {
      new_parent = q;  // own chain continues upward (now q's)
    } else if (moved.parent == pid()) {
      new_parent = q;  // p was the root: q becomes the root
    } else {
      new_parent = moved.parent;
      // Fix the (distinct) parent's membership list directly.
      if (new_parent != kNoPeer && sees(new_parent)) {
        if (auto* up = overlay_.peer(new_parent).find_inst(x + 1)) {
          if (up->remove_child(pid())) up->add_child(q);
          overlay_.mark_dirty(new_parent, x + 1);
        }
      }
    }
    moved.parent = new_parent;
    // FP-reorganization counters do not transfer meaningfully.
    moved.fp_self = 0;
    moved.events_seen = 0;
    moved.fp_child_would.clear();
    auto& qi = qp.ensure_inst(x);
    qi = std::move(moved);
    if (auto* qlow = qp.find_inst(x - 1); qlow != nullptr && x == h) {
      qi.add_child(q);  // ensure q's self-child link at the seam
      qlow->parent = q;
    }
    qp.compute_mbr(x);
    overlay_.mark_dirty(q, x);
  }
  overlay_.mark_dirty(pid(), 0);  // this peer's chain shrank
}

// ----------------------------------------------------- leave (Fig. 9)

void dr_peer::handle_leave(const dr_msg& m) {
  auto* ins = find_inst(m.h + 1);
  if (ins == nullptr) return;
  if (ins->remove_child(m.subject)) {
    overlay_.mark_dirty(pid(), m.h + 1);
    compute_mbr(m.h + 1);
    // Fig. 9 re-checks its own state right away.
    check_children(m.h + 1);
    check_parent(m.h + 1);
  }
  auto* again = find_inst(m.h + 1);
  if (again == nullptr) return;
  if (again->children.size() < overlay_.config().min_children &&
      !is_root_at(m.h + 1)) {
    dr_msg up;
    up.kind = msg_kind::check_structure;
    up.h = m.h + 2;
    up.hops_left = 1;
    send_msg(again->parent, up);
  }
}

void dr_peer::handle_check_structure_msg(const dr_msg& m) {
  // Message-driven (not inside this peer's own pass): anything the module
  // changes must reschedule us, same as the pass-end safety net does.
  overlay_.mark_dirty(pid(), m.h);
  check_structure(m.h);
}

void dr_peer::handle_add_child(const dr_msg& m) {
  add_child_at(m.h, m.subject, m.mbr);
}

void dr_peer::handle_initiate_new_connection(const dr_msg& m) {
  // Dissolve the subtree rooted at this peer's instance at m.h: notify
  // the children of every instance down this peer's own chain, drop all
  // non-leaf instances, and rejoin as a bare leaf through the oracle
  // (Fig. 14).
  for (std::size_t x = std::min(m.h, top()); x >= 1; --x) {
    if (const auto* ins = find_inst(x)) {
      for (const auto q : ins->children) {
        if (q == pid() || !sees(q)) continue;
        dr_msg fwd;
        fwd.kind = msg_kind::initiate_new_connection;
        fwd.h = x - 1;
        fwd.hops_left = 1;
        send_msg(q, fwd);
      }
    }
    if (x == 1) break;
  }
  while (top() > 0) erase_inst(top());
  rejoin_fragment(0);
}

void dr_peer::rejoin_fragment(std::size_t h) {
  auto* ins = find_inst(h);
  if (ins == nullptr) return;
  ++repairs_.rejoins;
  overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairRejoin, h);
  ins->parent = pid();  // "the node sets itself as parent"
  overlay_.mark_dirty(pid(), h);  // detached fragment: keep retrying
  const auto contact = overlay_.contact_node(pid());
  if (contact == kNoPeer || contact == pid()) return;
  dr_msg m;
  m.kind = msg_kind::join_request;
  m.subject = pid();
  m.h = h;
  m.mbr = ins->mbr;
  m.hops_left = overlay_.config().max_route_hops;
  send_msg(contact, m);
}

// ------------------------------------------- stabilization (Figs. 10-14)

void dr_peer::compute_mbr(std::size_t h) {
  auto* ins = find_inst(h);
  if (ins == nullptr) return;
  if (h == 0) {
    ins->mbr = filter_;
    rebuild_summary(0);
    return;
  }
  auto r = box::empty();
  for (const auto q : ins->children) {
    const instance* qi = nullptr;
    if (q == pid()) {
      qi = find_inst(h - 1);
    } else if (sees(q)) {
      qi = overlay_.peer(q).find_inst(h - 1);
    }
    if (qi != nullptr) r = join(r, qi->mbr);
  }
  const bool changed = ins->mbr != r;
  ins->mbr = r;
  // Quiescent instances skip the full re-rasterization on most rounds:
  // eager marks keep an unchanged-MBR summary sound, so only periodic
  // tightening is needed (stale bits of departed subtrees).
  constexpr std::uint64_t kSummaryRefreshStride = 8;
  if (changed || ++summary_refresh_tick_ % kSummaryRefreshStride == 0) {
    rebuild_summary(h);
  }
}

// ------------------------------------- subtree summaries (DESIGN.md §9)

void dr_peer::rebuild_summary(std::size_t h) {
  const auto& cfg = overlay_.config();
  if (cfg.summary == summary_mode::mbr) return;
  auto* ins = find_inst(h);
  if (ins == nullptr) return;
  auto& s = ins->summary;
  s.reset_frame(ins->mbr.clamped(cfg.workspace), cfg.summary_grid);
  if (!s.valid()) return;
  if (h == 0) {
    s.mark_box(filter_);
    return;
  }
  for (const auto q : ins->children) {
    const instance* qi = nullptr;
    if (q == pid()) {
      qi = find_inst(h - 1);
    } else if (sees(q)) {
      qi = overlay_.peer(q).find_inst(h - 1);
    }
    if (qi != nullptr) s.merge(qi->summary, qi->mbr);
  }
}

void dr_peer::summary_mark(instance& ins, const box& b) {
  if (overlay_.config().summary == summary_mode::mbr) return;
  ins.summary.mark_box(b);
}

bool dr_peer::admits(const instance& ins, const spatial::pt& v) const {
  const auto mode = overlay_.config().summary;
  if (mode == summary_mode::mbr) return ins.mbr.contains(v);
  return summary_admits(mode, ins.summary, ins.mbr, v);
}

void dr_peer::check_mbr(std::size_t h) {
  // Fig. 10: leaves restore filter, interiors recompute the union.
  const auto* ins = find_inst(h);
  const auto before = ins == nullptr ? box::empty() : ins->mbr;
  compute_mbr(h);
  ins = find_inst(h);
  if (ins != nullptr && !(ins->mbr == before)) {
    ++repairs_.mbr_fixed;
    overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairMbr, h);
  }
}

void dr_peer::check_parent(std::size_t h) {
  auto* ins = find_inst(h);
  if (ins == nullptr) return;

  if (h < top()) {
    // Non-top instance: its parent is this peer's own next instance —
    // repairable locally without messages.
    if (ins->parent != pid()) {
      ins->parent = pid();
      ++repairs_.own_chain_fixed;
      overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairOwnChain, h);
    }
    if (auto* up = find_inst(h + 1); up != nullptr && !up->has_child(pid())) {
      up->add_child(pid());
      ++repairs_.own_chain_fixed;
      overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairOwnChain, h);
    }
    return;
  }

  const auto parent = ins->parent;
  if (parent == pid()) return;  // root claim; fragment merge via probes
  if (parent == kNoPeer || !sees(parent)) {
    rejoin_fragment(h);
    return;
  }
  // Fig. 11: verify presence in the parent's children set.
  const auto* pi = overlay_.peer(parent).find_inst(h + 1);
  if (pi == nullptr || !pi->has_child(pid())) rejoin_fragment(h);
}

void dr_peer::check_children(std::size_t h) {
  if (h == 0) return;
  auto* ins = find_inst(h);
  if (ins == nullptr) return;

  // Fig. 12: discard children that are dead, lack the instance, or point
  // to a different parent.
  std::vector<peer_id> keep;
  for (const auto q : ins->children) {
    if (std::find(keep.begin(), keep.end(), q) != keep.end()) continue;
    if (q == pid()) {
      if (find_inst(h - 1) != nullptr) keep.push_back(q);
      continue;
    }
    if (!sees(q)) continue;
    const auto* qi = overlay_.peer(q).find_inst(h - 1);
    if (qi == nullptr) continue;
    if (qi->parent != pid()) continue;  // "simply discards the child"
    keep.push_back(q);
  }
  if (ins->children.size() != keep.size()) {
    repairs_.children_discarded += ins->children.size() - keep.size();
    overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairChildDiscard,
                        h);
  }
  ins->children = std::move(keep);

  // Self-child link: an interior instance always contains this peer's own
  // next-lower instance.
  if (auto* own = find_inst(h - 1);
      own != nullptr && own->parent == pid()) {
    ins->add_child(pid());
  }

  compute_mbr(h);
  ins->underloaded =
      ins->children.size() < overlay_.config().min_children;

  // Degenerate instances collapse so singleton chains cannot linger.
  if (ins->children.empty()) {
    // Childless interior: dissolve this and everything above.
    while (top() >= h) {
      const auto t = top();
      if (t == 0) break;
      erase_inst(t);
      ++repairs_.instances_dissolved;
      overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairDissolve, t);
    }
    return;
  }
  if (is_root_at(h) && ins->children.size() == 1 && h == top() && h > 0) {
    // Root with a single child: the child becomes the root (tree shrinks).
    const auto only = ins->children.front();
    if (only == pid()) {
      erase_inst(h);
      if (auto* lower = find_inst(h - 1)) lower->parent = pid();
    } else if (sees(only)) {
      if (auto* ci = overlay_.peer(only).find_inst(h - 1)) {
        ci->parent = only;
        erase_inst(h);
      }
    }
  }
}

void dr_peer::check_cover(std::size_t h) {
  // Fig. 13: if some child covers the subtree better than this peer's own
  // lower instance, exchange roles with the best such child.
  const auto* ins = find_inst(h);
  if (ins == nullptr || h == 0) return;
  const auto policy = overlay_.config().election;
  if (policy == election_policy::random_member) return;
  const bool want_large = policy == election_policy::largest_mbr;
  const auto* own = find_inst(h - 1);
  peer_id best = kNoPeer;
  double best_area = 0.0;
  for (const auto q : ins->children) {
    if (q == pid() || !sees(q)) continue;
    const auto* qi = overlay_.peer(q).find_inst(h - 1);
    if (qi == nullptr) continue;
    const double a = coverage_area(qi->mbr);
    const bool beats_own =
        own == nullptr || (want_large ? a > coverage_area(own->mbr)
                                      : a < coverage_area(own->mbr));
    const bool beats_best =
        best == kNoPeer || (want_large ? a > best_area : a < best_area);
    if (beats_own && beats_best) {
      best = q;
      best_area = a;
    }
  }
  if (best != kNoPeer) {
    ++repairs_.cover_promotions;
    overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairCover, h);
    promote_child(h, best);
  }
}

peer_id dr_peer::search_compaction_candidate(std::size_t h,
                                             peer_id q) const {
  const auto* ins = find_inst(h);
  if (ins == nullptr) return kNoPeer;
  const auto* qi = overlay_.peer(q).find_inst(h - 1);
  if (qi == nullptr) return kNoPeer;

  peer_id best = kNoPeer;
  double best_waste = std::numeric_limits<double>::infinity();
  for (const auto t : ins->children) {
    if (t == q) continue;
    const instance* ti = nullptr;
    if (t == pid()) {
      ti = find_inst(h - 1);
    } else if (sees(t)) {
      ti = overlay_.peer(t).find_inst(h - 1);
    }
    if (ti == nullptr) continue;
    // Merged set must respect the M bound.
    std::size_t merged = ti->children.size();
    for (const auto c : qi->children) {
      if (!ti->has_child(c)) ++merged;
    }
    if (merged > overlay_.config().max_children) continue;
    const double waste = coverage_area(join(ti->mbr, qi->mbr)) -
                         coverage_area(ti->mbr) - coverage_area(qi->mbr);
    if (waste < best_waste || (waste == best_waste && t < best)) {
      best_waste = waste;
      best = t;
    }
  }
  return best;
}

peer_id dr_peer::best_set_cover(std::size_t h, peer_id s, peer_id t) const {
  // Best_Set_Cover: who leaves less of the merged children's MBR
  // uncovered by its own filter.
  const auto* si = overlay_.peer(s).find_inst(h);
  const auto* ti = overlay_.peer(t).find_inst(h);
  if (si == nullptr || ti == nullptr) return si != nullptr ? s : t;
  const auto set_mbr = join(si->mbr, ti->mbr);
  const auto uncovered = [&](peer_id x) {
    const auto& f = overlay_.peer(x).filter();
    return coverage_area(set_mbr) -
           set_mbr.clamped(overlay_.config().workspace).overlap_area(
               f.clamped(overlay_.config().workspace));
  };
  const double us = uncovered(s);
  const double ut = uncovered(t);
  if (us != ut) return us < ut ? s : t;
  return s < t ? s : t;
}

void dr_peer::compact(std::size_t h, peer_id q, peer_id cand) {
  // Never dissolve this peer's own lower instance: it anchors the
  // "recursively its own child" chain, so it may only absorb.
  peer_id leader;
  if (cand == pid()) {
    leader = pid();
  } else if (q == pid()) {
    leader = pid();
  } else {
    leader = best_set_cover(h - 1, q, cand);
  }
  const peer_id absorbed = (leader == q) ? cand : q;
  merge_children(h - 1, leader, absorbed);
}

void dr_peer::merge_children(std::size_t h, peer_id leader,
                             peer_id absorbed) {
  // Merge_Children(s, t, l): the leader's instance at `h` absorbs the
  // other's children; the absorbed instance dissolves.
  if (leader == absorbed) return;
  auto& lp = overlay_.peer(leader);
  auto& ap = overlay_.peer(absorbed);
  auto* li = lp.find_inst(h);
  auto* ai = ap.find_inst(h);
  if (li == nullptr || ai == nullptr) return;

  for (const auto c : ai->children) {
    if (c == absorbed) {
      // The absorbed peer's own lower instance becomes a plain child.
      if (auto* low = ap.find_inst(h - 1)) {
        low->parent = leader;
        li->add_child(absorbed);
        overlay_.mark_dirty(absorbed, h - 1);
      }
      continue;
    }
    li->add_child(c);
    instance* ci = nullptr;
    if (c == leader) {
      ci = lp.find_inst(h - 1);
    } else if (sees(c)) {
      ci = overlay_.peer(c).find_inst(h - 1);
    }
    if (ci != nullptr) {
      ci->parent = leader;
      overlay_.mark_dirty(c, h - 1);
    }
  }
  ap.erase_inst(h);
  lp.compute_mbr(h);
  li->underloaded =
      li->children.size() < overlay_.config().min_children;
  overlay_.mark_dirty(leader, h);

  // Update this (parent) node's own children list.
  if (auto* mine = find_inst(h + 1)) {
    mine->remove_child(absorbed);
    if (!mine->has_child(leader)) mine->add_child(leader);
    if (auto* lead_inst = lp.find_inst(h)) lead_inst->parent = pid();
    compute_mbr(h + 1);
    overlay_.mark_dirty(pid(), h + 1);
  }
}

bool dr_peer::redistribute(std::size_t h, peer_id needy) {
  // Move children from the richest sibling (one with more than m
  // children) into the underloaded child until it reaches m.  Children
  // whose MBR is enlarged least by the move go first.
  auto* ins = find_inst(h);
  if (ins == nullptr) return false;
  const auto m_min = overlay_.config().min_children;
  instance* needy_inst = (needy == pid())
                             ? find_inst(h - 1)
                             : overlay_.peer(needy).find_inst(h - 1);
  if (needy_inst == nullptr) return false;

  bool moved_any = false;
  while (needy_inst->children.size() < m_min) {
    // Pick the richest donor sibling.
    peer_id donor = kNoPeer;
    instance* donor_inst = nullptr;
    for (const auto t : ins->children) {
      if (t == needy || !sees(t)) continue;
      auto* ti = (t == pid()) ? find_inst(h - 1)
                              : overlay_.peer(t).find_inst(h - 1);
      if (ti == nullptr || ti->children.size() <= m_min) continue;
      if (donor_inst == nullptr ||
          ti->children.size() > donor_inst->children.size()) {
        donor = t;
        donor_inst = ti;
      }
    }
    if (donor_inst == nullptr) break;

    // Choose the donor's child that the needy MBR swallows most cheaply;
    // the donor's own lower instance must stay (chain anchor).
    peer_id pick = kNoPeer;
    double best_grow = std::numeric_limits<double>::infinity();
    for (const auto c : donor_inst->children) {
      if (c == donor) continue;
      const instance* ci = (c == pid())
                               ? find_inst(h - 2)
                               : (sees(c)
                                      ? overlay_.peer(c).find_inst(h - 2)
                                      : nullptr);
      if (ci == nullptr) continue;
      const double grow = needy_inst->mbr.clamped(overlay_.config().workspace)
                              .enlargement(ci->mbr.clamped(
                                  overlay_.config().workspace));
      if (grow < best_grow || (grow == best_grow && c < pick)) {
        best_grow = grow;
        pick = c;
      }
    }
    if (pick == kNoPeer) break;

    donor_inst->remove_child(pick);
    needy_inst->add_child(pick);
    instance* ci = (pick == pid()) ? find_inst(h - 2)
                                   : overlay_.peer(pick).find_inst(h - 2);
    if (ci != nullptr) ci->parent = needy;
    moved_any = true;
    overlay_.mark_dirty(donor, h - 1);
    overlay_.mark_dirty(needy, h - 1);
    overlay_.mark_dirty(pick, h - 2);

    // Refresh MBRs and flags of both siblings.
    if (donor == pid()) {
      compute_mbr(h - 1);
    } else {
      overlay_.peer(donor).compute_mbr(h - 1);
    }
    donor_inst->underloaded = donor_inst->children.size() < m_min;
    if (needy == pid()) {
      compute_mbr(h - 1);
    } else {
      overlay_.peer(needy).compute_mbr(h - 1);
    }
    needy_inst->underloaded = needy_inst->children.size() < m_min;
  }
  if (moved_any) compute_mbr(h);
  return moved_any && needy_inst->children.size() >= m_min;
}

void dr_peer::check_structure(std::size_t h) {
  // Fig. 14: compact underloaded children; dissolve-and-rejoin as a last
  // resort.  Children of an instance at h live at h-1 and their children
  // at h-2, so compaction is meaningful for h >= 2.
  if (h < 2) return;
  auto* ins = find_inst(h);
  if (ins == nullptr) return;

  // Bounded loop: each merge or redistribution strictly reduces the
  // number of underloaded children.
  for (std::size_t guard = 0; guard < overlay_.config().max_children + 2;
       ++guard) {
    peer_id underloaded_child = kNoPeer;
    for (const auto q : ins->children) {
      if (!sees(q)) continue;
      const auto* qi = (q == pid()) ? find_inst(h - 1)
                                    : overlay_.peer(q).find_inst(h - 1);
      if (qi == nullptr) continue;
      if (qi->children.size() < overlay_.config().min_children) {
        underloaded_child = q;
        break;
      }
    }
    if (underloaded_child == kNoPeer) return;
    const auto cand = search_compaction_candidate(h, underloaded_child);
    if (cand != kNoPeer) {
      ++repairs_.compactions;
      overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairCompact, h);
      compact(h, underloaded_child, cand);
    } else if (redistribute(h, underloaded_child)) {
      ++repairs_.redistributions;
      overlay_.trace_emit(obs::trace_kind::repair, pid(), kRepairRedistribute,
                          h);
      // Borrowed children from a rich sibling (the paper's "dispatched to
      // one of p's unsaturated children", in the absorbing direction).
    } else if (underloaded_child == pid()) {
      // This peer's own lower instance anchors its instance chain: it can
      // absorb or borrow but never dissolve.  Nothing fits this round;
      // future joins/leaves will change the balance.
      return;
    } else {
      // No sibling can absorb or donate: dissolve the subtree; its leaves
      // rejoin through the oracle.
      ++repairs_.subtree_dissolutions;
      overlay_.trace_emit(obs::trace_kind::repair, pid(),
                          kRepairSubtreeDissolve, h);
      dr_msg m;
      m.kind = msg_kind::initiate_new_connection;
      m.h = h - 1;
      m.hops_left = 1;
      send_msg(underloaded_child, m);
      ins->remove_child(underloaded_child);
      compute_mbr(h);
    }
    ins = find_inst(h);
    if (ins == nullptr) return;
  }
}

void dr_peer::stabilize_pass() {
  ++overlay_.stab_stats().visited;
  overlay_.trace_emit(obs::trace_kind::stab_begin, pid(), top());
  const auto msgs_before = sim().metrics().messages_sent;
  const auto& r0 = repairs_;
  const auto repairs_before =
      r0.mbr_fixed + r0.own_chain_fixed + r0.rejoins + r0.children_discarded +
      r0.instances_dissolved + r0.cover_promotions + r0.compactions +
      r0.redistributions + r0.subtree_dissolutions;
  const auto& sw = overlay_.config().stabilizers;
  // Snapshot the heights into reusable scratch (modules may erase
  // instances mid-pass; the old per-pass vector allocation is gone).
  heights_scratch_.clear();
  for (const auto& ref : levels_) heights_scratch_.push_back(ref.height);
  // Bottom-up so MBR fixes propagate toward the root within one pass.
  for (const auto h : heights_scratch_) {
    if (!has_instance(h)) continue;  // erased by an earlier module
    if (sw.check_parent) check_parent(h);
    if (!has_instance(h)) continue;
    if (sw.check_children) check_children(h);
    if (!has_instance(h)) continue;
    if (sw.check_mbr) check_mbr(h);
    if (!has_instance(h)) continue;
    if (sw.check_cover) check_cover(h);
    if (!has_instance(h)) continue;
    if (sw.check_structure) check_structure(h);
    if (overlay_.config().fp_reorganization) maybe_reorganize(h);
  }
  // Root probe: lets fragments (including still-detached joiners) find
  // the main structure; a probe landing in our own tree routes back to us
  // and is discarded.
  if (is_root()) {
    const auto contact = overlay_.contact_node(pid());
    if (contact != kNoPeer && contact != pid()) {
      dr_msg m;
      m.kind = msg_kind::join_request;
      m.subject = pid();
      m.h = top();
      m.mbr = inst(top()).mbr;
      m.hops_left = overlay_.config().max_route_hops;
      send_msg(contact, m);
      // Accounted separately so the dirty-mode safety net can tell this
      // steady-state send apart from genuine repair traffic: a stable
      // root's pass always sends its probe, and counting it as "the pass
      // changed something" would re-mark the root forever.
      ++stab_probe_msgs_;
    }
  }
  const auto repairs_after =
      r0.mbr_fixed + r0.own_chain_fixed + r0.rejoins + r0.children_discarded +
      r0.instances_dissolved + r0.cover_promotions + r0.compactions +
      r0.redistributions + r0.subtree_dissolutions;
  overlay_.trace_emit(obs::trace_kind::stab_end, pid(),
                      repairs_after - repairs_before,
                      sim().metrics().messages_sent - msgs_before);
}

// --------------------------------------------- dissemination (§2.3/§3)

bool dr_peer::already_seen(std::uint64_t event_id) {
  for (const auto e : seen_events_) {
    if (e == event_id) return true;
  }
  seen_events_[seen_cursor_] = event_id;
  seen_cursor_ = (seen_cursor_ + 1) % seen_events_.size();
  return false;
}

void dr_peer::deliver_local(const spatial::event& ev, std::size_t hop) {
  overlay_.record_delivery(ev.id, pid(), hop);
}

void dr_peer::publish(const spatial::event& ev) {
  already_seen(ev.id);
  deliver_local(ev, 0);
  const auto k = top();
  record_instance_event(k, ev);
  forward_down(k, ev, 0);
  if (!is_root()) {
    dr_event_msg m;
    m.kind = msg_kind::event_up;
    m.ev = ev;
    m.h = static_cast<std::uint32_t>(k + 1);
    m.hops_left =
        static_cast<std::uint32_t>(overlay_.config().max_route_hops);
    m.hop = 1;
    send_event(inst(k).parent, m);
  }
}

void dr_peer::multi_publish(const spatial::event* evs, std::size_t n) {
  while (n > dr_batch_msg::kMaxEvents) {
    multi_publish(evs, dr_batch_msg::kMaxEvents);
    evs += dr_batch_msg::kMaxEvents;
    n -= dr_batch_msg::kMaxEvents;
  }
  if (n == 0) return;
  const auto k = top();
  for (std::size_t i = 0; i < n; ++i) {
    already_seen(evs[i].id);
    deliver_local(evs[i], 0);
    record_instance_event(k, evs[i]);
  }
  fan_out_batch(k, evs, static_cast<std::uint32_t>(n), 0, kNoPeer);
  if (!is_root()) {
    dr_batch_msg m;
    m.kind = msg_kind::batch_up;
    m.count = static_cast<std::uint32_t>(n);
    m.h = static_cast<std::uint32_t>(k + 1);
    m.hops_left =
        static_cast<std::uint32_t>(overlay_.config().max_route_hops);
    m.hop = 1;
    for (std::size_t i = 0; i < n; ++i) m.events[i] = evs[i];
    send_batch(inst(k).parent, m);
  }
}

void dr_peer::forward_down(std::size_t h, const spatial::event& ev,
                           std::size_t hop) {
  if (h == 0) return;
  const auto* ins = find_inst(h);
  if (ins == nullptr) return;
  fan_out_children(*ins, h, ev, hop, kNoPeer);
}

void dr_peer::fan_out_children(const instance& ins, std::size_t h,
                               const spatial::event& ev, std::size_t hop,
                               peer_id skip) {
  for (const auto q : ins.children) {
    if (q == skip) continue;
    if (q == pid()) {
      const auto* own = find_inst(h - 1);
      if (own != nullptr && admits(*own, ev.value)) {
        record_instance_event(h - 1, ev);
        forward_down(h - 1, ev, hop);
      }
      continue;
    }
    if (!sees(q)) continue;
    const auto* qi = overlay_.peer(q).find_inst(h - 1);
    if (qi == nullptr || !admits(*qi, ev.value)) continue;
    dr_event_msg m;
    m.kind = msg_kind::event_down;
    m.ev = ev;
    m.h = static_cast<std::uint32_t>(h - 1);
    m.hops_left =
        static_cast<std::uint32_t>(overlay_.config().max_route_hops);
    m.hop = static_cast<std::uint32_t>(hop + 1);
    send_event(q, m);
  }
}

void dr_peer::fan_out_batch(std::size_t h, const spatial::event* evs,
                            std::uint32_t n, std::size_t hop, peer_id skip) {
  if (h == 0 || n == 0) return;
  const auto* ins = find_inst(h);
  if (ins == nullptr) return;
  for (const auto q : ins->children) {
    if (q == skip) continue;
    if (q == pid()) {
      const auto* own = find_inst(h - 1);
      if (own == nullptr) continue;
      // Own-chain descent stays in-process: filter into a stack-local
      // sub-batch (recursion depth = tree height, so the stack cost is
      // bounded and tiny).
      spatial::event sub[dr_batch_msg::kMaxEvents];
      std::uint32_t cnt = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!admits(*own, evs[i].value)) continue;
        record_instance_event(h - 1, evs[i]);
        sub[cnt++] = evs[i];
      }
      fan_out_batch(h - 1, sub, cnt, hop, kNoPeer);
      continue;
    }
    if (!sees(q)) continue;
    const auto* qi = overlay_.peer(q).find_inst(h - 1);
    if (qi == nullptr) continue;
    // Split point of the batch protocol: each child gets the subset its
    // summary admits; children admitting nothing are pruned envelope-free.
    dr_batch_msg m;
    m.kind = msg_kind::batch_down;
    m.h = static_cast<std::uint32_t>(h - 1);
    m.hops_left =
        static_cast<std::uint32_t>(overlay_.config().max_route_hops);
    m.hop = static_cast<std::uint32_t>(hop + 1);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (admits(*qi, evs[i].value)) m.events[m.count++] = evs[i];
    }
    if (m.count == 0) continue;
    send_batch(q, m);
  }
}

void dr_peer::handle_event_down(const dr_event_msg& m) {
  if (already_seen(m.ev.id)) return;
  deliver_local(m.ev, m.hop);
  // The addressed instance can have been dissolved by a concurrent
  // promotion/compaction; fall back to the current top so the event still
  // reaches this peer's (re-homed) subtree — no false negatives from
  // in-flight reconfiguration.
  const std::size_t h = std::min<std::size_t>(m.h, top());
  record_instance_event(h, m.ev);
  forward_down(h, m.ev, m.hop);
}

void dr_peer::handle_event_up(peer_id from, const dr_event_msg& m) {
  if (already_seen(m.ev.id)) return;
  deliver_local(m.ev, m.hop);
  peer_id from_child = from;
  std::size_t h = std::min<std::size_t>(m.h, top());  // may have dissolved
  std::size_t hops = m.hops_left;
  while (true) {
    const auto* ins = find_inst(h);
    if (ins == nullptr) return;
    record_instance_event(h, m.ev);
    // "down every sibling subtree encountered on the path to the root".
    fan_out_children(*ins, h, m.ev, m.hop, from_child);
    if (ins->parent == pid()) {
      if (h < top()) {
        from_child = pid();  // continue up this peer's own chain
        ++h;
        continue;
      }
      return;  // reached the root
    }
    if (hops == 0) return;
    dr_event_msg up = m;
    up.h = static_cast<std::uint32_t>(h + 1);
    up.hops_left = static_cast<std::uint32_t>(hops - 1);
    up.hop = m.hop + 1;
    send_event(ins->parent, up);
    return;
  }
}

void dr_peer::handle_batch_down(const dr_batch_msg& m) {
  // Per-event dedup: the scalar path drops a whole message when its event
  // was seen; here each event is filtered individually so a batch merging
  // seen and fresh events still delivers exactly the fresh subset.
  spatial::event fresh[dr_batch_msg::kMaxEvents];
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < m.count; ++i) {
    if (already_seen(m.events[i].id)) continue;
    deliver_local(m.events[i], m.hop);
    fresh[cnt++] = m.events[i];
  }
  if (cnt == 0) return;
  const std::size_t h = std::min<std::size_t>(m.h, top());
  for (std::uint32_t i = 0; i < cnt; ++i) record_instance_event(h, fresh[i]);
  fan_out_batch(h, fresh, cnt, m.hop, kNoPeer);
}

void dr_peer::handle_batch_up(peer_id from, const dr_batch_msg& m) {
  spatial::event fresh[dr_batch_msg::kMaxEvents];
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < m.count; ++i) {
    if (already_seen(m.events[i].id)) continue;
    deliver_local(m.events[i], m.hop);
    fresh[cnt++] = m.events[i];
  }
  if (cnt == 0) return;
  peer_id from_child = from;
  std::size_t h = std::min<std::size_t>(m.h, top());
  std::size_t hops = m.hops_left;
  while (true) {
    const auto* ins = find_inst(h);
    if (ins == nullptr) return;
    for (std::uint32_t i = 0; i < cnt; ++i) record_instance_event(h, fresh[i]);
    fan_out_batch(h, fresh, cnt, m.hop, from_child);
    if (ins->parent == pid()) {
      if (h < top()) {
        from_child = pid();
        ++h;
        continue;
      }
      return;
    }
    if (hops == 0) return;
    dr_batch_msg up;
    up.kind = msg_kind::batch_up;
    up.count = cnt;
    up.h = static_cast<std::uint32_t>(h + 1);
    up.hops_left = static_cast<std::uint32_t>(hops - 1);
    up.hop = m.hop + 1;
    for (std::uint32_t i = 0; i < cnt; ++i) up.events[i] = fresh[i];
    send_batch(ins->parent, up);
    return;
  }
}

// ------------------------------------------- distributed range search

void dr_peer::start_search(std::uint64_t query_id, const box& query) {
  // A search behaves like a join route: climb to the root, then prune by
  // MBR intersection on the way down (classic R-tree search, §2.2,
  // distributed).  The searching peer's own filter counts as a hit too.
  if (filter_.intersects(query)) {
    overlay_.record_search_hit(query_id, pid(), 0);
  }
  dr_msg m;
  m.kind = msg_kind::search_up;
  m.subject = pid();
  m.reply_to = pid();
  m.query_id = query_id;
  m.mbr = query;
  m.hops_left = overlay_.config().max_route_hops;
  m.hop = 0;
  if (is_root()) {
    m.h = top();
    handle_search_down(m);  // already at the top: descend locally
  } else {
    m.hop = 1;
    send_msg(inst(top()).parent, m);
  }
}

void dr_peer::handle_search_up(const dr_msg& m) {
  if (m.hops_left == 0) return;
  if (is_root()) {
    dr_msg down = m;
    down.h = top();
    handle_search_down(down);
    return;
  }
  dr_msg fwd = m;
  --fwd.hops_left;
  ++fwd.hop;
  send_msg(inst(top()).parent, fwd);
}

void dr_peer::handle_search_down(const dr_msg& m) {
  // Descend from the addressed instance (falling back to the current top
  // if it dissolved), following every child whose MBR intersects the
  // query.  Local chain hops are free (same process); remote forwards are
  // messages.
  auto& heights = search_scratch_;
  heights.clear();
  heights.push_back(std::min(m.h, top()));
  while (!heights.empty()) {
    const auto h = heights.back();
    heights.pop_back();
    const auto* ins = find_inst(h);
    if (ins == nullptr) continue;
    if (h == 0) {
      if (filter_.intersects(m.mbr)) {
        if (m.reply_to == pid()) {
          overlay_.record_search_hit(m.query_id, pid(), m.hop);
        } else {
          dr_msg hit;
          hit.kind = msg_kind::search_hit;
          hit.subject = pid();
          hit.query_id = m.query_id;
          hit.hop = m.hop + 1;
          hit.hops_left = 1;
          send_msg(m.reply_to, hit);
        }
      }
      continue;
    }
    for (const auto q : ins->children) {
      if (q == pid()) {
        const auto* own = find_inst(h - 1);
        if (own != nullptr && own->mbr.intersects(m.mbr)) {
          heights.push_back(h - 1);
        }
        continue;
      }
      if (!sees(q)) continue;
      const auto* qi = overlay_.peer(q).find_inst(h - 1);
      if (qi == nullptr || !qi->mbr.intersects(m.mbr)) continue;
      dr_msg fwd = m;
      fwd.kind = msg_kind::search_down;
      fwd.h = h - 1;
      ++fwd.hop;
      send_msg(q, fwd);
    }
  }
}

// ------------------------------------ FP-driven reorganization (§3.2)

void dr_peer::record_instance_event(std::size_t h, const spatial::event& ev) {
  if (!overlay_.config().fp_reorganization) return;
  auto* ins = find_inst(h);
  if (ins == nullptr || h == 0) return;
  ++ins->events_seen;
  // FP counters only matter once maybe_reorganize's threshold is met, and
  // that runs inside the pass — schedule one when the budget fills.
  if (ins->events_seen == kReorgMinEvents) overlay_.mark_dirty(pid(), h);
  if (!filter_.contains(ev.value)) ++ins->fp_self;
  for (const auto q : ins->children) {
    if (q == pid() || !sees(q)) continue;
    if (!overlay_.peer(q).filter().contains(ev.value)) {
      ++ins->fp_child_would[q];
    }
  }
}

void dr_peer::maybe_reorganize(std::size_t h) {
  auto* ins = find_inst(h);
  if (ins == nullptr || h == 0) return;
  if (ins->events_seen < kReorgMinEvents) return;
  peer_id best = kNoPeer;
  std::uint64_t best_fp = std::numeric_limits<std::uint64_t>::max();
  for (const auto q : ins->children) {
    if (q == pid() || !sees(q)) continue;
    if (overlay_.peer(q).find_inst(h - 1) == nullptr) continue;
    const auto it = ins->fp_child_would.find(q);
    const std::uint64_t fp = it == ins->fp_child_would.end() ? 0 : it->second;
    if (fp < best_fp || (fp == best_fp && q < best)) {
      best_fp = fp;
      best = q;
    }
  }
  const auto fp_self = ins->fp_self;
  ins->fp_self = 0;
  ins->events_seen = 0;
  ins->fp_child_would.clear();
  if (best != kNoPeer && fp_self > best_fp) promote_child(h, best);
}

}  // namespace drt::overlay
