#include "drtree/corruptor.h"

#include <algorithm>

namespace drt::overlay {

using spatial::kNoPeer;
using spatial::peer_id;

corruption_config uniform_corruption(double rate) {
  corruption_config cfg;
  cfg.parent_rate = rate;
  cfg.children_rate = rate;
  cfg.mbr_rate = rate;
  cfg.flag_rate = rate;
  cfg.drop_instance_rate = rate / 2;
  cfg.fake_instance_rate = rate / 2;
  return cfg;
}

peer_id corruptor::random_peer() {
  const auto count = overlay_.live_count();
  if (count == 0) return kNoPeer;
  // One rng draw, then a k-th-live walk: the same draw sequence the old
  // snapshot-and-index version produced, without the vector.
  auto k = rng_.index(count);
  peer_id chosen = kNoPeer;
  overlay_.for_each_live([&](peer_id p) {
    if (k == 0) {
      chosen = p;
      return false;
    }
    --k;
    return true;
  });
  return chosen;
}

std::size_t corruptor::corrupt(const corruption_config& cfg) {
  std::size_t mutations = 0;
  // Corruption scrambles state but never liveness, so visiting in place
  // sees exactly the peers a snapshot would have.
  overlay_.for_each_live([&](peer_id p) {
    auto& peer = overlay_.peer(p);
    for (const auto h : peer.instance_heights()) {
      if (rng_.chance(cfg.parent_rate)) {
        scramble_parent(p, h);
        ++mutations;
      }
      if (h > 0 && rng_.chance(cfg.children_rate)) {
        scramble_children(p, h);
        ++mutations;
      }
      if (rng_.chance(cfg.mbr_rate)) {
        scramble_mbr(p, h);
        ++mutations;
      }
      if (h > 0 && rng_.chance(cfg.flag_rate)) {
        flip_underloaded(p, h);
        ++mutations;
      }
    }
    if (rng_.chance(cfg.drop_instance_rate)) {
      drop_top_instance(p);
      ++mutations;
    }
    if (rng_.chance(cfg.fake_instance_rate)) {
      fabricate_instance(p);
      ++mutations;
    }
  });
  return mutations;
}

void corruptor::scramble_parent(peer_id p, std::size_t h) {
  auto* ins = overlay_.peer(p).find_inst(h);
  if (ins == nullptr) return;
  switch (rng_.uniform_int(0, 2)) {
    case 0: ins->parent = kNoPeer; break;
    case 1: ins->parent = p; break;  // false root claim
    default: ins->parent = random_peer(); break;
  }
}

void corruptor::scramble_children(peer_id p, std::size_t h) {
  auto* ins = overlay_.peer(p).find_inst(h);
  if (ins == nullptr || h == 0) return;
  switch (rng_.uniform_int(0, 2)) {
    case 0:  // forget a child
      if (!ins->children.empty()) {
        ins->children.erase(ins->children.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng_.index(ins->children.size())));
      }
      break;
    case 1: {  // adopt a random stranger (retry to avoid a no-op add)
      bool adopted = false;
      for (int attempt = 0; attempt < 8 && !adopted; ++attempt) {
        const auto stranger = random_peer();
        if (stranger != kNoPeer && !ins->has_child(stranger)) {
          ins->add_child(stranger);
          adopted = true;
        }
      }
      if (!adopted) ins->children.clear();
      break;
    }
    default:  // forget everything
      ins->children.clear();
      break;
  }
}

void corruptor::scramble_mbr(peer_id p, std::size_t h) {
  auto* ins = overlay_.peer(p).find_inst(h);
  if (ins == nullptr) return;
  const auto& ws = overlay_.config().workspace;
  const double x1 = rng_.uniform_real(ws.lo[0], ws.hi[0]);
  const double x2 = rng_.uniform_real(ws.lo[0], ws.hi[0]);
  const double y1 = rng_.uniform_real(ws.lo[1], ws.hi[1]);
  const double y2 = rng_.uniform_real(ws.lo[1], ws.hi[1]);
  ins->mbr = geo::make_rect2(std::min(x1, x2), std::min(y1, y2),
                             std::max(x1, x2), std::max(y1, y2));
}

void corruptor::flip_underloaded(peer_id p, std::size_t h) {
  auto* ins = overlay_.peer(p).find_inst(h);
  if (ins != nullptr) ins->underloaded = !ins->underloaded;
}

void corruptor::drop_top_instance(peer_id p) {
  auto& peer = overlay_.peer(p);
  if (peer.top() > 0) peer.erase_inst(peer.top());
}

void corruptor::fabricate_instance(peer_id p) {
  auto& peer = overlay_.peer(p);
  const auto h = peer.top() + 1;
  auto& ins = peer.ensure_inst(h);
  ins.parent = random_peer();
  ins.children.clear();
  ins.add_child(p);
  ins.add_child(random_peer());
  scramble_mbr(p, h);
}

}  // namespace drt::overlay
