#include "drtree/checker.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "drtree/dot.h"
#include "obs/trace.h"

namespace drt::overlay {

using spatial::kNoPeer;
using spatial::peer_id;

namespace {

std::string where(peer_id p, std::size_t h) {
  std::ostringstream out;
  out << "peer " << p << " @h" << h;
  return out.str();
}

}  // namespace

check_report checker::check(bool check_containment,
                            bool dump_on_violation) const {
  check_report r;
  r.live_peers = overlay_.live_count();
  if (r.live_peers == 0) return r;

  auto complain = [&](const std::string& text,
                      peer_id who = kNoPeer) {
    r.violations.push_back(text);
    if (who != kNoPeer && std::find(r.offenders.begin(), r.offenders.end(),
                                    who) == r.offenders.end()) {
      r.offenders.push_back(who);
    }
  };

  const auto m = overlay_.config().min_children;
  const auto big_m = overlay_.config().max_children;
  const bool check_cover_rule =
      overlay_.config().election == election_policy::largest_mbr;

  double children_sum = 0.0;
  std::size_t interior_count = 0;

  peer_id root = kNoPeer;
  overlay_.for_each_live([&](peer_id p) {
    const auto& peer = overlay_.peer(p);
    if (peer.is_root()) {
      ++r.roots;
      root = p;
    }
  });
  if (r.roots != 1) {
    std::ostringstream out;
    out << "expected exactly one root, found " << r.roots;
    complain(out.str());
  }

  overlay_.for_each_live([&](peer_id p) {
    const auto& peer = overlay_.peer(p);
    const auto heights = peer.instance_heights();
    r.instances += heights.size();

    // Heights must be exactly 0..top (the peer is present at every level
    // of its subtree).
    for (std::size_t i = 0; i < heights.size(); ++i) {
      if (heights[i] != i) {
        complain("peer " + std::to_string(p) +
                     " has non-contiguous instance heights",
                 p);
        break;
      }
    }

    std::size_t peer_links = 0;
    for (const auto h : heights) {
      const auto& ins = peer.inst(h);
      peer_links += ins.children.size() + 1;

      if (h == 0) {
        if (ins.mbr != peer.filter()) {
          complain(where(p, h) + ": leaf MBR differs from filter", p);
        }
        if (!ins.children.empty()) {
          complain(where(p, h) + ": leaf instance has children", p);
        }
      } else {
        ++interior_count;
        children_sum += static_cast<double>(ins.children.size());
        r.max_interior_children =
            std::max(r.max_interior_children, ins.children.size());

        // Degree bounds (Definition 3.1 bullet 1).  A two-peer system
        // cannot avoid a 2-child root below m; the root is exempt from m.
        const bool is_root_instance = peer.is_root() && h == peer.top();
        if (ins.children.size() > big_m) {
          complain(where(p, h) + ": more than M children (" +
                       std::to_string(ins.children.size()) + ")",
                   p);
        }
        if (is_root_instance) {
          if (ins.children.size() < 2) {
            complain(where(p, h) + ": root with fewer than 2 children", p);
          }
        } else if (ins.children.size() < m) {
          complain(where(p, h) + ": fewer than m children (" +
                       std::to_string(ins.children.size()) + ")",
                   p);
        }

        // underloaded flag correctness (Fig. 12).
        if (ins.underloaded != (ins.children.size() < m)) {
          complain(where(p, h) + ": underloaded flag incorrect", p);
        }

        // Self-child invariant (§3: "recursively its own child").
        if (!ins.has_child(p)) {
          complain(where(p, h) + ": missing own lower instance in children", p);
        }

        // Children coherence + MBR exactness (bullets 2 and 4).
        auto expected = spatial::box::empty();
        for (const auto q : ins.children) {
          if (!overlay_.alive(q)) {
            complain(where(p, h) + ": dead child " + std::to_string(q), p);
            continue;
          }
          const auto* qi = overlay_.peer(q).find_inst(h - 1);
          if (qi == nullptr) {
            complain(where(p, h) + ": child " + std::to_string(q) +
                         " lacks an instance at h-1",
                     p);
            continue;
          }
          if (qi->parent != p) {
            complain(where(p, h) + ": child " + std::to_string(q) +
                         " points to a different parent",
                     p);
          }
          expected = join(expected, qi->mbr);
        }
        if (ins.mbr != expected) {
          complain(where(p, h) + ": MBR is not the union of children MBRs", p);
        }

        // Cover optimality (bullet 3): no child covers better than the
        // peer's own lower instance.
        if (check_cover_rule) {
          const auto* own = peer.find_inst(h - 1);
          const double own_area =
              own == nullptr
                  ? -1.0
                  : own->mbr.clamped(overlay_.config().workspace).area();
          for (const auto q : ins.children) {
            if (q == p || !overlay_.alive(q)) continue;
            const auto* qi = overlay_.peer(q).find_inst(h - 1);
            if (qi == nullptr) continue;
            const double qa =
                qi->mbr.clamped(overlay_.config().workspace).area();
            if (qa > own_area) {
              complain(where(p, h) + ": child " + std::to_string(q) +
                           " offers a better cover",
                       p);
              break;
            }
          }
        }
      }

      // Parent coherence (bullet 2).
      if (h < peer.top()) {
        if (ins.parent != p) {
          complain(where(p, h) + ": non-top instance not own-parented", p);
        }
      } else if (ins.parent == p) {
        // Root instance; uniqueness checked globally.
      } else if (ins.parent == kNoPeer || !overlay_.alive(ins.parent)) {
        complain(where(p, h) + ": parent missing or dead", p);
      } else {
        const auto* pi = overlay_.peer(ins.parent).find_inst(h + 1);
        if (pi == nullptr || !pi->has_child(p)) {
          complain(where(p, h) + ": not registered at parent " +
                       std::to_string(ins.parent),
                   p);
        }
      }
    }
    r.memory_links += peer_links;
    r.max_peer_links = std::max(r.max_peer_links, peer_links);
  });

  if (interior_count > 0) {
    r.avg_interior_children = children_sum / static_cast<double>(interior_count);
  }

  // Reachability from the root (every subscriber must be in the tree).
  if (root != kNoPeer && r.roots == 1) {
    r.height = overlay_.peer(root).top();
    std::unordered_set<peer_id> seen;
    std::deque<std::pair<peer_id, std::size_t>> frontier;  // (peer, height)
    frontier.emplace_back(root, r.height);
    seen.insert(root);
    while (!frontier.empty()) {
      const auto [p, h] = frontier.front();
      frontier.pop_front();
      if (h == 0) continue;
      const auto* ins = overlay_.alive(p) ? overlay_.peer(p).find_inst(h)
                                          : nullptr;
      if (ins == nullptr) continue;
      for (const auto q : ins->children) {
        if (overlay_.alive(q)) frontier.emplace_back(q, h - 1);
        seen.insert(q);
      }
    }
    std::size_t reached = 0;
    overlay_.for_each_live([&](peer_id p) {
      if (seen.count(p)) {
        ++reached;
      } else {
        complain("peer " + std::to_string(p) + " unreachable from root", p);
      }
    });
    r.reachable = reached;
  }

  // Subtree-summary soundness (DESIGN.md §9): every instance's occupancy
  // summary must over-approximate the union of the live leaf filters
  // below it — a cleared bit over a subscribed region would structurally
  // drop events.  Staleness is only legal in the other direction (extra
  // set bits cost false positives, never false negatives).  The probe
  // checks each leaf filter clamped to the instance MBR: points outside
  // the MBR are not routed by the paper's baseline either, and points
  // outside the summary frame fall back to the MBR test by construction.
  if (overlay_.config().summary != summary_mode::mbr) {
    overlay_.for_each_live([&](peer_id p) {
      const auto& peer = overlay_.peer(p);
      for (const auto h : peer.instance_heights()) {
        const auto* ins = peer.find_inst(h);
        if (ins == nullptr || !ins->summary.valid()) continue;
        // Walk the subtree below (p, h); the visited set keeps corrupted
        // (cyclic) topologies terminating.
        std::unordered_set<std::uint64_t> visited;
        std::deque<std::pair<peer_id, std::size_t>> frontier;
        frontier.emplace_back(p, h);
        bool sound = true;
        while (!frontier.empty() && sound) {
          const auto [q, hh] = frontier.front();
          frontier.pop_front();
          const auto key = (static_cast<std::uint64_t>(q) << 32) |
                           static_cast<std::uint64_t>(hh);
          if (!visited.insert(key).second) continue;
          if (!overlay_.alive(q)) continue;
          const auto* qi = overlay_.peer(q).find_inst(hh);
          if (qi == nullptr) continue;
          if (hh == 0) {
            const auto& f = overlay_.peer(q).filter();
            if (!ins->summary.covers(intersection(f, ins->mbr))) {
              ++r.summary_violations;
              complain(where(p, h) + ": summary misses leaf " +
                           std::to_string(q) + "'s filter",
                       p);
              sound = false;  // one complaint per instance is enough
            }
            continue;
          }
          for (const auto c : qi->children) frontier.emplace_back(c, hh - 1);
        }
      }
    });
  }

  // Properties 3.1 / 3.2 over strictly-contained pairs.
  if (check_containment && root != kNoPeer && r.roots == 1) {
    // The all-pairs scans below genuinely need a random-access snapshot;
    // build it here so the common check(false) path stays allocation-free.
    std::vector<peer_id> live;
    live.reserve(r.live_peers);
    overlay_.for_each_live([&](peer_id p) { live.push_back(p); });

    // Ancestor peer chains from each peer's topmost instance.
    std::unordered_map<peer_id, std::vector<peer_id>> ancestors;
    for (const auto p : live) {
      std::vector<peer_id> chain;
      peer_id cur = p;
      std::size_t h = overlay_.peer(p).top();
      std::size_t guard = 0;
      while (guard++ < 128) {
        const auto* ins = overlay_.peer(cur).find_inst(h);
        if (ins == nullptr || ins->parent == cur) break;
        if (!overlay_.alive(ins->parent)) break;
        cur = ins->parent;
        ++h;
        chain.push_back(cur);
      }
      ancestors.emplace(p, std::move(chain));
    }
    auto parent_of_top = [&](peer_id p) -> peer_id {
      const auto& chain = ancestors.at(p);
      return chain.empty() ? kNoPeer : chain.front();
    };
    auto is_ancestor = [&](peer_id a, peer_id b) {
      // Is a's top an ancestor of b's top?
      const auto& chain = ancestors.at(b);
      return std::find(chain.begin(), chain.end(), a) != chain.end();
    };

    for (const auto s2 : live) {       // container
      for (const auto s1 : live) {     // containee
        if (s1 == s2) continue;
        const auto& f1 = overlay_.peer(s1).filter();
        const auto& f2 = overlay_.peer(s2).filter();
        if (!f2.contains(f1) || f1 == f2) continue;  // need strict s1 < s2
        ++r.containment_pairs;
        // Property 3.1: the containee's top must not be an ancestor of
        // the container's top.  Counted, not fatal: the properties are
        // routing-accuracy goals, not part of Definition 3.1 legality
        // (the paper itself notes insertion/removal order "may lead to
        // sub-optimal configurations").
        if (is_ancestor(s1, s2)) ++r.weak_violations;
        // Property 3.2: some container s3 of s1 (s2 itself or another
        // container not comparable upward) is an ancestor or sibling.
        bool satisfied = false;
        for (const auto s3 : live) {
          if (s3 == s1) continue;
          const auto& f3 = overlay_.peer(s3).filter();
          if (!f3.contains(f1)) continue;
          if (is_ancestor(s3, s1) ||
              (parent_of_top(s3) != kNoPeer &&
               parent_of_top(s3) == parent_of_top(s1))) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) ++r.strong_satisfied;
      }
    }
  }

  if (!r.violations.empty()) {
    if (auto* t = overlay_.trace()) {
      t->emit(overlay_.sim().now(), obs::trace_kind::violation, 0,
              r.violations.size());
    }
    // First violating assertion-level check of a tracing overlay: freeze
    // the flight recorder so the illegal state explains itself from CI
    // artifacts.  Polling checks (dump_on_violation == false) only emit
    // the trace record — transient illegality mid-convergence is normal.
    if (dump_on_violation && overlay_.claim_violation_dump()) {
      r.dump_path = dump(r);
    }
  }

  return r;
}

std::string checker::dump(const check_report& report) const {
  std::ostringstream ctx;
  ctx << "checker found " << report.violations.size() << " violation(s), "
      << report.live_peers << " live peers, " << report.roots << " roots\n";
  constexpr std::size_t kMaxViolations = 50;
  for (std::size_t i = 0;
       i < report.violations.size() && i < kMaxViolations; ++i) {
    ctx << "  " << report.violations[i] << "\n";
  }
  if (report.violations.size() > kMaxViolations) {
    ctx << "  ... " << report.violations.size() - kMaxViolations
        << " more\n";
  }
  constexpr std::size_t kMaxOffenders = 8;
  ctx << "\n--- offending peers' instance chains ---\n";
  for (std::size_t i = 0;
       i < report.offenders.size() && i < kMaxOffenders; ++i) {
    ctx << describe_instance_chain(overlay_, report.offenders[i]);
  }
  ctx << "\n--- offender chain subgraphs (graphviz) ---\n";
  for (std::size_t i = 0;
       i < report.offenders.size() && i < kMaxOffenders; ++i) {
    ctx << to_dot_instance_chain(overlay_, report.offenders[i]);
  }
  const auto* t = overlay_.trace();
  return obs::write_flight_dump(
      "checker-violation",
      t != nullptr ? t->snapshot() : std::vector<obs::trace_record>{}, 512,
      ctx.str());
}

bool checker::within_height_bound(std::size_t height, std::size_t m,
                                  std::size_t n, std::size_t slack) {
  if (n <= 1) return height == 0;
  const double bound =
      std::ceil(std::log(static_cast<double>(n)) /
                std::log(static_cast<double>(std::max<std::size_t>(m, 2))));
  return static_cast<double>(height) <= bound + static_cast<double>(slack);
}

}  // namespace drt::overlay
