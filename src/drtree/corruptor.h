// Transient-fault injector: drives the self-stabilization experiments
// (Lemma 3.6 / E8) by mutating peers' protocol variables arbitrarily —
// parent pointers, children sets, MBR values, underloaded flags, and whole
// instances — exactly the fault model of §2.1 ("their memories and
// programs can be corrupted").
#ifndef DRT_DRTREE_CORRUPTOR_H
#define DRT_DRTREE_CORRUPTOR_H

#include <cstdint>

#include "drtree/overlay.h"
#include "util/rng.h"

namespace drt::overlay {

struct corruption_config {
  double parent_rate = 0.0;    ///< per-instance chance to scramble parent
  double children_rate = 0.0;  ///< per-instance chance to scramble children
  double mbr_rate = 0.0;       ///< per-instance chance to scramble the MBR
  double flag_rate = 0.0;      ///< per-instance chance to flip underloaded
  double drop_instance_rate = 0.0;  ///< per-peer chance to drop its top
  double fake_instance_rate = 0.0;  ///< per-peer chance to invent a level
};

/// Uniform "corrupt everything a little" preset used by E8.
corruption_config uniform_corruption(double rate);

class corruptor {
 public:
  corruptor(dr_overlay& overlay, std::uint64_t seed)
      : overlay_(overlay), rng_(seed) {}

  /// Apply randomized mutations; returns the number performed.
  std::size_t corrupt(const corruption_config& cfg);

  // Targeted primitives (also used by unit tests).
  void scramble_parent(spatial::peer_id p, std::size_t h);
  void scramble_children(spatial::peer_id p, std::size_t h);
  void scramble_mbr(spatial::peer_id p, std::size_t h);
  void flip_underloaded(spatial::peer_id p, std::size_t h);
  void drop_top_instance(spatial::peer_id p);
  void fabricate_instance(spatial::peer_id p);

 private:
  spatial::peer_id random_peer();

  dr_overlay& overlay_;
  util::rng rng_;
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_CORRUPTOR_H
