#include "drtree/overlay.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <sstream>

#include "util/expect.h"

namespace drt::overlay {

using spatial::kNoPeer;
using spatial::peer_id;

dr_overlay::dr_overlay(dr_config config, sim::simulator_config sim_cfg)
    : config_(config), sim_(sim_cfg) {
  DRT_EXPECT(config_.min_children >= 1);
  DRT_EXPECT(config_.max_children >= 2 * config_.min_children);
  if (config_.trace != obs::trace_mode::off) {
    trace_ = std::make_unique<obs::trace_ring>(config_.trace,
                                               config_.trace_capacity);
    if (config_.trace == obs::trace_mode::full) {
      // Full mode additionally records every simulator delivery through
      // the existing sim trace hook; ring mode keeps protocol-level
      // events only.
      sim_.set_trace([this](const sim::simulator::trace_event& e) {
        trace_->emit(e.at, obs::trace_kind::message,
                     static_cast<std::uint32_t>(e.to), e.type,
                     static_cast<std::uint64_t>(e.from));
      });
    }
  }
}

peer_id dr_overlay::add_peer(const spatial::box& filter) {
  auto p = std::make_unique<dr_peer>(*this, filter);
  const auto id = static_cast<peer_id>(sim_.add_process(std::move(p)));
  // Ground-truth index entry: filters are immutable, peers are never
  // reused, so the entry stays valid for the peer's whole lifetime
  // (liveness is checked at query time).
  filter_index_.insert(filter, id);
  trace_emit(obs::trace_kind::join, id);
  auto& created = peer(id);
  created.start_join(contact_node(id));
  return id;
}

void dr_overlay::matching_live_peers(const spatial::pt& value,
                                     std::vector<peer_id>& out) const {
  out.clear();
  filter_index_.search_point(value, [&](std::uint64_t h) {
    const auto p = static_cast<peer_id>(h);
    if (alive(p)) out.push_back(p);
  });
  std::sort(out.begin(), out.end());
}

void dr_overlay::intersecting_live_peers(const spatial::box& query,
                                         std::vector<peer_id>& out) const {
  out.clear();
  filter_index_.search_intersects(query, [&](std::uint64_t h) {
    const auto p = static_cast<peer_id>(h);
    if (alive(p)) out.push_back(p);
  });
  std::sort(out.begin(), out.end());
}

peer_id dr_overlay::add_peer_and_settle(const spatial::box& filter,
                                        std::uint64_t max_steps) {
  const auto id = add_peer(filter);
  sim_.run_steps(max_steps);
  return id;
}

void dr_overlay::controlled_leave(peer_id p) {
  DRT_EXPECT(alive(p));
  trace_emit(obs::trace_kind::leave, p, config_.efficient_leave ? 1 : 0);
  if (config_.efficient_leave) {
    peer(p).leave_with_handoff();
  } else {
    peer(p).announce_leave();
  }
  if (config_.stabilize == stabilize_mode::dirty) {
    // The departure notifications mark their receivers when handled, but
    // they can be lost in flight — mark the neighborhood directly too.
    mark_neighbors_of(p);
    for (const auto h : peer(p).instance_heights()) {
      test_and_clear_dirty(peer(p).slot_for_mark(h));
    }
  }
  sim_.crash(p);
  // A controlled departure drops the filter from the ground-truth
  // index, so under churn it stays bounded by live + crashed peers
  // instead of growing with every subscription ever made; restart()
  // re-indexes the peer if it is ever revived.
  filter_index_.erase(peer(p).filter(), p);
  departed_.insert(p);
}

void dr_overlay::crash(peer_id p) {
  if (alive(p)) trace_emit(obs::trace_kind::crash, p);
  if (config_.stabilize == stabilize_mode::dirty && alive(p)) {
    // The crash purge is silent — no protocol message will ever tell the
    // neighbors.  Mark them now, and drop the dead peer's own marks:
    // nothing will consume them until a restart re-marks the chain.
    mark_neighbors_of(p);
    for (const auto h : peer(p).instance_heights()) {
      test_and_clear_dirty(peer(p).slot_for_mark(h));
    }
  }
  sim_.crash(p);
}

bool dr_overlay::partition(const std::vector<peer_id>& side_b) {
  std::vector<sim::process_id> ids;
  ids.reserve(side_b.size());
  for (const auto p : side_b) ids.push_back(static_cast<sim::process_id>(p));
  const bool ok = sim_.partition(ids);
  if (ok) mark_all_live();
  return ok;
}

bool dr_overlay::heal_partition() {
  const bool ok = sim_.heal_partition();
  if (ok) mark_all_live();
  return ok;
}

void dr_overlay::restart(peer_id p) {
  DRT_EXPECT(!alive(p));
  trace_emit(obs::trace_kind::restart, p);
  if (departed_.erase(p) > 0) {
    filter_index_.insert(peer(p).filter(), p);
  }
  sim_.restart(p);
}

dr_peer& dr_overlay::peer(peer_id p) {
  return static_cast<dr_peer&>(sim_.get(p));
}

const dr_peer& dr_overlay::peer(peer_id p) const {
  return static_cast<const dr_peer&>(sim_.get(p));
}

std::vector<peer_id> dr_overlay::live_peers() const {
  std::vector<peer_id> out;
  out.reserve(sim_.process_count());
  for_each_live([&out](peer_id id) { out.push_back(id); });
  return out;
}

repair_stats dr_overlay::total_repairs() const {
  repair_stats total;
  for (std::size_t i = 0; i < sim_.process_count(); ++i) {
    total += peer(static_cast<peer_id>(i)).repairs();
  }
  return total;
}

std::vector<peer_id> dr_overlay::root_peers() const {
  std::vector<peer_id> roots;
  for_each_live([&](peer_id id) {
    if (peer(id).is_root()) roots.push_back(id);
  });
  return roots;
}

peer_id dr_overlay::current_root() const {
  const auto roots = root_peers();
  return roots.size() == 1 ? roots.front() : kNoPeer;
}

peer_id dr_overlay::contact_node(peer_id asking) const {
  if (oracle == oracle_mode::root) {
    const auto root = current_root();
    if (root != kNoPeer && root != asking && reachable(asking, root)) {
      return root;
    }
  }
  if (partitioned()) {
    // Split-brain directory: the oracle can only name peers on the
    // asking side of the cut (an out-of-band directory is partitioned
    // along with everything else).  Separate path so the
    // no-partition draw sequence below stays byte-identical.
    std::size_t candidates = 0;
    for_each_live([&](peer_id id) {
      if (id != asking && reachable(asking, id)) ++candidates;
    });
    if (candidates == 0) return kNoPeer;
    auto& rng = const_cast<dr_overlay*>(this)->sim_.rng();
    std::size_t k = rng.index(candidates);
    peer_id chosen = kNoPeer;
    for_each_live([&](peer_id id) {
      if (id == asking || !reachable(asking, id)) return true;
      if (k == 0) {
        chosen = id;
        return false;
      }
      --k;
      return true;
    });
    return chosen;
  }
  // Called on every (re)join: pick the k-th live peer != asking in id
  // order without materializing a candidate vector.  Consumes the RNG
  // exactly as the old snapshot-based selection did (same count, same
  // index, same id order), so seeded runs are unchanged.
  const std::size_t candidates =
      sim_.live_count() - (alive(asking) ? 1 : 0);
  if (candidates == 0) return kNoPeer;
  auto& rng = const_cast<dr_overlay*>(this)->sim_.rng();
  std::size_t k = rng.index(candidates);
  peer_id chosen = kNoPeer;
  for_each_live([&](peer_id id) {
    if (id == asking) return true;
    if (k == 0) {
      chosen = id;
      return false;
    }
    --k;
    return true;
  });
  return chosen;
}

void dr_overlay::record_delivery(std::uint64_t event_id, peer_id p,
                                 std::size_t hop) {
  trace_emit(obs::trace_kind::delivery, p, event_id, hop);
  deliveries_[event_id].insert(p);
  auto& worst = delivery_hops_[event_id];
  worst = std::max(worst, hop);
}

publish_result dr_overlay::publish_and_drain(peer_id publisher,
                                             const spatial::pt& value,
                                             std::uint64_t max_steps) {
  const auto event_id = next_event_id();
  const auto msgs_before = sim_.metrics().messages_sent;
  publish_begin(publisher, event_id, value);
  sim_.run_steps(max_steps);
  return publish_finish(event_id, value, msgs_before);
}

void dr_overlay::publish_begin(peer_id publisher, std::uint64_t event_id,
                               const spatial::pt& value) {
  DRT_EXPECT(alive(publisher));
  trace_emit(obs::trace_kind::publish, publisher, event_id);
  spatial::event ev;
  ev.id = event_id;
  ev.publisher = publisher;
  ev.value = value;
  peer(publisher).publish(ev);
}

void dr_overlay::inject_publish(std::uint64_t event_id,
                                const spatial::pt& value) {
  // Entry point: the first live root fragment, else any live peer.
  peer_id target = kNoPeer;
  for_each_live([&](peer_id id) {
    if (target == kNoPeer) target = id;
    if (peer(id).is_root()) {
      target = id;
      return false;
    }
    return true;
  });
  if (target == kNoPeer) return;  // empty shard: nothing to deliver
  trace_emit(obs::trace_kind::publish, target, event_id);
  spatial::event ev;
  ev.id = event_id;
  ev.publisher = target;
  ev.value = value;
  peer(target).publish(ev);
}

publish_result dr_overlay::publish_finish(std::uint64_t event_id,
                                          const spatial::pt& value,
                                          std::uint64_t messages_before) {
  spatial::event ev;
  ev.id = event_id;
  ev.value = value;

  publish_result r;
  r.event_id = ev.id;
  r.messages = sim_.metrics().messages_sent - messages_before;
  r.max_hops = delivery_hops_[ev.id];
  const auto& delivered = deliveries_[ev.id];
  // Runs once per published event.  Ground truth comes from the filter
  // index (O(log N + matches)) instead of a scan over every live peer;
  // receivers are exactly the recorded deliveries (peers only record
  // while alive, and nothing dies inside this drain).
  r.receivers.reserve(delivered.size());
  for (const auto p : delivered) {
    if (alive(p)) r.receivers.push_back(p);
  }
  std::sort(r.receivers.begin(), r.receivers.end());
  r.delivered = r.receivers.size();
  for (const auto p : r.receivers) {
    if (!peer(p).filter().contains(value)) ++r.false_positives;
  }
  matching_live_peers(value, match_scratch_);
  r.interested = match_scratch_.size();
  for (const auto p : match_scratch_) {
    if (delivered.count(p) == 0) {
      ++r.false_negatives;
      trace_emit(obs::trace_kind::false_neg, p, ev.id);
    }
  }
  if (r.false_negatives > 0 && trace_ != nullptr && config_.trace_dump &&
      !fn_dumped_) {
    // First false negative this overlay ever observed: freeze the flight
    // recorder into a dump so the drop is attributable after the fact.
    fn_dumped_ = true;
    std::ostringstream ctx;
    ctx << "event " << ev.id << " missed " << r.false_negatives << " of "
        << r.interested << " interested peers (delivered " << r.delivered
        << ", messages " << r.messages << ")";
    const auto path = obs::write_flight_dump(
        "first-false-negative", trace_->snapshot(), 256, ctx.str());
    if (!path.empty()) {
      std::fprintf(stderr, "drt: first false negative; flight dump: %s\n",
                   path.c_str());
    }
  }
  deliveries_.erase(ev.id);
  delivery_hops_.erase(ev.id);
  return r;
}

std::vector<publish_result> dr_overlay::multi_publish_and_drain(
    peer_id publisher, const spatial::pt* values, std::size_t n,
    std::uint64_t max_steps) {
  std::vector<publish_result> out;
  if (n == 0) return out;
  std::vector<std::uint64_t> ids(n);
  for (auto& id : ids) id = next_event_id();
  const auto msgs_before = sim_.metrics().messages_sent;
  multi_publish_begin(publisher, ids.data(), values, n);
  sim_.run_steps(max_steps);
  const auto msgs_after = sim_.metrics().messages_sent;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Passing msgs_after as the baseline zeroes each per-event message
    // delta; the shared batch total lands on the first result below.
    out.push_back(publish_finish(ids[i], values[i], msgs_after));
  }
  out.front().messages = msgs_after - msgs_before;
  return out;
}

void dr_overlay::multi_publish_begin(peer_id publisher,
                                     const std::uint64_t* event_ids,
                                     const spatial::pt* values,
                                     std::size_t n) {
  DRT_EXPECT(alive(publisher));
  if (n == 0) return;
  std::vector<spatial::event> evs(n);
  for (std::size_t i = 0; i < n; ++i) {
    evs[i].id = event_ids[i];
    evs[i].publisher = publisher;
    evs[i].value = values[i];
    trace_emit(obs::trace_kind::publish, publisher, event_ids[i]);
  }
  peer(publisher).multi_publish(evs.data(), n);
}

void dr_overlay::inject_multi_publish(const std::uint64_t* event_ids,
                                      const spatial::pt* values,
                                      std::size_t n) {
  if (n == 0) return;
  // Same entry-point choice as inject_publish: the first live root
  // fragment, else any live peer.
  peer_id target = kNoPeer;
  for_each_live([&](peer_id id) {
    if (target == kNoPeer) target = id;
    if (peer(id).is_root()) {
      target = id;
      return false;
    }
    return true;
  });
  if (target == kNoPeer) return;  // empty shard: nothing to deliver
  std::vector<spatial::event> evs(n);
  for (std::size_t i = 0; i < n; ++i) {
    evs[i].id = event_ids[i];
    evs[i].publisher = target;
    evs[i].value = values[i];
    trace_emit(obs::trace_kind::publish, target, event_ids[i]);
  }
  peer(target).multi_publish(evs.data(), n);
}

// ------------------------------------------------------------ dirty set

void dr_overlay::mark_dirty(peer_id p, std::size_t height) {
  if (config_.stabilize != stabilize_mode::dirty) return;
  if (p == kNoPeer || static_cast<std::size_t>(p) >= sim_.process_count() ||
      !sim_.is_alive(p)) {
    return;
  }
  auto& pr = peer(p);
  const auto s = pr.slot_for_mark(height);
  if (s == kNoSlot) return;
  const std::size_t w = s / 64;
  if (w >= dirty_bits_.size()) dirty_bits_.resize(w + 1, 0);
  const std::uint64_t mask = 1ull << (s % 64);
  if ((dirty_bits_[w] & mask) == 0) {
    dirty_bits_[w] |= mask;
    dirty_ring_.push_back(s);
    ++dirty_pending_;
    ++stab_stats_.marks;
    // A set bit means the owner has already been pulled in and not yet
    // consumed it, so the nudge is only needed on the 0→1 edge.
    pr.note_marked();
  }
}

bool dr_overlay::test_and_clear_dirty(inst_slot s) {
  if (s == kNoSlot) return false;
  const std::size_t w = s / 64;
  if (w >= dirty_bits_.size()) return false;
  const std::uint64_t mask = 1ull << (s % 64);
  if ((dirty_bits_[w] & mask) == 0) return false;
  dirty_bits_[w] &= ~mask;
  --dirty_pending_;
  // The ring accumulates one (possibly stale) entry per 0→1 mark;
  // rebuild it from the bitmap — O(set bits) — when mostly stale.
  if (dirty_ring_.size() >= 64 &&
      dirty_ring_.size() > 4 * dirty_pending_) {
    dirty_ring_.clear();
    for (std::size_t i = 0; i < dirty_bits_.size(); ++i) {
      for (auto bits = dirty_bits_[i]; bits != 0; bits &= bits - 1) {
        dirty_ring_.push_back(static_cast<inst_slot>(
            i * 64 + static_cast<std::size_t>(std::countr_zero(bits))));
      }
    }
  }
  return true;
}

void dr_overlay::mark_neighbors_of(peer_id p) {
  auto& pr = peer(p);
  for (const auto h : pr.instance_heights()) {
    const auto& ins = pr.inst(h);
    if (ins.parent != kNoPeer && ins.parent != p) {
      mark_dirty(ins.parent, h + 1);
    }
    if (h > 0) {
      for (const auto c : ins.children) {
        if (c != p) mark_dirty(c, h - 1);
      }
    }
  }
}

void dr_overlay::mark_all_live() {
  if (config_.stabilize != stabilize_mode::dirty) return;
  for_each_live([this](peer_id id) { mark_dirty(id, 0); });
}

void dr_overlay::record_search_hit(std::uint64_t query_id, peer_id p,
                                   std::size_t hop) {
  search_hits_[query_id].insert(p);
  auto& worst = search_hops_[query_id];
  worst = std::max(worst, hop);
}

dr_overlay::search_result dr_overlay::search_and_drain(
    peer_id origin, const spatial::box& query, std::uint64_t max_steps) {
  DRT_EXPECT(alive(origin));
  const auto query_id = next_event_id();
  const auto msgs_before = sim_.metrics().messages_sent;
  peer(origin).start_search(query_id, query);
  sim_.run_steps(max_steps);

  search_result r;
  r.messages = sim_.metrics().messages_sent - msgs_before;
  r.max_hops = search_hops_[query_id];
  const auto& hits = search_hits_[query_id];
  r.hits.assign(hits.begin(), hits.end());
  std::sort(r.hits.begin(), r.hits.end());
  // Ground truth via the filter index instead of a live-population scan.
  for (const auto p : r.hits) {
    if (alive(p) && !peer(p).filter().intersects(query)) ++r.false_positives;
  }
  intersecting_live_peers(query, match_scratch_);
  for (const auto p : match_scratch_) {
    if (hits.count(p) == 0) ++r.false_negatives;
  }
  search_hits_.erase(query_id);
  search_hops_.erase(query_id);
  return r;
}

}  // namespace drt::overlay
