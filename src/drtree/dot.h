// Graphviz DOT rendering of the DR-tree's logical structure (Fig. 4) and
// peer-level communication graph (Fig. 5) — debugging and documentation
// aid for examples and failure reports.
#ifndef DRT_DRTREE_DOT_H
#define DRT_DRTREE_DOT_H

#include <string>

#include "drtree/overlay.h"

namespace drt::overlay {

/// The instance tree: one node per (peer, height) instance, edges from
/// parent instances to child instances, root highlighted.
std::string to_dot_instances(const dr_overlay& overlay);

/// The communication graph: one node per peer, an undirected edge per
/// neighbor relation (parent/child at any height).
std::string to_dot_peers(const dr_overlay& overlay);

/// One peer's instance chain plus its immediate neighborhood (the parent
/// above each instance, the children below) — the subgraph a violation
/// dump renders for each offending peer, small enough to eyeball.
std::string to_dot_instance_chain(const dr_overlay& overlay,
                                  spatial::peer_id p);

/// Plain-text rendering of the same chain: per instance the height, MBR,
/// parent and children with their liveness — what the flight dump embeds.
std::string describe_instance_chain(const dr_overlay& overlay,
                                    spatial::peer_id p);

}  // namespace drt::overlay

#endif  // DRT_DRTREE_DOT_H
