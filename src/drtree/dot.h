// Graphviz DOT rendering of the DR-tree's logical structure (Fig. 4) and
// peer-level communication graph (Fig. 5) — debugging and documentation
// aid for examples and failure reports.
#ifndef DRT_DRTREE_DOT_H
#define DRT_DRTREE_DOT_H

#include <string>

#include "drtree/overlay.h"

namespace drt::overlay {

/// The instance tree: one node per (peer, height) instance, edges from
/// parent instances to child instances, root highlighted.
std::string to_dot_instances(const dr_overlay& overlay);

/// The communication graph: one node per peer, an undirected edge per
/// neighbor relation (parent/child at any height).
std::string to_dot_peers(const dr_overlay& overlay);

}  // namespace drt::overlay

#endif  // DRT_DRTREE_DOT_H
