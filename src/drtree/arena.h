// Shard-local arena for per-height peer protocol state.
//
// Every dr_peer owns a chain of tree-node *instances* (peer.h); before
// this arena each peer kept them in its own std::map<height, instance>,
// so a stabilization sweep over a shard chased one heap node per
// (peer, height) pair.  Now a dr_overlay owns one instance_arena and
// peers hold 32-bit slot handles: all instances of a shard live in a few
// contiguous slabs, released slots are recycled LIFO with their vector
// capacities intact, and a shard's protocol-state footprint is one
// number (arena_stats) instead of a million scattered allocations.
//
// Address stability is the load-bearing property: protocol actions hold
// `instance&` references across ensure_inst() calls on *other* peers
// (split_and_push, promote_child wire several peers in one atomic step),
// so slabs are fixed-size chunks that never move or reallocate.  This is
// also why the layout is slot-granular rather than fully
// struct-of-arrays: a per-field SoA cannot hand out stable references to
// whole instances (DESIGN.md §8 records the deviation).
#ifndef DRT_DRTREE_ARENA_H
#define DRT_DRTREE_ARENA_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "drtree/summary.h"
#include "spatial/types.h"
#include "util/expect.h"

namespace drt::overlay {

/// Per-height protocol variables (§3.2 "Data Structures"): the children
/// set C^l_p, parent^l_p, mbr^l_p and the underloaded flag.
struct instance {
  std::vector<spatial::peer_id> children;
  spatial::peer_id parent = spatial::kNoPeer;
  spatial::box mbr = spatial::box::empty();
  bool underloaded = false;

  /// Coarse occupancy summary of the filter set below this instance
  /// (DESIGN.md §9) — consulted by the publish fan-out when
  /// dr_config::summary enables it, absent (k == 0) otherwise.
  subtree_summary summary{};

  // §3.2 "Dynamic Reorganizations": false positives experienced by this
  // instance, and the false positives each child *would* have experienced
  // in its place (experiment E15).
  std::uint64_t fp_self = 0;
  std::uint64_t events_seen = 0;
  std::unordered_map<spatial::peer_id, std::uint64_t> fp_child_would;

  // Hot membership checks: inline so the routing/stabilization loops
  // never pay a call on them.
  bool has_child(spatial::peer_id q) const {
    return std::find(children.begin(), children.end(), q) != children.end();
  }
  void add_child(spatial::peer_id q) {
    if (!has_child(q)) children.push_back(q);
  }
  bool remove_child(spatial::peer_id q);
};

/// Handle to one instance slot inside an arena.
using inst_slot = std::uint32_t;
inline constexpr inst_slot kNoSlot = static_cast<inst_slot>(-1);

/// Footprint of one arena, for the memory experiments: slab bytes are
/// the slot storage itself, heap bytes the per-instance dynamic state
/// (children capacity, FP-counter buckets) hanging off it.
struct arena_stats {
  std::size_t slots = 0;       ///< slots ever carved (free-listed included)
  std::size_t live = 0;        ///< slots currently acquired
  std::size_t slab_bytes = 0;  ///< chunk storage
  std::size_t heap_bytes = 0;  ///< dynamic state owned by the slots
  std::size_t total_bytes() const { return slab_bytes + heap_bytes; }
};

/// Slab allocator of instance slots.  Chunks never move (stable
/// addresses, see the header comment); released slots recycle LIFO and
/// keep their container capacities, so steady-state churn stops
/// allocating once the arena is warm.
class instance_arena {
 public:
  static constexpr std::size_t kChunkSlots = 256;

  instance_arena() = default;
  instance_arena(const instance_arena&) = delete;
  instance_arena& operator=(const instance_arena&) = delete;

  /// Take a slot for an instance at `height`, reset to the
  /// default-constructed state (capacities retained).
  inst_slot acquire(std::size_t height) {
    inst_slot s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      if (size_ == chunks_.size() * kChunkSlots) {
        chunks_.push_back(std::make_unique<instance[]>(kChunkSlots));
      }
      s = static_cast<inst_slot>(size_++);
      meta_.resize(size_);
    }
    meta_[s].height = static_cast<std::uint32_t>(height);
    meta_[s].live = true;
    ++live_;
    reset(at(s));
    return s;
  }

  /// Return a slot to the free list.  The contents stay untouched until
  /// the slot is reacquired — consistent with the transient-fault model,
  /// where stale state is never scrubbed behind a process's back.
  void release(inst_slot s) {
    DRT_EXPECT(s < size_ && meta_[s].live);
    meta_[s].live = false;
    --live_;
    free_.push_back(s);
  }

  instance& at(inst_slot s) {
    return chunks_[s / kChunkSlots][s % kChunkSlots];
  }
  const instance& at(inst_slot s) const {
    return chunks_[s / kChunkSlots][s % kChunkSlots];
  }

  std::size_t live_slots() const { return live_; }

  arena_stats stats() const {
    arena_stats st;
    st.slots = size_;
    st.live = live_;
    st.slab_bytes = chunks_.size() * kChunkSlots * sizeof(instance) +
                    meta_.capacity() * sizeof(slot_meta) +
                    free_.capacity() * sizeof(inst_slot);
    for (std::size_t s = 0; s < size_; ++s) {
      const auto& ins = at(static_cast<inst_slot>(s));
      st.heap_bytes += ins.children.capacity() * sizeof(spatial::peer_id);
      // unordered_map footprint estimate: bucket array + one node per
      // entry (pointer + key/value + allocator overhead).
      st.heap_bytes += ins.fp_child_would.bucket_count() * sizeof(void*) +
                       ins.fp_child_would.size() *
                           (sizeof(void*) + sizeof(spatial::peer_id) +
                            sizeof(std::uint64_t));
    }
    return st;
  }

 private:
  struct slot_meta {
    std::uint32_t height = 0;
    bool live = false;
  };

  static void reset(instance& ins) {
    ins.children.clear();
    ins.parent = spatial::kNoPeer;
    ins.mbr = spatial::box::empty();
    ins.underloaded = false;
    ins.summary.clear();
    ins.fp_self = 0;
    ins.events_seen = 0;
    ins.fp_child_would.clear();
  }

  std::vector<std::unique_ptr<instance[]>> chunks_;
  std::vector<slot_meta> meta_;
  std::vector<inst_slot> free_;
  std::size_t size_ = 0;
  std::size_t live_ = 0;
};

}  // namespace drt::overlay

#endif  // DRT_DRTREE_ARENA_H
