// The drtd service core (DESIGN.md §10): one DR-tree overlay hosted
// behind a localhost TCP listener, serving the wire protocol of
// rpc/wire.h to many concurrent client connections on a single-threaded
// event loop (rpc/event_loop.h).
//
// Ownership and churn: every subscription is owned by the connection
// that created it.  A connection closing — gracefully or by vanishing
// mid-run — unsubscribes everything it owned through the overlay's
// controlled-leave path, so *connection close is the churn primitive*
// the net backend advertises.  There is no cap_crash here yet: a real
// crash of overlay state without departure needs peer processes, not a
// hosted overlay.
//
// Determinism: the daemon consumes no RNG of its own and, with
// `stabilize_every_ms == 0`, injects no wall-clock traffic — the hosted
// overlay then performs exactly the operations clients send, in arrival
// order, which is what makes the drtree_backend-vs-net_backend recorder
// digests bit-identical on a single-client timeline (tests/rpc_test.cpp).
#ifndef DRT_RPC_SERVICE_H
#define DRT_RPC_SERVICE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/backends.h"
#include "rpc/event_loop.h"
#include "rpc/wire.h"

namespace drt::rpc {

struct service_config {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read port()).
  std::uint16_t port = 0;
  /// Configuration of the hosted overlay (workspace, summaries, net).
  engine::overlay_backend_config backend{};
  /// Wall-clock stabilizer cadence: every period the daemon runs one
  /// overlay stabilization round (a timer-wheel periodic).  0 disables
  /// it — required for digest-parity runs, where only client operations
  /// may generate overlay traffic.
  std::uint32_t stabilize_every_ms = 0;
  /// Diagnostics/CI: run the event loop on poll(2) instead of epoll.
  bool force_poll = false;
  /// A connection whose outbound buffer exceeds this is dropped as a
  /// dead-slow consumer (its subscriptions leave with it).
  std::size_t max_write_buffer = 4u << 20;
};

class service {
 public:
  explicit service(service_config config = {});
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// The bound port — valid immediately after construction, so a client
  /// thread can connect while (or before) run() starts.
  std::uint16_t port() const { return port_; }

  /// Serve until stop(); call from the daemon thread.
  void run();
  /// Thread- and signal-safe shutdown request.
  void stop() { loop_.stop(); }

  struct counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t events_pushed = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t disconnect_unsubscribes = 0;
    std::uint64_t stabilize_rounds = 0;
    /// Wall-clock stabilizer ticks skipped because the hosted overlay's
    /// dirty backlog was empty (dirty mode only; see service.cpp).
    std::uint64_t stabilize_skipped = 0;
  };
  /// Direct counter access — loop-thread data, so only read it before
  /// run() starts or after it returned.  The old "never while serving"
  /// restriction is lifted by stats_snapshot(), which is safe from any
  /// thread at any time.
  const counters& stats() const { return stats_; }

  /// Thread-safe counter snapshot (DESIGN.md §12): while the daemon is
  /// serving, the read is marshalled onto the loop thread via post() and
  /// this call blocks until it executes; when the loop is idle the
  /// counters are read directly.  Callable from any thread at any time.
  counters stats_snapshot();

  /// Thread-safe Prometheus text exposition of the daemon's live state:
  /// service counters, hosted-overlay shape, and flight-recorder totals.
  /// Same marshalling discipline as stats_snapshot().  This is exactly
  /// the body an HTTP `GET /metrics` on the service port returns.
  std::string metrics_text();

  /// The hosted overlay backend; same thread-ownership rule as stats().
  engine::drtree_backend& backend() { return be_; }

 private:
  struct connection {
    int fd = -1;
    std::vector<std::byte> rbuf;
    std::vector<std::byte> wbuf;
    std::vector<engine::sub_id> subs;  ///< owned subscriptions
    /// Marked instead of closed inline: handlers hold references into
    /// conns_, so teardown happens in reap() between frames.
    bool dead = false;
    /// Sniffed as a plaintext HTTP client ("GET " prefix): the
    /// connection serves one /metrics response and closes.
    bool http = false;
    /// Close once wbuf fully drains (HTTP/1.0 response semantics).
    bool close_when_drained = false;
    /// The exposition snapshot a paged stats read walks; regenerated on
    /// every offset-0 request so a multi-frame read stays consistent.
    std::string stats_cache;
  };

  void on_accept();
  void on_conn_event(int fd, std::uint32_t events);
  /// Decode-and-handle loop over a connection's read buffer; false when
  /// the connection died (and was cleaned up) underneath it.
  bool drain_frames(connection& conn);
  void handle_frame(connection& conn, const frame_view& frame);

  void handle_subscribe(connection& conn, const frame_view& frame);
  void handle_unsubscribe(connection& conn, const frame_view& frame);
  void handle_publish(connection& conn, const frame_view& frame);
  void handle_publish_batch(connection& conn, const frame_view& frame);
  void handle_stat(connection& conn, const frame_view& frame);
  void handle_active(connection& conn, const frame_view& frame);
  void handle_stats(connection& conn, const frame_view& frame);

  /// Serve a sniffed HTTP connection from its read buffer; responds to
  /// `GET /metrics` with the Prometheus exposition and closes.
  void handle_http(connection& conn);

  /// The Prometheus text exposition; loop-thread only (reads the overlay).
  std::string build_exposition();

  /// Run `fn` where it is safe to touch loop-thread state: posted to the
  /// loop (blocking until done) while serving, called directly otherwise.
  void run_on_loop(std::function<void()> fn);

  /// Fan the delivered event out to the connections owning the
  /// receiving subscriptions.
  void push_deliveries(const overlay::publish_result& result,
                       std::uint64_t publisher, const spatial::pt& value);

  void send_bytes(connection& conn, frame_type type, std::uint32_t seq,
                  const void* body, std::size_t body_bytes);
  void send_error(connection& conn, std::uint32_t seq, wire_errc code);
  /// Write as much of conn.wbuf as the socket accepts; keeps kWritable
  /// interest while a residue remains.  Marks the connection dead on a
  /// hard socket error.
  void flush(connection& conn);

  /// Close-and-unsubscribe every connection marked dead.
  void reap();
  void close_connection(int fd);

  service_config config_;
  event_loop loop_;
  engine::drtree_backend be_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::unordered_map<int, connection> conns_;
  /// Subscription owner index: sub id -> owning connection fd.
  std::unordered_map<engine::sub_id, int> owners_;
  counters stats_;
  std::atomic<bool> serving_{false};  ///< run() is inside loop_.run()
  std::uint64_t stabilize_tick_ = 0;  ///< wall-clock stabilizer periods seen
  std::vector<std::byte> scratch_;  ///< frame-encode scratch
  std::vector<int> scratch_fds_;    ///< reap() collection scratch
};

}  // namespace drt::rpc

#endif  // DRT_RPC_SERVICE_H
