// Length-prefixed binary wire format for the service mode (DESIGN.md §10).
//
// Every frame is a fixed 16-byte header followed by a trivially-copyable
// payload struct, memcpy'd verbatim — the same discipline the simulator's
// payload pool enforces on protocol messages (sim/message.h), extended to
// the socket: the overlay's own `dr_msg` / `dr_batch_msg` ride the wire
// unchanged under the `overlay_msg` / `overlay_batch` frame types, and the
// client-facing RPCs use small request/reply structs defined here.
//
// The transport is localhost-only for now, so fields travel in host byte
// order; the versioned header is what lets a future cross-machine format
// bump `kWireVersion` and negotiate.  Decoding is *graceful* on untrusted
// bytes: `try_decode` returns a status (never aborts) so a daemon fed
// garbage closes the connection instead of dying — DRT_EXPECT contracts
// only guard encoder misuse, which is a programming error on our side.
#ifndef DRT_RPC_WIRE_H
#define DRT_RPC_WIRE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "drtree/messages.h"
#include "spatial/types.h"
#include "util/expect.h"

namespace drt::rpc {

/// "DRT1" as little-endian bytes on the wire.
inline constexpr std::uint32_t kMagic = 0x31545244u;
inline constexpr std::uint16_t kWireVersion = 1;

/// Upper bound on one frame's payload.  Sized so the largest legitimate
/// payloads — a full 64-event `dr_batch_msg` envelope (~2 KiB) and a full
/// `active_ok_body` id page — fit with room, while a corrupt length field
/// can never make a reader buffer unbounded garbage.
inline constexpr std::size_t kMaxPayloadBytes = 4080;

enum class frame_type : std::uint16_t {
  // Liveness.
  ping = 1,
  pong = 2,

  // Client-facing RPCs (request / reply pairs share a header `seq`).
  subscribe = 10,       ///< subscribe_body -> subscribe_ok
  subscribe_ok = 11,    ///< sub_body
  unsubscribe = 12,     ///< sub_body -> unsubscribe_ok
  unsubscribe_ok = 13,  ///< bool_body
  alive = 14,           ///< sub_body -> alive_ok
  alive_ok = 15,        ///< bool_body
  publish = 16,         ///< publish_body -> publish_report
  publish_batch = 17,   ///< overlay::dr_batch_msg prefix -> publish_report
  publish_report = 18,  ///< report_body
  stat = 20,            ///< (empty) -> stat_ok
  stat_ok = 21,         ///< stat_body
  active = 22,          ///< active_req_body -> active_ok (paged)
  active_ok = 23,       ///< active_ok_body prefix
  stats = 24,           ///< stats_req_body -> stats_ok (paged)
  stats_ok = 25,        ///< stats_text_body prefix

  // Unsolicited server->client notification (seq = 0).
  event_push = 30,  ///< event_push_body

  // The overlay's own protocol messages, framed verbatim — the reserved
  // peer-to-peer channel a future multi-daemon deployment routes over.
  // The codec round-trips them today (the fuzz tests pin that); `drtd`
  // answers them with wire_errc::unsupported.
  overlay_msg = 40,    ///< overlay::dr_msg
  overlay_batch = 41,  ///< overlay::dr_batch_msg prefix

  error = 50,  ///< error_body, seq echoes the failing request
};

// ------------------------------------------------------------------ header

struct frame_header {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t type = 0;
  std::uint32_t length = 0;  ///< payload bytes following the header
  std::uint32_t seq = 0;     ///< request/reply correlation; 0 = unsolicited
};
static_assert(sizeof(frame_header) == 16);
static_assert(std::is_trivially_copyable_v<frame_header>);

// ---------------------------------------------------------------- payloads

struct subscribe_body {
  spatial::box filter = spatial::box::empty();
};

/// Subscription id carrier (subscribe_ok, unsubscribe, alive).
struct sub_body {
  std::uint64_t sub = 0;
};

struct bool_body {
  std::uint32_t value = 0;
  std::uint32_t reserved = 0;
};

struct publish_body {
  std::uint64_t publisher = 0;
  spatial::pt value{};
};

/// One publication's outcome — engine::delivery_report, flattened to
/// fixed-width fields.  `ok == 0` means the daemon rejected the request
/// (unknown/dead publisher) and every count is zero.
struct report_body {
  std::uint64_t interested = 0;
  std::uint64_t delivered = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t messages = 0;
  std::uint32_t max_hops = 0;
  std::uint32_t ok = 0;
};

/// Structural snapshot + cost counters: everything engine::net_backend
/// needs to answer shape()/counters()/legal()/population()/root() in one
/// round-trip, computed by one checker pass server-side.
struct stat_body {
  std::uint64_t population = 0;
  std::uint64_t height = 0;
  std::uint64_t max_degree = 0;
  std::uint64_t routing_state = 0;
  std::uint64_t messages = 0;  ///< overlay network messages so far (total)
  std::uint64_t root = 0;      ///< engine::kNoSub when fragmented
  double avg_degree = 0.0;
  std::uint32_t legal = 0;
  std::uint32_t reserved = 0;
};

struct active_req_body {
  std::uint32_t offset = 0;
  std::uint32_t reserved = 0;
};

/// One page of the live-subscription id list, in the backend's stable
/// (ascending) order.  `total` is the full population so the client knows
/// when to stop paging; like dr_batch_msg the struct is sent size-prefixed
/// so small pages ride small frames.
struct active_ok_body {
  static constexpr std::size_t kMaxIds = 480;

  std::uint64_t total = 0;
  std::uint32_t offset = 0;
  std::uint32_t count = 0;
  std::uint64_t ids[kMaxIds];

  static constexpr std::size_t bytes_for(std::size_t n) {
    return offsetof(active_ok_body, ids) + n * sizeof(std::uint64_t);
  }
};

/// Request one page of the daemon's Prometheus text exposition
/// (DESIGN.md §12).  `offset == 0` regenerates the snapshot server-side;
/// later offsets page through that same snapshot so a multi-frame read is
/// internally consistent.
struct stats_req_body {
  std::uint32_t offset = 0;
  std::uint32_t reserved = 0;
};

/// One page of exposition text, size-prefixed like active_ok_body so
/// small pages ride small frames.  `total` is the full snapshot length in
/// bytes; the client keeps paging until offset + count == total.
struct stats_text_body {
  static constexpr std::size_t kMaxBytes = 4000;

  std::uint64_t total = 0;
  std::uint32_t offset = 0;
  std::uint32_t count = 0;
  char text[kMaxBytes];

  static constexpr std::size_t bytes_for(std::size_t n) {
    return offsetof(stats_text_body, text) + n;
  }
};

/// Push notification: subscription `sub` (owned by this connection)
/// received `ev`.  `max_hops` is the event's worst delivery-path length
/// across all receivers (per-receiver hops are not tracked end to end).
struct event_push_body {
  std::uint64_t sub = 0;
  spatial::event ev{};
  std::uint32_t max_hops = 0;
  std::uint32_t reserved = 0;
};

enum class wire_errc : std::uint32_t {
  none = 0,
  bad_request = 1,   ///< malformed body for the frame type
  unknown_sub = 2,   ///< id not live or not owned by this connection
  unsupported = 3,   ///< frame type the daemon does not serve
};

struct error_body {
  std::uint32_t code = 0;  ///< wire_errc
  std::uint32_t reserved = 0;
};

static_assert(std::is_trivially_copyable_v<subscribe_body>);
static_assert(std::is_trivially_copyable_v<sub_body>);
static_assert(std::is_trivially_copyable_v<bool_body>);
static_assert(std::is_trivially_copyable_v<publish_body>);
static_assert(std::is_trivially_copyable_v<report_body>);
static_assert(std::is_trivially_copyable_v<stat_body>);
static_assert(std::is_trivially_copyable_v<active_req_body>);
static_assert(std::is_trivially_copyable_v<active_ok_body>);
static_assert(std::is_trivially_copyable_v<stats_req_body>);
static_assert(std::is_trivially_copyable_v<stats_text_body>);
static_assert(stats_text_body::bytes_for(stats_text_body::kMaxBytes) <=
              kMaxPayloadBytes);
static_assert(std::is_trivially_copyable_v<event_push_body>);
static_assert(std::is_trivially_copyable_v<error_body>);
static_assert(active_ok_body::bytes_for(active_ok_body::kMaxIds) <=
              kMaxPayloadBytes);
static_assert(overlay::dr_batch_msg::bytes_for(
                  overlay::dr_batch_msg::kMaxEvents) <= kMaxPayloadBytes);
static_assert(sizeof(overlay::dr_msg) <= kMaxPayloadBytes);

// ----------------------------------------------------------------- encode

/// Append one frame carrying `body_bytes` raw payload bytes.  Contract
/// (DRT_EXPECT): the payload must fit the wire bound — oversized frames
/// are an encoder bug, not a runtime condition.
inline void put_frame_bytes(std::vector<std::byte>& out, frame_type type,
                            std::uint32_t seq, const void* body,
                            std::size_t body_bytes) {
  DRT_EXPECT(body_bytes <= kMaxPayloadBytes);
  DRT_EXPECT(body_bytes == 0 || body != nullptr);
  frame_header h;
  h.type = static_cast<std::uint16_t>(type);
  h.length = static_cast<std::uint32_t>(body_bytes);
  h.seq = seq;
  const auto base = out.size();
  out.resize(base + sizeof(h) + body_bytes);
  std::memcpy(out.data() + base, &h, sizeof(h));
  if (body_bytes != 0) {
    std::memcpy(out.data() + base + sizeof(h), body, body_bytes);
  }
}

/// Append one frame whose payload is the struct `body` (or its first
/// `body_bytes` when a struct travels size-prefixed, e.g. dr_batch_msg).
template <typename T>
void put_frame(std::vector<std::byte>& out, frame_type type,
               std::uint32_t seq, const T& body,
               std::size_t body_bytes = sizeof(T)) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire payloads are memcpy'd verbatim");
  DRT_EXPECT(body_bytes <= sizeof(T));
  put_frame_bytes(out, type, seq, &body, body_bytes);
}

/// Append a payload-less frame (ping/pong/stat).
inline void put_frame(std::vector<std::byte>& out, frame_type type,
                      std::uint32_t seq) {
  put_frame_bytes(out, type, seq, nullptr, 0);
}

// ----------------------------------------------------------------- decode

enum class decode_status : std::uint8_t {
  ok,           ///< one frame decoded; `consumed` bytes may be dropped
  need_more,    ///< buffer holds a frame prefix; read more bytes
  bad_magic,    ///< stream desynchronized or not ours — close it
  bad_version,  ///< well-formed header from a different protocol rev
  bad_length,   ///< length field exceeds kMaxPayloadBytes
};

inline const char* to_string(decode_status s) {
  switch (s) {
    case decode_status::ok: return "ok";
    case decode_status::need_more: return "need_more";
    case decode_status::bad_magic: return "bad_magic";
    case decode_status::bad_version: return "bad_version";
    case decode_status::bad_length: return "bad_length";
  }
  return "?";
}

/// A decoded frame borrowing the input buffer (valid only while the
/// buffer is).  `read` copies the payload out into a struct, failing
/// softly on any size mismatch — the receiving side's guard against a
/// peer that frames the right type around the wrong bytes.
struct frame_view {
  frame_type type = frame_type::ping;
  std::uint32_t seq = 0;
  const std::byte* payload = nullptr;
  std::uint32_t size = 0;

  /// Exact-size payload extraction.
  template <typename T>
  bool read(T& out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size != sizeof(T)) return false;
    std::memcpy(&out, payload, sizeof(T));
    return true;
  }
};

/// Decode one frame from the front of [data, data+size).  On `ok`,
/// `out` borrows the buffer and `consumed` is the full frame size; on
/// `need_more` nothing is consumed; on the bad_* statuses the stream is
/// unrecoverable (no resync scan — close the connection).
inline decode_status try_decode(const std::byte* data, std::size_t size,
                                frame_view& out, std::size_t& consumed) {
  consumed = 0;
  if (size < sizeof(frame_header)) return decode_status::need_more;
  frame_header h;
  std::memcpy(&h, data, sizeof(h));
  if (h.magic != kMagic) return decode_status::bad_magic;
  if (h.version != kWireVersion) return decode_status::bad_version;
  if (h.length > kMaxPayloadBytes) return decode_status::bad_length;
  if (size < sizeof(h) + h.length) return decode_status::need_more;
  out.type = static_cast<frame_type>(h.type);
  out.seq = h.seq;
  out.payload = data + sizeof(h);
  out.size = h.length;
  consumed = sizeof(h) + h.length;
  return decode_status::ok;
}

/// Validated extraction of a size-prefixed dr_batch_msg payload: the
/// frame must hold exactly bytes_for(count) for a count within capacity.
/// The tail past `count` events is zeroed so receivers can never read
/// uninitialized event slots.
inline bool read_batch(const frame_view& f, overlay::dr_batch_msg& out) {
  if (f.size < overlay::dr_batch_msg::bytes_for(0) ||
      f.size > sizeof(overlay::dr_batch_msg)) {
    return false;
  }
  out = overlay::dr_batch_msg{};
  std::memcpy(&out, f.payload, f.size);
  return out.count <= overlay::dr_batch_msg::kMaxEvents &&
         f.size == overlay::dr_batch_msg::bytes_for(out.count);
}

/// Same validated prefix extraction for active_ok_body pages.
inline bool read_active_page(const frame_view& f, active_ok_body& out) {
  if (f.size < active_ok_body::bytes_for(0) ||
      f.size > sizeof(active_ok_body)) {
    return false;
  }
  out = active_ok_body{};
  std::memcpy(&out, f.payload, f.size);
  return out.count <= active_ok_body::kMaxIds &&
         f.size == active_ok_body::bytes_for(out.count);
}

/// Same validated prefix extraction for stats_text_body pages.
inline bool read_stats_page(const frame_view& f, stats_text_body& out) {
  if (f.size < stats_text_body::bytes_for(0) ||
      f.size > sizeof(stats_text_body)) {
    return false;
  }
  out = stats_text_body{};
  std::memcpy(&out, f.payload, f.size);
  return out.count <= stats_text_body::kMaxBytes &&
         f.size == stats_text_body::bytes_for(out.count);
}

}  // namespace drt::rpc

#endif  // DRT_RPC_WIRE_H
