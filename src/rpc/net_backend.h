// engine::net_backend (DESIGN.md §10): the real-transport adapter — the
// engine's backend interface served over localhost sockets by a drtd
// daemon, either spawned in-process on its own thread or attached to by
// port.  Every existing scenario, metrics schema, and bench-JSON emitter
// runs unchanged against it.
//
// The capability mask is honest, per DESIGN.md §6: connection close is
// the only churn primitive a socket transport has, so the mask is
// cap_unsubscribe alone.  No cap_crash/cap_corruption (a hosted overlay
// cannot fake a silent peer crash from outside), and no cap_stabilize —
// the daemon's stabilizer is wall-clock-driven, not round-stepped, so
// step_round() is a no-op and step_rounds phases record skipped=true
// rather than lying in metrics rows.
#ifndef DRT_RPC_NET_BACKEND_H
#define DRT_RPC_NET_BACKEND_H

#include <memory>
#include <thread>

#include "engine/backend.h"
#include "rpc/client.h"
#include "rpc/service.h"

namespace drt::engine {

class net_backend final : public backend {
 public:
  /// Spawn a drtd in-process: the service runs on its own thread, bound
  /// to an ephemeral port (unless the config pins one), and is stopped
  /// and joined by the destructor.
  explicit net_backend(const rpc::service_config& config);
  /// Attach to an already-running daemon on 127.0.0.1:port.
  explicit net_backend(std::uint16_t port);
  ~net_backend() override;

  std::string name() const override { return "net"; }
  capability_mask capabilities() const override { return cap_unsubscribe; }

  sub_id subscribe(const spatial::box& filter) override;
  bool unsubscribe(sub_id s) override;

  bool alive(sub_id s) const override;
  std::vector<sub_id> active() const override;
  std::size_t population() const override;
  sub_id root() const override;

  delivery_report publish(sub_id publisher, const spatial::pt& value) override;
  delivery_report publish_batch(sub_id publisher, const spatial::pt* values,
                                std::size_t n) override;

  /// The daemon drains the overlay before every reply, so there is
  /// never in-flight work for the client to wait on.
  void settle() override {}
  /// Wall-clock drives the daemon's stabilizer; there is no honest
  /// round-step over the wire (see the capability mask).
  void step_round() override {}

  bool legal() const override;
  backend_shape shape() const override;
  backend_counters counters() const override;

  /// True while the connection (and so the daemon) is healthy.
  bool connected() const { return client_.ok(); }
  rpc::client& raw_client() { return client_; }
  /// The spawned service, nullptr when attached by port.
  rpc::service* spawned_service() { return service_.get(); }
  std::uint16_t port() const { return port_; }

 private:
  // The client is logically const-correct for read RPCs; the socket it
  // drives is not, hence the mutable.
  mutable rpc::client client_;
  std::unique_ptr<rpc::service> service_;
  std::thread service_thread_;
  std::uint16_t port_ = 0;
};

}  // namespace drt::engine

#endif  // DRT_RPC_NET_BACKEND_H
