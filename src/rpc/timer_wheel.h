// Hierarchical timer wheel for the service-mode event loop (DESIGN.md §10).
//
// Four levels of 64 slots each give an exact-fire horizon of 64^4 ticks
// (~4.6 hours at 1 ms/tick); deadlines past the horizon wait in a min-heap
// and drop into the wheel when it laps — the same overflow-heap trick the
// simulator's calendar queue uses (sim/calendar_queue.h), so the two
// schedulers share their pathology profile: O(1) schedule/cancel/fire in
// the common case, with the heap absorbing the far tail.
//
// Semantics the unit tests pin:
//  * timers fire exactly at their deadline tick, never early, and only
//    late if advance() itself is called late (the loop's wait is bounded
//    by next_wake(), so late means the host slept — wall-clock reality,
//    not wheel error);
//  * same-tick timers fire in schedule order;
//  * cancel() is exact: a cancelled timer never fires, including when
//    cancelled by another callback on the same tick;
//  * periodic timers reschedule themselves after each firing, skipping
//    missed periods instead of bursting to catch up (a stabilizer that
//    slept through 3 periods should run once, not 3 times).
//
// Single-threaded by design, like the loop that owns it.
#ifndef DRT_RPC_TIMER_WHEEL_H
#define DRT_RPC_TIMER_WHEEL_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/expect.h"

namespace drt::rpc {

using timer_id = std::uint64_t;
inline constexpr timer_id kNoTimer = 0;

class timer_wheel {
 public:
  static constexpr std::size_t kSlotBits = 6;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::size_t kLevels = 4;
  /// Deadlines within now + kHorizon ticks live in the wheel proper.
  static constexpr std::uint64_t kHorizon = std::uint64_t{1}
                                            << (kSlotBits * kLevels);
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  explicit timer_wheel(std::uint64_t start_tick = 0) : now_(start_tick) {}

  timer_wheel(const timer_wheel&) = delete;
  timer_wheel& operator=(const timer_wheel&) = delete;

  std::uint64_t now() const { return now_; }
  std::size_t pending() const { return entries_.size(); }

  /// One-shot timer at absolute tick `deadline` (a deadline at or before
  /// now fires on the next advanced tick).
  timer_id schedule(std::uint64_t deadline, std::function<void()> fn) {
    return insert(deadline, 0, std::move(fn));
  }

  /// Periodic timer: first fires at `first`, then every `period` ticks.
  timer_id schedule_periodic(std::uint64_t first, std::uint64_t period,
                             std::function<void()> fn) {
    DRT_EXPECT(period > 0);
    return insert(first, period, std::move(fn));
  }

  /// True when the id was pending (it will not fire); callable from
  /// within a timer callback, including on the firing tick.
  bool cancel(timer_id id) { return entries_.erase(id) != 0; }

  /// The earliest tick at which advance() may have work to do — a due
  /// timer or a cascade that could surface one.  kNever when idle.  The
  /// event loop bounds its wait with this, so an idle wheel costs no
  /// wakeups.
  std::uint64_t next_wake() const {
    std::uint64_t best = kNever;
    for (std::size_t level = 0; level < kLevels; ++level) {
      const std::uint64_t base = now_ >> (kSlotBits * level);
      // A level-l entry is at most one level-l lap ahead (place() would
      // have used level l+1 otherwise), so one full wrap covers it.
      for (std::uint64_t p = base + 1; p <= base + kSlots; ++p) {
        if (!wheel_[level][p & (kSlots - 1)].empty()) {
          best = std::min(best, p << (kSlotBits * level));
          break;
        }
      }
    }
    if (!overflow_.empty()) {
      const std::uint64_t boundary = ((now_ >> (kSlotBits * kLevels)) + 1)
                                     << (kSlotBits * kLevels);
      best = std::min(best, boundary);
    }
    return best;
  }

  /// Advance to tick `to`, firing everything due on the way; returns the
  /// number of callbacks fired.  Jumps between interesting ticks, so
  /// advancing an idle wheel across hours is O(levels * slots).
  std::size_t advance(std::uint64_t to) {
    std::size_t fired = 0;
    if (to > target_) target_ = to;
    while (now_ < to) {
      const std::uint64_t next = next_wake();
      if (next > to) {
        now_ = to;
        break;
      }
      now_ = next;
      fired += process_tick();
    }
    return fired;
  }

 private:
  struct entry {
    std::uint64_t deadline = 0;
    std::uint64_t period = 0;  ///< 0 = one-shot
    std::function<void()> fn;
  };

  timer_id insert(std::uint64_t deadline, std::uint64_t period,
                  std::function<void()> fn) {
    DRT_EXPECT(fn != nullptr);
    const timer_id id = next_id_++;
    entries_.emplace(id, entry{deadline, period, std::move(fn)});
    place(id, deadline);
    return id;
  }

  /// File `id` by deadline relative to now_.  Cancelled ids linger in
  /// slots until their tick and are skipped then (the entries_ map is
  /// the source of truth), so cancel stays O(1).
  void place(timer_id id, std::uint64_t deadline) {
    const std::uint64_t eff = deadline > now_ ? deadline : now_ + 1;
    const std::uint64_t delta = eff - now_;
    if (delta >= kHorizon) {
      overflow_.push_back({deadline, id});
      std::push_heap(overflow_.begin(), overflow_.end(), heap_later);
      return;
    }
    std::size_t level = 0;
    while (delta >= (std::uint64_t{1} << (kSlotBits * (level + 1)))) ++level;
    wheel_[level][(eff >> (kSlotBits * level)) & (kSlots - 1)].push_back(id);
  }

  /// Process the tick now_: cascade every level whose lap ends here
  /// (highest first, so entries can sift down through multiple levels in
  /// one tick), drain the overflow heap at horizon laps, then fire the
  /// level-0 slot.  Entries that land due during a cascade fire before
  /// the level-0 residents — which is schedule order, since only an
  /// earlier schedule can sit at a higher level for the same deadline.
  std::size_t process_tick() {
    scratch_due_.clear();
    for (std::size_t level = kLevels - 1; level >= 1; --level) {
      if (now_ % (std::uint64_t{1} << (kSlotBits * level)) == 0) {
        auto& bucket =
            wheel_[level][(now_ >> (kSlotBits * level)) & (kSlots - 1)];
        scratch_ids_.assign(bucket.begin(), bucket.end());
        bucket.clear();
        sift(scratch_ids_);
      }
    }
    if (now_ % kHorizon == 0) {
      scratch_ids_.clear();
      while (!overflow_.empty() &&
             overflow_.front().first < now_ + kHorizon) {
        std::pop_heap(overflow_.begin(), overflow_.end(), heap_later);
        scratch_ids_.push_back(overflow_.back().second);
        overflow_.pop_back();
      }
      sift(scratch_ids_);
    }
    {
      auto& bucket = wheel_[0][now_ & (kSlots - 1)];
      scratch_ids_.assign(bucket.begin(), bucket.end());
      bucket.clear();
      sift(scratch_ids_);
    }

    std::size_t fired = 0;
    // scratch_due_ is stable across callbacks: a callback scheduling a
    // new timer goes through place(), never this list.
    for (std::size_t i = 0; i < scratch_due_.size(); ++i) {
      const timer_id id = scratch_due_[i];
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;  // cancelled after going due
      if (it->second.period == 0) {
        auto fn = std::move(it->second.fn);
        entries_.erase(it);
        fn();
        ++fired;
        continue;
      }
      // Periodic: compute the next deadline before running the callback,
      // then re-place only if the callback did not cancel it.  Skipping
      // relative to the advance *target* (not the firing tick) is what
      // implements catch-up-free semantics: one advance() call that
      // jumps several periods fires the timer once and lands the next
      // deadline past the jump.
      auto& e = it->second;
      const std::uint64_t horizon = now_ > target_ ? now_ : target_;
      while (e.deadline <= horizon) e.deadline += e.period;
      auto fn = e.fn;  // the callback may erase the entry under us
      fn();
      ++fired;
      auto again = entries_.find(id);
      if (again != entries_.end()) place(id, again->second.deadline);
    }
    return fired;
  }

  /// Route collected ids: due ones (deadline <= now_) queue for firing
  /// in collection order, live future ones re-file, cancelled ones drop.
  void sift(const std::vector<timer_id>& ids) {
    for (const timer_id id : ids) {
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;
      if (it->second.deadline <= now_) {
        scratch_due_.push_back(id);
      } else {
        place(id, it->second.deadline);
      }
    }
  }

  static bool heap_later(const std::pair<std::uint64_t, timer_id>& a,
                         const std::pair<std::uint64_t, timer_id>& b) {
    return a.first > b.first;  // min-heap on deadline
  }

  std::uint64_t now_;
  std::uint64_t target_ = 0;  ///< current advance() destination
  timer_id next_id_ = 1;
  std::unordered_map<timer_id, entry> entries_;
  std::array<std::array<std::vector<timer_id>, kSlots>, kLevels> wheel_;
  std::vector<std::pair<std::uint64_t, timer_id>> overflow_;
  std::vector<timer_id> scratch_ids_;
  std::vector<timer_id> scratch_due_;
};

}  // namespace drt::rpc

#endif  // DRT_RPC_TIMER_WHEEL_H
