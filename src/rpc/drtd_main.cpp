// drtd — the DR-tree daemon (DESIGN.md §10): hosts one overlay behind a
// localhost TCP listener and serves the rpc/wire.h protocol until
// SIGINT/SIGTERM.
//
//   drtd [--port=N] [--stabilize-ms=N] [--seed=N] [--trace=MODE] [--poll]
//
//   --port=N          listen port on 127.0.0.1 (default 7450; 0 = ephemeral)
//   --stabilize-ms=N  wall-clock stabilizer cadence (default 250; 0 = off)
//   --seed=N          hosted overlay's simulator seed (default 1)
//   --trace=MODE      flight recorder: off (default), ring, or full
//   --poll            run the event loop on poll(2) instead of epoll
//
// While serving, `GET /metrics` on the same port (plain HTTP) or a STATS
// wire frame returns the live Prometheus exposition (DESIGN.md §12).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rpc/service.h"

namespace {

drt::rpc::service* g_service = nullptr;

void on_signal(int) {
  // service::stop() is async-signal-safe: an atomic store plus a
  // self-pipe write.
  if (g_service != nullptr) g_service->stop();
}

bool parse_u32(const char* arg, const char* flag, std::uint32_t* out) {
  const auto n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = static_cast<std::uint32_t>(std::strtoul(arg + n + 1, nullptr, 10));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  drt::rpc::service_config config;
  config.port = 7450;
  config.stabilize_every_ms = 250;
  std::uint32_t value = 0;
  for (int i = 1; i < argc; ++i) {
    if (parse_u32(argv[i], "--port", &value)) {
      config.port = static_cast<std::uint16_t>(value);
    } else if (parse_u32(argv[i], "--stabilize-ms", &value)) {
      config.stabilize_every_ms = value;
    } else if (parse_u32(argv[i], "--seed", &value)) {
      config.backend.net.seed = value;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      const char* mode = argv[i] + 8;
      if (std::strcmp(mode, "off") == 0) {
        config.backend.dr.trace = drt::obs::trace_mode::off;
      } else if (std::strcmp(mode, "ring") == 0) {
        config.backend.dr.trace = drt::obs::trace_mode::ring;
      } else if (std::strcmp(mode, "full") == 0) {
        config.backend.dr.trace = drt::obs::trace_mode::full;
      } else {
        std::fprintf(stderr, "drtd: unknown trace mode '%s'\n", mode);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--poll") == 0) {
      config.force_poll = true;
    } else {
      std::fprintf(stderr,
                   "usage: drtd [--port=N] [--stabilize-ms=N] [--seed=N] "
                   "[--trace=off|ring|full] [--poll]\n");
      return 2;
    }
  }

  drt::rpc::service service(config);
  g_service = &service;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf("drtd listening on 127.0.0.1:%u (stabilize %u ms, trace %s, "
              "%s)\n",
              service.port(), config.stabilize_every_ms,
              drt::obs::to_string(config.backend.dr.trace),
              config.force_poll ? "poll" : "epoll");
  std::fflush(stdout);

  service.run();

  const auto& s = service.stats();
  std::printf(
      "drtd exiting: %llu conns (%llu closed), %llu frames in, "
      "%llu out, %llu events pushed, %llu protocol errors, "
      "%llu disconnect unsubscribes, %llu stabilize rounds\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.connections_closed),
      static_cast<unsigned long long>(s.frames_in),
      static_cast<unsigned long long>(s.frames_out),
      static_cast<unsigned long long>(s.events_pushed),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.disconnect_unsubscribes),
      static_cast<unsigned long long>(s.stabilize_rounds));
  return 0;
}
