// Single-threaded readiness event loop for the service mode
// (DESIGN.md §10): epoll on Linux, poll(2) everywhere (and on Linux under
// `force_poll`, which CI uses to keep the fallback honest).
//
// This is the async substrate the daemon runs on instead of the
// simulator's virtual clock: fd readiness callbacks, a hierarchical
// timer wheel (rpc/timer_wheel.h) driven by the monotonic clock at 1 ms
// ticks, and a posted-task queue.  Everything runs on the thread inside
// run(); the only cross-thread entry points are stop() and post(), which
// are lock/atomic-protected and wake the loop through a self-pipe.
#ifndef DRT_RPC_EVENT_LOOP_H
#define DRT_RPC_EVENT_LOOP_H

#include <poll.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "rpc/timer_wheel.h"

namespace drt::rpc {

struct event_loop_config {
  bool force_poll = false;  ///< use poll(2) even where epoll exists
};

class event_loop {
 public:
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;

  /// Readiness callback; the mask is kReadable/kWritable bits (errors
  /// and hangups surface as kReadable so the read() observes them).
  using io_fn = std::function<void(std::uint32_t)>;

  explicit event_loop(event_loop_config config = {});
  ~event_loop();

  event_loop(const event_loop&) = delete;
  event_loop& operator=(const event_loop&) = delete;

  // ------------------------------------------------------------- io fds
  /// Register `fd` (must be non-blocking) for the interest bits.  One
  /// watch per fd; re-watching an fd replaces it.
  void watch(int fd, std::uint32_t interest, io_fn fn);
  void set_interest(int fd, std::uint32_t interest);
  /// Safe against the fd being in the current dispatch batch, and
  /// against the fd number being reused by a later watch.
  void unwatch(int fd);
  std::size_t watched() const { return watches_.size(); }

  // ------------------------------------------------------------- timers
  timer_id after(std::uint64_t delay_ms, std::function<void()> fn);
  timer_id every(std::uint64_t period_ms, std::function<void()> fn);
  bool cancel(timer_id id) { return timers_.cancel(id); }
  timer_wheel& timers() { return timers_; }

  // -------------------------------------------------------------- tasks
  /// Run `fn` on the loop thread at the end of the current (or next)
  /// iteration.  Thread-safe.
  void post(std::function<void()> fn);

  // ----------------------------------------------------------- running
  /// Drive until stop().  One call at a time, from one thread.
  void run();
  /// One poll/dispatch/timers/tasks iteration, waiting at most
  /// `max_wait_ms` (the timer wheel may shorten the wait).  Returns the
  /// number of callbacks dispatched.
  std::size_t run_once(int max_wait_ms);
  /// Thread- and signal-safe: flags the loop and wakes it.
  void stop();
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Milliseconds of monotonic time since construction == the timer
  /// wheel's tick clock.
  std::uint64_t now_ms() const;
  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  struct watch_state {
    std::uint32_t interest = 0;
    io_fn fn;
  };

  void arm(int fd, std::uint32_t interest, bool add);
  std::size_t dispatch_ready(
      const std::vector<std::pair<int, std::uint32_t>>& ready);
  std::size_t drain_tasks();
  int wait_budget_ms(int max_wait_ms) const;

  event_loop_config config_;
  std::chrono::steady_clock::time_point start_;
  timer_wheel timers_;

  std::unordered_map<int, watch_state> watches_;

  int epoll_fd_ = -1;      ///< -1: poll fallback
  int wake_fds_[2] = {-1, -1};  ///< self-pipe; [0] read, [1] write

  std::atomic<bool> stop_{false};
  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;

  // Scratch buffers reused across iterations.
  std::vector<std::pair<int, std::uint32_t>> ready_;
  std::vector<struct pollfd> pollfds_;
  std::vector<std::function<void()>> running_tasks_;
};

}  // namespace drt::rpc

#endif  // DRT_RPC_EVENT_LOOP_H
