#include "rpc/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <utility>

#include "util/expect.h"

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace drt::rpc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DRT_ENSURE(flags >= 0);
  DRT_ENSURE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

event_loop::event_loop(event_loop_config config)
    : config_(config), start_(std::chrono::steady_clock::now()) {
  DRT_ENSURE(::pipe(wake_fds_) == 0);
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
#ifdef __linux__
  if (!config_.force_poll) {
    epoll_fd_ = ::epoll_create1(0);
    DRT_ENSURE(epoll_fd_ >= 0);
  }
#endif
  // The self-pipe is a regular watch with no callback: draining it is
  // the dispatch path's job, the wakeup itself is the point.
  watch(wake_fds_[0], kReadable, [this](std::uint32_t) {
    char buf[64];
    while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
    }
  });
}

event_loop::~event_loop() {
#ifdef __linux__
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

std::uint64_t event_loop::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void event_loop::arm(int fd, std::uint32_t interest, bool add) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event ev = {};
    ev.data.fd = fd;
    if ((interest & kReadable) != 0) ev.events |= EPOLLIN;
    if ((interest & kWritable) != 0) ev.events |= EPOLLOUT;
    DRT_ENSURE(::epoll_ctl(epoll_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD,
                           fd, &ev) == 0);
    return;
  }
#endif
  (void)fd;
  (void)interest;
  (void)add;  // poll fallback rebuilds its fd set every iteration
}

void event_loop::watch(int fd, std::uint32_t interest, io_fn fn) {
  DRT_EXPECT(fd >= 0);
  DRT_EXPECT(fn != nullptr);
  const bool add = watches_.find(fd) == watches_.end();
  auto& w = watches_[fd];
  w.interest = interest;
  w.fn = std::move(fn);
  arm(fd, interest, add);
}

void event_loop::set_interest(int fd, std::uint32_t interest) {
  auto it = watches_.find(fd);
  DRT_EXPECT(it != watches_.end());
  if (it->second.interest == interest) return;
  it->second.interest = interest;
  arm(fd, interest, /*add=*/false);
}

void event_loop::unwatch(int fd) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  watches_.erase(it);
#ifdef __linux__
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

timer_id event_loop::after(std::uint64_t delay_ms, std::function<void()> fn) {
  return timers_.schedule(now_ms() + std::max<std::uint64_t>(delay_ms, 1),
                          std::move(fn));
}

timer_id event_loop::every(std::uint64_t period_ms, std::function<void()> fn) {
  const auto period = std::max<std::uint64_t>(period_ms, 1);
  return timers_.schedule_periodic(now_ms() + period, period, std::move(fn));
}

void event_loop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(fn));
  }
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], "t", 1);
}

void event_loop::stop() {
  stop_.store(true, std::memory_order_release);
  // write(2) is async-signal-safe, so drtd's SIGINT handler may call
  // stop() directly.
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], "s", 1);
}

int event_loop::wait_budget_ms(int max_wait_ms) const {
  const std::uint64_t wake = timers_.next_wake();
  if (wake == timer_wheel::kNever) return max_wait_ms;
  const std::uint64_t now = now_ms();
  if (wake <= now) return 0;
  const std::uint64_t until = wake - now;
  if (max_wait_ms < 0) return static_cast<int>(std::min<std::uint64_t>(
      until, std::numeric_limits<int>::max()));
  return static_cast<int>(
      std::min<std::uint64_t>(until, static_cast<std::uint64_t>(max_wait_ms)));
}

std::size_t event_loop::dispatch_ready(
    const std::vector<std::pair<int, std::uint32_t>>& ready) {
  std::size_t dispatched = 0;
  for (const auto& [fd, mask] : ready) {
    // Re-validate per event: an earlier callback in this batch may have
    // unwatched the fd.  If it also opened a new fd that reused the
    // number, the stale readiness delivered here is harmless — fds are
    // non-blocking and callbacks must tolerate EAGAIN.
    auto it = watches_.find(fd);
    if (it == watches_.end()) continue;
    const auto effective = mask & (it->second.interest | kReadable);
    if (effective == 0) continue;
    it->second.fn(effective);
    ++dispatched;
  }
  return dispatched;
}

std::size_t event_loop::drain_tasks() {
  running_tasks_.clear();
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    running_tasks_.swap(tasks_);
  }
  for (auto& fn : running_tasks_) fn();
  return running_tasks_.size();
}

std::size_t event_loop::run_once(int max_wait_ms) {
  const int wait = wait_budget_ms(max_wait_ms);
  ready_.clear();

#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, wait);
    for (int i = 0; i < n; ++i) {
      std::uint32_t mask = 0;
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        mask |= kReadable;
      }
      if ((events[i].events & EPOLLOUT) != 0) mask |= kWritable;
      const int fd = events[i].data.fd;
      if (mask != 0) ready_.emplace_back(fd, mask);
    }
  } else
#endif
  {
    pollfds_.clear();
    for (const auto& [fd, w] : watches_) {
      struct pollfd p = {};
      p.fd = fd;
      if ((w.interest & kReadable) != 0) p.events |= POLLIN;
      if ((w.interest & kWritable) != 0) p.events |= POLLOUT;
      pollfds_.push_back(p);
    }
    const int n = ::poll(pollfds_.data(),
                         static_cast<nfds_t>(pollfds_.size()), wait);
    if (n > 0) {
      for (const auto& p : pollfds_) {
        std::uint32_t mask = 0;
        if ((p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0) {
          mask |= kReadable;
        }
        if ((p.revents & POLLOUT) != 0) mask |= kWritable;
        if (mask != 0) ready_.emplace_back(p.fd, mask);
      }
    }
  }

  std::size_t work = dispatch_ready(ready_);
  work += timers_.advance(now_ms());
  work += drain_tasks();
  return work;
}

void event_loop::run() {
  while (!stopped()) {
    run_once(100);
  }
}

}  // namespace drt::rpc
