// Thin blocking client for the drtd wire protocol (DESIGN.md §10).
//
// One TCP connection, sequence-correlated request/reply, with unsolicited
// event_push frames buffered into events() as they interleave with
// replies.  Every operation fails soft — a dead daemon yields error
// returns (kNoSub / false / ok()==false), never exceptions or aborts —
// because a *client* losing its server is a runtime condition, not a
// programming error.
//
// Not thread-safe: one client per thread, like one socket per thread.
#ifndef DRT_RPC_CLIENT_H
#define DRT_RPC_CLIENT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rpc/wire.h"
#include "spatial/types.h"

namespace drt::rpc {

class client {
 public:
  client() = default;  ///< disconnected; use connect()
  explicit client(std::uint16_t port) { connect(port); }
  ~client() { close(); }

  client(const client&) = delete;
  client& operator=(const client&) = delete;
  client(client&& other) noexcept { swap(other); }
  client& operator=(client&& other) noexcept {
    if (this != &other) {
      close();
      swap(other);
    }
    return *this;
  }

  /// Connect to a drtd on 127.0.0.1:port.  Returns ok().
  bool connect(std::uint16_t port);
  void close();
  bool ok() const { return fd_ >= 0; }

  // ---------------------------------------------------------------- rpcs
  /// Returns the subscription id, or engine-style kNoSub (-1) on failure.
  std::uint64_t subscribe(const spatial::box& filter);
  bool unsubscribe(std::uint64_t sub);
  bool alive(std::uint64_t sub);
  bool ping();

  /// One publication's report; `ok == 0` when the daemon rejected it
  /// (unknown publisher) or the connection died.
  report_body publish(std::uint64_t publisher, const spatial::pt& value);
  /// Batched publication; chunks transparently at the envelope capacity
  /// (dr_batch_msg::kMaxEvents) and aggregates the reports.
  report_body publish_batch(std::uint64_t publisher,
                            const spatial::pt* values, std::size_t n);

  stat_body stat();
  /// The full live id list, paged transparently.
  std::vector<std::uint64_t> active();

  /// The daemon's Prometheus text exposition (DESIGN.md §12), paged
  /// transparently; "" on connection death.  The daemon snapshots the
  /// text on the first page, so a multi-page read is self-consistent.
  std::string stats_text();

  /// Event notifications received so far (in arrival order).  The caller
  /// may clear() between operations; the buffer is unbounded otherwise.
  std::vector<event_push_body>& events() { return events_; }

 private:
  /// Send one request frame and block for the matching reply; pushes are
  /// buffered on the way.  False on connection death, protocol error, or
  /// an error frame for our seq (code stored in last_error_).
  bool roundtrip(frame_type request, const void* body,
                 std::size_t body_bytes, frame_type expect,
                 std::vector<std::byte>& payload);
  bool send_all(const std::byte* data, std::size_t size);
  void fail() { close(); }

  int fd_ = -1;
  std::uint32_t next_seq_ = 1;
  std::vector<std::byte> rbuf_;
  std::vector<std::byte> sendbuf_;
  std::vector<event_push_body> events_;
  std::uint32_t last_error_ = 0;  ///< wire_errc of the last error frame

  void swap(client& other) noexcept {
    std::swap(fd_, other.fd_);
    std::swap(next_seq_, other.next_seq_);
    rbuf_.swap(other.rbuf_);
    sendbuf_.swap(other.sendbuf_);
    events_.swap(other.events_);
    std::swap(last_error_, other.last_error_);
  }
};

}  // namespace drt::rpc

#endif  // DRT_RPC_CLIENT_H
