#include "rpc/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace drt::rpc {

namespace {

constexpr std::uint64_t kNoSubValue = static_cast<std::uint64_t>(-1);

}  // namespace

bool client::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  // A vanished daemon must surface as an error, not a hang: bound every
  // blocking read.  10 s dwarfs any legitimate localhost round-trip.
  struct timeval tv = {};
  tv.tv_sec = 10;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return false;
  }
  return true;
}

void client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rbuf_.clear();
}

bool client::send_all(const std::byte* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const auto n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool client::roundtrip(frame_type request, const void* body,
                       std::size_t body_bytes, frame_type expect,
                       std::vector<std::byte>& payload) {
  if (!ok()) return false;
  const std::uint32_t seq = next_seq_++;
  sendbuf_.clear();
  put_frame_bytes(sendbuf_, request, seq, body, body_bytes);
  if (!send_all(sendbuf_.data(), sendbuf_.size())) {
    fail();
    return false;
  }

  std::byte buf[16384];
  for (;;) {
    // Drain every complete frame already buffered before reading more.
    for (;;) {
      frame_view frame;
      std::size_t consumed = 0;
      const auto status =
          try_decode(rbuf_.data(), rbuf_.size(), frame, consumed);
      if (status == decode_status::need_more) break;
      if (status != decode_status::ok) {
        fail();
        return false;
      }
      bool done = false;
      bool good = false;
      if (frame.type == frame_type::event_push) {
        event_push_body push;
        if (frame.read(push)) events_.push_back(push);
      } else if (frame.seq == seq && frame.type == expect) {
        payload.assign(frame.payload, frame.payload + frame.size);
        done = true;
        good = true;
      } else if (frame.seq == seq && frame.type == frame_type::error) {
        error_body err;
        last_error_ = frame.read(err) ? err.code : 0;
        done = true;
      }
      // Anything else (a stale reply after a timeout) is dropped.
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      if (done) return good;
    }

    const auto n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail();  // EOF, timeout, or hard error
    return false;
  }
}

std::uint64_t client::subscribe(const spatial::box& filter) {
  subscribe_body body;
  body.filter = filter;
  std::vector<std::byte> payload;
  if (!roundtrip(frame_type::subscribe, &body, sizeof(body),
                 frame_type::subscribe_ok, payload) ||
      payload.size() != sizeof(sub_body)) {
    return kNoSubValue;
  }
  sub_body reply;
  std::memcpy(&reply, payload.data(), sizeof(reply));
  return reply.sub;
}

bool client::unsubscribe(std::uint64_t sub) {
  sub_body body;
  body.sub = sub;
  std::vector<std::byte> payload;
  if (!roundtrip(frame_type::unsubscribe, &body, sizeof(body),
                 frame_type::unsubscribe_ok, payload) ||
      payload.size() != sizeof(bool_body)) {
    return false;
  }
  bool_body reply;
  std::memcpy(&reply, payload.data(), sizeof(reply));
  return reply.value != 0;
}

bool client::alive(std::uint64_t sub) {
  sub_body body;
  body.sub = sub;
  std::vector<std::byte> payload;
  if (!roundtrip(frame_type::alive, &body, sizeof(body),
                 frame_type::alive_ok, payload) ||
      payload.size() != sizeof(bool_body)) {
    return false;
  }
  bool_body reply;
  std::memcpy(&reply, payload.data(), sizeof(reply));
  return reply.value != 0;
}

bool client::ping() {
  std::vector<std::byte> payload;
  return roundtrip(frame_type::ping, nullptr, 0, frame_type::pong, payload);
}

report_body client::publish(std::uint64_t publisher,
                            const spatial::pt& value) {
  publish_body body;
  body.publisher = publisher;
  body.value = value;
  std::vector<std::byte> payload;
  report_body reply;
  if (roundtrip(frame_type::publish, &body, sizeof(body),
                frame_type::publish_report, payload) &&
      payload.size() == sizeof(report_body)) {
    std::memcpy(&reply, payload.data(), sizeof(reply));
  }
  return reply;
}

report_body client::publish_batch(std::uint64_t publisher,
                                  const spatial::pt* values, std::size_t n) {
  report_body total;
  std::size_t done = 0;
  bool all_ok = n > 0;
  while (done < n) {
    const auto k =
        std::min<std::size_t>(overlay::dr_batch_msg::kMaxEvents, n - done);
    overlay::dr_batch_msg batch;
    batch.kind = overlay::msg_kind::batch_down;
    batch.count = static_cast<std::uint32_t>(k);
    for (std::size_t i = 0; i < k; ++i) {
      batch.events[i].id = 0;  // the daemon's overlay allocates ids
      batch.events[i].publisher = static_cast<spatial::peer_id>(publisher);
      batch.events[i].value = values[done + i];
    }
    std::vector<std::byte> payload;
    report_body reply;
    if (!roundtrip(frame_type::publish_batch, &batch,
                   overlay::dr_batch_msg::bytes_for(k),
                   frame_type::publish_report, payload) ||
        payload.size() != sizeof(report_body)) {
      all_ok = false;
      break;
    }
    std::memcpy(&reply, payload.data(), sizeof(reply));
    if (reply.ok == 0) all_ok = false;
    total.interested += reply.interested;
    total.delivered += reply.delivered;
    total.false_positives += reply.false_positives;
    total.false_negatives += reply.false_negatives;
    total.messages += reply.messages;
    total.max_hops = std::max(total.max_hops, reply.max_hops);
    done += k;
  }
  total.ok = all_ok ? 1 : 0;
  return total;
}

stat_body client::stat() {
  std::vector<std::byte> payload;
  stat_body reply;
  if (roundtrip(frame_type::stat, nullptr, 0, frame_type::stat_ok,
                payload) &&
      payload.size() == sizeof(stat_body)) {
    std::memcpy(&reply, payload.data(), sizeof(reply));
  } else {
    reply.root = kNoSubValue;
  }
  return reply;
}

std::vector<std::uint64_t> client::active() {
  std::vector<std::uint64_t> ids;
  std::uint32_t offset = 0;
  for (;;) {
    active_req_body body;
    body.offset = offset;
    std::vector<std::byte> payload;
    if (!roundtrip(frame_type::active, &body, sizeof(body),
                   frame_type::active_ok, payload)) {
      break;
    }
    frame_view view;
    view.type = frame_type::active_ok;
    view.payload = payload.data();
    view.size = static_cast<std::uint32_t>(payload.size());
    active_ok_body page;
    if (!read_active_page(view, page)) {
      fail();
      break;
    }
    for (std::uint32_t i = 0; i < page.count; ++i) {
      ids.push_back(page.ids[i]);
    }
    offset += page.count;
    if (page.count == 0 || offset >= page.total) break;
  }
  return ids;
}

std::string client::stats_text() {
  std::string text;
  std::uint32_t offset = 0;
  for (;;) {
    stats_req_body body;
    body.offset = offset;
    std::vector<std::byte> payload;
    if (!roundtrip(frame_type::stats, &body, sizeof(body),
                   frame_type::stats_ok, payload)) {
      break;
    }
    frame_view view;
    view.type = frame_type::stats_ok;
    view.payload = payload.data();
    view.size = static_cast<std::uint32_t>(payload.size());
    stats_text_body page;
    if (!read_stats_page(view, page)) {
      fail();
      break;
    }
    text.append(page.text, page.count);
    offset += page.count;
    if (page.count == 0 || offset >= page.total) break;
  }
  return text;
}

}  // namespace drt::rpc
