#include "rpc/net_backend.h"

#include <utility>

#include "util/expect.h"

namespace drt::engine {

net_backend::net_backend(const rpc::service_config& config)
    : service_(std::make_unique<rpc::service>(config)) {
  port_ = service_->port();
  service_thread_ = std::thread([svc = service_.get()] { svc->run(); });
  DRT_ENSURE(client_.connect(port_));
}

net_backend::net_backend(std::uint16_t port) : port_(port) {
  DRT_ENSURE(client_.connect(port_));
}

net_backend::~net_backend() {
  client_.close();
  if (service_ != nullptr) {
    service_->stop();
    if (service_thread_.joinable()) service_thread_.join();
  }
}

sub_id net_backend::subscribe(const spatial::box& filter) {
  // Notifications for past publications are irrelevant to the engine's
  // report-driven accounting; keep the buffer from growing unbounded.
  client_.events().clear();
  return client_.subscribe(filter);
}

bool net_backend::unsubscribe(sub_id s) {
  client_.events().clear();
  return client_.unsubscribe(s);
}

bool net_backend::alive(sub_id s) const { return client_.alive(s); }

std::vector<sub_id> net_backend::active() const { return client_.active(); }

std::size_t net_backend::population() const {
  return static_cast<std::size_t>(client_.stat().population);
}

sub_id net_backend::root() const { return client_.stat().root; }

namespace {

delivery_report to_report(const rpc::report_body& r) {
  delivery_report d;
  d.interested = r.interested;
  d.delivered = r.delivered;
  d.false_positives = r.false_positives;
  d.false_negatives = r.false_negatives;
  d.messages = r.messages;
  d.max_hops = r.max_hops;
  return d;
}

}  // namespace

delivery_report net_backend::publish(sub_id publisher,
                                     const spatial::pt& value) {
  client_.events().clear();
  return to_report(client_.publish(publisher, value));
}

delivery_report net_backend::publish_batch(sub_id publisher,
                                           const spatial::pt* values,
                                           std::size_t n) {
  client_.events().clear();
  return to_report(client_.publish_batch(publisher, values, n));
}

bool net_backend::legal() const { return client_.stat().legal != 0; }

backend_shape net_backend::shape() const {
  const auto s = client_.stat();
  backend_shape shape;
  shape.population = s.population;
  shape.height = s.height;
  shape.max_degree = s.max_degree;
  shape.avg_degree = s.avg_degree;
  shape.routing_state = s.routing_state;
  return shape;
}

backend_counters net_backend::counters() const {
  return {client_.stat().messages, 0};
}

}  // namespace drt::engine
