#include "rpc/service.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>

#include "drtree/checker.h"
#include "obs/metrics.h"
#include "util/expect.h"

namespace drt::rpc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DRT_ENSURE(flags >= 0);
  DRT_ENSURE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

service::service(service_config config)
    : config_(config), loop_({config.force_poll}), be_(config.backend) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DRT_ENSURE(listen_fd_ >= 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  DRT_ENSURE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0);
  DRT_ENSURE(::listen(listen_fd_, 64) == 0);
  set_nonblocking(listen_fd_);

  sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  DRT_ENSURE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0);
  port_ = ntohs(bound.sin_port);
}

service::~service() {
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void service::run() {
  loop_.watch(listen_fd_, event_loop::kReadable,
              [this](std::uint32_t) { on_accept(); });
  timer_id stabilizer = kNoTimer;
  if (config_.stabilize_every_ms > 0) {
    stabilizer = loop_.every(config_.stabilize_every_ms, [this] {
      // Backlog-aware cadence: with dirty-mode stabilization a period
      // with no marked instances runs no round — except every
      // sweep_stride-th tick, which runs unconditionally so silent
      // corruption is still found within K wall-clock periods (the same
      // bound the virtual-time scheduler gives).  Full mode keeps the
      // legacy round-every-period behavior.
      const auto& ov = be_.overlay();
      const bool dirty_mode =
          ov.config().stabilize == overlay::stabilize_mode::dirty;
      ++stabilize_tick_;
      const auto stride =
          std::max<std::size_t>(std::size_t{1}, ov.config().sweep_stride);
      if (dirty_mode && ov.dirty_pending() == 0 &&
          stabilize_tick_ % stride != 0) {
        ++stats_.stabilize_skipped;
        return;
      }
      be_.step_round();
      ++stats_.stabilize_rounds;
    });
  }

  serving_.store(true, std::memory_order_release);
  loop_.run();
  serving_.store(false, std::memory_order_release);

  // Shutdown: drop connections without churning the overlay — the
  // daemon is going away, a storm of controlled leaves helps nobody.
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    loop_.unwatch(fd);
    ::close(fd);
    ++stats_.connections_closed;
  }
  conns_.clear();
  owners_.clear();
  if (stabilizer != kNoTimer) loop_.cancel(stabilizer);
  loop_.unwatch(listen_fd_);
}

void service::on_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: nothing to admit now
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    auto& conn = conns_[fd];
    conn.fd = fd;
    ++stats_.connections_accepted;
    loop_.watch(fd, event_loop::kReadable,
                [this, fd](std::uint32_t events) { on_conn_event(fd, events); });
  }
}

void service::on_conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;

  if ((events & event_loop::kReadable) != 0) {
    bool eof = false;
    std::byte buf[16384];
    for (;;) {
      const auto n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        it->second.rbuf.insert(it->second.rbuf.end(), buf, buf + n);
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;  // hard socket error: treat as disappearance
      break;
    }
    if (!drain_frames(it->second)) return;  // connection was reaped
    if (eof) {
      close_connection(fd);
      return;
    }
  }

  if ((events & event_loop::kWritable) != 0) {
    auto again = conns_.find(fd);
    if (again != conns_.end()) {
      flush(again->second);
      if (again->second.dead) close_connection(fd);
    }
  }
}

bool service::drain_frames(connection& conn) {
  const int fd = conn.fd;
  // A binary frame opens with kMagic ("DRT1"); a plaintext "GET " prefix
  // is an HTTP scrape of /metrics.  Sniff before try_decode — bad magic
  // would otherwise kill the connection.
  if (!conn.http && !conn.dead && conn.rbuf.size() >= 4 &&
      std::memcmp(conn.rbuf.data(), "GET ", 4) == 0) {
    conn.http = true;
  }
  if (conn.http) {
    if (!conn.dead) handle_http(conn);
    reap();
    return conns_.find(fd) != conns_.end();
  }
  std::size_t off = 0;
  while (!conn.dead) {
    frame_view frame;
    std::size_t consumed = 0;
    const auto status = try_decode(conn.rbuf.data() + off,
                                   conn.rbuf.size() - off, frame, consumed);
    if (status == decode_status::need_more) break;
    if (status != decode_status::ok) {
      // Desynchronized or foreign stream — there is no resync point in
      // a length-prefixed protocol, so the connection is over.
      ++stats_.protocol_errors;
      conn.dead = true;
      break;
    }
    ++stats_.frames_in;
    handle_frame(conn, frame);
    off += consumed;
    if (conn.wbuf.size() > config_.max_write_buffer) {
      ++stats_.protocol_errors;  // dead-slow consumer
      conn.dead = true;
    }
  }
  if (off > 0) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  reap();
  return conns_.find(fd) != conns_.end();
}

void service::handle_frame(connection& conn, const frame_view& frame) {
  switch (frame.type) {
    case frame_type::ping:
      send_bytes(conn, frame_type::pong, frame.seq, nullptr, 0);
      return;
    case frame_type::subscribe:
      handle_subscribe(conn, frame);
      return;
    case frame_type::unsubscribe:
      handle_unsubscribe(conn, frame);
      return;
    case frame_type::alive: {
      sub_body body;
      if (!frame.read(body)) {
        send_error(conn, frame.seq, wire_errc::bad_request);
        return;
      }
      bool_body reply;
      reply.value = be_.alive(body.sub) ? 1 : 0;
      send_bytes(conn, frame_type::alive_ok, frame.seq, &reply,
                 sizeof(reply));
      return;
    }
    case frame_type::publish:
      handle_publish(conn, frame);
      return;
    case frame_type::publish_batch:
      handle_publish_batch(conn, frame);
      return;
    case frame_type::stat:
      handle_stat(conn, frame);
      return;
    case frame_type::active:
      handle_active(conn, frame);
      return;
    case frame_type::stats:
      handle_stats(conn, frame);
      return;
    case frame_type::overlay_msg:
    case frame_type::overlay_batch:
      // Reserved peer-wire channel: framed fine, not served by a hosted
      // overlay (peers are in-process here, not remote).
      send_error(conn, frame.seq, wire_errc::unsupported);
      return;
    default:
      send_error(conn, frame.seq, wire_errc::unsupported);
      return;
  }
}

void service::handle_subscribe(connection& conn, const frame_view& frame) {
  subscribe_body body;
  if (!frame.read(body)) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  const auto sub = be_.subscribe(body.filter);
  if (sub == engine::kNoSub) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  owners_[sub] = conn.fd;
  conn.subs.push_back(sub);
  sub_body reply;
  reply.sub = sub;
  send_bytes(conn, frame_type::subscribe_ok, frame.seq, &reply,
             sizeof(reply));
}

void service::handle_unsubscribe(connection& conn, const frame_view& frame) {
  sub_body body;
  if (!frame.read(body)) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  bool_body reply;
  auto owner = owners_.find(body.sub);
  if (owner != owners_.end() && owner->second == conn.fd &&
      be_.unsubscribe(body.sub)) {
    owners_.erase(owner);
    auto& subs = conn.subs;
    subs.erase(std::remove(subs.begin(), subs.end(), body.sub), subs.end());
    reply.value = 1;
  }
  send_bytes(conn, frame_type::unsubscribe_ok, frame.seq, &reply,
             sizeof(reply));
}

void service::handle_publish(connection& conn, const frame_view& frame) {
  publish_body body;
  if (!frame.read(body)) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  report_body reply;
  auto owner = owners_.find(body.publisher);
  if (owner == owners_.end() || owner->second != conn.fd ||
      !be_.alive(body.publisher)) {
    send_bytes(conn, frame_type::publish_report, frame.seq, &reply,
               sizeof(reply));  // ok = 0
    return;
  }
  const auto result = be_.overlay().publish_and_drain(
      static_cast<spatial::peer_id>(body.publisher), body.value);
  push_deliveries(result, body.publisher, body.value);
  reply.interested = result.interested;
  reply.delivered = result.delivered;
  reply.false_positives = result.false_positives;
  reply.false_negatives = result.false_negatives;
  reply.messages = result.messages;
  reply.max_hops = static_cast<std::uint32_t>(result.max_hops);
  reply.ok = 1;
  send_bytes(conn, frame_type::publish_report, frame.seq, &reply,
             sizeof(reply));
}

void service::handle_publish_batch(connection& conn, const frame_view& frame) {
  overlay::dr_batch_msg batch;
  if (!read_batch(frame, batch) || batch.count == 0) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  const std::uint64_t publisher = batch.events[0].publisher;
  report_body reply;
  auto owner = owners_.find(publisher);
  if (owner == owners_.end() || owner->second != conn.fd ||
      !be_.alive(publisher)) {
    send_bytes(conn, frame_type::publish_report, frame.seq, &reply,
               sizeof(reply));  // ok = 0
    return;
  }
  spatial::pt values[overlay::dr_batch_msg::kMaxEvents];
  for (std::uint32_t i = 0; i < batch.count; ++i) {
    values[i] = batch.events[i].value;
  }
  const auto results = be_.overlay().multi_publish_and_drain(
      static_cast<spatial::peer_id>(publisher), values, batch.count);
  for (std::size_t i = 0; i < results.size(); ++i) {
    push_deliveries(results[i], publisher, values[i]);
    reply.interested += results[i].interested;
    reply.delivered += results[i].delivered;
    reply.false_positives += results[i].false_positives;
    reply.false_negatives += results[i].false_negatives;
    reply.messages += results[i].messages;
    reply.max_hops = std::max(
        reply.max_hops, static_cast<std::uint32_t>(results[i].max_hops));
  }
  reply.ok = 1;
  send_bytes(conn, frame_type::publish_report, frame.seq, &reply,
             sizeof(reply));
}

void service::handle_stat(connection& conn, const frame_view& frame) {
  // One checker pass answers legality and shape together, so the RPC
  // reads exactly what drtree_backend::shape()/legal() would compute.
  const auto report = overlay::checker(be_.overlay()).check();
  stat_body reply;
  reply.population = be_.population();
  reply.height = report.height;
  reply.max_degree = report.max_interior_children;
  reply.routing_state = report.memory_links;
  reply.messages = be_.counters().messages;
  reply.root = be_.root();
  reply.avg_degree = report.avg_interior_children;
  reply.legal = report.legal() ? 1 : 0;
  send_bytes(conn, frame_type::stat_ok, frame.seq, &reply, sizeof(reply));
}

void service::handle_active(connection& conn, const frame_view& frame) {
  active_req_body body;
  if (!frame.read(body)) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  const auto all = be_.active();
  active_ok_body reply;
  reply.total = all.size();
  reply.offset = body.offset;
  const std::size_t start = std::min<std::size_t>(body.offset, all.size());
  const std::size_t n =
      std::min(active_ok_body::kMaxIds, all.size() - start);
  for (std::size_t i = 0; i < n; ++i) reply.ids[i] = all[start + i];
  reply.count = static_cast<std::uint32_t>(n);
  send_bytes(conn, frame_type::active_ok, frame.seq, &reply,
             active_ok_body::bytes_for(n));
}

void service::handle_stats(connection& conn, const frame_view& frame) {
  stats_req_body body;
  if (!frame.read(body)) {
    send_error(conn, frame.seq, wire_errc::bad_request);
    return;
  }
  if (body.offset == 0 || conn.stats_cache.empty()) {
    conn.stats_cache = build_exposition();
  }
  stats_text_body reply;
  reply.total = conn.stats_cache.size();
  reply.offset = body.offset;
  const std::size_t start =
      std::min<std::size_t>(body.offset, conn.stats_cache.size());
  const std::size_t n =
      std::min(stats_text_body::kMaxBytes, conn.stats_cache.size() - start);
  std::memcpy(reply.text, conn.stats_cache.data() + start, n);
  reply.count = static_cast<std::uint32_t>(n);
  send_bytes(conn, frame_type::stats_ok, frame.seq, &reply,
             stats_text_body::bytes_for(n));
}

std::string service::build_exposition() {
  obs::registry reg;
  reg.counter("drtd_connections_accepted_total") = stats_.connections_accepted;
  reg.counter("drtd_connections_closed_total") = stats_.connections_closed;
  reg.counter("drtd_frames_in_total") = stats_.frames_in;
  reg.counter("drtd_frames_out_total") = stats_.frames_out;
  reg.counter("drtd_events_pushed_total") = stats_.events_pushed;
  reg.counter("drtd_protocol_errors_total") = stats_.protocol_errors;
  reg.counter("drtd_disconnect_unsubscribes_total") =
      stats_.disconnect_unsubscribes;
  reg.counter("drtd_stabilize_rounds_total") = stats_.stabilize_rounds;
  reg.counter("drtd_stabilize_skipped_total") = stats_.stabilize_skipped;
  reg.counter("drtd_overlay_messages_total") = be_.counters().messages;
  if (const auto* t = be_.trace()) {
    reg.counter("drtd_trace_records_total") = t->emitted();
  }
  const auto shape = be_.shape();
  reg.gauge("drtd_overlay_population") =
      static_cast<double>(shape.population);
  reg.gauge("drtd_overlay_height") = static_cast<double>(shape.height);
  reg.gauge("drtd_overlay_max_degree") =
      static_cast<double>(shape.max_degree);
  reg.gauge("drtd_overlay_avg_degree") = shape.avg_degree;
  reg.gauge("drtd_overlay_routing_state") =
      static_cast<double>(shape.routing_state);
  reg.gauge("drtd_overlay_dirty_pending") =
      static_cast<double>(be_.overlay().dirty_pending());
  return reg.expose();
}

void service::handle_http(connection& conn) {
  static constexpr std::size_t kMaxHttpRequest = 8192;
  const auto* data = reinterpret_cast<const char*>(conn.rbuf.data());
  const std::string_view req(data, conn.rbuf.size());
  const auto end = req.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    if (conn.rbuf.size() > kMaxHttpRequest) {
      ++stats_.protocol_errors;
      conn.dead = true;
    }
    return;  // headers still arriving
  }
  // Request line: "GET <path> HTTP/1.x".
  const auto line_end = req.find("\r\n");
  std::string_view path;
  const auto first_sp = req.find(' ');
  if (first_sp != std::string_view::npos && first_sp < line_end) {
    const auto second_sp = req.find(' ', first_sp + 1);
    if (second_sp != std::string_view::npos && second_sp < line_end) {
      path = req.substr(first_sp + 1, second_sp - first_sp - 1);
    }
  }
  conn.rbuf.erase(conn.rbuf.begin(),
                  conn.rbuf.begin() + static_cast<std::ptrdiff_t>(end + 4));

  std::string response;
  if (path == "/metrics") {
    const auto body = build_exposition();
    response = "HTTP/1.0 200 OK\r\n"
               "Content-Type: text/plain; version=0.0.4\r\n"
               "Content-Length: " + std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
  } else {
    response = "HTTP/1.0 404 Not Found\r\n"
               "Content-Length: 0\r\nConnection: close\r\n\r\n";
  }
  const auto* bytes = reinterpret_cast<const std::byte*>(response.data());
  conn.wbuf.insert(conn.wbuf.end(), bytes, bytes + response.size());
  conn.close_when_drained = true;
  flush(conn);
}

void service::run_on_loop(std::function<void()> fn) {
  if (!serving_.load(std::memory_order_acquire)) {
    fn();  // loop idle: the calling thread owns the state
    return;
  }
  struct waiter {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
  };
  auto w = std::make_shared<waiter>();
  loop_.post([w, fn = std::move(fn)] {
    {
      std::lock_guard<std::mutex> lk(w->m);
      if (w->abandoned) return;  // caller gave up; fn's captures are gone
    }
    fn();
    std::lock_guard<std::mutex> lk(w->m);
    w->done = true;
    w->cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(w->m);
  while (!w->done) {
    if (w->cv.wait_for(lk, std::chrono::milliseconds(50)) ==
            std::cv_status::timeout &&
        !serving_.load(std::memory_order_acquire)) {
      // The loop exited without draining the task.  Abandon it (the flag
      // keeps a late drain from touching fn's dead captures) and return
      // without running fn — callers detect the skip and read the
      // now-idle state directly.
      w->abandoned = true;
      return;
    }
  }
}

service::counters service::stats_snapshot() {
  counters out{};
  bool filled = false;
  run_on_loop([this, &out, &filled] {
    out = stats_;
    filled = true;
  });
  if (!filled) out = stats_;  // abandoned-task fallback: loop is idle now
  return out;
}

std::string service::metrics_text() {
  std::string out;
  bool filled = false;
  run_on_loop([this, &out, &filled] {
    out = build_exposition();
    filled = true;
  });
  if (!filled) out = build_exposition();
  return out;
}

void service::push_deliveries(const overlay::publish_result& result,
                              std::uint64_t publisher,
                              const spatial::pt& value) {
  for (const auto receiver : result.receivers) {
    auto owner = owners_.find(receiver);
    if (owner == owners_.end()) continue;
    auto cit = conns_.find(owner->second);
    if (cit == conns_.end() || cit->second.dead) continue;
    event_push_body push;
    push.sub = receiver;
    push.ev.id = result.event_id;
    push.ev.publisher = static_cast<spatial::peer_id>(publisher);
    push.ev.value = value;
    push.max_hops = static_cast<std::uint32_t>(result.max_hops);
    send_bytes(cit->second, frame_type::event_push, 0, &push, sizeof(push));
    ++stats_.events_pushed;
  }
}

void service::send_bytes(connection& conn, frame_type type,
                         std::uint32_t seq, const void* body,
                         std::size_t body_bytes) {
  if (conn.dead) return;
  scratch_.clear();
  put_frame_bytes(scratch_, type, seq, body, body_bytes);
  conn.wbuf.insert(conn.wbuf.end(), scratch_.begin(), scratch_.end());
  ++stats_.frames_out;
  flush(conn);
}

void service::send_error(connection& conn, std::uint32_t seq,
                         wire_errc code) {
  error_body body;
  body.code = static_cast<std::uint32_t>(code);
  send_bytes(conn, frame_type::error, seq, &body, sizeof(body));
}

void service::flush(connection& conn) {
  std::size_t off = 0;
  while (off < conn.wbuf.size()) {
    const auto n = ::send(conn.fd, conn.wbuf.data() + off,
                          conn.wbuf.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;  // hard error (EPIPE, ECONNRESET): reaped next
    break;
  }
  if (off > 0) {
    conn.wbuf.erase(conn.wbuf.begin(),
                    conn.wbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  if (conn.close_when_drained && conn.wbuf.empty()) conn.dead = true;
  if (!conn.dead) {
    loop_.set_interest(conn.fd,
                       event_loop::kReadable |
                           (conn.wbuf.empty() ? 0 : event_loop::kWritable));
  }
}

void service::reap() {
  scratch_fds_.clear();
  for (const auto& [fd, conn] : conns_) {
    if (conn.dead) scratch_fds_.push_back(fd);
  }
  for (const int fd : scratch_fds_) close_connection(fd);
}

void service::close_connection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // The churn primitive: whatever this connection owned leaves the
  // overlay through the controlled-departure path, join traffic settles
  // before the next frame from anyone is processed.
  for (const auto sub : it->second.subs) {
    if (be_.unsubscribe(sub)) ++stats_.disconnect_unsubscribes;
    owners_.erase(sub);
  }
  loop_.unwatch(fd);
  ::close(fd);
  conns_.erase(it);
  ++stats_.connections_closed;
}

}  // namespace drt::rpc
