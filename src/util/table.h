// Console table / CSV emitter used by the benchmark harnesses to print
// paper-style rows ("Exp E4: height vs N ...").
#ifndef DRT_UTIL_TABLE_H
#define DRT_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace drt::util {

/// Collects rows of string cells and renders them aligned, and/or as CSV.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Append a row; cells are formatted with `cell()` overloads below.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Pretty-print with column alignment; writes a trailing newline.
  void print(std::ostream& out) const;

  /// Comma-separated (no quoting: cells must not contain commas).
  void write_csv(std::ostream& out) const;

  static std::string cell(double v, int precision = 3);
  static std::string cell(std::size_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(int v);
  static std::string cell(const std::string& v) { return v; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace drt::util

#endif  // DRT_UTIL_TABLE_H
