// Invariant checking helpers (Core Guidelines I.6/I.8 style contracts).
//
// DRT_EXPECT / DRT_ENSURE abort with a readable message when an internal
// invariant is violated.  They are active in all build types: this library
// implements a *self-stabilizing* protocol whose whole point is recovering
// from corrupted state, so silent invariant violations in the machinery
// itself (simulator, geometry, bookkeeping) must never pass unnoticed.
#ifndef DRT_UTIL_EXPECT_H
#define DRT_UTIL_EXPECT_H

#include <cstdio>
#include <cstdlib>

namespace drt::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace drt::util

#define DRT_EXPECT(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                            \
          : ::drt::util::contract_failure("precondition", #cond, __FILE__, \
                                          __LINE__))

#define DRT_ENSURE(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                          \
          : ::drt::util::contract_failure("invariant", #cond, __FILE__, \
                                          __LINE__))

#endif  // DRT_UTIL_EXPECT_H
