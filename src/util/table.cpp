#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expect.h"

namespace drt::util {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DRT_EXPECT(!headers_.empty());
}

void table::add_row(std::vector<std::string> cells) {
  DRT_EXPECT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void table::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string table::cell(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string table::cell(std::size_t v) { return std::to_string(v); }
std::string table::cell(std::int64_t v) { return std::to_string(v); }
std::string table::cell(int v) { return std::to_string(v); }

}  // namespace drt::util
