#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.h"

namespace drt::util {

void accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double accumulator::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double accumulator::stddev() const { return std::sqrt(variance()); }

void sample_set::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void sample_set::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double sample_set::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double sample_set::min() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.front();
}

double sample_set::max() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.back();
}

double sample_set::percentile(double p) const {
  DRT_EXPECT(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

histogram::histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  DRT_EXPECT(lo < hi);
  DRT_EXPECT(buckets > 0);
}

void histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

std::string histogram::to_string() const {
  std::ostringstream out;
  if (underflow_ > 0) out << "(<lo):" << underflow_ << ' ';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << '[' << bucket_lo(i) << ',' << bucket_hi(i) << "):" << counts_[i]
        << ' ';
  }
  if (overflow_ > 0) out << "(>=hi):" << overflow_;
  return out.str();
}

}  // namespace drt::util
