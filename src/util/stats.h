// Streaming and batch statistics used by the experiment harnesses.
#ifndef DRT_UTIL_STATS_H
#define DRT_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace drt::util {

/// Welford streaming accumulator: O(1) memory mean/variance/min/max.
class accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries (keeps all samples).
class sample_set {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0, 100]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void sort_if_needed() const;
};

/// Fixed-width histogram over [lo, hi) with `buckets` bins plus under/over.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  /// Compact one-line rendering ("[0,1):12 [1,2):3 ...") for logs.
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace drt::util

#endif  // DRT_UTIL_STATS_H
