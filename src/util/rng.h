// Deterministic, platform-independent random number generation.
//
// std::mt19937_64 is portable but the standard *distributions* are not
// (their algorithms are implementation-defined), so experiments seeded the
// same way could differ across standard libraries.  We implement the few
// distributions we need (uniform, exponential, zipf, normal) directly on
// top of splitmix64/xoshiro256++ so every run of every experiment is
// bit-reproducible everywhere.
#ifndef DRT_UTIL_RNG_H
#define DRT_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace drt::util {

/// xoshiro256++ seeded via splitmix64.  Passes BigCrush; tiny state.
class rng {
 public:
  explicit rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).  Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Exponential with rate lambda > 0 (mean 1/lambda).
  double exponential(double lambda);

  /// Standard normal via Box-Muller (no cached spare: keeps state trivial).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0 (s = 0: uniform).
  /// Inverse-CDF over cumulative weights, cached per (n, s).
  std::int64_t zipf(std::int64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  std::size_t index(std::size_t size);

 private:
  std::uint64_t s_[4]{};
  // zipf() inverse-CDF cache (see rng.cpp).
  std::int64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace drt::util

#endif  // DRT_UTIL_RNG_H
