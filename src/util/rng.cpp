#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace drt::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void rng::reseed(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 guarantees good spread.
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DRT_EXPECT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Debiased modulo (Lemire-style rejection).
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % range);
}

double rng::uniform_real(double lo, double hi) {
  DRT_EXPECT(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool rng::chance(double p) { return next_double() < p; }

double rng::exponential(double lambda) {
  DRT_EXPECT(lambda > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();  // avoid log(0)
  return -std::log(u) / lambda;
}

double rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::int64_t rng::zipf(std::int64_t n, double s) {
  DRT_EXPECT(n >= 1);
  DRT_EXPECT(s >= 0.0);
  if (s == 0.0) return uniform_int(1, n);
  // Inverse-CDF sampling over cached cumulative weights.  The cache is
  // rebuilt only when (n, s) changes, which experiment loops never do
  // mid-stream, so the amortized cost per draw is one binary search.
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<std::size_t>(n));
    double cum = 0.0;
    for (std::int64_t k = 1; k <= n; ++k) {
      cum += std::pow(static_cast<double>(k), -s);
      zipf_cdf_[static_cast<std::size_t>(k - 1)] = cum;
    }
  }
  const double target = next_double() * zipf_cdf_.back();
  const auto it =
      std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), target);
  return static_cast<std::int64_t>(it - zipf_cdf_.begin()) + 1;
}

std::size_t rng::index(std::size_t size) {
  DRT_EXPECT(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace drt::util
