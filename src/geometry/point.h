// D-dimensional point with double coordinates.
//
// Events in the publish/subscribe model are points: a value for every
// attribute (Section 2.1 of the paper).
#ifndef DRT_GEOMETRY_POINT_H
#define DRT_GEOMETRY_POINT_H

#include <array>
#include <cstddef>
#include <sstream>
#include <string>

namespace drt::geo {

template <std::size_t D>
struct point {
  static_assert(D >= 1, "points need at least one dimension");

  std::array<double, D> coords{};

  constexpr double& operator[](std::size_t i) { return coords[i]; }
  constexpr double operator[](std::size_t i) const { return coords[i]; }

  static constexpr std::size_t dims() { return D; }

  friend constexpr bool operator==(const point& a, const point& b) {
    return a.coords == b.coords;
  }
  friend constexpr bool operator!=(const point& a, const point& b) {
    return !(a == b);
  }

  std::string to_string() const {
    std::ostringstream out;
    out << '(';
    for (std::size_t i = 0; i < D; ++i) {
      if (i) out << ", ";
      out << coords[i];
    }
    out << ')';
    return out.str();
  }
};

using point2 = point<2>;
using point3 = point<3>;

}  // namespace drt::geo

#endif  // DRT_GEOMETRY_POINT_H
