// Axis-aligned D-dimensional rectangles (poly-space rectangles, §2.1) and
// the MBR algebra used by every layer: union ("join"), intersection, area,
// margin, enlargement, containment.
//
// Rectangles may be *unbounded* in any dimension (an attribute the filter
// leaves undefined, Fig. 1): lo = -infinity and/or hi = +infinity.  An
// *empty* rectangle is represented with inverted bounds (lo > hi) and is
// the identity of `join`.
#ifndef DRT_GEOMETRY_RECT_H
#define DRT_GEOMETRY_RECT_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>

#include "geometry/point.h"

namespace drt::geo {

template <std::size_t D>
struct rect {
  static_assert(D >= 1, "rectangles need at least one dimension");

  std::array<double, D> lo{};
  std::array<double, D> hi{};

  static constexpr std::size_t dims() { return D; }

  /// The empty rectangle: join identity, contains nothing.
  static constexpr rect empty() {
    rect r;
    for (std::size_t i = 0; i < D; ++i) {
      r.lo[i] = std::numeric_limits<double>::infinity();
      r.hi[i] = -std::numeric_limits<double>::infinity();
    }
    return r;
  }

  /// The whole space: unbounded in every dimension.
  static constexpr rect universe() {
    rect r;
    for (std::size_t i = 0; i < D; ++i) {
      r.lo[i] = -std::numeric_limits<double>::infinity();
      r.hi[i] = std::numeric_limits<double>::infinity();
    }
    return r;
  }

  /// Degenerate rectangle covering exactly one point.
  static constexpr rect at(const point<D>& p) {
    rect r;
    r.lo = p.coords;
    r.hi = p.coords;
    return r;
  }

  constexpr bool is_empty() const {
    for (std::size_t i = 0; i < D; ++i) {
      if (lo[i] > hi[i]) return true;
    }
    return false;
  }

  constexpr bool is_bounded() const {
    for (std::size_t i = 0; i < D; ++i) {
      if (lo[i] == -std::numeric_limits<double>::infinity() ||
          hi[i] == std::numeric_limits<double>::infinity()) {
        return false;
      }
    }
    return true;
  }

  constexpr bool contains(const point<D>& p) const {
    for (std::size_t i = 0; i < D; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  /// Containment is non-strict: every rect contains itself; everything
  /// contains the empty rect (vacuously).
  constexpr bool contains(const rect& r) const {
    if (r.is_empty()) return true;
    if (is_empty()) return false;
    for (std::size_t i = 0; i < D; ++i) {
      if (r.lo[i] < lo[i] || r.hi[i] > hi[i]) return false;
    }
    return true;
  }

  constexpr bool intersects(const rect& r) const {
    if (is_empty() || r.is_empty()) return false;
    for (std::size_t i = 0; i < D; ++i) {
      if (r.hi[i] < lo[i] || r.lo[i] > hi[i]) return false;
    }
    return true;
  }

  /// Smallest rectangle containing both operands (the MBR union).
  friend constexpr rect join(const rect& a, const rect& b) {
    rect r;
    for (std::size_t i = 0; i < D; ++i) {
      r.lo[i] = std::min(a.lo[i], b.lo[i]);
      r.hi[i] = std::max(a.hi[i], b.hi[i]);
    }
    return r;
  }

  friend constexpr rect intersection(const rect& a, const rect& b) {
    rect r;
    for (std::size_t i = 0; i < D; ++i) {
      r.lo[i] = std::max(a.lo[i], b.lo[i]);
      r.hi[i] = std::min(a.hi[i], b.hi[i]);
    }
    return r;
  }

  /// Hyper-volume.  Empty -> 0; unbounded -> +infinity; a degenerate
  /// (zero-thickness) rect has area 0.
  constexpr double area() const {
    if (is_empty()) return 0.0;
    double a = 1.0;
    for (std::size_t i = 0; i < D; ++i) a *= hi[i] - lo[i];
    return a;
  }

  /// Sum of edge lengths (the R*-tree "margin" criterion).
  constexpr double margin() const {
    if (is_empty()) return 0.0;
    double m = 0.0;
    for (std::size_t i = 0; i < D; ++i) m += hi[i] - lo[i];
    return m;
  }

  /// Area growth required for this rect to also cover `r`.
  constexpr double enlargement(const rect& r) const {
    return join(*this, r).area() - area();
  }

  /// Area of the intersection (0 when disjoint or either empty).
  constexpr double overlap_area(const rect& r) const {
    const rect inter = intersection(*this, r);
    return inter.is_empty() ? 0.0 : inter.area();
  }

  constexpr point<D> center() const {
    point<D> c;
    for (std::size_t i = 0; i < D; ++i) c[i] = (lo[i] + hi[i]) / 2.0;
    return c;
  }

  /// Squared Euclidean distance from `p` to the nearest point of this
  /// rectangle (0 when inside) — the MINDIST bound of R-tree
  /// nearest-neighbor search.
  constexpr double min_dist2(const point<D>& p) const {
    double d2 = 0.0;
    for (std::size_t i = 0; i < D; ++i) {
      double d = 0.0;
      if (p[i] < lo[i]) {
        d = lo[i] - p[i];
      } else if (p[i] > hi[i]) {
        d = p[i] - hi[i];
      }
      d2 += d * d;
    }
    return d2;
  }

  /// Clamp into `bounds`; maps unbounded filter dimensions onto a finite
  /// workspace so that area-based heuristics stay comparable.
  constexpr rect clamped(const rect& bounds) const {
    rect r;
    for (std::size_t i = 0; i < D; ++i) {
      r.lo[i] = std::max(lo[i], bounds.lo[i]);
      r.hi[i] = std::min(hi[i], bounds.hi[i]);
    }
    return r;
  }

  friend constexpr bool operator==(const rect& a, const rect& b) {
    if (a.is_empty() && b.is_empty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend constexpr bool operator!=(const rect& a, const rect& b) {
    return !(a == b);
  }

  std::string to_string() const {
    if (is_empty()) return "[empty]";
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < D; ++i) {
      if (i) out << " x ";
      out << '(' << lo[i] << ".." << hi[i] << ')';
    }
    out << ']';
    return out.str();
  }
};

/// Convenience 2-D constructor matching the paper's
/// ((x_min, y_min), (x_max, y_max)) notation.
constexpr rect<2> make_rect2(double x_lo, double y_lo, double x_hi,
                             double y_hi) {
  rect<2> r;
  r.lo = {x_lo, y_lo};
  r.hi = {x_hi, y_hi};
  return r;
}

using rect2 = rect<2>;
using rect3 = rect<3>;

}  // namespace drt::geo

#endif  // DRT_GEOMETRY_RECT_H
