#include "engine/metrics.h"

namespace drt::engine {

void metrics_recorder::add(phase_metrics m) {
  m.index = phases_.size();
  phases_.push_back(std::move(m));
}

const phase_metrics* metrics_recorder::last(const std::string& phase) const {
  for (auto it = phases_.rbegin(); it != phases_.rend(); ++it) {
    if (it->phase == phase) return &*it;
  }
  return nullptr;
}

std::vector<std::string> metrics_recorder::headers() {
  return {"backend",     "scenario",   "idx",        "phase",
          "skipped",     "ramp",       "pop",        "joins",
          "leaves",      "crashes",    "restarts",   "corruptions",
          "rounds",      "legal",      "events",     "deliveries",
          "interested",  "fp",         "fn",         "max_hops",
          "messages",    "rebuilds",   "height",     "max_degree",
          "avg_degree",  "routing_state",
          // Scheduling-cost columns ride at the end and are excluded
          // from digest() — see there.
          "stabilize_visited", "stabilize_skipped"};
}

std::vector<std::string> metrics_recorder::row_cells(
    const phase_metrics& m) const {
  using util::table;
  return {backend_,
          scenario_,
          table::cell(m.index),
          m.phase,
          m.skipped ? "yes" : "no",
          m.ramp < 0 ? "-" : table::cell(m.ramp, 3),
          table::cell(m.population),
          table::cell(m.joins),
          table::cell(m.leaves),
          table::cell(m.crashes),
          table::cell(m.restarts),
          table::cell(m.corruptions),
          table::cell(static_cast<std::int64_t>(m.rounds)),
          m.legal < 0 ? "-" : (m.legal > 0 ? "yes" : "NO"),
          table::cell(m.events),
          table::cell(m.deliveries),
          table::cell(m.interested),
          table::cell(m.false_positives),
          table::cell(m.false_negatives),
          table::cell(m.max_hops),
          table::cell(static_cast<std::size_t>(m.messages)),
          table::cell(static_cast<std::size_t>(m.rebuilds)),
          table::cell(m.height),
          table::cell(m.max_degree),
          table::cell(m.avg_degree, 2),
          table::cell(m.routing_state),
          table::cell(static_cast<std::size_t>(m.stabilize_visited)),
          table::cell(static_cast<std::size_t>(m.stabilize_skipped))};
}

util::table metrics_recorder::to_table() const {
  util::table out(headers());
  append_rows(out);
  return out;
}

void metrics_recorder::append_rows(util::table& out) const {
  for (const auto& m : phases_) out.add_row(row_cells(m));
}

std::uint64_t metrics_recorder::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // cell separator
    h *= 0x100000001b3ULL;
  };
  for (const auto& m : phases_) {
    const auto cells = row_cells(m);
    // Skip the backend/scenario identity columns so metric-identical
    // runs on different backends hash identically, and the trailing
    // stabilize_visited/skipped scheduling columns: the digest hashes
    // protocol OUTCOMES, and the goldens predate those columns — a
    // scheduling-policy change that leaves every outcome untouched must
    // keep hashing identically.
    for (std::size_t i = 2; i + 2 < cells.size(); ++i) mix(cells[i]);
  }
  return h;
}

}  // namespace drt::engine
