#include "engine/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace drt::engine {

namespace {

/// Wall-clock microseconds since `t0` — registry-only (DESIGN.md §12);
/// never recorded in a metrics_recorder row, which must stay
/// deterministic.
double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

scenario_runner::scenario_runner(engine::backend& be, runner_config config)
    : be_(be), config_(std::move(config)), rng_(config_.workload.seed) {}

// ------------------------------------------------------ phase executors

std::vector<sub_id> scenario_runner::do_populate(
    phase_ctx ctx, std::size_t n, const std::vector<spatial::box>& explicit_f,
    phase_metrics* out) {
  std::vector<spatial::box> rects;
  if (!explicit_f.empty()) {
    rects = explicit_f;
  } else {
    auto params = ctx.profile.subs;
    rects = workload::make_subscriptions(ctx.profile.family, n, ctx.rng,
                                         params);
  }
  std::vector<sub_id> ids;
  ids.reserve(rects.size());
  for (const auto& r : rects) {
    ctx.filters.push_back(r);
    ids.push_back(be_.subscribe(r));
  }
  if (out != nullptr) out->joins += ids.size();
  return ids;
}

sweep_stats scenario_runner::do_sweep(phase_ctx ctx, std::size_t count,
                                      workload::event_family family,
                                      phase_metrics* out) {
  sweep_stats acc;
  const auto live = be_.active();
  if (!live.empty()) {
    // Registry references are stable for its lifetime (DESIGN.md §12);
    // resolve the names once so the per-event loop — the region the
    // publish-throughput benches time — never does a string-map lookup.
    auto& hop_hist = metrics_.hist("drt_publish_hop_depth");
    auto& events_total = metrics_.counter("drt_events_published_total");
    auto& deliveries_total = metrics_.counter("drt_deliveries_total");
    auto& fn_total = metrics_.counter("drt_false_negatives_total");
    acc.population = live.size();
    for (std::size_t i = 0; i < count; ++i) {
      const auto publisher = live[ctx.rng.index(live.size())];
      if (!be_.alive(publisher)) continue;
      const auto value = workload::make_event_point(
          family, ctx.rng, ctx.profile.subs.workspace, ctx.filters);
      const auto r = be_.publish(publisher, value);
      hop_hist.record(static_cast<double>(r.max_hops));
      ++events_total;
      deliveries_total += r.delivered;
      fn_total += r.false_negatives;
      ++acc.events;
      acc.deliveries += r.delivered;
      acc.interested += r.interested;
      acc.false_positives += r.false_positives;
      acc.false_negatives += r.false_negatives;
      acc.messages += r.messages;
      acc.hops_total += r.max_hops;
      acc.max_hops = std::max(acc.max_hops, r.max_hops);
    }
  }
  if (out != nullptr) {
    out->events += acc.events;
    out->deliveries += acc.deliveries;
    out->interested += acc.interested;
    out->false_positives += acc.false_positives;
    out->false_negatives += acc.false_negatives;
    out->max_hops = std::max(out->max_hops,
                             static_cast<std::size_t>(acc.max_hops));
  }
  return acc;
}

sweep_stats scenario_runner::do_batch_sweep(phase_ctx ctx,
                                            const publish_batch_phase& p,
                                            phase_metrics* out) {
  sweep_stats acc;
  const auto live = be_.active();
  const std::size_t batch = p.batch == 0 ? 1 : p.batch;
  if (!live.empty()) {
    // Same hoist as do_sweep: one name resolution per sweep, not per batch.
    auto& hop_hist = metrics_.hist("drt_publish_hop_depth");
    auto& events_total = metrics_.counter("drt_events_published_total");
    auto& deliveries_total = metrics_.counter("drt_deliveries_total");
    auto& fn_total = metrics_.counter("drt_false_negatives_total");
    acc.population = live.size();
    std::vector<spatial::pt> values;
    values.reserve(batch);
    for (std::size_t done = 0; done < p.count;) {
      const auto publisher = live[ctx.rng.index(live.size())];
      const std::size_t n = std::min(batch, p.count - done);
      // Draw the batch's values whether or not the publisher is still
      // alive, so the RNG stream (and thus every later pick) does not
      // depend on backend-internal liveness.
      values.clear();
      for (std::size_t i = 0; i < n; ++i) {
        values.push_back(workload::make_event_point(
            p.family, ctx.rng, ctx.profile.subs.workspace, ctx.filters));
      }
      done += n;
      if (!be_.alive(publisher)) continue;
      const auto r = be_.publish_batch(publisher, values.data(), n);
      hop_hist.record(static_cast<double>(r.max_hops));
      events_total += n;
      deliveries_total += r.delivered;
      fn_total += r.false_negatives;
      acc.events += n;
      acc.deliveries += r.delivered;
      acc.interested += r.interested;
      acc.false_positives += r.false_positives;
      acc.false_negatives += r.false_negatives;
      acc.messages += r.messages;
      acc.hops_total += r.max_hops;
      acc.max_hops = std::max(acc.max_hops, r.max_hops);
    }
  }
  if (out != nullptr) {
    out->events += acc.events;
    out->deliveries += acc.deliveries;
    out->interested += acc.interested;
    out->false_positives += acc.false_positives;
    out->false_negatives += acc.false_negatives;
    out->max_hops = std::max(out->max_hops,
                             static_cast<std::size_t>(acc.max_hops));
  }
  return acc;
}

int scenario_runner::do_converge(int max_rounds, phase_metrics* out) {
  int result = -1;
  auto& round_hist = metrics_.hist("drt_stabilize_round_us");
  auto& rounds_total = metrics_.counter("drt_stabilize_rounds_total");
  for (int round = 0; round <= max_rounds; ++round) {
    if (be_.legal()) {
      result = round;
      break;
    }
    if (round == max_rounds) break;  // budget spent, still illegal
    const auto t0 = std::chrono::steady_clock::now();
    be_.step_round();
    round_hist.record(us_since(t0));
    ++rounds_total;
    if (config_.on_converge_round) {
      config_.on_converge_round(round, be_.legal());
    }
  }
  if (out != nullptr) {
    out->rounds = result;
    out->legal = result >= 0 ? 1 : 0;
  }
  return result;
}

std::size_t scenario_runner::do_churn(phase_ctx ctx,
                                      const churn_wave_phase& p,
                                      phase_metrics* out) {
  std::size_t done = 0;
  for (std::size_t op = 0; op < p.ops; ++op) {
    const bool want_join = ctx.rng.chance(p.join_fraction);
    if (want_join || be_.population() < p.min_population) {
      do_populate(ctx, 1, {}, out);
    } else {
      const auto live = be_.active();
      if (live.empty()) continue;
      const auto victim = live[ctx.rng.index(live.size())];
      if (be_.unsubscribe(victim) && out != nullptr) ++out->leaves;
    }
    be_.settle();
    ++done;
  }
  return done;
}

std::size_t scenario_runner::do_crash(phase_ctx ctx,
                                      const crash_burst_phase& p,
                                      phase_metrics* out) {
  auto live = be_.active();
  if (live.empty()) return 0;
  std::size_t target =
      p.count + static_cast<std::size_t>(p.fraction *
                                         static_cast<double>(live.size()));
  target = std::min(target, live.size());
  if (target == 0) return 0;

  ctx.rng.shuffle(live);
  std::size_t crashed = 0;
  if (p.include_root) {
    const auto root = be_.root();
    if (root != kNoSub && be_.crash(root)) {
      ctx.crashed.push_back(root);
      ++crashed;
    }
  }
  for (const auto s : live) {
    if (crashed >= target) break;
    if (!be_.alive(s)) continue;
    if (be_.crash(s)) {
      ctx.crashed.push_back(s);
      ++crashed;
    }
  }
  be_.settle();
  if (out != nullptr) out->crashes += crashed;
  return crashed;
}

std::size_t scenario_runner::do_leave(phase_ctx ctx,
                                      const controlled_leave_wave_phase& p,
                                      phase_metrics* out) {
  auto live = be_.active();
  if (live.empty()) return 0;
  std::size_t target =
      p.count + static_cast<std::size_t>(p.fraction *
                                         static_cast<double>(live.size()));
  target = std::min(target, live.size());
  ctx.rng.shuffle(live);
  std::size_t left = 0;
  for (const auto s : live) {
    if (left >= target) break;
    if (!be_.alive(s)) continue;
    if (be_.unsubscribe(s)) {
      be_.settle();
      ++left;
    }
  }
  if (out != nullptr) out->leaves += left;
  return left;
}

std::size_t scenario_runner::do_restart(phase_ctx ctx, std::size_t count,
                                        phase_metrics* out) {
  std::size_t revived = 0;
  while (revived < count && !ctx.crashed.empty()) {
    const auto s = ctx.crashed.back();
    ctx.crashed.pop_back();
    if (be_.restart(s)) ++revived;
  }
  be_.settle();
  if (out != nullptr) out->restarts += revived;
  return revived;
}

std::size_t scenario_runner::do_corrupt(phase_ctx ctx, double rate,
                                        phase_metrics* out) {
  const auto mutations = be_.corrupt(rate, ctx.rng.next_u64());
  if (out != nullptr) out->corruptions += mutations;
  return mutations;
}

int scenario_runner::do_steps(int rounds, phase_metrics* out) {
  auto& round_hist = metrics_.hist("drt_stabilize_round_us");
  auto& rounds_total = metrics_.counter("drt_stabilize_rounds_total");
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    be_.step_round();
    round_hist.record(us_since(t0));
    ++rounds_total;
  }
  if (out != nullptr) {
    out->rounds = rounds;
    out->legal = be_.legal() ? 1 : 0;
  }
  return rounds;
}

std::size_t scenario_runner::do_partition(phase_ctx ctx, double fraction,
                                          phase_metrics* out) {
  auto live = be_.active();
  std::size_t target =
      std::min(static_cast<std::size_t>(fraction *
                                        static_cast<double>(live.size())),
               live.size());
  ctx.rng.shuffle(live);
  live.resize(target);
  if (!be_.partition(live)) return 0;
  be_.settle();
  if (out != nullptr) out->legal = be_.legal() ? 1 : 0;
  return live.size();
}

bool scenario_runner::do_heal(phase_metrics* out) {
  if (!be_.heal()) return false;
  be_.settle();
  if (out != nullptr) out->legal = be_.legal() ? 1 : 0;
  return true;
}

bool scenario_runner::do_degrade(const degrade_links_phase& p,
                                 phase_metrics* out) {
  (void)out;
  return be_.degrade_links(p.latency_factor, p.extra_loss, p.ramp_rounds);
}

void scenario_runner::do_ramp(phase_ctx ctx, const param_ramp_phase& p,
                              metrics_recorder& rec) {
  for (std::size_t step = 0; step < p.steps; ++step) {
    const double t =
        p.steps <= 1 ? 0.0
                     : static_cast<double>(step) /
                           static_cast<double>(p.steps - 1);
    const double value = p.from + (p.to - p.from) * t;

    phase_metrics m;
    m.phase = "param_ramp";
    m.ramp = value;
    const auto before = be_.counters();
    switch (p.target) {
      case ramp_target::churn_ops: {
        churn_wave_phase w;
        w.ops = static_cast<std::size_t>(std::llround(value));
        do_churn(ctx, w, &m);
        do_converge(p.converge_rounds, &m);
        break;
      }
      case ramp_target::publish_count:
        do_sweep(ctx, static_cast<std::size_t>(std::llround(value)),
                 p.family, &m);
        break;
      case ramp_target::crash_fraction: {
        crash_burst_phase c;
        c.fraction = value;
        if (be_.can(cap_crash)) {
          do_crash(ctx, c, &m);
          do_converge(p.converge_rounds, &m);
        } else {
          m.skipped = true;
        }
        break;
      }
    }
    finish_row(m, before);
    rec.add(std::move(m));
  }
}

// ------------------------------------------------------------ execution

void scenario_runner::finish_row(phase_metrics& m,
                                 const backend_counters& before) {
  const auto after = be_.counters();
  m.messages = after.messages - before.messages;
  m.rebuilds = after.rebuilds - before.rebuilds;
  // Backends without cap_stabilize never advance these counters, so the
  // deltas record an explicit 0 (not an absent cell) — the schema stays
  // uniform across backends.
  m.stabilize_visited = after.stabilize_visited - before.stabilize_visited;
  m.stabilize_skipped = after.stabilize_skipped - before.stabilize_skipped;
  m.population = be_.population();
}

void scenario_runner::execute(phase_ctx ctx, const phase& p,
                              metrics_recorder& rec) {
  if (std::holds_alternative<param_ramp_phase>(p)) {
    do_ramp(ctx, std::get<param_ramp_phase>(p), rec);
    return;
  }

  phase_metrics m;
  m.phase = phase_name(p);
  const auto before = be_.counters();

  if (const auto* pop = std::get_if<populate_phase>(&p)) {
    do_populate(ctx, pop->count, pop->filters, &m);
  } else if (const auto* sweep = std::get_if<publish_sweep_phase>(&p)) {
    do_sweep(ctx, sweep->count, sweep->family, &m);
  } else if (const auto* bsweep = std::get_if<publish_batch_phase>(&p)) {
    do_batch_sweep(ctx, *bsweep, &m);
  } else if (const auto* churn = std::get_if<churn_wave_phase>(&p)) {
    if (be_.can(cap_unsubscribe)) {
      do_churn(ctx, *churn, &m);
    } else {
      m.skipped = true;
    }
  } else if (const auto* crash = std::get_if<crash_burst_phase>(&p)) {
    if (be_.can(cap_crash)) {
      do_crash(ctx, *crash, &m);
    } else {
      m.skipped = true;
    }
  } else if (const auto* leave =
                 std::get_if<controlled_leave_wave_phase>(&p)) {
    if (be_.can(cap_unsubscribe)) {
      do_leave(ctx, *leave, &m);
    } else {
      m.skipped = true;
    }
  } else if (const auto* restart = std::get_if<restart_burst_phase>(&p)) {
    if (be_.can(cap_restart)) {
      do_restart(ctx, restart->count, &m);
    } else {
      m.skipped = true;
    }
  } else if (const auto* corrupt = std::get_if<corruption_burst_phase>(&p)) {
    if (be_.can(cap_corruption)) {
      do_corrupt(ctx, corrupt->rate, &m);
    } else {
      m.skipped = true;
    }
  } else if (const auto* conv = std::get_if<converge_phase>(&p)) {
    do_converge(conv->max_rounds, &m);
  } else if (const auto* steps = std::get_if<step_rounds_phase>(&p)) {
    if (be_.can(cap_stabilize)) {
      do_steps(steps->rounds, &m);
    } else {
      // Backends without round semantics (net_backend: wall-clock drives
      // stabilization) record an honest skip instead of a no-op row.
      m.skipped = true;
    }
  } else if (const auto* cut = std::get_if<partition_phase>(&p)) {
    if (be_.can(cap_partition)) {
      do_partition(ctx, cut->fraction, &m);
    } else {
      m.skipped = true;
    }
  } else if (std::holds_alternative<heal_phase>(p)) {
    if (be_.can(cap_partition)) {
      do_heal(&m);
    } else {
      m.skipped = true;
    }
  } else if (const auto* deg = std::get_if<degrade_links_phase>(&p)) {
    if (be_.can(cap_degrade)) {
      do_degrade(*deg, &m);
    } else {
      m.skipped = true;
    }
  }

  finish_row(m, before);
  rec.add(std::move(m));
}

metrics_recorder scenario_runner::run(const scenario& sc) {
  metrics_recorder rec(be_.name(), sc.name, sc.workload.seed);
  // Fresh RNG and run-local filter/crash state per run: the same
  // scenario + seed issues the identical operation sequence whatever ran
  // before (and whatever the backend is — backends never consume this
  // stream).
  util::rng run_rng(sc.workload.seed);
  std::vector<spatial::box> run_filters;
  std::vector<sub_id> run_crashed;
  phase_ctx ctx{sc.workload, run_rng, run_filters, run_crashed};
  for (const auto& p : sc.timeline) execute(ctx, p, rec);

  if (config_.final_shape_row) {
    phase_metrics m;
    m.phase = "shape";
    const auto before = be_.counters();
    const auto s = be_.shape();
    m.height = s.height;
    m.max_degree = s.max_degree;
    m.avg_degree = s.avg_degree;
    m.routing_state = s.routing_state;
    m.legal = be_.legal() ? 1 : 0;
    finish_row(m, before);
    rec.add(std::move(m));
  }
  return rec;
}

// ------------------------------------------------------------ primitives

std::vector<sub_id> scenario_runner::populate(std::size_t n) {
  return do_populate(own_ctx(), n, {}, nullptr);
}

sub_id scenario_runner::add(const spatial::box& filter) {
  filters_.push_back(filter);
  return be_.subscribe(filter);
}

sweep_stats scenario_runner::publish_sweep(std::size_t count,
                                           workload::event_family family) {
  return do_sweep(own_ctx(), count, family, nullptr);
}

sweep_stats scenario_runner::publish_batch(std::size_t count,
                                           std::size_t batch,
                                           workload::event_family family) {
  return do_batch_sweep(own_ctx(), publish_batch_phase{count, batch, family},
                        nullptr);
}

int scenario_runner::converge(int max_rounds) {
  return do_converge(max_rounds, nullptr);
}

std::size_t scenario_runner::churn_wave(std::size_t ops, double join_fraction,
                                        std::size_t min_population) {
  return do_churn(own_ctx(),
                  churn_wave_phase{ops, join_fraction, min_population},
                  nullptr);
}

std::size_t scenario_runner::crash_burst(double fraction, std::size_t count,
                                         bool include_root) {
  return do_crash(own_ctx(),
                  crash_burst_phase{fraction, count, include_root}, nullptr);
}

std::size_t scenario_runner::leave_wave(double fraction, std::size_t count) {
  return do_leave(own_ctx(),
                  controlled_leave_wave_phase{fraction, count}, nullptr);
}

std::size_t scenario_runner::restart_burst(std::size_t count) {
  return do_restart(own_ctx(), count, nullptr);
}

std::size_t scenario_runner::corrupt(double rate) {
  return do_corrupt(own_ctx(), rate, nullptr);
}

int scenario_runner::step_rounds(int rounds) {
  return do_steps(rounds, nullptr);
}

std::size_t scenario_runner::partition(double fraction) {
  return do_partition(own_ctx(), fraction, nullptr);
}

bool scenario_runner::heal() { return do_heal(nullptr); }

bool scenario_runner::degrade_links(double latency_factor, double extra_loss,
                                    double ramp_rounds) {
  return do_degrade(
      degrade_links_phase{latency_factor, extra_loss, ramp_rounds}, nullptr);
}

}  // namespace drt::engine
