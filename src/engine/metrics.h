// Structured per-phase metrics for scenario runs (DESIGN.md §6).
//
// Every executed phase appends one phase_metrics row with a *fixed*
// schema, whatever the backend — that is what makes cross-backend sweeps
// and bench JSON comparable ("schema-identical"), and what the
// determinism tests hash: two runs of the same scenario with the same
// seed must produce bit-identical recorder output.
#ifndef DRT_ENGINE_METRICS_H
#define DRT_ENGINE_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.h"

namespace drt::engine {

/// Aggregate accuracy/cost of one publish sweep (also the payload behind
/// analysis::testbed::accuracy).
struct sweep_stats {
  std::size_t events = 0;
  std::size_t population = 0;  ///< live subscriptions during the sweep
  std::uint64_t deliveries = 0;
  std::uint64_t interested = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t messages = 0;
  std::uint64_t hops_total = 0;  ///< sum over events of the worst path
  std::size_t max_hops = 0;

  /// The paper's "false positive rate ... 2-3%": the probability that a
  /// subscriber receives an event it is not interested in, i.e. FP count
  /// over (events x population).
  double fp_rate() const {
    const auto denom =
        static_cast<double>(events) * static_cast<double>(population);
    return denom == 0.0 ? 0.0
                        : static_cast<double>(false_positives) / denom;
  }
  /// FP share of deliveries (routing-precision view).
  double fp_per_delivery() const {
    return deliveries == 0 ? 0.0
                           : static_cast<double>(false_positives) /
                                 static_cast<double>(deliveries);
  }
  double fn_rate() const {
    return interested == 0 ? 0.0
                           : static_cast<double>(false_negatives) /
                                 static_cast<double>(interested);
  }
  double messages_per_event() const {
    return events == 0 ? 0.0
                       : static_cast<double>(messages) /
                             static_cast<double>(events);
  }
  double mean_hops() const {
    return events == 0 ? 0.0
                       : static_cast<double>(hops_total) /
                             static_cast<double>(events);
  }
};

/// One executed (or skipped) phase.  Fields that do not apply to a phase
/// kind stay at their defaults so the schema is uniform.
struct phase_metrics {
  std::size_t index = 0;
  std::string phase;
  bool skipped = false;    ///< backend lacked the required capability
  double ramp = -1.0;      ///< param_ramp step value; -1 otherwise

  std::size_t population = 0;  ///< live subscriptions after the phase
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  std::size_t corruptions = 0;

  int rounds = 0;   ///< converge: rounds to legal (-1 = diverged)
  int legal = -1;   ///< 1/0 after a legality check; -1 = not checked

  std::size_t events = 0;
  std::size_t deliveries = 0;
  std::size_t interested = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t max_hops = 0;

  std::uint64_t messages = 0;  ///< network messages spent in the phase
  std::uint64_t rebuilds = 0;  ///< structure rebuilds (baselines)

  // Stabilizer scheduling cost (DESIGN.md §11).  Both stay 0 for
  // backends without cap_stabilize; in full mode skipped is always 0.
  std::uint64_t stabilize_visited = 0;  ///< passes run during the phase
  std::uint64_t stabilize_skipped = 0;  ///< ticks skipped (dirty mode)

  /// Sweep-phase rates, with the same conventions as sweep_stats.
  double fp_rate() const {
    const auto denom =
        static_cast<double>(events) * static_cast<double>(population);
    return denom == 0.0 ? 0.0
                        : static_cast<double>(false_positives) / denom;
  }
  double fn_rate() const {
    return interested == 0 ? 0.0
                           : static_cast<double>(false_negatives) /
                                 static_cast<double>(interested);
  }
  double messages_per_event() const {
    return events == 0 ? 0.0
                       : static_cast<double>(messages) /
                             static_cast<double>(events);
  }

  // Structural snapshot — filled only by the final "shape" row.
  std::size_t height = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  std::size_t routing_state = 0;
};

class metrics_recorder {
 public:
  metrics_recorder() = default;
  metrics_recorder(std::string backend, std::string scenario,
                   std::uint64_t seed)
      : backend_(std::move(backend)), scenario_(std::move(scenario)),
        seed_(seed) {}

  void add(phase_metrics m);

  const std::vector<phase_metrics>& phases() const { return phases_; }
  const std::string& backend() const { return backend_; }
  const std::string& scenario() const { return scenario_; }
  std::uint64_t seed() const { return seed_; }

  /// Most recent row with the given phase label, nullptr when absent.
  const phase_metrics* last(const std::string& phase) const;

  /// The fixed column schema, identical for every backend and scenario.
  static std::vector<std::string> headers();

  /// One row per phase, leading with backend/scenario identity columns.
  util::table to_table() const;

  /// Append this recorder's rows to an existing table built with
  /// headers() (cross-backend sweeps concatenate recorders this way).
  void append_rows(util::table& out) const;

  /// FNV-1a over the formatted phase rows (identity columns excluded, so
  /// two backends producing identical metrics hash identically).
  std::uint64_t digest() const;

 private:
  std::vector<std::string> row_cells(const phase_metrics& m) const;

  std::string backend_;
  std::string scenario_;
  std::uint64_t seed_ = 0;
  std::vector<phase_metrics> phases_;
};

}  // namespace drt::engine

#endif  // DRT_ENGINE_METRICS_H
