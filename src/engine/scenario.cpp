#include "engine/scenario.h"

namespace drt::engine {

const char* to_string(ramp_target t) {
  switch (t) {
    case ramp_target::churn_ops: return "churn_ops";
    case ramp_target::publish_count: return "publish_count";
    case ramp_target::crash_fraction: return "crash_fraction";
  }
  return "?";
}

namespace {

struct phase_name_visitor {
  const char* operator()(const populate_phase&) const { return "populate"; }
  const char* operator()(const publish_sweep_phase&) const {
    return "publish_sweep";
  }
  const char* operator()(const publish_batch_phase&) const {
    return "publish_batch";
  }
  const char* operator()(const churn_wave_phase&) const {
    return "churn_wave";
  }
  const char* operator()(const crash_burst_phase&) const {
    return "crash_burst";
  }
  const char* operator()(const controlled_leave_wave_phase&) const {
    return "controlled_leave_wave";
  }
  const char* operator()(const restart_burst_phase&) const {
    return "restart_burst";
  }
  const char* operator()(const corruption_burst_phase&) const {
    return "corruption_burst";
  }
  const char* operator()(const converge_phase&) const {
    return "converge_until_legal";
  }
  const char* operator()(const param_ramp_phase&) const {
    return "param_ramp";
  }
  const char* operator()(const step_rounds_phase&) const {
    return "step_rounds";
  }
  const char* operator()(const partition_phase&) const { return "partition"; }
  const char* operator()(const heal_phase&) const { return "heal"; }
  const char* operator()(const degrade_links_phase&) const {
    return "degrade_links";
  }
};

}  // namespace

const char* phase_name(const phase& p) {
  return std::visit(phase_name_visitor{}, p);
}

// --------------------------------------------------------------- builder

scenario::builder scenario::make(std::string name) {
  return builder(std::move(name));
}

scenario::builder::builder(std::string name) { scenario_.name = std::move(name); }

scenario::builder& scenario::builder::seed(std::uint64_t seed) {
  scenario_.workload.seed = seed;
  return *this;
}

scenario::builder& scenario::builder::family(
    workload::subscription_family family) {
  scenario_.workload.family = family;
  return *this;
}

scenario::builder& scenario::builder::subscription_params(
    const workload::subscription_params& params) {
  scenario_.workload.subs = params;
  return *this;
}

scenario::builder& scenario::builder::workspace(
    const spatial::box& workspace) {
  scenario_.workload.subs.workspace = workspace;
  return *this;
}

scenario::builder& scenario::builder::net(const net::model_config& model) {
  scenario_.net = model;
  return *this;
}

scenario::builder& scenario::builder::shards(std::size_t count) {
  scenario_.shards = count == 0 ? 1 : count;
  return *this;
}

scenario::builder& scenario::builder::populate(std::size_t count) {
  scenario_.timeline.push_back(populate_phase{count, {}});
  return *this;
}

scenario::builder& scenario::builder::subscribe(
    std::vector<spatial::box> filters) {
  scenario_.timeline.push_back(populate_phase{0, std::move(filters)});
  return *this;
}

scenario::builder& scenario::builder::publish_sweep(
    std::size_t count, workload::event_family family) {
  scenario_.timeline.push_back(publish_sweep_phase{count, family});
  return *this;
}

scenario::builder& scenario::builder::publish_batch(
    std::size_t count, std::size_t batch, workload::event_family family) {
  scenario_.timeline.push_back(
      publish_batch_phase{count, batch == 0 ? 1 : batch, family});
  return *this;
}

scenario::builder& scenario::builder::churn_wave(std::size_t ops,
                                                 double join_fraction,
                                                 std::size_t min_population) {
  scenario_.timeline.push_back(
      churn_wave_phase{ops, join_fraction, min_population});
  return *this;
}

scenario::builder& scenario::builder::crash_burst(double fraction,
                                                  bool include_root) {
  scenario_.timeline.push_back(crash_burst_phase{fraction, 0, include_root});
  return *this;
}

scenario::builder& scenario::builder::crash_count(std::size_t count,
                                                  bool include_root) {
  scenario_.timeline.push_back(crash_burst_phase{0.0, count, include_root});
  return *this;
}

scenario::builder& scenario::builder::controlled_leave_wave(double fraction) {
  scenario_.timeline.push_back(controlled_leave_wave_phase{fraction, 0});
  return *this;
}

scenario::builder& scenario::builder::leave_count(std::size_t count) {
  scenario_.timeline.push_back(controlled_leave_wave_phase{0.0, count});
  return *this;
}

scenario::builder& scenario::builder::restart_burst(std::size_t count) {
  scenario_.timeline.push_back(restart_burst_phase{count});
  return *this;
}

scenario::builder& scenario::builder::corruption_burst(double rate) {
  scenario_.timeline.push_back(corruption_burst_phase{rate});
  return *this;
}

scenario::builder& scenario::builder::converge(int max_rounds) {
  scenario_.timeline.push_back(converge_phase{max_rounds});
  return *this;
}

scenario::builder& scenario::builder::step_rounds(int rounds) {
  scenario_.timeline.push_back(step_rounds_phase{rounds});
  return *this;
}

scenario::builder& scenario::builder::partition(double fraction) {
  scenario_.timeline.push_back(partition_phase{fraction});
  return *this;
}

scenario::builder& scenario::builder::heal() {
  scenario_.timeline.push_back(heal_phase{});
  return *this;
}

scenario::builder& scenario::builder::degrade_links(double latency_factor,
                                                    double extra_loss,
                                                    double ramp_rounds) {
  scenario_.timeline.push_back(
      degrade_links_phase{latency_factor, extra_loss, ramp_rounds});
  return *this;
}

scenario::builder& scenario::builder::param_ramp(
    ramp_target target, double from, double to, std::size_t steps,
    workload::event_family family) {
  scenario_.timeline.push_back(
      param_ramp_phase{target, from, to, steps, family, 300});
  return *this;
}

scenario::builder& scenario::builder::repeat(
    std::size_t times, const std::function<void(builder&)>& block) {
  builder inner("");
  block(inner);
  for (std::size_t i = 0; i < times; ++i) {
    for (const auto& p : inner.scenario_.timeline) {
      scenario_.timeline.push_back(p);
    }
  }
  return *this;
}

scenario scenario::builder::build() { return scenario_; }

// ---------------------------------------------------------------- canned

namespace canned {

scenario flash_crowd(std::size_t base, std::size_t crowd,
                     std::uint64_t seed) {
  return scenario::make("flash_crowd")
      .seed(seed)
      .populate(base)
      .converge()
      .publish_sweep(60, workload::event_family::matching)
      .populate(crowd)  // the crowd arrives
      .converge()
      .publish_sweep(60, workload::event_family::matching)
      .build();
}

scenario rolling_churn(std::size_t n, std::size_t waves, std::size_t ops,
                       std::uint64_t seed) {
  return scenario::make("rolling_churn")
      .seed(seed)
      .populate(n)
      .converge()
      .repeat(waves,
              [ops](scenario::builder& b) {
                b.churn_wave(ops, 0.5, 8)
                    .converge()
                    .publish_sweep(60, workload::event_family::matching);
              })
      .build();
}

scenario split_brain_heal(std::size_t n, double minority, int down_rounds,
                          std::uint64_t seed) {
  // Dynamic fault layer over the default uniform transport: partitions
  // need a runtime-controllable model.
  net::dynamic_model_config dyn;
  return scenario::make("split_brain_heal")
      .seed(seed)
      .net(dyn)
      .populate(n)
      .converge()
      .publish_sweep(60, workload::event_family::matching)  // healthy FN = 0
      .partition(minority)
      .step_rounds(down_rounds)  // each side stabilizes alone
      .publish_sweep(60, workload::event_family::matching)  // FNs: the cut
      .heal()
      .converge(400)  // the two trees must merge back into one
      .publish_sweep(60, workload::event_family::matching)  // FN = 0 again
      .build();
}

scenario massacre_then_heal(std::size_t n, double crash_fraction,
                            double corruption, std::uint64_t seed) {
  return scenario::make("massacre_then_heal")
      .seed(seed)
      .populate(n)
      .converge()
      .crash_burst(crash_fraction, /*include_root=*/true)
      .corruption_burst(corruption)
      .converge(400)
      .publish_sweep(100, workload::event_family::matching)
      .build();
}

}  // namespace canned

}  // namespace drt::engine
