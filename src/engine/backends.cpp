#include "engine/backends.h"

#include <algorithm>

#include "baselines/containment_tree.h"
#include "baselines/dimension_forest.h"
#include "baselines/flooding.h"
#include "baselines/zcurve_dht.h"
#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "drtree/messages.h"
#include "engine/scenario.h"
#include "util/expect.h"

namespace drt::engine {

namespace {

/// Both overlay-backed adapters report the checker's structural view so
/// their shape rows are directly comparable with the baselines'.
backend_shape shape_of_overlay(const overlay::dr_overlay& ov) {
  const auto report = overlay::checker(ov).check();
  backend_shape s;
  s.population = report.live_peers;
  s.height = report.height;
  s.max_degree = report.max_interior_children;
  s.avg_degree = report.avg_interior_children;
  s.routing_state = report.memory_links;
  return s;
}

std::size_t corrupt_overlay(overlay::dr_overlay& ov, double rate,
                            std::uint64_t seed) {
  overlay::corruptor vandal(ov, seed);
  return vandal.corrupt(overlay::uniform_corruption(rate));
}

/// Both overlay adapters expose partition/degrade iff the sim's net
/// model has a dynamic fault layer — capabilities are honest, never
/// aspirational.
capability_mask overlay_capabilities(const overlay::dr_overlay& ov) {
  capability_mask m = cap_unsubscribe | cap_crash | cap_restart |
                      cap_corruption | cap_stabilize;
  if (ov.sim().dynamic_net() != nullptr) m |= cap_partition | cap_degrade;
  return m;
}

bool partition_overlay(overlay::dr_overlay& ov,
                       const std::vector<sub_id>& side_b) {
  std::vector<spatial::peer_id> peers;
  peers.reserve(side_b.size());
  for (const auto s : side_b) {
    peers.push_back(static_cast<spatial::peer_id>(s));
  }
  return ov.partition(peers);
}

bool degrade_overlay(overlay::dr_overlay& ov, double latency_factor,
                     double extra_loss, double ramp_rounds) {
  return ov.degrade_links(latency_factor, extra_loss,
                          ramp_rounds * ov.config().stabilize_period);
}

}  // namespace

overlay_backend_config configured_for(const scenario& sc,
                                      overlay_backend_config base) {
  if (sc.net.has_value()) base.net.model = *sc.net;
  return base;
}

// ------------------------------------------------------- drtree_backend

drtree_backend::drtree_backend(overlay_backend_config config)
    : overlay_(std::make_unique<overlay::dr_overlay>(config.dr, config.net)) {}

capability_mask drtree_backend::capabilities() const {
  return overlay_capabilities(*overlay_);
}

bool drtree_backend::partition(const std::vector<sub_id>& side_b) {
  return partition_overlay(*overlay_, side_b);
}

bool drtree_backend::degrade_links(double latency_factor, double extra_loss,
                                   double ramp_rounds) {
  return degrade_overlay(*overlay_, latency_factor, extra_loss, ramp_rounds);
}

sub_id drtree_backend::subscribe(const spatial::box& filter) {
  return overlay_->add_peer_and_settle(filter);
}

bool drtree_backend::unsubscribe(sub_id s) {
  const auto p = static_cast<spatial::peer_id>(s);
  if (!overlay_->alive(p)) return false;
  overlay_->controlled_leave(p);
  overlay_->settle();
  return true;
}

bool drtree_backend::crash(sub_id s) {
  const auto p = static_cast<spatial::peer_id>(s);
  if (!overlay_->alive(p)) return false;
  overlay_->crash(p);
  return true;
}

bool drtree_backend::restart(sub_id s) {
  const auto p = static_cast<spatial::peer_id>(s);
  if (overlay_->alive(p)) return false;
  overlay_->restart(p);
  return true;
}

std::size_t drtree_backend::corrupt(double rate, std::uint64_t seed) {
  return corrupt_overlay(*overlay_, rate, seed);
}

bool drtree_backend::alive(sub_id s) const {
  return overlay_->alive(static_cast<spatial::peer_id>(s));
}

std::vector<sub_id> drtree_backend::active() const {
  std::vector<sub_id> out;
  out.reserve(overlay_->live_count());
  overlay_->for_each_live([&out](spatial::peer_id p) { out.push_back(p); });
  return out;
}

sub_id drtree_backend::root() const {
  const auto r = overlay_->current_root();
  return r == spatial::kNoPeer ? kNoSub : static_cast<sub_id>(r);
}

delivery_report drtree_backend::publish(sub_id publisher,
                                        const spatial::pt& value) {
  const auto r =
      overlay_->publish_and_drain(static_cast<spatial::peer_id>(publisher),
                                  value);
  delivery_report d;
  d.interested = r.interested;
  d.delivered = r.delivered;
  d.false_positives = r.false_positives;
  d.false_negatives = r.false_negatives;
  d.messages = r.messages;
  d.max_hops = r.max_hops;
  return d;
}

delivery_report drtree_backend::publish_batch(sub_id publisher,
                                              const spatial::pt* values,
                                              std::size_t n) {
  const auto results = overlay_->multi_publish_and_drain(
      static_cast<spatial::peer_id>(publisher), values, n);
  delivery_report d;
  for (const auto& r : results) {
    d.interested += r.interested;
    d.delivered += r.delivered;
    d.false_positives += r.false_positives;
    d.false_negatives += r.false_negatives;
    d.messages += r.messages;
    d.max_hops = std::max(d.max_hops, r.max_hops);
  }
  return d;
}

void drtree_backend::step_round() {
  overlay_->advance(overlay_->config().stabilize_period);
  overlay_->settle();
}

bool drtree_backend::legal() const {
  return overlay::checker(*overlay_).check().legal();
}

backend_shape drtree_backend::shape() const {
  return shape_of_overlay(*overlay_);
}

backend_counters drtree_backend::counters() const {
  backend_counters c;
  c.messages = overlay_->sim().metrics().messages_sent;
  c.stabilize_visited = overlay_->stab_stats().visited;
  c.stabilize_skipped = overlay_->stab_stats().skipped;
  return c;
}

std::string drtree_backend::dump_flight(const std::string& reason) {
  const auto* t = overlay_->trace();
  if (t == nullptr) return {};
  return obs::write_flight_dump(reason, t->snapshot(), t->size(), {});
}

// ----------------------------------------------- sharded_drtree_backend

sharded_drtree_backend::sharded_drtree_backend(overlay_backend_config config,
                                               std::size_t shards,
                                               bool parallel)
    : kernel_([&] {
        sim::kernel_config kc;
        kc.shards = shards == 0 ? 1 : shards;
        kc.window = config.dr.stabilize_period;
        kc.parallel = parallel;
        return kc;
      }()) {
  const auto n = kernel_.shards();
  overlays_.reserve(n);
  local_to_global_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto scfg = config.net;
    // Distinct per-shard RNG streams; shard 0 keeps the base seed so a
    // one-shard run consumes the stream exactly like the unsharded
    // backend (the digest-equivalence contract).
    scfg.seed = config.net.seed + i * 0x9e3779b97f4a7c15ull;
    overlays_.push_back(
        std::make_unique<overlay::dr_overlay>(config.dr, scfg));
    if (auto* t = overlays_.back()->trace()) {
      t->set_shard(static_cast<std::uint16_t>(i));
    }
    kernel_.attach(i, overlays_.back()->sim());
  }
}

const sharded_drtree_backend::slot& sharded_drtree_backend::at(
    sub_id s) const {
  DRT_EXPECT(s < subs_.size());
  return subs_[s];
}

sub_id sharded_drtree_backend::subscribe(const spatial::box& filter) {
  const auto shard = next_shard_;
  next_shard_ = (next_shard_ + 1) % overlays_.size();
  const auto local = overlays_[shard]->add_peer_and_settle(filter);
  const auto s = static_cast<sub_id>(subs_.size());
  subs_.push_back({shard, local});
  DRT_EXPECT(local_to_global_[shard].size() == local);
  local_to_global_[shard].push_back(s);
  return s;
}

bool sharded_drtree_backend::unsubscribe(sub_id s) {
  const auto& sl = at(s);
  auto& ov = *overlays_[sl.shard];
  if (!ov.alive(sl.local)) return false;
  ov.controlled_leave(sl.local);
  ov.settle();
  return true;
}

bool sharded_drtree_backend::crash(sub_id s) {
  const auto& sl = at(s);
  auto& ov = *overlays_[sl.shard];
  if (!ov.alive(sl.local)) return false;
  ov.crash(sl.local);
  return true;
}

bool sharded_drtree_backend::restart(sub_id s) {
  const auto& sl = at(s);
  auto& ov = *overlays_[sl.shard];
  if (ov.alive(sl.local)) return false;
  ov.restart(sl.local);
  return true;
}

std::size_t sharded_drtree_backend::corrupt(double rate, std::uint64_t seed) {
  std::size_t mutations = 0;
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    mutations += corrupt_overlay(*overlays_[i], rate, seed + i);
  }
  return mutations;
}

bool sharded_drtree_backend::alive(sub_id s) const {
  if (s >= subs_.size()) return false;
  const auto& sl = subs_[s];
  return overlays_[sl.shard]->alive(sl.local);
}

std::vector<sub_id> sharded_drtree_backend::active() const {
  std::vector<sub_id> out;
  out.reserve(subs_.size());
  for (sub_id s = 0; s < subs_.size(); ++s) {
    if (alive(s)) out.push_back(s);
  }
  return out;
}

std::size_t sharded_drtree_backend::population() const {
  std::size_t n = 0;
  for (const auto& ov : overlays_) n += ov->live_count();
  return n;
}

sub_id sharded_drtree_backend::root() const {
  // The forest has no global root; expose shard 0's (the one an
  // unsharded run would have) so "kill the root" scenarios stay
  // meaningful.
  const auto r = overlays_[0]->current_root();
  if (r == spatial::kNoPeer) return kNoSub;
  return local_to_global_[0][r];
}

delivery_report sharded_drtree_backend::publish(sub_id publisher,
                                                const spatial::pt& value) {
  const auto& sl = at(publisher);
  const auto event_id = next_event_id_++;
  std::vector<std::uint64_t> before(overlays_.size(), 0);
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    before[i] = overlays_[i]->sim().metrics().messages_sent;
  }
  overlays_[sl.shard]->publish_begin(sl.local, event_id, value);
  for (std::size_t d = 0; d < overlays_.size(); ++d) {
    if (d == sl.shard) continue;
    kernel_.post(sl.shard, d, sizeof(overlay::dr_msg),
                 [this, d, event_id, value](sim::simulator&) {
                   overlays_[d]->inject_publish(event_id, value);
                 });
  }
  kernel_.settle();

  delivery_report rep;
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    const auto r = overlays_[i]->publish_finish(event_id, value, before[i]);
    rep.interested += r.interested;
    rep.delivered += r.delivered;
    rep.false_positives += r.false_positives;
    rep.false_negatives += r.false_negatives;
    rep.messages += r.messages;
    rep.max_hops = std::max(rep.max_hops, r.max_hops);
  }
  if (overlays_.size() > 1) {
    rep.messages += overlays_.size() - 1;  // the cross-shard injections
  }
  return rep;
}

delivery_report sharded_drtree_backend::publish_batch(
    sub_id publisher, const spatial::pt* values, std::size_t n) {
  if (n == 0) return {};
  const auto& sl = at(publisher);
  std::vector<std::uint64_t> ids(n);
  for (auto& id : ids) id = next_event_id_++;
  std::vector<spatial::pt> vals(values, values + n);
  std::vector<std::uint64_t> before(overlays_.size(), 0);
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    before[i] = overlays_[i]->sim().metrics().messages_sent;
  }
  overlays_[sl.shard]->multi_publish_begin(sl.local, ids.data(), vals.data(),
                                           n);
  for (std::size_t d = 0; d < overlays_.size(); ++d) {
    if (d == sl.shard) continue;
    // One cross-shard injection per shard carries the whole batch — the
    // sharded analogue of the batch envelope's single descent.
    kernel_.post(sl.shard, d, overlay::dr_batch_msg::bytes_for(n),
                 [this, d, ids, vals](sim::simulator&) {
                   overlays_[d]->inject_multi_publish(ids.data(), vals.data(),
                                                      ids.size());
                 });
  }
  kernel_.settle();

  delivery_report rep;
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    const auto after = overlays_[i]->sim().metrics().messages_sent;
    rep.messages += after - before[i];
    for (std::size_t e = 0; e < n; ++e) {
      // `after` as the baseline zeroes the per-event message delta; the
      // shard's batch total was added once above.
      const auto r = overlays_[i]->publish_finish(ids[e], vals[e], after);
      rep.interested += r.interested;
      rep.delivered += r.delivered;
      rep.false_positives += r.false_positives;
      rep.false_negatives += r.false_negatives;
      rep.max_hops = std::max(rep.max_hops, r.max_hops);
    }
  }
  if (overlays_.size() > 1) {
    rep.messages += overlays_.size() - 1;  // the cross-shard injections
  }
  return rep;
}

void sharded_drtree_backend::step_round() {
  kernel_.advance(overlays_[0]->config().stabilize_period);
  kernel_.settle();
}

bool sharded_drtree_backend::legal() const {
  // A forest is legitimate when every shard's tree is.
  for (const auto& ov : overlays_) {
    if (!overlay::checker(*ov).check().legal()) return false;
  }
  return true;
}

backend_shape sharded_drtree_backend::shape() const {
  backend_shape s;
  double degree_sum = 0.0;
  std::size_t degree_nodes = 0;
  for (const auto& ov : overlays_) {
    const auto report = overlay::checker(*ov).check();
    s.population += report.live_peers;
    s.height = std::max(s.height, report.height);
    s.max_degree = std::max(s.max_degree, report.max_interior_children);
    s.routing_state += report.memory_links;
    // Weighted by interior-instance count (total instances minus the one
    // leaf per live peer) so the forest average is honest.
    const std::size_t interior =
        report.instances > report.live_peers
            ? report.instances - report.live_peers
            : 0;
    degree_sum += report.avg_interior_children * interior;
    degree_nodes += interior;
  }
  s.avg_degree = degree_nodes == 0 ? 0.0 : degree_sum / degree_nodes;
  return s;
}

backend_counters sharded_drtree_backend::counters() const {
  backend_counters c;
  for (const auto& ov : overlays_) {
    c.messages += ov->sim().metrics().messages_sent;
    c.stabilize_visited += ov->stab_stats().visited;
    c.stabilize_skipped += ov->stab_stats().skipped;
  }
  c.messages += kernel_.metrics().cross_messages;
  return c;
}

std::string sharded_drtree_backend::dump_flight(const std::string& reason) {
  std::vector<const obs::trace_ring*> rings;
  for (const auto& ov : overlays_) {
    if (ov->trace() != nullptr) rings.push_back(ov->trace());
  }
  if (rings.empty()) return {};
  const auto merged = obs::merge_traces(rings);
  return obs::write_flight_dump(reason, merged, merged.size(), {});
}

std::size_t sharded_drtree_backend::dirty_pending(std::size_t shard) const {
  DRT_EXPECT(shard < overlays_.size());
  return overlays_[shard]->dirty_pending();
}

overlay::arena_stats sharded_drtree_backend::arena_stats() const {
  overlay::arena_stats total;
  for (const auto& ov : overlays_) {
    const auto st = ov->arena().stats();
    total.slots += st.slots;
    total.live += st.live;
    total.slab_bytes += st.slab_bytes;
    total.heap_bytes += st.heap_bytes;
  }
  return total;
}

// ------------------------------------------------------- broker_backend

broker_backend::broker_backend(overlay_backend_config config) {
  pubsub::broker_config bc;
  bc.dr = config.dr;
  bc.net = config.net;
  broker_ = std::make_unique<pubsub::broker>(bc);
}

capability_mask broker_backend::capabilities() const {
  return overlay_capabilities(broker_->raw_overlay());
}

bool broker_backend::partition(const std::vector<sub_id>& side_b) {
  return partition_overlay(broker_->raw_overlay(), side_b);
}

bool broker_backend::degrade_links(double latency_factor, double extra_loss,
                                   double ramp_rounds) {
  return degrade_overlay(broker_->raw_overlay(), latency_factor, extra_loss,
                         ramp_rounds);
}

sub_id broker_backend::subscribe(const spatial::box& filter) {
  const auto client = broker_->add_client();
  const auto handle = broker_->subscribe(client, filter);
  const auto s = static_cast<sub_id>(handle.peer);
  handles_.emplace(s, handle);
  return s;
}

bool broker_backend::unsubscribe(sub_id s) {
  const auto it = handles_.find(s);
  if (it == handles_.end()) return false;
  // One client per subscription: retire the whole client, or clients_
  // would accumulate forever under churn.
  const bool ok = broker_->remove_client(it->second.client);
  handles_.erase(it);
  return ok;
}

bool broker_backend::crash(sub_id s) {
  auto& ov = broker_->raw_overlay();
  const auto p = static_cast<spatial::peer_id>(s);
  if (!ov.alive(p)) return false;
  ov.crash(p);
  return true;
}

bool broker_backend::restart(sub_id s) {
  auto& ov = broker_->raw_overlay();
  const auto p = static_cast<spatial::peer_id>(s);
  if (ov.alive(p)) return false;
  ov.restart(p);
  return true;
}

std::size_t broker_backend::corrupt(double rate, std::uint64_t seed) {
  return corrupt_overlay(broker_->raw_overlay(), rate, seed);
}

bool broker_backend::alive(sub_id s) const {
  return broker_->raw_overlay().alive(static_cast<spatial::peer_id>(s));
}

std::vector<sub_id> broker_backend::active() const {
  std::vector<sub_id> out;
  out.reserve(broker_->raw_overlay().live_count());
  broker_->raw_overlay().for_each_live(
      [&out](spatial::peer_id p) { out.push_back(p); });
  return out;
}

sub_id broker_backend::root() const {
  const auto r = broker_->raw_overlay().current_root();
  return r == spatial::kNoPeer ? kNoSub : static_cast<sub_id>(r);
}

delivery_report broker_backend::publish(sub_id publisher,
                                        const spatial::pt& value) {
  const auto it = handles_.find(publisher);
  DRT_EXPECT(it != handles_.end());
  const auto out = broker_->publish(it->second.client, value);
  // One client per subscription, so client-level accounting *is*
  // subscription-level accounting.
  delivery_report d;
  d.interested = out.matching_clients;
  d.delivered = out.notified.size();
  d.false_positives = out.client_false_positives;
  d.false_negatives = out.client_false_negatives;
  d.messages = out.messages;
  d.max_hops = out.max_hops;
  return d;
}

delivery_report broker_backend::publish_batch(sub_id publisher,
                                              const spatial::pt* values,
                                              std::size_t n) {
  const auto it = handles_.find(publisher);
  DRT_EXPECT(it != handles_.end());
  const auto outs = broker_->publish_batch(it->second.client, values, n);
  delivery_report d;
  for (const auto& out : outs) {
    d.interested += out.matching_clients;
    d.delivered += out.notified.size();
    d.false_positives += out.client_false_positives;
    d.false_negatives += out.client_false_negatives;
    d.messages += out.messages;
    d.max_hops = std::max(d.max_hops, out.max_hops);
  }
  return d;
}

void broker_backend::step_round() {
  auto& ov = broker_->raw_overlay();
  ov.advance(ov.config().stabilize_period);
  ov.settle();
}

backend_shape broker_backend::shape() const {
  return shape_of_overlay(broker_->raw_overlay());
}

backend_counters broker_backend::counters() const {
  backend_counters c;
  c.messages = broker_->raw_overlay().sim().metrics().messages_sent;
  c.stabilize_visited = broker_->raw_overlay().stab_stats().visited;
  c.stabilize_skipped = broker_->raw_overlay().stab_stats().skipped;
  return c;
}

// ----------------------------------------------------- baseline_backend

baseline_backend::baseline_backend(
    std::unique_ptr<baselines::pubsub_baseline> impl)
    : impl_(std::move(impl)) {
  DRT_EXPECT(impl_ != nullptr);
  rebuild();  // defined empty shape from the start (baseline.h contract)
}

void baseline_backend::rebuild() {
  impl_->build(filters_);
  ++rebuilds_;
  messages_ += impl_->build_messages();
  // Honest-rebuild semantics extend to the ground-truth matcher: it is
  // reconstructed from the surviving subscription set.
  scorer_.rebuild(filters_);
}

std::size_t baseline_backend::index_of(sub_id s) const {
  const auto it = std::find(ids_.begin(), ids_.end(), s);
  return it == ids_.end() ? npos
                          : static_cast<std::size_t>(it - ids_.begin());
}

sub_id baseline_backend::subscribe(const spatial::box& filter) {
  const auto s = next_id_++;
  ids_.push_back(s);
  filters_.push_back(filter);
  rebuild();
  return s;
}

bool baseline_backend::unsubscribe(sub_id s) {
  const auto i = index_of(s);
  if (i == npos) return false;
  ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(i));
  filters_.erase(filters_.begin() + static_cast<std::ptrdiff_t>(i));
  rebuild();
  return true;
}

bool baseline_backend::alive(sub_id s) const { return index_of(s) != npos; }

delivery_report baseline_backend::publish(sub_id publisher,
                                          const spatial::pt& value) {
  const auto idx = index_of(publisher);
  DRT_EXPECT(idx != npos);
  const auto diss = impl_->publish(idx, value);
  messages_ += diss.messages;

  delivery_report d;
  d.messages = diss.messages;
  d.max_hops = diss.max_hops;
  const auto s = scorer_.score(value, diss.receivers);
  d.interested = s.interested;
  d.delivered = s.delivered;
  d.false_positives = s.false_positives;
  d.false_negatives = s.false_negatives;
  return d;
}

backend_shape baseline_backend::shape() const {
  const auto s = impl_->shape();
  backend_shape out;
  out.population = s.population;
  out.height = s.height;
  out.max_degree = s.max_degree;
  out.avg_degree = s.avg_degree;
  out.routing_state = s.routing_state;
  return out;
}

// --------------------------------------------------------------- factory

std::vector<std::unique_ptr<backend>> make_all_backends(
    const overlay_backend_config& config, bool include_broker) {
  std::vector<std::unique_ptr<backend>> out;
  out.push_back(std::make_unique<drtree_backend>(config));
  if (include_broker) {
    out.push_back(std::make_unique<broker_backend>(config));
  }
  out.push_back(std::make_unique<baseline_backend>(
      std::make_unique<baselines::containment_tree>()));
  out.push_back(std::make_unique<baseline_backend>(
      std::make_unique<baselines::dimension_forest>()));
  out.push_back(std::make_unique<baseline_backend>(
      std::make_unique<baselines::flooding>(4, 113)));
  out.push_back(std::make_unique<baseline_backend>(
      std::make_unique<baselines::zcurve_dht>(config.dr.workspace, 5, 127)));
  return out;
}

std::unique_ptr<backend> make_scenario_backend(const scenario& sc,
                                               overlay_backend_config base) {
  const auto cfg = configured_for(sc, base);
  if (sc.shards <= 1) return std::make_unique<drtree_backend>(cfg);
  return std::make_unique<sharded_drtree_backend>(cfg, sc.shards);
}

}  // namespace drt::engine
