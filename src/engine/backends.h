// Backend adapters (DESIGN.md §6): the DR-tree overlay, the broker
// façade, and the four §3.1/§4 baselines behind the one
// drt::engine::backend interface.
//
// The two overlay-backed adapters (drtree_backend, broker_backend) drive
// the identical protocol stack through the identical operations, so a
// churn-free scenario produces bit-identical metrics on either — the
// engine determinism tests rely on this.  Baselines get honest
// *incremental rebuild* semantics: they have no repair protocol, so every
// membership change rebuilds the structure from the surviving
// subscription set (counted in backend_counters::rebuilds); crashes,
// restarts, and corruption are outside their capability mask.
#ifndef DRT_ENGINE_BACKENDS_H
#define DRT_ENGINE_BACKENDS_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/baseline.h"
#include "drtree/overlay.h"
#include "engine/backend.h"
#include "pubsub/broker.h"
#include "rtree/rtree.h"
#include "sim/kernel.h"

namespace drt::engine {

struct scenario;

/// Shared configuration for the overlay-backed adapters.
struct overlay_backend_config {
  overlay::dr_config dr{};
  sim::simulator_config net{};
};

/// The backend config a scenario calls for: `base` with the scenario's
/// declarative net model (when it has one) installed.  Benches and
/// tests use this so the scenario value fully determines the transport.
overlay_backend_config configured_for(const scenario& sc,
                                      overlay_backend_config base = {});

/// The system under study: the full DR-tree protocol stack, one overlay
/// peer per subscription.
class drtree_backend final : public backend {
 public:
  explicit drtree_backend(overlay_backend_config config = {});

  std::string name() const override { return "drtree"; }
  capability_mask capabilities() const override;

  sub_id subscribe(const spatial::box& filter) override;
  bool unsubscribe(sub_id s) override;
  bool crash(sub_id s) override;
  bool restart(sub_id s) override;
  std::size_t corrupt(double rate, std::uint64_t seed) override;
  bool partition(const std::vector<sub_id>& side_b) override;
  bool heal() override { return overlay_->heal_partition(); }
  bool degrade_links(double latency_factor, double extra_loss,
                     double ramp_rounds) override;

  bool alive(sub_id s) const override;
  std::vector<sub_id> active() const override;
  std::size_t population() const override { return overlay_->live_count(); }
  sub_id root() const override;

  delivery_report publish(sub_id publisher, const spatial::pt& value) override;
  delivery_report publish_batch(sub_id publisher, const spatial::pt* values,
                                std::size_t n) override;

  void settle() override { overlay_->settle(); }
  void step_round() override;
  bool legal() const override;
  backend_shape shape() const override;
  backend_counters counters() const override;

  const obs::trace_ring* trace() const override { return overlay_->trace(); }
  std::string dump_flight(const std::string& reason) override;

  overlay::dr_overlay& overlay() { return *overlay_; }
  const overlay::dr_overlay& overlay() const { return *overlay_; }

 private:
  std::unique_ptr<overlay::dr_overlay> overlay_;
};

/// The DR-tree stack sharded over a sim::kernel (DESIGN.md §8): one full
/// dr_overlay per shard — its own simulator, calendar queue, payload
/// pool, RNG stream, and filter index — with subscriptions partitioned
/// round-robin by arrival order.  Each shard grows its own tree, so all
/// protocol traffic (joins, stabilization, repair) is intra-shard by
/// construction; only publications cross shards, as kernel injections
/// delivered at barriers (publish in the origin shard, inject at every
/// other shard's root).  With one shard this backend is operation-for-
/// operation identical to drtree_backend — the recorder-digest
/// equivalence tests pin that — and for any fixed shard count a run is
/// bit-deterministic.
class sharded_drtree_backend final : public backend {
 public:
  explicit sharded_drtree_backend(overlay_backend_config config = {},
                                  std::size_t shards = 1,
                                  bool parallel = false);

  std::string name() const override { return "drtree_sharded"; }
  capability_mask capabilities() const override {
    // Partition/degrade act on one simulator's net model; there is no
    // honest cross-shard story for them, so they are not advertised.
    return cap_unsubscribe | cap_crash | cap_restart | cap_corruption |
           cap_stabilize;
  }

  sub_id subscribe(const spatial::box& filter) override;
  bool unsubscribe(sub_id s) override;
  bool crash(sub_id s) override;
  bool restart(sub_id s) override;
  std::size_t corrupt(double rate, std::uint64_t seed) override;

  bool alive(sub_id s) const override;
  std::vector<sub_id> active() const override;
  std::size_t population() const override;
  sub_id root() const override;

  delivery_report publish(sub_id publisher, const spatial::pt& value) override;
  delivery_report publish_batch(sub_id publisher, const spatial::pt* values,
                                std::size_t n) override;

  void settle() override { kernel_.settle(); }
  void step_round() override;
  bool legal() const override;
  backend_shape shape() const override;
  backend_counters counters() const override;

  const obs::trace_ring* trace() const override {
    return overlays_.empty() ? nullptr : overlays_[0]->trace();
  }
  std::string dump_flight(const std::string& reason) override;

  std::size_t shards() const { return overlays_.size(); }
  overlay::dr_overlay& overlay(std::size_t shard) { return *overlays_[shard]; }
  sim::kernel& kernel() { return kernel_; }
  const sim::kernel& kernel() const { return kernel_; }

  /// Dirty-set backlog of one shard (stabilize_mode::dirty; always 0 in
  /// full mode) — lets drivers see which shards still have repair work.
  std::size_t dirty_pending(std::size_t shard) const;

  /// Total protocol-state footprint across all shard arenas.
  overlay::arena_stats arena_stats() const;

 private:
  struct slot {
    std::size_t shard = 0;
    spatial::peer_id local = spatial::kNoPeer;
  };
  const slot& at(sub_id s) const;

  std::vector<std::unique_ptr<overlay::dr_overlay>> overlays_;
  sim::kernel kernel_;
  std::vector<slot> subs_;  ///< global sub_id (the index) -> shard slot
  /// Per shard: local peer id -> global sub_id (locals are dense).
  std::vector<std::vector<sub_id>> local_to_global_;
  std::uint64_t next_event_id_ = 1;
  std::size_t next_shard_ = 0;
};

/// The application façade: one broker client per engine subscription, so
/// client-level accounting coincides with subscription-level accounting
/// and the adapter stays metrics-compatible with drtree_backend.
class broker_backend final : public backend {
 public:
  explicit broker_backend(overlay_backend_config config = {});

  std::string name() const override { return "broker"; }
  capability_mask capabilities() const override;

  sub_id subscribe(const spatial::box& filter) override;
  bool unsubscribe(sub_id s) override;
  bool crash(sub_id s) override;
  bool restart(sub_id s) override;
  std::size_t corrupt(double rate, std::uint64_t seed) override;
  bool partition(const std::vector<sub_id>& side_b) override;
  bool heal() override { return broker_->raw_overlay().heal_partition(); }
  bool degrade_links(double latency_factor, double extra_loss,
                     double ramp_rounds) override;

  bool alive(sub_id s) const override;
  std::vector<sub_id> active() const override;
  std::size_t population() const override {
    return broker_->raw_overlay().live_count();
  }
  sub_id root() const override;

  delivery_report publish(sub_id publisher, const spatial::pt& value) override;
  delivery_report publish_batch(sub_id publisher, const spatial::pt* values,
                                std::size_t n) override;

  void settle() override { broker_->raw_overlay().settle(); }
  void step_round() override;
  bool legal() const override { return broker_->overlay_legal(); }
  backend_shape shape() const override;
  backend_counters counters() const override;

  pubsub::broker& broker() { return *broker_; }

 private:
  std::unique_ptr<pubsub::broker> broker_;
  /// sub_id == the subscription's overlay peer id; the handle map lets
  /// unsubscribe tear down through the broker API.
  std::unordered_map<sub_id, pubsub::subscription_handle> handles_;
};

/// Adapter for the static baselines: membership changes rebuild the
/// structure from the surviving subscription set, publications are scored
/// against brute-force ground truth over that set.
class baseline_backend final : public backend {
 public:
  explicit baseline_backend(std::unique_ptr<baselines::pubsub_baseline> impl);

  std::string name() const override { return impl_->name(); }
  capability_mask capabilities() const override { return cap_unsubscribe; }

  sub_id subscribe(const spatial::box& filter) override;
  bool unsubscribe(sub_id s) override;

  bool alive(sub_id s) const override;
  std::vector<sub_id> active() const override { return ids_; }
  std::size_t population() const override { return ids_.size(); }

  delivery_report publish(sub_id publisher, const spatial::pt& value) override;

  backend_shape shape() const override;
  backend_counters counters() const override {
    return {messages_, rebuilds_};
  }

  baselines::pubsub_baseline& impl() { return *impl_; }

 private:
  void rebuild();
  std::size_t index_of(sub_id s) const;  ///< npos when unknown

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::unique_ptr<baselines::pubsub_baseline> impl_;
  std::vector<sub_id> ids_;              // insertion order
  std::vector<spatial::box> filters_;    // parallel to ids_
  sub_id next_id_ = 1;
  std::uint64_t messages_ = 0;
  std::uint64_t rebuilds_ = 0;
  // Ground-truth matcher over filters_, rebuilt with the baseline (the
  // membership set already changes only through rebuild()); publish()
  // scores against it in O(log N + matches) with reusable buffers.
  baselines::delivery_scorer scorer_;
};

/// All five systems of experiment E14 behind the uniform interface: the
/// DR-tree plus the four baselines (containment tree, dimension forest,
/// flooding, Z-curve DHT).  `broker` adds the sixth, client-facing
/// surface when requested.
std::vector<std::unique_ptr<backend>> make_all_backends(
    const overlay_backend_config& config, bool include_broker = false);

/// The overlay backend a scenario calls for: its declarative net model
/// installed (configured_for) and its `shards` knob honored — 1 builds
/// the plain drtree_backend, >1 a sharded_drtree_backend over a kernel.
std::unique_ptr<backend> make_scenario_backend(
    const scenario& sc, overlay_backend_config base = {});

}  // namespace drt::engine

#endif  // DRT_ENGINE_BACKENDS_H
