// The unified experiment backend interface (DESIGN.md §6).
//
// The paper's claims are all *dynamic* — stabilization under churn,
// crashes, and corruption — so every system under test is driven through
// one dynamic-operations interface: subscribe, unsubscribe, crash,
// publish, settle.  Adapters exist for the DR-tree overlay, the broker
// façade, and the four static baselines of §3.1/§4 (which get honest
// incremental-rebuild semantics: every membership change rebuilds the
// structure from the surviving subscription set).
//
// Not every backend can do everything — a containment tree has no notion
// of an uncontrolled crash, a flooding mesh never needs stabilization
// rounds — so each backend declares a capability mask and the scenario
// runner skips (and records as skipped) the phases a backend cannot
// honestly execute.
#ifndef DRT_ENGINE_BACKEND_H
#define DRT_ENGINE_BACKEND_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "spatial/types.h"

namespace drt::engine {

/// Identifies one live subscription inside a backend.  For the overlay
/// backends this is the peer id; baselines allocate their own ids.
using sub_id = std::uint64_t;
inline constexpr sub_id kNoSub = static_cast<sub_id>(-1);

/// What a backend can honestly do (see DESIGN.md §6).  `subscribe` and
/// `publish` are unconditional: a pub/sub system that cannot do either is
/// not a backend.
enum capability : std::uint32_t {
  cap_unsubscribe = 1u << 0,  ///< dynamic controlled departure
  cap_crash       = 1u << 1,  ///< uncontrolled departure (silent)
  cap_restart     = 1u << 2,  ///< revive a crashed sub with stale state
  cap_corruption  = 1u << 3,  ///< transient memory-corruption faults
  cap_stabilize   = 1u << 4,  ///< periodic repair rounds do real work
  cap_partition   = 1u << 5,  ///< network partitions with later heal
  cap_degrade     = 1u << 6,  ///< per-link degradation ramps
};
using capability_mask = std::uint32_t;

/// Outcome of one publication, normalized across backends: accuracy is
/// always counted against brute-force ground truth over the live
/// subscription population.
struct delivery_report {
  std::size_t interested = 0;       ///< |{s live : filter_s ∋ e}|
  std::size_t delivered = 0;        ///< distinct subscriptions reached
  std::size_t false_positives = 0;  ///< delivered but not interested
  std::size_t false_negatives = 0;  ///< interested but not delivered
  std::uint64_t messages = 0;       ///< network messages spent
  std::size_t max_hops = 0;         ///< longest delivery path
};

/// Structural snapshot of the backend, normalized across systems.
struct backend_shape {
  std::size_t population = 0;     ///< live subscriptions
  std::size_t height = 0;         ///< longest root-to-leaf path (0 if flat)
  std::size_t max_degree = 0;     ///< highest per-node neighbor/child count
  double avg_degree = 0.0;
  std::size_t routing_state = 0;  ///< total routing entries stored
};

/// Monotonic cost counters; the runner records per-phase deltas.
/// Backends without a stabilizer leave the stabilize_* fields at their
/// defaults, so those phases record 0 (not absent) in the metrics.
struct backend_counters {
  std::uint64_t messages = 0;  ///< network messages spent so far (total)
  std::uint64_t rebuilds = 0;  ///< full structure rebuilds (baselines)
  std::uint64_t stabilize_visited = 0;  ///< stabilize passes that ran
  std::uint64_t stabilize_skipped = 0;  ///< dirty-mode ticks skipped
};

class backend {
 public:
  virtual ~backend() = default;

  virtual std::string name() const = 0;
  virtual capability_mask capabilities() const = 0;
  bool can(capability c) const { return (capabilities() & c) != 0; }

  // -------------------------------------------------------- membership
  /// Register a filter; the subscription becomes live immediately (the
  /// backend settles any join traffic before returning).
  virtual sub_id subscribe(const spatial::box& filter) = 0;

  /// Controlled departure.  Returns false when the id is unknown/dead or
  /// the backend lacks cap_unsubscribe.
  virtual bool unsubscribe(sub_id s) = 0;

  /// Uncontrolled departure (cap_crash).  The subscription disappears
  /// silently; repair is the stabilizer's job.
  virtual bool crash(sub_id s) { (void)s; return false; }

  /// Revive a crashed subscription with its stale state (cap_restart).
  virtual bool restart(sub_id s) { (void)s; return false; }

  /// Scramble protocol state at the given per-variable rate
  /// (cap_corruption); returns the number of mutations performed.
  virtual std::size_t corrupt(double rate, std::uint64_t seed) {
    (void)rate; (void)seed; return 0;
  }

  // --------------------------------------------------- network dynamics
  /// Partition the network (cap_partition): subscriptions in `side_b`
  /// against everyone else.  Cross-cut traffic drops and each side's
  /// failure detectors treat the other as dead until heal().
  virtual bool partition(const std::vector<sub_id>& side_b) {
    (void)side_b; return false;
  }

  /// Remove the active partition (cap_partition).
  virtual bool heal() { return false; }

  /// Ramp all links to latency_factor x latency and extra_loss stacked
  /// loss over `ramp_rounds` stabilization periods of virtual time,
  /// then hold (cap_degrade).
  virtual bool degrade_links(double latency_factor, double extra_loss,
                             double ramp_rounds) {
    (void)latency_factor; (void)extra_loss; (void)ramp_rounds;
    return false;
  }

  // ------------------------------------------------------------ access
  virtual bool alive(sub_id s) const = 0;

  /// Live subscription ids in a stable, backend-deterministic order (the
  /// runner picks publishers and victims by index into this list).
  virtual std::vector<sub_id> active() const = 0;
  virtual std::size_t population() const = 0;

  /// The distinguished root subscription, when the structure has one
  /// (kNoSub otherwise) — lets scenarios target "kill the root".
  virtual sub_id root() const { return kNoSub; }

  // ----------------------------------------------------- dissemination
  /// Publish from `publisher` (must be alive) and drain the network.
  virtual delivery_report publish(sub_id publisher,
                                  const spatial::pt& value) = 0;

  /// Publish `n` events from one publisher as a batch and drain once,
  /// returning ONE aggregated report (per-event sums; messages = total
  /// network cost of the whole batch).  Backends with a native batch path
  /// (the DR-tree's multi_publish envelopes) override this; the default
  /// is the semantic baseline — n scalar publishes — so every backend
  /// accepts batch scenarios and the comparison stays honest.
  virtual delivery_report publish_batch(sub_id publisher,
                                        const spatial::pt* values,
                                        std::size_t n) {
    delivery_report total;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = publish(publisher, values[i]);
      total.interested += r.interested;
      total.delivered += r.delivered;
      total.false_positives += r.false_positives;
      total.false_negatives += r.false_negatives;
      total.messages += r.messages;
      total.max_hops = std::max(total.max_hops, r.max_hops);
    }
    return total;
  }

  // --------------------------------------------------------- execution
  /// Drain in-flight protocol work (no-op for structural baselines).
  virtual void settle() {}

  /// Advance one stabilization round (one timer period of virtual time,
  /// then drain).  No-op without cap_stabilize.
  virtual void step_round() {}

  /// True iff the current configuration is legitimate.  Backends without
  /// a legality notion are vacuously legal.
  virtual bool legal() const { return true; }

  virtual backend_shape shape() const = 0;
  virtual backend_counters counters() const = 0;

  // ----------------------------------------------------- observability
  /// The backend's flight-recorder ring (DESIGN.md §12), or nullptr when
  /// tracing is off / the backend has none.  Sharded backends return the
  /// first shard's ring; use dump_flight for a merged view.
  virtual const obs::trace_ring* trace() const { return nullptr; }

  /// Write a flight-recorder dump (merged across shards) and return its
  /// path; "" when tracing is off or the backend does not support dumps.
  virtual std::string dump_flight(const std::string& reason) {
    (void)reason;
    return {};
  }
};

}  // namespace drt::engine

#endif  // DRT_ENGINE_BACKEND_H
