// Executes declarative scenarios against any backend (DESIGN.md §6).
//
// The runner owns the experiment-side randomness (filter generation,
// event generation, publisher and victim picks), seeds it from the
// scenario's workload profile, and records one phase_metrics row per
// executed phase.  Backends never consume the runner's RNG, so on a
// timeline every backend can execute (nothing skipped by the capability
// mask) the same scenario + seed issues the identical operation sequence
// to every backend — the basis of the cross-backend determinism
// guarantees.  A skipped phase consumes no draws and changes no state,
// so once a timeline strays outside a backend's mask its subsequent rows
// are comparable in schema only (DESIGN.md §6).
//
// The phase executors are also exposed as primitives (populate, converge,
// publish_sweep, ...) for tests and tools that need to interleave
// scripted operations with direct backend manipulation; analysis::testbed
// is a thin shim over these.
#ifndef DRT_ENGINE_RUNNER_H
#define DRT_ENGINE_RUNNER_H

#include <functional>
#include <vector>

#include "engine/backend.h"
#include "engine/metrics.h"
#include "engine/scenario.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace drt::engine {

struct runner_config {
  /// Profile used by the *primitive* calls; scenario runs use the
  /// scenario's own profile (and a fresh RNG seeded from it).
  workload_profile workload{};
  int default_converge_rounds = 300;
  /// Append a final "shape" row (structural snapshot) to every run().
  bool final_shape_row = true;
  /// Observer invoked after every stabilization round of a converge
  /// phase (round-by-round demos hook this).
  std::function<void(int round, bool legal)> on_converge_round;
};

class scenario_runner {
 public:
  explicit scenario_runner(engine::backend& be, runner_config config = {});

  /// Execute every phase of the timeline in order and return the filled
  /// recorder.  Phases outside the backend's capability mask are recorded
  /// with skipped = yes.  Deterministic: the run draws only from a fresh
  /// RNG seeded by `sc.workload.seed` and keeps run-local filter/crash
  /// state, so identical (scenario, seed, fresh backend) runs record
  /// identical output whatever this runner executed before.
  metrics_recorder run(const scenario& sc);

  // ------------------------------------------------------- primitives
  /// Add `n` subscriptions generated from the runner's workload profile.
  std::vector<sub_id> populate(std::size_t n);
  /// Add one subscription with an explicit filter.
  sub_id add(const spatial::box& filter);
  /// Publish `count` events from random live subscriptions.
  sweep_stats publish_sweep(
      std::size_t count,
      workload::event_family family = workload::event_family::uniform);
  /// Publish `count` events in batches of `batch` through the backend's
  /// batch path (one random live publisher per batch).
  sweep_stats publish_batch(
      std::size_t count, std::size_t batch,
      workload::event_family family = workload::event_family::uniform);
  /// Stabilization rounds until legal; rounds needed, or -1.
  int converge(int max_rounds);
  int converge() { return converge(config_.default_converge_rounds); }
  /// Interleaved joins/leaves; returns ops performed.
  std::size_t churn_wave(std::size_t ops, double join_fraction = 0.5,
                         std::size_t min_population = 4);
  /// Crash `count` + `fraction`-of-population subscriptions (root first
  /// when asked); returns crashes performed (0 without cap_crash).
  std::size_t crash_burst(double fraction, std::size_t count = 0,
                          bool include_root = false);
  /// Controlled departures; returns leaves performed.
  std::size_t leave_wave(double fraction, std::size_t count = 0);
  /// Revive up to `count` most recently crashed subscriptions.
  std::size_t restart_burst(std::size_t count);
  /// Scramble backend state; returns mutations performed.
  std::size_t corrupt(double rate);
  /// Run exactly `rounds` stabilization rounds (legal or not).
  int step_rounds(int rounds);
  /// Cut off a random `fraction` of the live population (0 without
  /// cap_partition); returns the minority size.
  std::size_t partition(double fraction);
  /// Remove the active partition; false without cap_partition.
  bool heal();
  /// Install a degradation ramp; false without cap_degrade.
  bool degrade_links(double latency_factor, double extra_loss,
                     double ramp_rounds);

  // ----------------------------------------------------------- access
  engine::backend& backend() { return be_; }
  const engine::backend& backend() const { return be_; }
  util::rng& rng() { return rng_; }
  /// Every filter subscribed through the *primitives* (event generation
  /// targets historical interests, exactly like the old testbed).
  /// Scenario runs keep their own run-local history.
  const std::vector<spatial::box>& filters() const { return filters_; }
  /// Primitive-side crash stack consumed by restart_burst (most recent
  /// last).
  const std::vector<sub_id>& crashed() const { return crashed_; }
  const runner_config& config() const { return config_; }

  /// Observability side channel (DESIGN.md §12): counters plus the
  /// publish-hop-depth and stabilize-round-latency histograms every sweep
  /// and round executor feeds.  Deliberately NOT part of the
  /// metrics_recorder rows, so the recorder digest — and with it every
  /// golden-digest determinism test — is unchanged by instrumentation.
  /// Wall-clock latencies live only here, never in recorded rows.
  obs::registry& metrics() { return metrics_; }
  const obs::registry& metrics() const { return metrics_; }

 private:
  /// Per-execution experiment state: the RNG stream plus the filter
  /// history and crash stack it feeds.  Primitives bind the runner's
  /// members; run() binds run-local state so a scenario's outcome never
  /// depends on what ran before.
  struct phase_ctx {
    const workload_profile& profile;
    util::rng& rng;
    std::vector<spatial::box>& filters;
    std::vector<sub_id>& crashed;
  };

  std::vector<sub_id> do_populate(phase_ctx ctx, std::size_t n,
                                  const std::vector<spatial::box>& explicit_f,
                                  phase_metrics* out);
  sweep_stats do_sweep(phase_ctx ctx, std::size_t count,
                       workload::event_family family, phase_metrics* out);
  sweep_stats do_batch_sweep(phase_ctx ctx, const publish_batch_phase& p,
                             phase_metrics* out);
  int do_converge(int max_rounds, phase_metrics* out);
  std::size_t do_churn(phase_ctx ctx, const churn_wave_phase& p,
                       phase_metrics* out);
  std::size_t do_crash(phase_ctx ctx, const crash_burst_phase& p,
                       phase_metrics* out);
  std::size_t do_leave(phase_ctx ctx, const controlled_leave_wave_phase& p,
                       phase_metrics* out);
  std::size_t do_restart(phase_ctx ctx, std::size_t count,
                         phase_metrics* out);
  std::size_t do_corrupt(phase_ctx ctx, double rate, phase_metrics* out);
  int do_steps(int rounds, phase_metrics* out);
  std::size_t do_partition(phase_ctx ctx, double fraction,
                           phase_metrics* out);
  bool do_heal(phase_metrics* out);
  bool do_degrade(const degrade_links_phase& p, phase_metrics* out);
  void do_ramp(phase_ctx ctx, const param_ramp_phase& p,
               metrics_recorder& rec);

  void execute(phase_ctx ctx, const phase& p, metrics_recorder& rec);
  void finish_row(phase_metrics& m, const backend_counters& before);

  phase_ctx own_ctx() {
    return {config_.workload, rng_, filters_, crashed_};
  }

  engine::backend& be_;
  runner_config config_;
  util::rng rng_;
  std::vector<spatial::box> filters_;
  std::vector<sub_id> crashed_;
  obs::registry metrics_;
};

}  // namespace drt::engine

#endif  // DRT_ENGINE_RUNNER_H
