// Declarative experiment scenarios (DESIGN.md §6).
//
// A scenario is a *value*: a name, a workload profile, and an ordered
// timeline of typed phases.  It carries no behavior — scenario_runner
// executes it against any backend — so the same scenario drives the
// DR-tree, the broker façade, and every baseline through identical
// operation sequences, and two runs with the same seed are
// bit-reproducible.
//
// Timelines are assembled with the fluent builder:
//
//   auto sc = scenario::make("rolling_churn")
//                 .seed(7).populate(64).converge()
//                 .repeat(4, [](auto& b) {
//                   b.churn_wave(16).converge().publish_sweep(60);
//                 })
//                 .build();
//
// Canned timelines for the recurring experiment shapes live in
// engine::canned.
#ifndef DRT_ENGINE_SCENARIO_H
#define DRT_ENGINE_SCENARIO_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/config.h"
#include "spatial/types.h"
#include "workload/workload.h"

namespace drt::engine {

/// Add subscriptions: `count` generated from the scenario's workload
/// family, or the explicit `filters` when non-empty.
struct populate_phase {
  std::size_t count = 0;
  std::vector<spatial::box> filters;
};

/// Publish `count` events from random live subscriptions; accuracy and
/// cost are aggregated against brute-force ground truth.
struct publish_sweep_phase {
  std::size_t count = 0;
  workload::event_family family = workload::event_family::uniform;
};

/// Publish `count` events in batches of `batch` from random live
/// subscriptions (one publisher per batch), through the backend's batch
/// path (DESIGN.md §9).  Accuracy accounting matches publish_sweep;
/// backends without a native batch path fall back to per-event publishes,
/// so the recorded message cost is what makes the comparison.
struct publish_batch_phase {
  std::size_t count = 0;
  std::size_t batch = 16;
  workload::event_family family = workload::event_family::uniform;
};

/// Interleaved joins and controlled leaves: each of `ops` operations is a
/// join with probability `join_fraction` (forced while the population is
/// below `min_population`), otherwise a leave of a random live
/// subscription.
struct churn_wave_phase {
  std::size_t ops = 0;
  double join_fraction = 0.5;
  std::size_t min_population = 4;
};

/// Uncontrolled departures: crash `count` plus `fraction` of the live
/// population, chosen uniformly (the root first when `include_root`).
/// Requires cap_crash; recorded as skipped otherwise.
struct crash_burst_phase {
  double fraction = 0.0;
  std::size_t count = 0;
  bool include_root = false;
};

/// Controlled departures of `count` plus `fraction` of the live
/// population, chosen uniformly.
struct controlled_leave_wave_phase {
  double fraction = 0.0;
  std::size_t count = 0;
};

/// Revive up to `count` of the most recently crashed subscriptions with
/// their stale state (the §2.1 transient-fault model).  Requires
/// cap_restart.
struct restart_burst_phase {
  std::size_t count = 0;
};

/// Scramble protocol variables at the given per-variable rate.  Requires
/// cap_corruption.
struct corruption_burst_phase {
  double rate = 0.1;
};

/// Run stabilization rounds until the configuration is legitimate; the
/// recorded `rounds` is the count needed (-1 when `max_rounds` elapsed
/// without convergence).  Backends without a legality notion converge in
/// zero rounds.
struct converge_phase {
  int max_rounds = 300;
};

/// Run exactly `rounds` stabilization rounds, legal or not, recording
/// legality afterwards.  This is how a timeline holds a fault window
/// open (e.g. "stay partitioned for 8 periods") — converge would either
/// exit immediately or burn its whole budget against a fault that
/// cannot heal by stabilization alone.
/// Requires cap_stabilize; on backends whose repair is not round-stepped
/// (e.g. net_backend, where wall-clock drives the daemon's stabilizer)
/// the phase is recorded with skipped=true instead of a no-op row.
struct step_rounds_phase {
  int rounds = 1;
};

/// Cut the network in two: `fraction` of the live population (chosen by
/// the runner's RNG) forms the minority side.  Cross-cut messages drop
/// and each side's failure detectors see the other as dead until a heal
/// phase.  Requires cap_partition; recorded as skipped otherwise.
struct partition_phase {
  double fraction = 0.5;
};

/// Remove the active partition.  Requires cap_partition.
struct heal_phase {};

/// Ramp all links to `latency_factor` x latency and `extra_loss`
/// stacked loss over `ramp_rounds` stabilization periods, then hold.
/// Requires cap_degrade; recorded as skipped otherwise.
struct degrade_links_phase {
  double latency_factor = 1.0;
  double extra_loss = 0.0;
  double ramp_rounds = 0.0;
};

/// Which knob a param_ramp phase sweeps.
enum class ramp_target {
  churn_ops,      ///< churn_wave ops per step
  publish_count,  ///< publish_sweep events per step
  crash_fraction, ///< crash_burst fraction per step
};

const char* to_string(ramp_target t);

/// Sweep a knob from `from` to `to` over `steps` sub-phases; each step
/// executes the target phase with the interpolated value (disruptive
/// targets are followed by an in-step converge) and records one row with
/// the step's value in the `ramp` column.
struct param_ramp_phase {
  ramp_target target = ramp_target::churn_ops;
  double from = 0.0;
  double to = 0.0;
  std::size_t steps = 0;
  workload::event_family family = workload::event_family::matching;
  int converge_rounds = 300;
};

using phase =
    std::variant<populate_phase, publish_sweep_phase, churn_wave_phase,
                 crash_burst_phase, controlled_leave_wave_phase,
                 restart_burst_phase, corruption_burst_phase, converge_phase,
                 param_ramp_phase, step_rounds_phase, partition_phase,
                 heal_phase, degrade_links_phase, publish_batch_phase>;

/// Stable phase label used in metrics rows and digests.
const char* phase_name(const phase& p);

/// Workload generation parameters + the seed that makes a scenario run
/// reproducible (it drives filter/event generation and victim picks).
/// `subs.workspace` must agree with the backend's workspace (e.g.
/// overlay_backend_config::dr.workspace, which also feeds the Z-curve
/// DHT grid): generated filters and events are drawn over it, and a
/// mismatch silently clamps them into a corner of the overlay's space.
/// Both default to the same 1000x1000 square; set the builder's
/// `workspace()` when the backend uses anything else (the
/// analysis::testbed shim aligns them automatically).
struct workload_profile {
  workload::subscription_family family =
      workload::subscription_family::uniform;
  workload::subscription_params subs{};
  std::uint64_t seed = 7;
};

struct scenario {
  std::string name;
  workload_profile workload;
  /// Declarative network model the scenario is meant to run under; a
  /// scenario with partition/degrade phases needs a dynamic model here.
  /// Backends are constructed by the caller, so this is applied via
  /// engine::configured_for (backends.h) — unset means "whatever the
  /// backend was built with" (the uniform default).
  std::optional<net::model_config> net;
  /// Simulator shards the scenario is meant to run over (sim::kernel).
  /// Like `net`, backends are caller-constructed, so this takes effect
  /// through engine::make_scenario_backend: 1 (the default) builds the
  /// plain drtree_backend, >1 a sharded_drtree_backend over a kernel.
  std::size_t shards = 1;
  std::vector<phase> timeline;

  class builder;
  static builder make(std::string name);
};

class scenario::builder {
 public:
  explicit builder(std::string name);

  builder& seed(std::uint64_t seed);
  builder& family(workload::subscription_family family);
  builder& subscription_params(const workload::subscription_params& params);
  /// Workspace filters/events are generated over; keep it equal to the
  /// backend's workspace (see workload_profile).
  builder& workspace(const spatial::box& workspace);
  /// Declarative network model (see scenario::net).
  builder& net(const net::model_config& model);
  /// Simulator shard count (see scenario::shards); 0 is clamped to 1.
  builder& shards(std::size_t count);

  builder& populate(std::size_t count);
  builder& subscribe(std::vector<spatial::box> filters);
  builder& publish_sweep(
      std::size_t count,
      workload::event_family family = workload::event_family::matching);
  builder& publish_batch(
      std::size_t count, std::size_t batch = 16,
      workload::event_family family = workload::event_family::matching);
  builder& churn_wave(std::size_t ops, double join_fraction = 0.5,
                      std::size_t min_population = 4);
  builder& crash_burst(double fraction, bool include_root = false);
  builder& crash_count(std::size_t count, bool include_root = false);
  builder& controlled_leave_wave(double fraction);
  builder& leave_count(std::size_t count);
  builder& restart_burst(std::size_t count);
  builder& corruption_burst(double rate);
  builder& converge(int max_rounds = 300);
  builder& step_rounds(int rounds);
  builder& partition(double fraction = 0.5);
  builder& heal();
  builder& degrade_links(double latency_factor, double extra_loss = 0.0,
                         double ramp_rounds = 0.0);
  builder& param_ramp(
      ramp_target target, double from, double to, std::size_t steps,
      workload::event_family family = workload::event_family::matching);

  /// Append `block`'s phases `times` times (rolling waves, epochs).
  builder& repeat(std::size_t times,
                  const std::function<void(builder&)>& block);

  scenario build();

 private:
  scenario scenario_;
};

/// Canned timelines for the recurring experiment shapes.  All of them run
/// on every backend; phases outside a backend's capability mask are
/// recorded as skipped.
namespace canned {

/// A small stable population hit by a join storm, then measured.
scenario flash_crowd(std::size_t base = 24, std::size_t crowd = 96,
                     std::uint64_t seed = 7);

/// Steady population under repeated join/leave waves with accuracy sweeps
/// between waves — the dynamic workload every backend supports.
scenario rolling_churn(std::size_t n = 64, std::size_t waves = 4,
                       std::size_t ops = 16, std::uint64_t seed = 7);

/// The combined disaster: crash a third of the peers (root included),
/// corrupt half the survivors' memories, then heal and verify accuracy.
scenario massacre_then_heal(std::size_t n = 60, double crash_fraction = 1.0 / 3,
                            double corruption = 0.5, std::uint64_t seed = 7);

/// Split-brain under a network partition, then heal (E18): a converged
/// population is cut in two for `down_rounds` stabilization periods
/// (each side re-legalizes internally — measured by the sweep across
/// the cut), then the partition heals and the two trees must merge back
/// to one legal overlay with zero false negatives.  Carries a dynamic
/// net model over the uniform default, so run it on a backend built via
/// engine::configured_for.
scenario split_brain_heal(std::size_t n = 64, double minority = 1.0 / 3,
                          int down_rounds = 8, std::uint64_t seed = 7);

}  // namespace canned

}  // namespace drt::engine

#endif  // DRT_ENGINE_SCENARIO_H
