// Common interface for the baseline publish/subscribe overlays the paper
// argues against (§3.1 and §4):
//
//  * containment_tree   — direct mapping of the containment graph [11]
//  * dimension_forest   — one containment tree per dimension [3]
//  * flooding           — broadcast over a random overlay (worst case)
//  * zcurve_dht         — DHT rendezvous via Z-order mapping of filters
//                         to a 1-D key space (the §4 critique: "mapping of
//                         complex filters to uni-dimensional name spaces
//                         results in poor performance")
//
// Baselines are evaluated structurally (logical overlay graph, counted
// messages) on a static subscription set — their best case, since none of
// them self-stabilizes.  Experiment E14 compares them against the DR-tree
// on identical workloads.
#ifndef DRT_BASELINES_BASELINE_H
#define DRT_BASELINES_BASELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtree/rtree.h"
#include "spatial/types.h"

namespace drt::baselines {

/// Result of disseminating one event.
struct dissemination {
  std::vector<std::size_t> receivers;  ///< subscriber indexes reached
  std::uint64_t messages = 0;          ///< overlay messages spent
  std::size_t max_hops = 0;            ///< longest delivery path
};

/// Structural properties of the built overlay.  An empty population has
/// the defined shape of all-zero fields (see pubsub_baseline::build).
struct overlay_shape {
  std::size_t population = 0;  ///< subscriptions the overlay was built for
  std::size_t height = 0;      ///< longest root-to-leaf path (0 if flat)
  std::size_t max_degree = 0;  ///< highest per-peer neighbor count
  double avg_degree = 0.0;
  /// Total routing-state entries stored across peers (subscription
  /// replicas for the DHT, tree links otherwise).
  std::size_t routing_state = 0;

  friend bool operator==(const overlay_shape&, const overlay_shape&) = default;
};

class pubsub_baseline {
 public:
  virtual ~pubsub_baseline() = default;

  /// Build the overlay for a fixed subscription population; subscriber i
  /// owns subscriptions[i].  `build({})` is valid and must leave the
  /// overlay empty: `shape()` then returns a value-initialized
  /// overlay_shape (all zeros) rather than whatever stale or improvised
  /// statistics a previous build left behind.  Publishing requires a
  /// valid subscriber index, so it is a precondition violation on an
  /// empty population.
  virtual void build(const std::vector<spatial::box>& subscriptions) = 0;

  /// Publish from subscriber `publisher` and report who received it.
  virtual dissemination publish(std::size_t publisher,
                                const spatial::pt& value) = 0;

  virtual overlay_shape shape() const = 0;
  virtual std::string name() const = 0;

  /// Messages the last build() spent installing subscription state (the
  /// update-cost side of dynamic membership; nonzero only for the DHT,
  /// where installation traffic is the §4 critique).
  virtual std::uint64_t build_messages() const { return 0; }
};

/// Accuracy accounting shared by the comparison bench.
struct baseline_accuracy {
  std::size_t events = 0;
  std::size_t population = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t interested = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t messages = 0;

  double fp_rate() const {
    const auto denom =
        static_cast<double>(events) * static_cast<double>(population);
    return denom == 0.0 ? 0.0
                        : static_cast<double>(false_positives) / denom;
  }
  double fn_rate() const {
    return interested == 0 ? 0.0
                           : static_cast<double>(false_negatives) /
                                 static_cast<double>(interested);
  }
};

/// Per-event delivery accounting against ground truth.
struct delivery_score {
  std::size_t interested = 0;
  std::size_t delivered = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

/// Scores deliveries (subscriber indexes reached) against a bulk-loaded
/// ground-truth R-tree over the subscription set — O(log N + matches)
/// per event instead of a brute-force contains() scan, with buffers
/// reused across events.  Shared by measure_accuracy and the engine's
/// baseline_backend so the scoring rules live in exactly one place.
class delivery_scorer {
 public:
  /// Rebuild the matcher for a (changed) subscription population;
  /// subscriber i owns subscriptions[i].
  void rebuild(const std::vector<spatial::box>& subscriptions);

  delivery_score score(const spatial::pt& value,
                       const std::vector<std::size_t>& receivers);

 private:
  rtree::rtree<spatial::kDims> truth_{};
  std::size_t population_ = 0;
  std::vector<std::uint64_t> matches_;
  std::vector<bool> got_;
  std::vector<bool> interested_;
};

/// Run `publish` for each (publisher, value) pair and compare against
/// ground-truth matching over `subscriptions`.
baseline_accuracy measure_accuracy(
    pubsub_baseline& overlay, const std::vector<spatial::box>& subscriptions,
    const std::vector<std::pair<std::size_t, spatial::pt>>& publications);

}  // namespace drt::baselines

#endif  // DRT_BASELINES_BASELINE_H
