// Flooding over a random k-regular-ish overlay: every publication reaches
// every peer.  The accuracy worst case the paper's §3.1 warns about ("the
// propagation of an event may degenerate into a broadcast reaching all
// consumer nodes irrespective of their interests") — zero false negatives
// by construction, maximal false positives and message cost.
#ifndef DRT_BASELINES_FLOODING_H
#define DRT_BASELINES_FLOODING_H

#include <vector>

#include "baselines/baseline.h"
#include "util/rng.h"

namespace drt::baselines {

class flooding : public pubsub_baseline {
 public:
  explicit flooding(std::size_t degree = 4, std::uint64_t seed = 1)
      : degree_(degree), seed_(seed) {}

  void build(const std::vector<spatial::box>& subscriptions) override;
  dissemination publish(std::size_t publisher,
                        const spatial::pt& value) override;
  overlay_shape shape() const override;
  std::string name() const override { return "flooding"; }

 private:
  std::size_t degree_;
  std::uint64_t seed_;
  std::size_t n_ = 0;
  std::vector<std::vector<std::size_t>> neighbors_;
};

}  // namespace drt::baselines

#endif  // DRT_BASELINES_FLOODING_H
