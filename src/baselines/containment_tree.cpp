#include "baselines/containment_tree.h"

#include <algorithm>
#include <limits>

namespace drt::baselines {

void containment_tree::build(const std::vector<spatial::box>& subscriptions) {
  subs_ = subscriptions;
  const std::size_t n = subs_.size();
  parent_.assign(n, npos);
  children_.assign(n, {});
  top_.clear();
  depth_.assign(n, 1);

  // Most specific container: the smallest-area strict container.  Ties on
  // identical filters break by index so the relation stays acyclic.
  for (std::size_t i = 0; i < n; ++i) {
    double best_area = std::numeric_limits<double>::infinity();
    std::size_t best = npos;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool ji = subs_[j].contains(subs_[i]);
      const bool ij = subs_[i].contains(subs_[j]);
      const bool strict = ji && (!ij || j < i);
      if (!strict) continue;
      const double area = subs_[j].area();
      if (area < best_area || (area == best_area && j < best)) {
        best_area = area;
        best = j;
      }
    }
    parent_[i] = best;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (parent_[i] == npos) {
      top_.push_back(i);
    } else {
      children_[parent_[i]].push_back(i);
    }
  }
  // Depths via repeated relaxation (parents always have lower depth).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t want =
          parent_[i] == npos ? 1 : depth_[parent_[i]] + 1;
      if (depth_[i] != want) {
        depth_[i] = want;
        changed = true;
      }
    }
  }
}

dissemination containment_tree::publish(std::size_t publisher,
                                        const spatial::pt& value) {
  dissemination d;
  // The publisher routes the event to the virtual root (its ancestor
  // chain), then the event descends every matching path.  Climbing costs
  // one message per hop.
  d.messages += depth_.at(publisher);

  // Descend from the virtual root: a child is visited only if its filter
  // matches, so every visited subscriber is interested (exact routing).
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, hops)
  for (const auto t : top_) {
    ++d.messages;  // virtual root -> top-level subscriber probe
    if (subs_[t].contains(value)) stack.emplace_back(t, 1);
  }
  while (!stack.empty()) {
    const auto [node, hops] = stack.back();
    stack.pop_back();
    d.receivers.push_back(node);
    d.max_hops = std::max(d.max_hops, hops + depth_.at(publisher));
    for (const auto c : children_[node]) {
      ++d.messages;
      if (subs_[c].contains(value)) stack.emplace_back(c, hops + 1);
    }
  }
  return d;
}

overlay_shape containment_tree::shape() const {
  overlay_shape s;
  s.population = subs_.size();
  s.max_degree = top_.size();  // the virtual root's fan-out
  std::size_t link_total = top_.size();
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    s.height = std::max(s.height, depth_[i]);
    s.max_degree = std::max(s.max_degree, children_[i].size() + 1);
    link_total += children_[i].size() + 1;  // children + parent link
  }
  s.routing_state = link_total;
  s.avg_degree = subs_.empty() ? 0.0
                               : static_cast<double>(link_total) /
                                     static_cast<double>(subs_.size());
  return s;
}

}  // namespace drt::baselines
