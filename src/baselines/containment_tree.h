// Direct containment-graph overlay in the style of semantic peer-to-peer
// pub/sub [11] (Chand & Felber, Euro-Par 2005): every subscriber attaches
// under its most specific container; subscribers contained in nobody hang
// off a virtual root.
//
// Routing is exact (a parent's filter contains every descendant's filter,
// so matching prunes perfectly: no false positives and no false
// negatives), but §3.1 observes the structural price this design pays —
// "it requires a virtual root with as many children as subscriptions that
// are not contained in any other subscription" and "the resulting tree
// might be heavily unbalanced with a high variance in the degrees" —
// which experiment E14 measures.
#ifndef DRT_BASELINES_CONTAINMENT_TREE_H
#define DRT_BASELINES_CONTAINMENT_TREE_H

#include <vector>

#include "baselines/baseline.h"

namespace drt::baselines {

class containment_tree : public pubsub_baseline {
 public:
  void build(const std::vector<spatial::box>& subscriptions) override;
  dissemination publish(std::size_t publisher,
                        const spatial::pt& value) override;
  overlay_shape shape() const override;
  std::string name() const override { return "containment_tree"; }

  /// Parent index of subscriber i, or npos when attached to the virtual
  /// root.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t parent(std::size_t i) const { return parent_.at(i); }
  const std::vector<std::size_t>& top_level() const { return top_; }

 private:
  std::vector<spatial::box> subs_;
  std::vector<std::size_t> parent_;                // npos = virtual root
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> top_;                   // virtual root children
  std::vector<std::size_t> depth_;                 // 1 = top level
};

}  // namespace drt::baselines

#endif  // DRT_BASELINES_CONTAINMENT_TREE_H
