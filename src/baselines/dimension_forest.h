// Per-dimension containment forest in the style of [3] (Anceaume, Datta,
// Gradinariu, Simon, Virgillito, ICDCS 2006): one containment tree per
// attribute; a subscription registers in the tree of every attribute it
// constrains, ordered by interval containment on that attribute alone.
//
// An event is routed down each tree by per-dimension interval matching; a
// subscriber is notified as soon as it matches in *some* tree.  §3.1:
// "this solution tends to produce flat trees with high fan-out and may
// generate a significant number of false positives" — a subscriber whose
// interval matches on one attribute receives events that miss its other
// attributes.  Experiment E14 quantifies both effects.
#ifndef DRT_BASELINES_DIMENSION_FOREST_H
#define DRT_BASELINES_DIMENSION_FOREST_H

#include <array>
#include <vector>

#include "baselines/baseline.h"

namespace drt::baselines {

class dimension_forest : public pubsub_baseline {
 public:
  void build(const std::vector<spatial::box>& subscriptions) override;
  dissemination publish(std::size_t publisher,
                        const spatial::pt& value) override;
  overlay_shape shape() const override;
  std::string name() const override { return "dimension_forest"; }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct tree {
    std::vector<std::size_t> parent;                // npos = virtual root
    std::vector<std::vector<std::size_t>> children;
    std::vector<std::size_t> top;
    std::vector<std::size_t> depth;
  };

  bool interval_contains(std::size_t dim, std::size_t outer,
                         std::size_t inner) const;

  std::vector<spatial::box> subs_;
  std::array<tree, spatial::kDims> trees_;
};

}  // namespace drt::baselines

#endif  // DRT_BASELINES_DIMENSION_FOREST_H
