#include "baselines/baseline.h"

#include <utility>

namespace drt::baselines {

void delivery_scorer::rebuild(const std::vector<spatial::box>& subscriptions) {
  population_ = subscriptions.size();
  std::vector<std::pair<spatial::box, std::uint64_t>> items;
  items.reserve(population_);
  for (std::size_t i = 0; i < population_; ++i) {
    items.emplace_back(subscriptions[i], i);
  }
  truth_ = rtree::rtree<spatial::kDims>::bulk_load(std::move(items));
}

delivery_score delivery_scorer::score(
    const spatial::pt& value, const std::vector<std::size_t>& receivers) {
  delivery_score d;
  got_.assign(population_, false);
  for (const auto r : receivers) {
    if (r < population_) got_[r] = true;
  }
  truth_.search_point(value, matches_);
  d.interested = matches_.size();
  interested_.assign(population_, false);
  for (const auto h : matches_) {
    interested_[static_cast<std::size_t>(h)] = true;
  }
  for (std::size_t i = 0; i < population_; ++i) {
    if (got_[i]) ++d.delivered;
    if (got_[i] && !interested_[i]) ++d.false_positives;
    if (!got_[i] && interested_[i]) ++d.false_negatives;
  }
  return d;
}

baseline_accuracy measure_accuracy(
    pubsub_baseline& overlay, const std::vector<spatial::box>& subscriptions,
    const std::vector<std::pair<std::size_t, spatial::pt>>& publications) {
  baseline_accuracy acc;
  acc.population = subscriptions.size();
  delivery_scorer scorer;
  scorer.rebuild(subscriptions);
  for (const auto& [publisher, value] : publications) {
    const auto d = overlay.publish(publisher, value);
    ++acc.events;
    acc.messages += d.messages;
    const auto s = scorer.score(value, d.receivers);
    acc.interested += s.interested;
    acc.deliveries += s.delivered;
    acc.false_positives += s.false_positives;
    acc.false_negatives += s.false_negatives;
  }
  return acc;
}

}  // namespace drt::baselines
