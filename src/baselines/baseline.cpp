#include "baselines/baseline.h"

#include <algorithm>

namespace drt::baselines {

baseline_accuracy measure_accuracy(
    pubsub_baseline& overlay, const std::vector<spatial::box>& subscriptions,
    const std::vector<std::pair<std::size_t, spatial::pt>>& publications) {
  baseline_accuracy acc;
  acc.population = subscriptions.size();
  for (const auto& [publisher, value] : publications) {
    const auto d = overlay.publish(publisher, value);
    ++acc.events;
    acc.messages += d.messages;
    std::vector<bool> got(subscriptions.size(), false);
    for (const auto r : d.receivers) {
      if (r < got.size()) got[r] = true;
    }
    for (std::size_t i = 0; i < subscriptions.size(); ++i) {
      const bool interested = subscriptions[i].contains(value);
      if (interested) ++acc.interested;
      if (got[i]) ++acc.deliveries;
      if (got[i] && !interested) ++acc.false_positives;
      if (!got[i] && interested) ++acc.false_negatives;
    }
  }
  return acc;
}

}  // namespace drt::baselines
