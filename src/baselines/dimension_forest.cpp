#include "baselines/dimension_forest.h"

#include <algorithm>
#include <limits>

namespace drt::baselines {

bool dimension_forest::interval_contains(std::size_t dim, std::size_t outer,
                                         std::size_t inner) const {
  return subs_[outer].lo[dim] <= subs_[inner].lo[dim] &&
         subs_[outer].hi[dim] >= subs_[inner].hi[dim];
}

void dimension_forest::build(const std::vector<spatial::box>& subscriptions) {
  subs_ = subscriptions;
  const std::size_t n = subs_.size();
  for (std::size_t dim = 0; dim < spatial::kDims; ++dim) {
    auto& t = trees_[dim];
    t.parent.assign(n, npos);
    t.children.assign(n, {});
    t.top.clear();
    t.depth.assign(n, 1);

    // Most specific interval container on this dimension alone.
    for (std::size_t i = 0; i < n; ++i) {
      double best_len = std::numeric_limits<double>::infinity();
      std::size_t best = npos;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const bool ji = interval_contains(dim, j, i);
        const bool ij = interval_contains(dim, i, j);
        const bool strict = ji && (!ij || j < i);
        if (!strict) continue;
        const double len = subs_[j].hi[dim] - subs_[j].lo[dim];
        if (len < best_len || (len == best_len && j < best)) {
          best_len = len;
          best = j;
        }
      }
      t.parent[i] = best;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (t.parent[i] == npos) {
        t.top.push_back(i);
      } else {
        t.children[t.parent[i]].push_back(i);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t want =
            t.parent[i] == npos ? 1 : t.depth[t.parent[i]] + 1;
        if (t.depth[i] != want) {
          t.depth[i] = want;
          changed = true;
        }
      }
    }
  }
}

dissemination dimension_forest::publish(std::size_t publisher,
                                        const spatial::pt& value) {
  dissemination d;
  std::vector<bool> notified(subs_.size(), false);
  for (std::size_t dim = 0; dim < spatial::kDims; ++dim) {
    const auto& t = trees_[dim];
    // Climb to the virtual root of this dimension's tree.
    d.messages += t.depth.at(publisher);
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    auto matches_dim = [&](std::size_t i) {
      return subs_[i].lo[dim] <= value[dim] && value[dim] <= subs_[i].hi[dim];
    };
    for (const auto top : t.top) {
      ++d.messages;
      if (matches_dim(top)) stack.emplace_back(top, 1);
    }
    while (!stack.empty()) {
      const auto [node, hops] = stack.back();
      stack.pop_back();
      // Notified on a per-dimension match: the §3.1 false-positive source.
      if (!notified[node]) {
        notified[node] = true;
        d.receivers.push_back(node);
      }
      d.max_hops = std::max(d.max_hops, hops + t.depth.at(publisher));
      for (const auto c : t.children[node]) {
        ++d.messages;
        if (matches_dim(c)) stack.emplace_back(c, hops + 1);
      }
    }
  }
  return d;
}

overlay_shape dimension_forest::shape() const {
  overlay_shape s;
  s.population = subs_.size();
  std::size_t link_total = 0;
  for (const auto& t : trees_) {
    s.max_degree = std::max(s.max_degree, t.top.size());
    link_total += t.top.size();
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      s.height = std::max(s.height, t.depth[i]);
      s.max_degree = std::max(s.max_degree, t.children[i].size() + 1);
      link_total += t.children[i].size() + 1;
    }
  }
  s.routing_state = link_total;
  s.avg_degree = subs_.empty() ? 0.0
                               : static_cast<double>(link_total) /
                                     static_cast<double>(subs_.size());
  return s;
}

}  // namespace drt::baselines
