#include "baselines/zcurve_dht.h"

#include <algorithm>

#include "util/expect.h"

namespace drt::baselines {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Clockwise ring distance from a to b in the 2^64 key space.
std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b) {
  return b - a;  // modular arithmetic handles the wrap
}

}  // namespace

std::uint32_t zcurve_dht::morton(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint32_t v) {
    std::uint64_t r = v;
    r = (r | (r << 8)) & 0x00FF00FFULL;
    r = (r | (r << 4)) & 0x0F0F0F0FULL;
    r = (r | (r << 2)) & 0x33333333ULL;
    r = (r | (r << 1)) & 0x55555555ULL;
    return static_cast<std::uint32_t>(r);
  };
  return spread(x) | (spread(y) << 1);
}

std::uint32_t zcurve_dht::cell_of(const spatial::pt& value) const {
  const auto cells = std::uint32_t{1} << grid_bits_;
  auto coord = [&](std::size_t dim) {
    const double span = workspace_.hi[dim] - workspace_.lo[dim];
    double frac = (value[dim] - workspace_.lo[dim]) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    auto c = static_cast<std::uint32_t>(frac * cells);
    return std::min(c, cells - 1);
  };
  return morton(coord(0), coord(1));
}

std::uint64_t zcurve_dht::key_of_cell(std::uint32_t z) const {
  const auto total_bits = 2 * grid_bits_;
  // Spread cell keys uniformly over the 64-bit ring.
  return static_cast<std::uint64_t>(z) << (64 - total_bits);
}

std::vector<std::uint32_t> zcurve_dht::cells_of_rect(
    const spatial::box& r) const {
  const auto cells = std::uint32_t{1} << grid_bits_;
  auto lo_coord = [&](std::size_t dim, double v) {
    const double span = workspace_.hi[dim] - workspace_.lo[dim];
    const double frac = std::clamp((v - workspace_.lo[dim]) / span, 0.0, 1.0);
    return std::min(static_cast<std::uint32_t>(frac * cells), cells - 1);
  };
  const auto x0 = lo_coord(0, r.lo[0]);
  const auto x1 = lo_coord(0, r.hi[0]);
  const auto y0 = lo_coord(1, r.lo[1]);
  const auto y1 = lo_coord(1, r.hi[1]);
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(x1 - x0 + 1) * (y1 - y0 + 1));
  for (std::uint32_t x = x0; x <= x1; ++x) {
    for (std::uint32_t y = y0; y <= y1; ++y) {
      out.push_back(morton(x, y));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t zcurve_dht::successor(std::uint64_t key) const {
  DRT_EXPECT(!ring_.empty());
  auto it = std::lower_bound(ring_.begin(), ring_.end(), key);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return ring_peer_[static_cast<std::size_t>(it - ring_.begin())];
}

std::size_t zcurve_dht::route(std::size_t from, std::uint64_t key) const {
  // Greedy Chord routing: jump to the finger that most closely precedes
  // the key until the current node's successor owns it.
  const auto target = successor(key);
  std::size_t current = from;
  std::size_t hops = 0;
  while (current != target && hops < 2 * ring_.size()) {
    std::size_t best = static_cast<std::size_t>(-1);
    std::uint64_t best_dist = ring_distance(peer_id_[current], key);
    for (const auto f : fingers_[current]) {
      const auto d = ring_distance(peer_id_[f], key);
      // A finger strictly between current and the key (closer in ring
      // distance) is a valid greedy jump.
      if (d < best_dist && f != current) {
        best_dist = d;
        best = f;
      }
    }
    if (best == static_cast<std::size_t>(-1)) {
      // No finger improves: take the immediate successor step.
      const auto it = std::upper_bound(ring_.begin(), ring_.end(),
                                       peer_id_[current]);
      const auto idx = it == ring_.end()
                           ? 0
                           : static_cast<std::size_t>(it - ring_.begin());
      best = ring_peer_[idx];
      if (best == current) break;  // singleton ring
    }
    current = best;
    ++hops;
  }
  return hops;
}

void zcurve_dht::build(const std::vector<spatial::box>& subscriptions) {
  subs_ = subscriptions;
  const std::size_t n = subs_.size();
  if (n == 0) {
    // Defined empty shape (baseline.h contract): no stale ring/replica
    // state may survive from a previous build.
    ring_.clear();
    ring_peer_.clear();
    peer_id_.clear();
    fingers_.clear();
    stored_.clear();
    install_messages_ = 0;
    replicas_ = 0;
    return;
  }

  // Ring identifiers.
  peer_id_.resize(n);
  std::vector<std::pair<std::uint64_t, std::size_t>> slots;
  slots.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    peer_id_[i] = splitmix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    slots.emplace_back(peer_id_[i], i);
  }
  std::sort(slots.begin(), slots.end());
  ring_.clear();
  ring_peer_.clear();
  for (const auto& [id, peer] : slots) {
    ring_.push_back(id);
    ring_peer_.push_back(peer);
  }

  // Finger tables: successor(id + 2^b) for b = 0..63, deduplicated.
  fingers_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < 64; ++b) {
      const auto f = successor(peer_id_[i] + (std::uint64_t{1} << b));
      if (f != i &&
          std::find(fingers_[i].begin(), fingers_[i].end(), f) ==
              fingers_[i].end()) {
        fingers_[i].push_back(f);
      }
    }
  }

  // Install subscriptions at the rendezvous owner of every covered cell.
  stored_.assign(n, {});
  install_messages_ = 0;
  replicas_ = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const auto cells = cells_of_rect(subs_[s]);
    std::size_t previous_owner = static_cast<std::size_t>(-1);
    for (const auto z : cells) {
      const auto owner = successor(key_of_cell(z));
      if (owner == previous_owner) continue;  // same segment owner
      previous_owner = owner;
      install_messages_ += route(s, key_of_cell(z)) + 1;
      if (std::find(stored_[owner].begin(), stored_[owner].end(), s) ==
          stored_[owner].end()) {
        stored_[owner].push_back(s);
        ++replicas_;
      }
    }
  }
}

dissemination zcurve_dht::publish(std::size_t publisher,
                                  const spatial::pt& value) {
  dissemination d;
  const auto z = cell_of(value);
  const auto owner = successor(key_of_cell(z));
  const auto hops = route(publisher, key_of_cell(z));
  d.messages += hops;
  d.max_hops = hops;
  // The rendezvous owner performs exact matching and notifies each
  // interested subscriber directly.
  for (const auto s : stored_[owner]) {
    if (subs_[s].contains(value)) {
      ++d.messages;
      d.receivers.push_back(s);
      d.max_hops = std::max(d.max_hops, hops + 1);
    }
  }
  return d;
}

overlay_shape zcurve_dht::shape() const {
  overlay_shape s;
  s.population = subs_.size();
  std::size_t link_total = 0;
  for (std::size_t i = 0; i < fingers_.size(); ++i) {
    s.max_degree = std::max(s.max_degree, fingers_[i].size());
    link_total += fingers_[i].size();
  }
  s.routing_state = link_total + replicas_;
  s.avg_degree = fingers_.empty()
                     ? 0.0
                     : static_cast<double>(link_total) /
                           static_cast<double>(fingers_.size());
  s.height = 0;  // ring, not a tree
  return s;
}

}  // namespace drt::baselines
