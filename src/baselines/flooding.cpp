#include "baselines/flooding.h"

#include <algorithm>
#include <deque>

namespace drt::baselines {

void flooding::build(const std::vector<spatial::box>& subscriptions) {
  n_ = subscriptions.size();
  neighbors_.assign(n_, {});
  if (n_ < 2) return;
  util::rng rng(seed_);
  // Ring for connectivity plus random chords up to the target degree.
  for (std::size_t i = 0; i < n_; ++i) {
    const auto next = (i + 1) % n_;
    neighbors_[i].push_back(next);
    neighbors_[next].push_back(i);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    while (neighbors_[i].size() < degree_ && neighbors_[i].size() < n_ - 1) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_) - 1));
      if (j == i) continue;
      if (std::find(neighbors_[i].begin(), neighbors_[i].end(), j) !=
          neighbors_[i].end()) {
        continue;
      }
      neighbors_[i].push_back(j);
      neighbors_[j].push_back(i);
    }
  }
}

dissemination flooding::publish(std::size_t publisher,
                                const spatial::pt& /*value*/) {
  dissemination d;
  if (n_ == 0) return d;
  // Classic flood: each peer forwards once to every neighbor except the
  // one it heard from.
  std::vector<bool> seen(n_, false);
  std::deque<std::pair<std::size_t, std::size_t>> frontier;
  frontier.emplace_back(publisher, 0);
  seen[publisher] = true;
  while (!frontier.empty()) {
    const auto [node, hops] = frontier.front();
    frontier.pop_front();
    d.receivers.push_back(node);
    d.max_hops = std::max(d.max_hops, hops);
    for (const auto next : neighbors_[node]) {
      ++d.messages;  // forwarded even to already-seen peers
      if (!seen[next]) {
        seen[next] = true;
        frontier.emplace_back(next, hops + 1);
      }
    }
  }
  return d;
}

overlay_shape flooding::shape() const {
  overlay_shape s;
  s.population = n_;
  std::size_t link_total = 0;
  for (const auto& nb : neighbors_) {
    s.max_degree = std::max(s.max_degree, nb.size());
    link_total += nb.size();
  }
  s.routing_state = link_total;
  s.avg_degree =
      n_ == 0 ? 0.0 : static_cast<double>(link_total) / static_cast<double>(n_);
  s.height = 0;  // flat gossip mesh
  return s;
}

}  // namespace drt::baselines
