// DHT rendezvous baseline: a Chord-style ring with finger routing, plus a
// Z-order (Morton) mapping of the 2-D filter space onto the 1-D key
// space.  This is the design family of the DHT-based systems discussed in
// §4 (Scribe/Bayeux/Meghdoot): logarithmic routing, but "the mapping of
// complex filters to uni-dimensional name spaces results in poor
// performance" — a rectangle shatters into many Z-cells whose keys
// scatter over the ring, so subscription state and installation traffic
// blow up.  Experiment E14 measures exactly that blowup next to the
// DR-tree's per-peer polylogarithmic state.
//
// Matching itself is exact (the rendezvous owner checks the full filter
// before notifying), so accuracy is perfect; the cost is state + traffic.
#ifndef DRT_BASELINES_ZCURVE_DHT_H
#define DRT_BASELINES_ZCURVE_DHT_H

#include <cstdint>
#include <vector>

#include "baselines/baseline.h"

namespace drt::baselines {

class zcurve_dht : public pubsub_baseline {
 public:
  /// grid_bits g: the workspace is a 2^g x 2^g grid (default 32 x 32).
  explicit zcurve_dht(spatial::box workspace, std::size_t grid_bits = 5,
                      std::uint64_t seed = 1)
      : workspace_(workspace), grid_bits_(grid_bits), seed_(seed) {}

  void build(const std::vector<spatial::box>& subscriptions) override;
  dissemination publish(std::size_t publisher,
                        const spatial::pt& value) override;
  overlay_shape shape() const override;
  std::string name() const override { return "zcurve_dht"; }

  /// Messages spent installing all subscriptions (the update-cost side of
  /// the 1-D mapping critique).
  std::uint64_t install_messages() const { return install_messages_; }
  std::uint64_t build_messages() const override { return install_messages_; }
  /// Total (peer, subscription) replicas stored at rendezvous nodes.
  std::size_t replicas() const { return replicas_; }

  // Exposed for unit tests.
  static std::uint32_t morton(std::uint32_t x, std::uint32_t y);
  std::uint32_t cell_of(const spatial::pt& value) const;

 private:
  std::uint64_t key_of_cell(std::uint32_t z) const;
  std::size_t successor(std::uint64_t key) const;  ///< peer index
  /// Chord greedy finger routing; returns hop count.
  std::size_t route(std::size_t from, std::uint64_t key) const;
  std::vector<std::uint32_t> cells_of_rect(const spatial::box& r) const;

  spatial::box workspace_;
  std::size_t grid_bits_;
  std::uint64_t seed_;

  std::vector<spatial::box> subs_;
  std::vector<std::uint64_t> ring_;         // sorted ring ids
  std::vector<std::size_t> ring_peer_;      // peer index per ring slot
  std::vector<std::uint64_t> peer_id_;      // ring id per peer index
  std::vector<std::vector<std::size_t>> fingers_;  // per peer: peer indexes
  std::vector<std::vector<std::size_t>> stored_;   // per peer: sub indexes
  std::uint64_t install_messages_ = 0;
  std::size_t replicas_ = 0;
};

}  // namespace drt::baselines

#endif  // DRT_BASELINES_ZCURVE_DHT_H
