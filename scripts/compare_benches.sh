#!/usr/bin/env bash
# Diff two sets of BENCH_*.json files (see scripts/run_benches.sh and
# DESIGN.md §4) and fail on tier-1 bench regressions, so the perf
# trajectory accumulates across PRs instead of silently eroding.
#
# Usage: scripts/compare_benches.sh BASELINE_DIR CANDIDATE_DIR [THRESHOLD_PCT]
#
#   BASELINE_DIR   committed reference set (e.g. bench/baselines)
#   CANDIDATE_DIR  fresh run (e.g. bench_results from run_benches.sh)
#   THRESHOLD_PCT  max allowed cpu-time regression, default 10
#
# Every benchmark present in both sets is reported.  Only the *tier-1*
# benches gate the exit status (DRT_TIER1_BENCHES to override): the
# timing microbenches with statistically meaningful iteration counts
# (sim_core, rtree_ops), the two end-to-end hot-path benches that
# ride the R-tree substrate (search, latency), the partition/heal
# experiment (partition_stabilize) that rides the network-model send
# path, and the 100k-peer sharded-kernel scale run (million_peer) —
# single-shot iterations, so capture them with repetitions and
# rely on the min.  Other experiment benches are too noisy to gate on,
# but their deltas are still printed.  A tier-1 bench file or benchmark
# missing from the candidate set is a hard failure.
#
# Run both sets with --benchmark_repetitions=5: every repetition is one
# JSON record and the comparison takes the per-name minimum, which is
# robust to noisy-neighbor CPU steal on shared machines.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 BASELINE_DIR CANDIDATE_DIR [THRESHOLD_PCT]" >&2
  exit 2
fi
BASE_DIR="$1"
CAND_DIR="$2"
THRESHOLD="${3:-10}"
TIER1="${DRT_TIER1_BENCHES:-sim_core rtree_ops search latency partition_stabilize million_peer publish_throughput net_throughput quiescent_overhead trace_overhead}"

[ -d "$BASE_DIR" ] || { echo "baseline dir '$BASE_DIR' not found" >&2; exit 2; }
[ -d "$CAND_DIR" ] || { echo "candidate dir '$CAND_DIR' not found" >&2; exit 2; }

# Extract "name<TAB>cpu_ns_per_op" rows from one bench JSON (the format
# bench/bench_json.cpp emits: one benchmark object per line).
extract() {
  sed -n 's/.*"name": "\([^"]*\)".*"cpu_ns_per_op": \([0-9.eE+-]*\),.*/\1\t\2/p' "$1"
}

is_tier1() {
  local name="$1" t
  for t in $TIER1; do
    [ "$name" = "$t" ] && return 0
  done
  return 1
}

compared=0
failures=0
printf '%-12s %-34s %12s %12s %9s  %s\n' \
  "suite" "benchmark" "base_ns" "cand_ns" "delta_%" "verdict"

for base_file in "$BASE_DIR"/BENCH_*.json; do
  [ -f "$base_file" ] || continue
  fname="$(basename "$base_file")"
  suite="${fname#BENCH_}"
  suite="${suite%.json}"
  gate="no"
  is_tier1 "$suite" && gate="yes"
  # trace_overhead is tier-1 through its intra-suite ratio gate below
  # (ring vs off within ONE run); its absolute times are reported but
  # not diff-gated — the scenario re-runs per iteration, so wall-clock
  # swings with machine load while the ratio stays tight.  A missing
  # candidate file still fails via the ratio-gate block.
  [ "$suite" = "trace_overhead" ] && gate="no"
  cand_file="$CAND_DIR/$fname"
  if [ ! -f "$cand_file" ]; then
    if [ "$gate" = "yes" ]; then
      # A tier-1 bench that never ran must not slip past the gate.
      echo "## $fname: MISSING from candidate set (tier-1 -> FAIL)"
      failures=$((failures + 1))
    else
      echo "## $fname: missing from candidate set (skipped)"
    fi
    continue
  fi

  # Join the two extracts on benchmark name and compute deltas in awk.
  result="$(
    { extract "$base_file" | sed 's/^/B\t/'; extract "$cand_file" | sed 's/^/C\t/'; } |
    awk -F'\t' -v suite="$suite" -v thr="$THRESHOLD" -v gate="$gate" '
      # Keep the per-name MINIMUM cpu time: with --benchmark_repetitions
      # each repetition is one record, and min-of-N is robust to the CPU
      # steal / noisy-neighbor spikes that wash out means on shared boxes.
      $1 == "B" { if (!($2 in base) || $3 < base[$2]) base[$2] = $3 }
      $1 == "C" { if (!($2 in cand) || $3 < cand[$2]) cand[$2] = $3 }
      END {
        bad = 0; n = 0
        # Surface candidate-only benchmarks so a new bench outside the
        # committed baseline is visible instead of silently uncompared.
        for (name in cand) {
          if (!(name in base)) {
            printf "%-12s %-34s %12s %12.0f %9s  %s\n", suite, name, "-", cand[name], "-", "new (refresh baseline)"
          }
        }
        for (name in base) {
          if (!(name in cand)) {
            # A tier-1 benchmark that vanished from the run must fail.
            if (gate == "yes") {
              printf "%-12s %-34s %12.0f %12s %9s  %s\n", suite, name, base[name], "-", "-", "MISSING (tier-1 -> FAIL)"
              bad++
            } else {
              printf "%-12s %-34s %12.0f %12s %9s  %s\n", suite, name, base[name], "-", "-", "missing (not gated)"
            }
            continue
          }
          n++
          d = base[name] > 0 ? (cand[name] - base[name]) / base[name] * 100 : 0
          verdict = "ok"
          if (d > thr) verdict = gate == "yes" ? "REGRESSION" : "slower (not gated)"
          if (d > thr && gate == "yes") bad++
          printf "%-12s %-34s %12.0f %12.0f %+9.1f  %s\n", suite, name, base[name], cand[name], d, verdict
        }
        printf "#%d %d\n", bad, n
      }'
  )"
  summary="$(printf '%s\n' "$result" | tail -1)"
  printf '%s\n' "$result" | sed '$d'
  failures=$((failures + $(printf '%s' "$summary" | cut -c2- | cut -d' ' -f1)))
  compared=$((compared + $(printf '%s' "$summary" | cut -d' ' -f2)))
done

# Intra-suite ratio gate for the flight recorder (DESIGN.md §12): in the
# *candidate* run, the ring-mode row must stay within THRESHOLD% of the
# off-mode row.  A ratio within one run is robust to machine speed, where
# the absolute baseline diff above is not, so this is the gate that pins
# "tracing is cheap" rather than "this machine is fast".
trace_file="$CAND_DIR/BENCH_trace_overhead.json"
if [ -f "$trace_file" ]; then
  ratio_verdict="$(extract "$trace_file" | awk -F'\t' -v thr="$THRESHOLD" '
    $1 ~ /^BM_TraceOff/  { if (!off  || $2 < off)  off  = $2 }
    $1 ~ /^BM_TraceRing/ { if (!ring || $2 < ring) ring = $2 }
    END {
      if (!off || !ring) { print "INCOMPLETE"; exit }
      d = (ring - off) / off * 100
      printf "%.1f %s\n", d, (d > thr ? "FAIL" : "ok")
    }')"
  case "$ratio_verdict" in
    INCOMPLETE)
      echo "## trace_overhead: off/ring rows missing from candidate (FAIL)"
      failures=$((failures + 1)) ;;
    *FAIL)
      echo "## trace_overhead: ring is ${ratio_verdict% FAIL}% over off (limit ${THRESHOLD}%) -> FAIL"
      failures=$((failures + 1)) ;;
    *)
      echo "## trace_overhead: ring overhead ${ratio_verdict% ok}% (limit ${THRESHOLD}%)" ;;
  esac
elif is_tier1 "trace_overhead"; then
  echo "## trace_overhead: candidate JSON missing, ring/off ratio not checked (FAIL)"
  failures=$((failures + 1))
fi

echo
if [ "$compared" -eq 0 ]; then
  echo "no comparable benchmarks found" >&2
  exit 2
fi
if [ "$failures" -gt 0 ]; then
  echo "FAIL: $failures tier-1 benchmark(s) regressed more than ${THRESHOLD}% (of $compared compared)"
  exit 1
fi
echo "OK: no tier-1 regression above ${THRESHOLD}% ($compared benchmarks compared)"
