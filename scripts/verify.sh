#!/usr/bin/env bash
# Tier-1 verification: configure (default options: -Wall -Wextra, no
# sanitizers), build everything, run the full CTest suite (tier1 gtest
# cases + example smoke tests).  Mirrors the ROADMAP tier-1 command.
#
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" --no-tests=error

# A missing GTest only *warns* at configure time; make sure the tier-1
# suites were actually registered and ran, not just the example smokes.
tier1_count="$(ctest --test-dir "$BUILD_DIR" -L tier1 -N | sed -n 's/^Total Tests: //p')"
if [ -z "$tier1_count" ] || [ "$tier1_count" -eq 0 ]; then
  echo "error: no tier1 tests registered (GTest missing at configure time?)" >&2
  exit 1
fi
echo "tier1 tests registered: $tier1_count"
