#!/usr/bin/env bash
# Run the bench suite and collect machine-readable results: one
# BENCH_<name>.json per bench binary (see DESIGN.md §4), the artifact
# perf PRs diff against.
#
# Usage: scripts/run_benches.sh [-o outdir] [-f name-filter] [extra bench args...]
#   -o outdir       where BENCH_*.json files land (default: bench_results)
#   -f name-filter  only run bench binaries whose name matches this
#                   shell pattern (e.g. -f rtree_ops)
# Extra args are forwarded to every bench binary (e.g.
# --benchmark_filter=BM_RtreeInsert).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="bench_results"
FILTER="*"

while [ $# -gt 0 ]; do
  case "$1" in
    -o) OUT_DIR="$2"; shift 2 ;;
    -f) FILTER="*$2*"; shift 2 ;;
    --) shift; break ;;
    --*) break ;;  # start of forwarded bench args
    *) echo "usage: $0 [-o outdir] [-f name-filter] [extra bench args...]" >&2
       exit 2 ;;
  esac
done

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "bench binaries not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
ran=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  case "$name" in
    $FILTER) ;;
    *) continue ;;
  esac
  echo "=== $name ==="
  "$bin" --json_out="$OUT_DIR/BENCH_${name#bench_}.json" "$@"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no bench binary matched filter '$FILTER'" >&2
  exit 1
fi
echo
echo "wrote $ran JSON file(s) to $OUT_DIR/"
