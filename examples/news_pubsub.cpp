// Domain scenario: a stock-alert service on the broker API.
//
// Traders subscribe with predicate filters over (price, volume) — the
// named-attribute front end of §2.1 — e.g. "price < 120 AND volume >= 5000".
// A trader may hold several filters (the broker maps each to one DR-tree
// subscriber and de-duplicates deliveries).  Quotes are published as
// events; the overlay delivers each quote to every matching trader with
// no false negatives.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "pubsub/broker.h"
#include "spatial/schema.h"

int main() {
  using namespace drt;
  using spatial::op;

  // Attribute schema: quotes carry a price and a volume.
  spatial::schema quotes({"price", "volume"});

  pubsub::broker_config cfg;
  cfg.dr.workspace = geo::make_rect2(0, 0, 1000, 20000);
  cfg.dr.min_children = 2;
  cfg.dr.max_children = 4;
  pubsub::broker b(cfg);

  struct trader {
    std::string name;
    std::vector<std::vector<spatial::predicate>> filters;
  };
  const std::vector<trader> traders = {
      {"alice (bargains + penny stocks)",
       {{{"price", op::lt, 50}},
        {{"price", op::lt, 5}, {"volume", op::ge, 100}}}},
      {"bob (mid-caps)",
       {{{"price", op::ge, 40}, {"price", op::le, 120},
         {"volume", op::ge, 1000}}}},
      {"carol (volume spikes)", {{{"volume", op::gt, 8000}}}},
      {"erin (blue chips)",
       {{{"price", op::ge, 100}, {"price", op::le, 500}}}},
      {"frank (everything)", {{}}},
      {"grace (quiet market)",
       {{{"volume", op::lt, 500}, {"price", op::le, 200}}}},
  };

  std::cout << "== Traders subscribing (multi-filter clients) ==\n";
  std::map<pubsub::client_id, std::string> names;
  std::vector<pubsub::client_id> ids;
  for (const auto& t : traders) {
    const auto c = b.add_client();
    names[c] = t.name;
    ids.push_back(c);
    for (const auto& f : t.filters) {
      const auto rect = quotes.compile(f);
      b.subscribe(c, rect);
      std::cout << "  " << t.name << "  ->  " << rect.to_string() << "\n";
    }
  }
  b.stabilize();
  std::cout << "overlay legal: " << (b.overlay_legal() ? "yes" : "no")
            << "\n";

  b.set_delivery_callback([&](pubsub::client_id c, const spatial::event& e) {
    std::cout << "      -> delivered to "
              << names[c].substr(0, names[c].find(' ')) << " (event "
              << e.id << ")\n";
  });

  struct quote {
    const char* ticker;
    double price;
    double volume;
  };
  const std::vector<quote> tape = {
      {"ACME", 42.0, 1200},  {"INIT", 3.2, 450},   {"HUGE", 150.0, 9500},
      {"MIDL", 85.0, 2500},  {"PENY", 1.1, 150},   {"BLUE", 320.0, 700},
      {"SPIK", 65.0, 12000}, {"CALM", 180.0, 300},
  };

  std::cout << "\n== Publishing the quote tape ==\n";
  std::size_t missed_total = 0;
  for (const auto& q : tape) {
    const auto value =
        quotes.make_event({{"price", q.price}, {"volume", q.volume}});
    std::cout << "  " << q.ticker << " (price " << q.price << ", volume "
              << q.volume << "): " << std::flush;
    const auto out = b.publish(ids[static_cast<std::size_t>(q.price) %
                                   ids.size()],
                               value);
    std::cout << out.matching_clients << " matching, " << out.notified.size()
              << " notified, " << out.client_false_negatives << " missed, "
              << out.messages << " msgs\n";
    missed_total += out.client_false_negatives;
  }

  if (missed_total != 0) {
    std::cerr << "BUG: a matching trader missed a quote!\n";
    return 1;
  }
  std::cout << "\nEvery matching trader received every quote "
               "(zero false negatives).\n";
  return 0;
}
