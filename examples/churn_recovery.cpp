// Self-stabilization demo: build a healthy DR-tree, then hit it with a
// combined disaster — crash a third of the peers (including the root) and
// corrupt the memory of half the survivors — and watch the CHECK_*
// modules repair the overlay round by round until the configuration is
// legitimate again (Definition 3.2 / Lemma 3.6).
#include <iostream>

#include "analysis/harness.h"
#include "drtree/checker.h"
#include "drtree/corruptor.h"

int main() {
  using namespace drt;

  analysis::harness_config hc;
  hc.net.seed = 2027;
  analysis::testbed tb(hc);

  std::cout << "building a 60-peer DR-tree... " << std::flush;
  tb.populate(60);
  tb.converge();
  std::cout << "legal: " << (tb.legal() ? "yes" : "no") << "\n";

  // Disaster 1: crash 20 peers, root included.
  auto live = tb.overlay().live_peers();
  const auto root = tb.overlay().current_root();
  tb.overlay().crash(root);
  std::size_t crashed = 1;
  for (const auto p : live) {
    if (crashed >= 20) break;
    if (p != root && crashed < 20) {
      tb.overlay().crash(p);
      ++crashed;
    }
  }
  std::cout << "crashed " << crashed << " peers (root " << root
            << " included)\n";

  // Disaster 2: scramble the survivors' memories.
  overlay::corruptor vandal(tb.overlay(), 4242);
  const auto mutations = vandal.corrupt(overlay::uniform_corruption(0.5));
  std::cout << "corrupted survivor state with " << mutations
            << " mutations\n\n";

  std::cout << "round  violations  roots  reachable/live\n";
  std::cout << "-----  ----------  -----  --------------\n";
  int converged_at = -1;
  for (int round = 0; round < 120; ++round) {
    const auto report = overlay::checker(tb.overlay()).check();
    std::cout.width(5);
    std::cout << round << "  ";
    std::cout.width(10);
    std::cout << report.violations.size() << "  ";
    std::cout.width(5);
    std::cout << report.roots << "  ";
    std::cout.width(9);
    std::cout << report.reachable << "/" << report.live_peers << "\n";
    if (report.legal()) {
      converged_at = round;
      break;
    }
    tb.overlay().advance(tb.config().dr.stabilize_period);
    tb.overlay().settle();
  }

  if (converged_at < 0) {
    std::cout << "\ndid not converge within the round budget\n";
    return 1;
  }
  std::cout << "\nconverged to a legitimate configuration after "
            << converged_at << " stabilization rounds\n";

  // The repaired overlay still disseminates correctly.
  const auto acc = tb.publish_sweep(100, workload::event_family::matching);
  std::cout << "post-recovery sweep: " << acc.events << " events, "
            << acc.false_negatives << " false negatives, fp rate "
            << acc.fp_rate() << "\n";
  return acc.false_negatives == 0 ? 0 : 1;
}
