// Self-stabilization demo on the engine API: the canned
// massacre_then_heal scenario — build a healthy DR-tree, crash a third of
// the peers (root included), corrupt the memory of half the survivors,
// and watch the CHECK_* modules repair the overlay round by round until
// the configuration is legitimate again (Definition 3.2 / Lemma 3.6).
//
// The whole disaster is one declarative timeline executed by
// scenario_runner; the round-by-round table hooks the runner's converge
// observer.
#include <iostream>

#include "drtree/checker.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"

int main() {
  using namespace drt;

  engine::overlay_backend_config bc;
  bc.net.seed = 2027;
  engine::drtree_backend backend(bc);

  engine::runner_config rc;
  rc.on_converge_round = [&backend](int round, bool) {
    const auto report = overlay::checker(backend.overlay()).check();
    std::cout.width(5);
    std::cout << round << "  ";
    std::cout.width(10);
    std::cout << report.violations.size() << "  ";
    std::cout.width(5);
    std::cout << report.roots << "  ";
    std::cout.width(9);
    std::cout << report.reachable << "/" << report.live_peers << "\n";
  };
  engine::scenario_runner runner(backend, rc);

  const auto sc = engine::canned::massacre_then_heal(
      /*n=*/60, /*crash_fraction=*/1.0 / 3, /*corruption=*/0.5,
      /*seed=*/4242);
  std::cout << "running scenario '" << sc.name << "' ("
            << sc.timeline.size() << " phases) on backend '"
            << backend.name() << "'\n\n";
  std::cout << "round  violations  roots  reachable/live\n";
  std::cout << "-----  ----------  -----  --------------\n";

  const auto rec = runner.run(sc);

  std::cout << "\n";
  rec.to_table().print(std::cout);

  const auto* heal = rec.last("converge_until_legal");
  const auto* sweep = rec.last("publish_sweep");
  if (heal == nullptr || heal->rounds < 0) {
    std::cout << "\ndid not converge within the round budget\n";
    return 1;
  }
  std::cout << "\nconverged to a legitimate configuration after "
            << heal->rounds << " stabilization rounds\n";
  std::cout << "post-recovery sweep: " << sweep->events << " events, "
            << sweep->false_negatives << " false negatives\n";
  return sweep->false_negatives == 0 ? 0 : 1;
}
