// Quickstart: the paper's running example end to end.
//
//  1. The eight sample subscriptions of Fig. 1 and their containment
//     graph (Fig. 1, right).
//  2. A classic R-tree over the same filters (Figs. 2/3).
//  3. The DR-tree overlay via the engine's scenario builder: join all
//     eight subscribers declaratively, show the levels (Fig. 4), publish
//     the four sample events and report exactly who received each one
//     (the §3 dissemination walkthrough).
#include <cstdio>
#include <iostream>

#include "drtree/checker.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "rtree/rtree.h"
#include "spatial/containment.h"
#include "spatial/sample.h"

int main() {
  using namespace drt;

  const auto subs = spatial::sample_subscriptions();
  const auto labels = spatial::sample_labels();

  std::cout << "== Sample subscriptions (Fig. 1) ==\n";
  for (std::size_t i = 0; i < subs.size(); ++i) {
    std::cout << "  " << labels[i] << " = " << subs[i].filter.to_string()
              << "\n";
  }

  std::cout << "\n== Containment graph (Fig. 1, right) ==\n";
  spatial::containment_graph graph(subs);
  std::cout << graph.to_string(labels);

  std::cout << "\n== Classic R-tree over the same filters (Figs. 2/3) ==\n";
  rtree::rtree_config rc;
  rc.min_fill = 1;
  rc.max_fill = 3;
  rtree::rtree2 index(rc);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    index.insert(subs[i].filter, i + 1);
  }
  const auto stats = index.stats();
  std::cout << "  " << subs.size() << " filters -> height " << stats.height
            << ", " << stats.nodes << " nodes (" << stats.leaves
            << " leaves), " << stats.splits << " splits\n";

  std::cout << "\n== DR-tree overlay (Fig. 4) ==\n";
  engine::overlay_backend_config bc;
  bc.dr.min_children = 2;
  bc.dr.max_children = 4;
  bc.dr.workspace = spatial::sample_workspace();
  engine::drtree_backend backend(bc);
  engine::scenario_runner runner(backend);

  // The paper's walkthrough as a declarative scenario: subscribe the
  // eight filters of Fig. 1 in order, then converge to a legitimate
  // configuration.
  std::vector<spatial::box> filters;
  for (const auto& s : subs) filters.push_back(s.filter);
  runner.run(engine::scenario::make("quickstart")
                 .subscribe(filters)
                 .converge()
                 .build());

  const auto ids = backend.active();
  auto& overlay = backend.overlay();
  const auto report = overlay::checker(overlay).check(
      /*check_containment=*/true);
  std::cout << "  legal configuration: " << (report.legal() ? "yes" : "no")
            << ", height " << report.height << ", root peer "
            << labels[overlay.current_root() -
                      static_cast<spatial::peer_id>(ids.front())]
            << "\n";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& peer = overlay.peer(static_cast<spatial::peer_id>(ids[i]));
    std::cout << "  " << labels[i] << " active at heights 0.." << peer.top();
    if (peer.top() > 0) {
      std::cout << " (children at top:";
      for (const auto c : peer.inst(peer.top()).children) {
        std::cout << ' ' << labels[c - static_cast<spatial::peer_id>(
                                           ids.front())];
      }
      std::cout << ")";
    }
    std::cout << "\n";
  }
  std::cout << "  weak containment violations: " << report.weak_violations
            << " of " << report.containment_pairs << " contained pairs\n";

  std::cout << "\n== Publishing the sample events (a..d) ==\n";
  const auto events = spatial::sample_events();
  const char* names = "abcd";
  for (std::size_t e = 0; e < events.size(); ++e) {
    // The paper's walkthrough publishes `a` from S2; publish everything
    // from S2 for continuity.  backend::publish normalizes the accuracy
    // accounting the same way every other engine experiment sees it.
    const auto r = backend.publish(ids[1], events[e].value);
    std::cout << "  event " << names[e] << " at "
              << events[e].value.to_string() << ": " << r.interested
              << " interested, " << r.delivered << " delivered, "
              << r.false_positives << " false positives, "
              << r.false_negatives << " false negatives, " << r.messages
              << " messages\n";
  }

  std::cout << "\n== Distributed range search ==\n";
  // §1: the balanced overlay doubles as a spatial index; find every
  // subscription intersecting a query window, in O(log N) routing.
  const auto window = geo::make_rect2(20, 40, 45, 75);
  const auto sr = overlay.search_and_drain(
      static_cast<spatial::peer_id>(ids[6]), window);  // from S7
  std::cout << "  query " << window.to_string() << " from S7 -> hits:";
  for (const auto hit : sr.hits) {
    std::cout << ' '
              << labels[hit - static_cast<spatial::peer_id>(ids.front())];
  }
  std::cout << "  (" << sr.messages << " messages, " << sr.false_negatives
            << " missed)\n";

  std::cout << "\nNo subscriber missed an event it subscribed to "
               "(zero false negatives by construction).\n";
  return 0;
}
