// Service-mode smoke example (DESIGN.md §10, README "Running the
// daemon"): spawn the drtd service in-process on an ephemeral port, talk
// to it with rpc::client, and show the subscribe / publish / event-push
// / disconnect-churn lifecycle end to end.
//
// Doubles as a CTest smoke test (label `examples`), so the whole
// socket path — event loop, wire codec, ownership cleanup — must work
// for the suite to stay green.
#include <chrono>
#include <cstdio>
#include <thread>

#include "geometry/rect.h"
#include "rpc/client.h"
#include "spatial/types.h"
#include "rpc/service.h"
#include "util/expect.h"

int main() {
  // An ephemeral-port service with the wall-clock stabilizer on a
  // 50 ms cadence, hosted on its own thread.
  drt::rpc::service_config config;
  config.stabilize_every_ms = 50;
  drt::rpc::service service(config);
  std::thread daemon([&service] { service.run(); });
  std::printf("serving on 127.0.0.1:%u\n", service.port());

  {
    drt::rpc::client alice(service.port());
    drt::rpc::client bob(service.port());
    DRT_ENSURE(alice.ok() && bob.ok());

    // Alice watches the north-east quadrant, Bob the full workspace.
    const auto ne = drt::geo::make_rect2(500, 500, 1000, 1000);
    const auto all = drt::geo::make_rect2(0, 0, 1000, 1000);
    const auto a = alice.subscribe(ne);
    const auto b = bob.subscribe(all);
    DRT_ENSURE(alice.alive(a) && bob.alive(b));
    std::printf("subscribed: alice=%llu bob=%llu, population=%llu\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(alice.stat().population));

    // Bob publishes into Alice's quadrant: both filters match.
    const auto report = bob.publish(b, drt::spatial::pt{{750.0, 750.0}});
    DRT_ENSURE(report.ok == 1);
    DRT_ENSURE(report.interested == 2);
    DRT_ENSURE(report.false_negatives == 0);
    std::printf("publish(750,750): interested=%llu delivered=%llu "
                "messages=%llu\n",
                static_cast<unsigned long long>(report.interested),
                static_cast<unsigned long long>(report.delivered),
                static_cast<unsigned long long>(report.messages));

    // The publish reply already drained the overlay, so Bob's own
    // notification arrived with it; Alice sees hers on her next RPC.
    DRT_ENSURE(alice.ping());
    std::printf("pushes: alice=%zu bob=%zu\n", alice.events().size(),
                bob.events().size());
    DRT_ENSURE(!bob.events().empty());

    // Alice unsubscribes cleanly; Bob just disconnects — the daemon
    // unsubscribes his filter through the controlled-leave path.
    DRT_ENSURE(alice.unsubscribe(a));
  }

  // Bob's EOF races with shutdown; watch through a monitor connection
  // until the daemon has processed his departure.
  {
    drt::rpc::client monitor(service.port());
    while (monitor.ok() && monitor.stat().population != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    DRT_ENSURE(monitor.ok());
  }

  service.stop();
  daemon.join();
  const auto& stats = service.stats();
  std::printf("daemon stats: %llu conns, %llu frames, %llu pushed, "
              "%llu disconnect unsubscribes\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.events_pushed),
              static_cast<unsigned long long>(stats.disconnect_unsubscribes));
  DRT_ENSURE(stats.disconnect_unsubscribes == 1);  // bob's abrupt exit
  DRT_ENSURE(service.backend().population() == 0);
  std::printf("ok\n");
  return 0;
}
