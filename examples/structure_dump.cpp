// Structure dump: builds a DR-tree from a synthetic workload and prints
// the logical level structure (Fig. 4) and communication-graph statistics
// (Fig. 5), plus the legality report.
//
// Usage: structure_dump [N] [family] [m] [M] [dot-prefix]
//   N       peer count                      (default 64)
//   family  uniform|clustered|zipf|nested|mixed  (default uniform)
//   m, M    degree bounds                   (default 2, 6)
//   dot-prefix  when given, writes <prefix>_instances.dot and
//               <prefix>_peers.dot (Graphviz renderings of Figs. 4/5)
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>

#include "analysis/harness.h"
#include "analysis/models.h"
#include "drtree/checker.h"
#include "drtree/dot.h"

namespace {

drt::workload::subscription_family parse_family(const char* text) {
  using drt::workload::subscription_family;
  for (const auto f : drt::workload::all_subscription_families()) {
    if (std::strcmp(text, to_string(f)) == 0) return f;
  }
  std::cerr << "unknown family '" << text << "', using uniform\n";
  return subscription_family::uniform;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const auto family = argc > 2
                          ? parse_family(argv[2])
                          : workload::subscription_family::uniform;
  const std::size_t m = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;
  const std::size_t big_m = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 6;

  analysis::harness_config hc;
  hc.family = family;
  hc.dr.min_children = m;
  hc.dr.max_children = big_m;
  analysis::testbed tb(hc);
  tb.populate(n);
  const int rounds = tb.converge();

  const auto report = tb.report();
  std::cout << "DR-tree over " << n << " '" << to_string(family)
            << "' subscriptions (m=" << m << ", M=" << big_m << ")\n";
  std::cout << "converged after " << rounds << " stabilization rounds; legal: "
            << (report.legal() ? "yes" : "no") << "\n\n";

  // Logical levels (Fig. 4): which peers are active per height.
  const auto root = tb.overlay().current_root();
  std::map<std::size_t, std::vector<spatial::peer_id>> by_height;
  std::size_t tree_height = 0;
  for (const auto p : tb.overlay().live_peers()) {
    const auto& peer = tb.overlay().peer(p);
    tree_height = std::max(tree_height, peer.top());
    for (const auto h : peer.instance_heights()) by_height[h].push_back(p);
  }
  std::cout << "logical levels (paper level l = " << tree_height
            << " - height):\n";
  for (std::size_t h = tree_height + 1; h-- > 0;) {
    const auto& peers = by_height[h];
    std::cout << "  height " << h << " (" << peers.size() << " instances)";
    if (peers.size() <= 16) {
      std::cout << ":";
      for (const auto p : peers) {
        std::cout << ' ' << p << (p == root && h == tree_height ? "*" : "");
      }
    }
    std::cout << "\n";
  }

  // Communication graph (Fig. 5): neighbor = parent or child somewhere.
  std::size_t edges = 0;
  std::size_t max_degree = 0;
  for (const auto p : tb.overlay().live_peers()) {
    const auto& peer = tb.overlay().peer(p);
    std::size_t degree = 0;
    for (const auto h : peer.instance_heights()) {
      const auto& ins = peer.inst(h);
      for (const auto c : ins.children) {
        if (c != p) ++degree;
      }
      if (h == peer.top() && ins.parent != p) ++degree;
    }
    edges += degree;
    max_degree = std::max(max_degree, degree);
  }
  std::cout << "\ncommunication graph (Fig. 5): " << edges / 2
            << " undirected edges, max peer degree " << max_degree << "\n";

  std::cout << "\nshape vs Lemma 3.1:\n";
  std::cout << "  height " << report.height << "  (log_m N = "
            << analysis::predicted_height(n, m) << ")\n";
  std::cout << "  max per-peer links " << report.max_peer_links
            << "  (O(M log^2 N / log m) = "
            << analysis::predicted_memory(n, m, big_m) << ")\n";
  std::cout << "  interior degree avg " << report.avg_interior_children
            << ", max " << report.max_interior_children << " (M=" << big_m
            << ")\n";

  if (argc > 5) {
    const std::string prefix = argv[5];
    std::ofstream(prefix + "_instances.dot")
        << overlay::to_dot_instances(tb.overlay());
    std::ofstream(prefix + "_peers.dot")
        << overlay::to_dot_peers(tb.overlay());
    std::cout << "\nwrote " << prefix << "_instances.dot and " << prefix
              << "_peers.dot\n";
  }

  if (!report.legal()) {
    std::cout << "\nviolations:\n";
    for (const auto& v : report.violations) std::cout << "  " << v << "\n";
    return 1;
  }
  return 0;
}
