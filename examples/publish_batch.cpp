// Batched publication (DESIGN.md §9) end to end:
//
//  1. Build a DR-tree population with clustered interest via the
//     engine's declarative scenario builder, using the publish_batch
//     phase: events travel in shared multi-publish envelopes that route
//     the tree once and split only where children's summaries diverge.
//  2. Publish the same number of events scalar (one envelope each) and
//     batched (64 per envelope) through the backend, and compare the
//     network cost per event at identical delivery accuracy.
//  3. Flip on subtree summaries (occupancy grids over the instance
//     MBRs) and show the additional routing reduction.
#include <cstdio>
#include <iostream>

#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "workload/workload.h"

int main() {
  using namespace drt;

  // One declarative timeline: populate, converge, then a batched sweep.
  // The runner draws publishers and event values from the scenario seed,
  // so this run is bit-reproducible.
  const auto sc = engine::scenario::make("publish_batch")
                      .seed(11)
                      .family(workload::subscription_family::clustered)
                      .populate(128)
                      .converge()
                      .publish_batch(/*count=*/256, /*batch=*/32)
                      .build();

  engine::overlay_backend_config cfg;
  cfg.net.seed = 11;
  engine::drtree_backend backend(cfg);
  engine::scenario_runner runner(backend);
  const auto rec = runner.run(sc);
  const auto* row = rec.last("publish_batch");
  if (row == nullptr || row->false_negatives != 0) {
    std::cerr << "batched sweep lost events\n";
    return 1;
  }
  std::cout << "== Scenario phase: 256 events in batches of 32 ==\n"
            << "  deliveries " << row->deliveries << ", false negatives "
            << row->false_negatives << " (exactness preserved)\n";

  // Scalar vs batched vs batched+summaries, same events each time.
  std::cout << "\n== Messages per event, 128 peers, 256 events ==\n";
  for (const bool summaries : {false, true}) {
    engine::overlay_backend_config c2;
    c2.net.seed = 11;
    c2.dr.summary =
        summaries ? overlay::summary_mode::both : overlay::summary_mode::mbr;
    engine::drtree_backend be(c2);
    engine::runner_config rc;
    rc.workload.family = workload::subscription_family::clustered;
    rc.workload.seed = 11;
    engine::scenario_runner r(be, rc);
    r.populate(128);
    r.converge();
    const auto scalar = r.publish_sweep(256);
    const auto batched = r.publish_batch(256, 64);
    std::printf(
        "  summary=%-4s scalar %.2f msgs/event | batch=64 %.2f msgs/event "
        "(fn %zu/%zu)\n",
        summaries ? "both" : "mbr",
        static_cast<double>(scalar.messages) /
            static_cast<double>(scalar.events),
        static_cast<double>(batched.messages) /
            static_cast<double>(batched.events),
        scalar.false_negatives, batched.false_negatives);
    if (scalar.false_negatives != 0 || batched.false_negatives != 0) {
      std::cerr << "sweep lost events\n";
      return 1;
    }
    if (batched.messages >= scalar.messages) {
      std::cerr << "batching did not reduce messages\n";
      return 1;
    }
  }
  std::cout << "\nBatches amortize the descent; summaries prune the dead "
               "space the MBRs admit.\n";
  return 0;
}
