// Microbenchmarks of the sequential R-tree substrate (timings, not a
// paper table): insert / point query / erase throughput per split policy.
// These are true google-benchmark timing loops; the experiment benches
// (E4-E15) carry the paper-series tables.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rtree/rtree.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace {

using drt::rtree::split_method;

std::vector<drt::spatial::box> dataset(std::size_t n, std::uint64_t seed) {
  drt::util::rng rng(seed);
  drt::workload::subscription_params params;
  params.workspace = drt::geo::make_rect2(0, 0, 1000, 1000);
  return drt::workload::make_subscriptions(
      drt::workload::subscription_family::uniform, n, rng, params);
}

void BM_RtreeInsert(benchmark::State& state) {
  const auto method = static_cast<split_method>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto rects = dataset(n, 7);
  drt::rtree::rtree_config rc;
  rc.method = method;
  rc.rstar_reinsert = method == split_method::rstar;
  for (auto _ : state) {
    drt::rtree::rtree2 index(rc);
    for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RtreePointQuery(benchmark::State& state) {
  const auto method = static_cast<split_method>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto rects = dataset(n, 11);
  drt::rtree::rtree_config rc;
  rc.method = method;
  drt::rtree::rtree2 index(rc);
  for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
  drt::util::rng rng(13);
  for (auto _ : state) {
    drt::geo::point2 p{{rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)}};
    benchmark::DoNotOptimize(index.search_point(p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RtreeBulkLoad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rects = dataset(n, 23);
  std::vector<std::pair<drt::spatial::box, std::uint64_t>> items;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    items.emplace_back(rects[i], i);
  }
  for (auto _ : state) {
    auto t = drt::rtree::rtree2::bulk_load(items);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RtreeErase(benchmark::State& state) {
  const auto method = static_cast<split_method>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto rects = dataset(n, 17);
  drt::rtree::rtree_config rc;
  rc.method = method;
  for (auto _ : state) {
    state.PauseTiming();
    drt::rtree::rtree2 index(rc);
    for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
    state.ResumeTiming();
    for (std::size_t i = 0; i < rects.size(); i += 2) {
      benchmark::DoNotOptimize(index.erase(rects[i], i));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n / 2));
}

}  // namespace

BENCHMARK(BM_RtreeInsert)
    ->ArgsProduct({{0, 1, 2}, {1000, 10000}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtreePointQuery)
    ->ArgsProduct({{0, 1, 2}, {10000}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RtreeBulkLoad)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtreeErase)
    ->ArgsProduct({{0, 1, 2}, {2000}})
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E3: sequential R-tree substrate microbenchmarks",
    "Insert / point-query / bulk-load / erase throughput per split "
    "policy; timing loops only, no paper-series table.")
