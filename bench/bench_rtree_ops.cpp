// Microbenchmarks of the sequential R-tree substrate (timings, not a
// paper table): insert / point query / erase throughput per split policy.
// These are true google-benchmark timing loops; the experiment benches
// (E4-E15) carry the paper-series tables.
//
// Benchmarks are registered with the split policy spelled out in the
// name (BM_RtreeInsert/quadratic/1000, not an opaque /1/1000 range
// argument), so every JSON row is self-describing and
// scripts/compare_benches.sh can gate per-policy rows by name.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "rtree/rtree.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace {

using drt::rtree::split_method;

std::vector<drt::spatial::box> dataset(std::size_t n, std::uint64_t seed) {
  drt::util::rng rng(seed);
  drt::workload::subscription_params params;
  params.workspace = drt::geo::make_rect2(0, 0, 1000, 1000);
  return drt::workload::make_subscriptions(
      drt::workload::subscription_family::uniform, n, rng, params);
}

void BM_RtreeInsert(benchmark::State& state, split_method method,
                    std::size_t n) {
  const auto rects = dataset(n, 7);
  drt::rtree::rtree_config rc;
  rc.method = method;
  rc.rstar_reinsert = method == split_method::rstar;
  for (auto _ : state) {
    drt::rtree::rtree2 index(rc);
    for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RtreePointQuery(benchmark::State& state, split_method method,
                        std::size_t n) {
  const auto rects = dataset(n, 11);
  drt::rtree::rtree_config rc;
  rc.method = method;
  drt::rtree::rtree2 index(rc);
  for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
  drt::util::rng rng(13);
  std::vector<std::uint64_t> hits;  // caller-owned, reused every query
  for (auto _ : state) {
    drt::geo::point2 p{{rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)}};
    index.search_point(p, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RtreePointQueryVisitor(benchmark::State& state, split_method method,
                               std::size_t n) {
  // The fully allocation-free entry point: no result buffer at all, the
  // visitor folds the matches as they stream out of the slot sweeps.
  const auto rects = dataset(n, 11);
  drt::rtree::rtree_config rc;
  rc.method = method;
  drt::rtree::rtree2 index(rc);
  for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
  drt::util::rng rng(13);
  for (auto _ : state) {
    drt::geo::point2 p{{rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)}};
    std::uint64_t acc = 0;
    index.search_point(p, [&acc](std::uint64_t payload) { acc += payload; });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RtreeIntersectsQuery(benchmark::State& state, split_method method,
                             std::size_t n) {
  const auto rects = dataset(n, 19);
  drt::rtree::rtree_config rc;
  rc.method = method;
  drt::rtree::rtree2 index(rc);
  for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
  drt::util::rng rng(29);
  std::vector<std::uint64_t> hits;
  for (auto _ : state) {
    const double x = rng.uniform_real(0, 950);
    const double y = rng.uniform_real(0, 950);
    const auto q = drt::geo::make_rect2(x, y, x + 50, y + 50);
    index.search_intersects(q, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RtreeBulkLoad(benchmark::State& state, std::size_t n) {
  const auto rects = dataset(n, 23);
  std::vector<std::pair<drt::spatial::box, std::uint64_t>> items;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    items.emplace_back(rects[i], i);
  }
  for (auto _ : state) {
    auto t = drt::rtree::rtree2::bulk_load(items);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RtreeErase(benchmark::State& state, split_method method,
                   std::size_t n) {
  const auto rects = dataset(n, 17);
  drt::rtree::rtree_config rc;
  rc.method = method;
  for (auto _ : state) {
    state.PauseTiming();
    drt::rtree::rtree2 index(rc);
    for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
    state.ResumeTiming();
    for (std::size_t i = 0; i < rects.size(); i += 2) {
      benchmark::DoNotOptimize(index.erase(rects[i], i));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n / 2));
}

// Registration: one benchmark per (operation, policy, size), with the
// policy in the name so JSON rows are distinguishable.
[[maybe_unused]] const int kRegistered = [] {
  constexpr split_method kPolicies[] = {split_method::linear,
                                        split_method::quadratic,
                                        split_method::rstar};
  auto name = [](const char* op, split_method m, std::size_t n) {
    std::string s = op;
    s += '/';
    s += to_string(m);
    s += '/';
    s += std::to_string(n);
    return s;
  };
  for (const auto m : kPolicies) {
    for (const std::size_t n : {1000u, 10000u}) {
      benchmark::RegisterBenchmark(name("BM_RtreeInsert", m, n).c_str(),
                                   BM_RtreeInsert, m, n)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(name("BM_RtreePointQuery", m, 10000).c_str(),
                                 BM_RtreePointQuery, m, 10000)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        name("BM_RtreePointQueryVisitor", m, 10000).c_str(),
        BM_RtreePointQueryVisitor, m, 10000)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        name("BM_RtreeIntersectsQuery", m, 10000).c_str(),
        BM_RtreeIntersectsQuery, m, 10000)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(name("BM_RtreeErase", m, 2000).c_str(),
                                 BM_RtreeErase, m, 2000)
        ->Unit(benchmark::kMillisecond);
  }
  for (const std::size_t n : {1000u, 10000u}) {
    benchmark::RegisterBenchmark(
        ("BM_RtreeBulkLoad/" + std::to_string(n)).c_str(), BM_RtreeBulkLoad,
        n)
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

}  // namespace

DRT_BENCH_MAIN(
    "E3: sequential R-tree substrate microbenchmarks",
    "Insert / point-query / bulk-load / erase throughput per split "
    "policy; timing loops only, no paper-series table.")
