// Experiment E8 (Lemma 3.6): convergence from arbitrary memory
// corruption.
//
// Paper prediction: self-stabilization — from ANY initial configuration
// the system reaches a legitimate one in a finite number of steps.
// Expected shape: rounds-to-legal grows with the corruption rate but
// remains bounded; even 100% corruption (every peer mutated) recovers.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "drtree/corruptor.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_CorruptionStabilize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rate_pct = static_cast<std::size_t>(state.range(1));

  drt::analysis::harness_config hc;
  hc.net.seed = 53 + n + rate_pct;

  int rounds = 0;
  std::size_t mutations = 0;
  bool legal = false;
  drt::overlay::repair_stats repairs;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();

    drt::overlay::corruptor vandal(tb.overlay(), 97 + rate_pct);
    const auto before = tb.overlay().total_repairs();
    mutations = vandal.corrupt(
        drt::overlay::uniform_corruption(rate_pct / 100.0));
    rounds = tb.converge(500);
    legal = tb.legal();
    repairs = tb.overlay().total_repairs();
    // Report only the repairs attributable to this recovery.
    repairs.mbr_fixed -= before.mbr_fixed;
    repairs.own_chain_fixed -= before.own_chain_fixed;
    repairs.rejoins -= before.rejoins;
    repairs.children_discarded -= before.children_discarded;
    repairs.instances_dissolved -= before.instances_dissolved;
    repairs.cover_promotions -= before.cover_promotions;
    repairs.compactions -= before.compactions;
    repairs.redistributions -= before.redistributions;
    repairs.subtree_dissolutions -= before.subtree_dissolutions;
  }

  state.counters["rounds"] = rounds;
  state.counters["mutations"] = static_cast<double>(mutations);
  state.counters["legal"] = legal ? 1.0 : 0.0;

  results::instance().set_headers({"N", "corruption_%", "mutations",
                                   "rounds", "mbr_fix", "chain_fix",
                                   "rejoin", "discard", "promote",
                                   "compact+redist", "legal"});
  results::instance().add_row(
      {table::cell(n), table::cell(rate_pct), table::cell(mutations),
       table::cell(static_cast<std::int64_t>(rounds)),
       table::cell(repairs.mbr_fixed), table::cell(repairs.own_chain_fixed),
       table::cell(repairs.rejoins), table::cell(repairs.children_discarded),
       table::cell(repairs.cover_promotions),
       table::cell(repairs.compactions + repairs.redistributions),
       legal ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_CorruptionStabilize)
    ->ArgsProduct({{64, 256}, {5, 20, 50, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E8: stabilization from arbitrary memory corruption (Lemma 3.6)",
    "Expect every corruption rate to converge back to a legitimate "
    "configuration; rounds grow with the corruption rate.")
