// Experiment E16 (§1: the DR-tree is "suitable for performing efficient
// data storage or search"): distributed range search.
//
// Expected shape: searches are exact (no missed, no spurious results —
// the rendezvous-free analog of the R-tree guarantee), selective queries
// cost O(log N + answer size) messages rather than O(N), and the cost
// crosses over toward N only as the query covers the whole workspace.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "analysis/models.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_Search(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto side_pct = static_cast<std::size_t>(state.range(1));

  drt::analysis::harness_config hc;
  hc.net.seed = 141 + n;
  testbed tb(hc);
  tb.populate(n);
  tb.converge();

  auto& rng = tb.workload_rng();
  const auto& ws = hc.dr.workspace;
  const double side = (ws.hi[0] - ws.lo[0]) *
                      static_cast<double>(side_pct) / 100.0;

  drt::util::accumulator msgs;
  drt::util::accumulator hops;
  drt::util::accumulator answers;
  std::size_t missed = 0;
  std::size_t spurious = 0;
  const auto live = tb.overlay().live_peers();
  for (auto _ : state) {
    for (int q = 0; q < 30; ++q) {
      const double x = rng.uniform_real(ws.lo[0], ws.hi[0] - side);
      const double y = rng.uniform_real(ws.lo[1], ws.hi[1] - side);
      const auto query = drt::geo::make_rect2(x, y, x + side, y + side);
      const auto r = tb.overlay().search_and_drain(
          live[rng.index(live.size())], query);
      msgs.add(static_cast<double>(r.messages));
      hops.add(static_cast<double>(r.max_hops));
      answers.add(static_cast<double>(r.hits.size()));
      missed += r.false_negatives;
      spurious += r.false_positives;
    }
  }

  state.counters["msgs"] = msgs.mean();
  state.counters["missed"] = static_cast<double>(missed);

  results::instance().set_headers({"N", "query_side_%", "answers(mean)",
                                   "msgs(mean)", "hops(max,mean)", "missed",
                                   "spurious"});
  results::instance().add_row(
      {table::cell(n), table::cell(side_pct), table::cell(answers.mean(), 1),
       table::cell(msgs.mean(), 1), table::cell(hops.mean(), 1),
       table::cell(missed), table::cell(spurious)});
}

}  // namespace

BENCHMARK(BM_Search)
    ->ArgsProduct({{64, 256, 1024}, {2, 10, 40, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E16: distributed range search (§1 'data storage or search')",
    "Expect exact answers everywhere (missed = spurious = 0); selective "
    "queries cost ~ log N + answer size messages; full-workspace queries "
    "approach one message per peer.")
