// Shared plumbing for the experiment benches: every bench binary both
// runs google-benchmark timings and accumulates a paper-style results
// table that is printed after the benchmark report, so each binary
// regenerates "its" table/figure rows (DESIGN.md §4).
#ifndef DRT_BENCH_COMMON_H
#define DRT_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "util/table.h"

namespace drt::bench {

/// Per-binary results table.  Set the headers once, append rows from
/// inside benchmarks, print after the run.
class results {
 public:
  static results& instance() {
    static results r;
    return r;
  }

  void set_headers(std::vector<std::string> headers) {
    if (table_ == nullptr) {
      table_ = std::make_unique<util::table>(std::move(headers));
    }
  }

  void add_row(std::vector<std::string> cells) {
    if (table_ != nullptr) table_->add_row(std::move(cells));
  }

  void print(const std::string& title) const {
    if (table_ == nullptr || table_->rows() == 0) return;
    std::cout << "\n=== " << title << " ===\n";
    table_->print(std::cout);
  }

  /// Accumulated table for the JSON emitter; nullptr when no rows were
  /// ever added (pure timing benches).
  const util::table* table_ptr() const { return table_.get(); }

 private:
  std::unique_ptr<util::table> table_;
};

}  // namespace drt::bench

/// Standard bench main: description banner, google-benchmark run, the
/// accumulated experiment table, and optional --json_out=PATH emission.
/// Every bench binary must use this macro (never BENCHMARK_MAIN()), so
/// all of them accept the same flags and emit the same JSON shape.
#define DRT_BENCH_MAIN(TITLE, DESCRIPTION)                              \
  int main(int argc, char** argv) {                                     \
    return ::drt::bench::bench_main(argc, argv, TITLE, DESCRIPTION);    \
  }

#endif  // DRT_BENCH_COMMON_H
