// Shared plumbing for the experiment benches: every bench binary both
// runs google-benchmark timings and accumulates a paper-style results
// table that is printed after the benchmark report, so each binary
// regenerates "its" table/figure rows (DESIGN.md §4).
#ifndef DRT_BENCH_COMMON_H
#define DRT_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "util/table.h"

namespace drt::bench {

/// Per-binary results table.  Set the headers once, append rows from
/// inside benchmarks, print after the run.
class results {
 public:
  static results& instance() {
    static results r;
    return r;
  }

  void set_headers(std::vector<std::string> headers) {
    if (table_ == nullptr) {
      table_ = std::make_unique<util::table>(std::move(headers));
    }
  }

  void add_row(std::vector<std::string> cells) {
    if (table_ != nullptr) table_->add_row(std::move(cells));
  }

  void print(const std::string& title) const {
    if (table_ == nullptr || table_->rows() == 0) return;
    std::cout << "\n=== " << title << " ===\n";
    table_->print(std::cout);
  }

 private:
  std::unique_ptr<util::table> table_;
};

}  // namespace drt::bench

/// Standard bench main: description banner, google-benchmark run, then
/// the accumulated experiment table.
#define DRT_BENCH_MAIN(TITLE, DESCRIPTION)                                  \
  int main(int argc, char** argv) {                                        \
    std::cout << TITLE << "\n" << DESCRIPTION << "\n\n";                    \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    ::drt::bench::results::instance().print(TITLE);                        \
    return 0;                                                               \
  }

#endif  // DRT_BENCH_COMMON_H
