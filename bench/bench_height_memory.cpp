// Experiment E4 (Lemma 3.1): DR-tree height and per-peer memory vs N.
//
// Paper prediction: height O(log_m N); memory O(M log^2 N / log m) per
// peer.  Expected shape: the measured height tracks log_m N (within a
// small additive constant) and measured per-peer links stay well under
// the polylog bound while growing slowly with N.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "analysis/harness.h"
#include "analysis/models.h"
#include "bench_common.h"
#include "drtree/checker.h"
#include "rtree/rtree.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_HeightMemory(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto big_m = static_cast<std::size_t>(state.range(2));

  drt::analysis::harness_config hc;
  hc.dr.min_children = m;
  hc.dr.max_children = big_m;
  hc.net.seed = 11 + n;

  drt::overlay::check_report report;
  drt::overlay::arena_stats protocol;
  drt::rtree::rtree_stats substrate;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();
    report = tb.report();
    // Real per-peer protocol-state footprint: the instance arena reports
    // what the live dr_peer levels actually occupy (slabs + per-instance
    // heap), not a link-count estimate.
    protocol = tb.overlay().arena().stats();

    // Real substrate footprint: the sequential R-tree over the same
    // filter population reports its arena size directly
    // (rtree_stats::node_count / bytes_allocated) instead of an
    // estimate derived from link counts.  Untimed: the E4 metric is
    // overlay populate/converge, not this bookkeeping build.
    state.PauseTiming();
    std::vector<std::pair<drt::spatial::box, std::uint64_t>> items;
    tb.overlay().for_each_live([&](drt::spatial::peer_id p) {
      items.emplace_back(tb.overlay().peer(p).filter(), p);
      return true;
    });
    drt::rtree::rtree_config rc;
    rc.min_fill = m;
    rc.max_fill = big_m;
    substrate =
        drt::rtree::rtree<drt::spatial::kDims>::bulk_load(std::move(items),
                                                          rc)
            .stats();
    state.ResumeTiming();
  }

  state.counters["height"] = static_cast<double>(report.height);
  state.counters["log_m_N"] = drt::analysis::predicted_height(n, m);
  state.counters["max_links"] = static_cast<double>(report.max_peer_links);
  state.counters["bound"] = drt::analysis::predicted_memory(n, m, big_m);
  state.counters["legal"] = report.legal() ? 1.0 : 0.0;
  state.counters["rtree_bytes"] =
      static_cast<double>(substrate.bytes_allocated);
  state.counters["arena_bytes"] = static_cast<double>(protocol.total_bytes());
  state.counters["arena_bytes_per_peer"] =
      n == 0 ? 0.0
             : static_cast<double>(protocol.total_bytes()) /
                   static_cast<double>(n);

  results::instance().set_headers(
      {"N", "m", "M", "height", "log_m(N)", "max_peer_links", "memory_bound",
       "arena_bytes", "arena_B/peer", "rtree_nodes", "rtree_bytes", "legal"});
  results::instance().add_row(
      {table::cell(n), table::cell(m), table::cell(big_m),
       table::cell(report.height),
       table::cell(drt::analysis::predicted_height(n, m), 2),
       table::cell(report.max_peer_links),
       table::cell(drt::analysis::predicted_memory(n, m, big_m), 1),
       table::cell(protocol.total_bytes()),
       table::cell(static_cast<double>(protocol.total_bytes()) /
                       static_cast<double>(std::max<std::size_t>(n, 1)),
                   1),
       table::cell(substrate.node_count),
       table::cell(substrate.bytes_allocated),
       report.legal() ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_HeightMemory)
    ->ArgsProduct({{16, 64, 256, 1024}, {2}, {4}})
    ->ArgsProduct({{16, 64, 256, 1024}, {2}, {8}})
    ->ArgsProduct({{16, 64, 256, 1024}, {4}, {8}})
    ->ArgsProduct({{16, 64, 256, 1024}, {8}, {16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E4: height and memory vs N (Lemma 3.1)",
    "Expect height ~ log_m(N) + O(1) and per-peer links far below the "
    "O(M log^2 N / log m) bound.")
