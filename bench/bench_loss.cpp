// Experiment E17 (robustness beyond the paper's model): dissemination
// accuracy under lossy links.
//
// The paper's no-false-negative guarantee is structural — it assumes
// event messages are delivered.  This bench quantifies what happens when
// they are not: events dropped mid-dissemination orphan whole subtrees
// for that event.  Expected shape: FN rate grows roughly with the loss
// rate times the path length; the overlay structure itself stays legal
// (repair traffic is also lossy but retries every period).  This bounds
// the reliability a transport layer must provide to preserve the paper's
// guarantee end-to-end.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_Loss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;

  drt::analysis::harness_config hc;
  hc.net.seed = 151;
  hc.net.message_loss = loss;

  testbed::accuracy acc;
  bool legal = false;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(100);
    tb.converge(300);
    acc = tb.publish_sweep(300, drt::workload::event_family::matching);
    tb.converge(300);
    legal = tb.legal();
  }

  state.counters["fn_rate"] = acc.fn_rate();
  state.counters["fp_rate"] = acc.fp_rate();

  results::instance().set_headers({"loss_%", "fn_rate", "fp_rate",
                                   "msgs/event", "overlay_legal_after"});
  results::instance().add_row(
      {table::cell(static_cast<std::size_t>(loss * 100)),
       table::cell(acc.fn_rate(), 4), table::cell(acc.fp_rate(), 4),
       table::cell(acc.messages_per_event(), 1), legal ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_Loss)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E17: dissemination under message loss (robustness bound)",
    "Expect FN = 0 at zero loss (the paper's guarantee), FN growing "
    "~linearly with the loss rate (each event path is a chain of lossy "
    "hops), while the overlay itself stays repairable at every rate.")
