// Experiment E17 (robustness beyond the paper's model): dissemination
// accuracy under lossy links.
//
// The paper's no-false-negative guarantee is structural — it assumes
// event messages are delivered.  This bench quantifies what happens when
// they are not: events dropped mid-dissemination orphan whole subtrees
// for that event.  Expected shape: FN rate grows roughly with the loss
// rate times the path length; the overlay structure itself stays legal
// (repair traffic is also lossy but retries every period).  This bounds
// the reliability a transport layer must provide to preserve the paper's
// guarantee end-to-end.
//
// Driven through the scenario engine on an explicit net::uniform_model
// (the declarative form of the transport the legacy testbed shim
// hard-coded); the row schema is unchanged so the bench history stays
// comparable.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::util::table;

void BM_Loss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;

  drt::net::uniform_model_config net;  // default delays, swept loss
  net.loss = loss;
  const auto sc = drt::engine::scenario::make("loss")
                      .net(net)
                      .populate(100)
                      .converge(300)
                      .publish_sweep(300,
                                     drt::workload::event_family::matching)
                      .converge(300)
                      .build();

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 151;

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(drt::engine::configured_for(sc, bc));
    drt::engine::scenario_runner runner(be);
    rec = runner.run(sc);
  }

  const auto* sweep = rec.last("publish_sweep");
  const auto* heal = rec.last("converge_until_legal");
  state.counters["fn_rate"] = sweep->fn_rate();
  state.counters["fp_rate"] = sweep->fp_rate();

  results::instance().set_headers({"loss_%", "fn_rate", "fp_rate",
                                   "msgs/event", "overlay_legal_after"});
  results::instance().add_row(
      {table::cell(static_cast<std::size_t>(loss * 100)),
       table::cell(sweep->fn_rate(), 4), table::cell(sweep->fp_rate(), 4),
       table::cell(sweep->messages_per_event(), 1),
       heal->legal == 1 ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_Loss)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E17: dissemination under message loss (robustness bound)",
    "Expect FN = 0 at zero loss (the paper's guarantee), FN growing "
    "~linearly with the loss rate (each event path is a chain of lossy "
    "hops), while the overlay itself stays repairable at every rate.")
