// Service-mode throughput (DESIGN.md §10): events/sec and client-observed
// RPC latency through a drtd daemon over localhost sockets, swept over
// concurrent connections x batch size.
//
// The workload mirrors bench_publish_throughput (256 clustered sparse
// subscriptions, uniform events, the same seeds) so the two tables are
// directly comparable: the delta between them is the transport — wire
// codec, event loop, TCP round-trips — not the overlay.  Subscriptions
// are spread evenly across the publishing connections (not parked on an
// idle populator, which would never drain its pushes and trip the
// slow-consumer backpressure), and every publisher records per-RPC
// latency into its own obs::histogram; the per-thread histograms merge
// at the join barrier (the same merge semantics the sharded simulator
// uses, DESIGN.md §12) and the p50/p99/p999 columns read off the merged
// log-bucketed distribution — no sample vectors, no sorting.
//
// The table schema is bench_publish_throughput's seven columns plus
// clients/p50_us/p99_us, so compare_benches.sh gates both the same way.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "drtree/summary.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/service.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/workload.h"

namespace {

using drt::bench::results;
using drt::util::table;

constexpr std::size_t kPopulation = 256;
constexpr std::size_t kTotalEvents = 4096;

void run_net_throughput(benchmark::State& state, std::size_t clients,
                        std::size_t batch) {
  drt::rpc::service_config cfg;
  cfg.backend.net.seed = 2007;
  cfg.stabilize_every_ms = 0;  // measure the publish path, not repair
  drt::rpc::service service(cfg);
  std::thread daemon([&service] { service.run(); });

  // The same sparse clustered interest as bench_publish_throughput.
  drt::util::rng rng(99);
  drt::workload::subscription_params sp;
  sp.min_side_frac = 0.005;
  sp.max_side_frac = 0.02;
  const auto filters = drt::workload::make_subscriptions(
      drt::workload::subscription_family::clustered, kPopulation, rng, sp);

  // Connect the publishing clients and spread the population across
  // them; each publishes from its first owned subscription.
  std::vector<drt::rpc::client> conns(clients);
  std::vector<std::uint64_t> first_sub(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    if (!conns[c].connect(service.port())) {
      state.SkipWithError("connect failed");
      service.stop();
      daemon.join();
      return;
    }
  }
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const std::size_t c = i % clients;
    const auto s = conns[c].subscribe(filters[i]);
    if (i < clients) first_sub[c] = s;
  }

  // Pre-draw every event point so the measured region is pure RPC.
  const auto workspace = sp.workspace;
  std::vector<drt::spatial::pt> points(kTotalEvents);
  for (auto& p : points) {
    p = drt::workload::make_event_point(drt::workload::event_family::uniform,
                                        rng, workspace);
  }

  const std::uint64_t messages_before = conns[0].stat().messages;
  std::uint64_t deliveries = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t total_events = 0;
  drt::obs::histogram latency_us;

  for (auto _ : state) {
    std::atomic<std::uint64_t> sum_delivered{0};
    std::atomic<std::uint64_t> sum_fn{0};
    std::atomic<std::uint64_t> sum_events{0};
    std::vector<drt::obs::histogram> per_thread_us(clients);
    std::vector<std::thread> threads;
    const std::size_t share = kTotalEvents / clients;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto& conn = conns[c];
        auto& lat = per_thread_us[c];
        const std::size_t begin = c * share;
        for (std::size_t i = begin; i < begin + share; i += batch) {
          const std::size_t k = std::min(batch, begin + share - i);
          const auto t0 = std::chrono::steady_clock::now();
          const auto r =
              k == 1 ? conn.publish(first_sub[c], points[i])
                     : conn.publish_batch(first_sub[c], points.data() + i, k);
          const auto t1 = std::chrono::steady_clock::now();
          lat.record(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count() /
              1000.0);
          sum_delivered += r.delivered;
          sum_fn += r.false_negatives;
          sum_events += k;
          conn.events().clear();
        }
      });
    }
    for (auto& th : threads) th.join();
    deliveries += sum_delivered.load();
    false_negatives += sum_fn.load();
    total_events += sum_events.load();
    // The barrier merge: thread-local histograms fold into the run's
    // distribution exactly like per-shard registries at a kernel barrier.
    for (const auto& lat : per_thread_us) latency_us += lat;
  }

  const std::uint64_t messages = conns[0].stat().messages - messages_before;
  service.stop();
  daemon.join();

  const double p50 = latency_us.quantile(0.50);
  const double p99 = latency_us.quantile(0.99);
  const double p999 = latency_us.quantile(0.999);
  const double msgs_per_event =
      total_events == 0 ? 0.0
                        : static_cast<double>(messages) /
                              static_cast<double>(total_events);

  state.SetItemsProcessed(static_cast<std::int64_t>(total_events));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.counters["msgs_per_event"] = msgs_per_event;
  state.counters["false_negatives"] = static_cast<double>(false_negatives);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  state.counters["p999_us"] = p999;

  results::instance().set_headers({"N", "batch", "summary", "events",
                                   "msgs/event", "deliveries", "fn",
                                   "clients", "p50_us", "p99_us", "p999_us"});
  results::instance().add_row(
      {table::cell(kPopulation), table::cell(batch),
       std::string(drt::overlay::to_string(cfg.backend.dr.summary)),
       table::cell(total_events), table::cell(msgs_per_event, 2),
       table::cell(deliveries), table::cell(false_negatives),
       table::cell(clients), table::cell(p50, 1), table::cell(p99, 1),
       table::cell(p999, 1)});
}

void BM_NetThroughput(benchmark::State& state) {
  run_net_throughput(state, static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)));
}

}  // namespace

BENCHMARK(BM_NetThroughput)
    ->Args({1, 1})
    ->Args({1, 16})
    ->Args({4, 1})
    ->Args({4, 16})
    ->Args({16, 1})
    ->Args({16, 16})
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "Service-mode throughput: clients x batch over localhost sockets",
    "The same 256-peer clustered workload as bench_publish_throughput, "
    "served by an in-process drtd over TCP; the delta against that table "
    "is transport cost.  Expect batch = 16 to beat the scalar path and "
    "p99 latency to grow with concurrent connections (one overlay, one "
    "loop thread).")
