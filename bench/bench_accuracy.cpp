// Experiment E10 (§4 experimental claim): dissemination accuracy.
//
// Paper claim: "the DR-tree overlay helps in eliminating the false
// negatives and drastically reduces the false positives ... the false
// positive rate is in the order of 2-3% with most workloads".
// Expected shape: false negatives exactly 0 on every workload; the
// false-positive rate (probability a peer receives an event it did not
// subscribe to) in the low single-digit percent range for most
// subscription families and event distributions.
//
// Driven through the engine: one declarative scenario (populate →
// converge → publish_sweep) executed by scenario_runner on the DR-tree
// backend; the numbers come out of the metrics recorder.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::util::table;
using drt::workload::event_family;
using drt::workload::subscription_family;

void BM_Accuracy(benchmark::State& state) {
  const auto family = static_cast<subscription_family>(state.range(0));
  const auto events = static_cast<event_family>(state.range(1));
  const std::size_t n = 128;

  const auto sc = drt::engine::scenario::make("accuracy")
                      .family(family)
                      .populate(n)
                      .converge()
                      .publish_sweep(300, events)
                      .build();

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 71 + static_cast<std::uint64_t>(state.range(0)) * 7 +
                static_cast<std::uint64_t>(state.range(1));

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(bc);
    drt::engine::scenario_runner runner(be);
    rec = runner.run(sc);
  }

  const auto* sweep = rec.last("publish_sweep");
  state.counters["fp_rate"] = sweep->fp_rate();
  state.counters["false_negatives"] =
      static_cast<double>(sweep->false_negatives);
  state.counters["msgs_per_event"] = sweep->messages_per_event();

  results::instance().set_headers({"subscriptions", "events", "fp_rate",
                                   "false_negatives", "msgs/event",
                                   "deliveries", "interested"});
  results::instance().add_row(
      {to_string(family), to_string(events),
       table::cell(sweep->fp_rate(), 4),
       table::cell(sweep->false_negatives),
       table::cell(sweep->messages_per_event(), 1),
       table::cell(sweep->deliveries), table::cell(sweep->interested)});
}

}  // namespace

BENCHMARK(BM_Accuracy)
    ->ArgsProduct({{0, 1, 2, 3, 4},  // all subscription families
                   {0, 1, 2}})       // uniform / hotspot / matching events
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E10: dissemination accuracy (§4 claim: FN = 0, FP ~ 2-3%)",
    "Expect false_negatives = 0 everywhere and fp_rate in the low "
    "single-digit percent range for most workload combinations.")
