// Experiment E10 (§4 experimental claim): dissemination accuracy.
//
// Paper claim: "the DR-tree overlay helps in eliminating the false
// negatives and drastically reduces the false positives ... the false
// positive rate is in the order of 2-3% with most workloads".
// Expected shape: false negatives exactly 0 on every workload; the
// false-positive rate (probability a peer receives an event it did not
// subscribe to) in the low single-digit percent range for most
// subscription families and event distributions.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;
using drt::workload::event_family;
using drt::workload::subscription_family;

void BM_Accuracy(benchmark::State& state) {
  const auto family =
      static_cast<subscription_family>(state.range(0));
  const auto events = static_cast<event_family>(state.range(1));
  const std::size_t n = 128;

  drt::analysis::harness_config hc;
  hc.family = family;
  hc.net.seed = 71 + state.range(0) * 7 + state.range(1);

  testbed::accuracy acc;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();
    acc = tb.publish_sweep(300, events);
  }

  state.counters["fp_rate"] = acc.fp_rate();
  state.counters["false_negatives"] = static_cast<double>(acc.false_negatives);
  state.counters["msgs_per_event"] = acc.messages_per_event();

  results::instance().set_headers({"subscriptions", "events", "fp_rate",
                                   "false_negatives", "msgs/event",
                                   "deliveries", "interested"});
  results::instance().add_row(
      {to_string(family), to_string(events), table::cell(acc.fp_rate(), 4),
       table::cell(acc.false_negatives), table::cell(acc.messages_per_event(), 1),
       table::cell(acc.deliveries), table::cell(acc.interested)});
}

}  // namespace

BENCHMARK(BM_Accuracy)
    ->ArgsProduct({{0, 1, 2, 3, 4},  // all subscription families
                   {0, 1, 2}})       // uniform / hotspot / matching events
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E10: dissemination accuracy (§4 claim: FN = 0, FP ~ 2-3%)",
    "Expect false_negatives = 0 everywhere and fp_rate in the low "
    "single-digit percent range for most workload combinations.")
