// Experiment E12 (Fig. 6 ablation): root/parent election policy.
//
// The paper elects the member with the largest MBR coverage so containers
// end up above containees, preserving the containment-awareness
// properties and minimizing the false-positive area.  Expected shape:
// largest-MBR election yields the lowest FP rate and the fewest weak-
// containment violations; smallest-MBR (adversarial) is the worst;
// random sits between.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "drtree/checker.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::overlay::election_policy;
using drt::util::table;
using drt::workload::subscription_family;

void BM_RootElection(benchmark::State& state) {
  const auto policy = static_cast<election_policy>(state.range(0));
  const auto family = static_cast<subscription_family>(state.range(1));
  const std::size_t n = 100;

  drt::analysis::harness_config hc;
  hc.dr.election = policy;
  hc.family = family;
  hc.net.seed = 89 + state.range(0) * 11 + state.range(1);

  testbed::accuracy acc;
  drt::overlay::check_report report;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();
    report = tb.report(/*check_containment=*/true);
    acc = tb.publish_sweep(300, drt::workload::event_family::matching);
  }

  state.counters["fp_rate"] = acc.fp_rate();
  state.counters["weak_violations"] = static_cast<double>(report.weak_violations);

  results::instance().set_headers({"election", "workload", "fp_rate",
                                   "weak_violations", "containment_pairs",
                                   "false_negatives"});
  results::instance().add_row(
      {to_string(policy), to_string(family), table::cell(acc.fp_rate(), 4),
       table::cell(report.weak_violations),
       table::cell(report.containment_pairs),
       table::cell(acc.false_negatives)});
}

}  // namespace

BENCHMARK(BM_RootElection)
    ->ArgsProduct({{0, 1, 2},     // largest / smallest / random
                   {0, 1, 3}})    // uniform / clustered / nested
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E12: root-election ablation (Fig. 6)",
    "Expect the paper's largest-MBR election to achieve the lowest FP "
    "rate and fewest containment violations; smallest-MBR the highest.")
