// Experiment E18 (beyond the paper's model): split-brain under network
// partitions, and re-legalization after the heal.
//
// The paper's stabilization proofs assume every pair of correct peers
// can eventually exchange messages.  A partition breaks that: each side's
// failure detectors see the other side as dead, both sides re-legalize
// *internally* (two roots — split brain, the global configuration is
// illegitimate), and events published on one side orphan every interested
// subscriber on the other.  This bench measures the canned
// split_brain_heal scenario over partition width (minority fraction) and
// duration (stabilization rounds spent cut): the false-negative rate
// while partitioned (the cost of the cut), the rounds to global legality
// after the heal (the two trees merging back through root probes), and
// the post-heal false-negative rate, which the paper's guarantee says
// must return to zero.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::util::table;

void BM_PartitionStabilize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto minority_pct = static_cast<std::size_t>(state.range(1));
  const auto down_rounds = static_cast<int>(state.range(2));

  const auto sc = drt::engine::canned::split_brain_heal(
      n, static_cast<double>(minority_pct) / 100.0, down_rounds);

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 53 + n + minority_pct + static_cast<std::size_t>(down_rounds);

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(drt::engine::configured_for(sc, bc));
    drt::engine::scenario_runner runner(be);
    rec = runner.run(sc);
  }

  // Timeline rows: sweep(healthy) .. partition .. sweep(during cut) ..
  // heal .. converge .. sweep(after heal).  last() sees the final
  // occurrence, so walk for the mid-partition sweep positionally.
  const drt::engine::phase_metrics* during = nullptr;
  bool inside_cut = false;
  for (const auto& m : rec.phases()) {
    if (m.phase == "partition") inside_cut = true;
    if (m.phase == "heal") break;
    if (inside_cut && m.phase == "publish_sweep") during = &m;
  }
  const auto* heal = rec.last("converge_until_legal");
  const auto* after = rec.last("publish_sweep");

  const double fn_during = during == nullptr ? 0.0 : during->fn_rate();
  state.counters["heal_rounds"] = heal->rounds;
  state.counters["fn_after"] = static_cast<double>(after->false_negatives);
  state.counters["fn_during"] = fn_during;

  results::instance().set_headers({"N", "minority_%", "down_rounds",
                                   "fn_rate_during", "heal_rounds",
                                   "fn_after_heal", "legal_after"});
  results::instance().add_row(
      {table::cell(n), table::cell(minority_pct),
       table::cell(static_cast<std::int64_t>(down_rounds)),
       table::cell(fn_during, 4),
       table::cell(static_cast<std::int64_t>(heal->rounds)),
       table::cell(static_cast<std::size_t>(after->false_negatives)),
       heal->legal == 1 ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_PartitionStabilize)
    ->ArgsProduct({{64}, {25, 50}, {2, 6, 12}})
    ->Args({128, 33, 8})  // wider overlay, the canned default shape
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E18: split-brain partitions and post-heal stabilization",
    "Expect nonzero FN while partitioned (events cannot cross the cut), "
    "recovery to a single legal overlay within a few rounds of the heal "
    "(root probes merge the two trees), and FN = 0 after — the paper's "
    "guarantee restored once the transport assumption holds again.")
