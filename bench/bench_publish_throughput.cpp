// Publish-path throughput (DESIGN.md §9): events/sec and messages/event
// swept over batch size x subtree-summary mode x population.
//
// The two publish-path optimizations measured here are independent:
//  * batched multi-publish envelopes amortize routing — k events share
//    one tree descent and split only where children's admit sets
//    diverge, so messages/event and simulator work per event drop
//    roughly with the batch size;
//  * subtree summaries (occupancy grids over the instance MBRs) prune
//    descents into dead space that the plain MBR test admits, cutting
//    messages/event again at unchanged delivery accuracy.
//
// batch = 1 runs the scalar publish path (one envelope per event), so
// the batch >= 16 rows divide against an honest unbatched baseline; the
// committed baseline is expected to show >= 1.5x events/sec there.
//
// The 256-peer points are tier-1: the regression gate in
// scripts/compare_benches.sh tracks their cpu time per sweep.  The
// 10k-peer sweep (batch {1,4,16,64} x summary {mbr,both}) registers
// only when DRT_PUBLISH_THROUGHPUT is set — minutes of wall clock, run
// once per perf PR to produce the committed artifact.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "drtree/summary.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::overlay::summary_mode;
using drt::util::table;

summary_mode mode_of(int m) {
  return m == 0 ? summary_mode::mbr
                : (m == 1 ? summary_mode::grid : summary_mode::both);
}

void run_throughput(benchmark::State& state, std::size_t n, std::size_t batch,
                    summary_mode mode) {
  drt::engine::overlay_backend_config cfg;
  cfg.dr.summary = mode;
  cfg.dr.summary_grid = 8;
  cfg.net.seed = 2007;
  if (n > 1000) {
    // Stretch the stabilize cadence at scale, as in bench_million_peer:
    // populate would otherwise drown in stabilizer firings.  Summaries
    // stay sound — join paths mark their delta eagerly — and two
    // explicit rounds below run the full rebuilds.
    cfg.dr.stabilize_period = 5000.0;
    cfg.dr.seen_ring = 64;
  }

  drt::engine::drtree_backend be(cfg);
  drt::engine::runner_config rc;
  // Sparse clustered interest with uniform events is the workload the
  // summary exists for: small filters around a few hot spots leave the
  // interior MBRs mostly dead space, so most events pay pure routing
  // descents that an occupancy grid can prune.
  rc.workload.family = drt::workload::subscription_family::clustered;
  rc.workload.subs.min_side_frac = 0.005;
  rc.workload.subs.max_side_frac = 0.02;
  rc.workload.seed = 99;
  drt::engine::scenario_runner runner(be, rc);
  runner.populate(n);
  if (n > 1000) {
    // One stabilize round per summary-refresh stride: every instance
    // runs at least one full rebuild, tightening the eagerly-marked
    // join-time grids before measurement starts.
    for (int i = 0; i < 10; ++i) be.step_round();
  } else {
    runner.converge();
  }

  const std::size_t events = n > 1000 ? 2048 : 512;
  std::uint64_t messages = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    const auto stats =
        batch <= 1
            ? runner.publish_sweep(events,
                                   drt::workload::event_family::uniform)
            : runner.publish_batch(events, batch,
                                   drt::workload::event_family::uniform);
    messages += stats.messages;
    deliveries += stats.deliveries;
    false_negatives += stats.false_negatives;
    total_events += stats.events;
  }

  const double msgs_per_event =
      total_events == 0 ? 0.0
                        : static_cast<double>(messages) /
                              static_cast<double>(total_events);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_events));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.counters["msgs_per_event"] = msgs_per_event;
  state.counters["false_negatives"] = static_cast<double>(false_negatives);

  results::instance().set_headers({"N", "batch", "summary", "events",
                                   "msgs/event", "deliveries", "fn"});
  results::instance().add_row(
      {table::cell(n), table::cell(batch),
       std::string(drt::overlay::to_string(mode)), table::cell(total_events),
       table::cell(msgs_per_event, 2), table::cell(deliveries),
       table::cell(false_negatives)});
}

void BM_PublishThroughput(benchmark::State& state) {
  run_throughput(state, static_cast<std::size_t>(state.range(0)),
                 static_cast<std::size_t>(state.range(1)),
                 mode_of(static_cast<int>(state.range(2))));
}

// The gated 10k sweep: DRT_BENCH_MAIN owns main(), so the registration
// happens in a static initializer guarded by the env var.
const bool registered_large = [] {
  if (std::getenv("DRT_PUBLISH_THROUGHPUT") == nullptr) return false;
  for (const int mode : {0, 2}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}, std::size_t{64}}) {
      const auto name = "BM_PublishThroughput/10000/" +
                        std::to_string(batch) + "/" + std::to_string(mode);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [batch, mode](benchmark::State& s) {
                                     run_throughput(s, 10000, batch,
                                                    mode_of(mode));
                                   })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return true;
}();

}  // namespace

BENCHMARK(BM_PublishThroughput)
    ->Args({256, 1, 0})
    ->Args({256, 16, 0})
    ->Args({256, 64, 0})
    ->Args({256, 1, 2})
    ->Args({256, 16, 2})
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "Publish throughput: batched envelopes x subtree summaries",
    "Expect >= 1.5x events/sec at batch >= 16 over the scalar path "
    "(batch = 1) and lower msgs/event with summary = both than with the "
    "plain MBR at equal accuracy; set DRT_PUBLISH_THROUGHPUT=1 to also "
    "run the 10k-peer batch x summary sweep for the committed artifact.")
