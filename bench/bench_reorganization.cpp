// Experiment E15 (§3.2 "Dynamic Reorganizations"): FP-driven parent/child
// exchange under biased event workloads.
//
// The mechanism matters when the static organization is suboptimal:
// "under bias event workloads ... small false positive regions are hit by
// many events"; nodes then count their false positives against what each
// child would have experienced and swap when a child fits better.
//
// With the paper's largest-MBR election the tree is already close to
// optimal, so the experiment ablates the election policy: under *random*
// election (deliberately suboptimal parents) the reorganization recovers
// most of the lost accuracy; under largest-MBR it is a no-op.  Expected
// shape: fp(random, reorg on, phase 2) << fp(random, reorg off, phase 2),
// while the largest-MBR rows stay flat and low.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::overlay::election_policy;
using drt::util::table;

void BM_Reorganization(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const auto policy = static_cast<election_policy>(state.range(1));

  drt::analysis::harness_config hc;
  hc.dr.fp_reorganization = enabled;
  hc.dr.election = policy;
  hc.family = drt::workload::subscription_family::zipf_sized;
  hc.net.seed = 131;

  testbed::accuracy warmup;
  testbed::accuracy after;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(100);
    tb.converge();
    // Phase 1: the biased stream hits the initial organization.
    warmup = tb.publish_sweep(500, drt::workload::event_family::hotspot);
    // Give the stabilizers time to act on the collected FP counters.
    tb.converge(20);
    // Phase 2: same stream against the (possibly) reorganized overlay.
    after = tb.publish_sweep(500, drt::workload::event_family::hotspot);
  }

  state.counters["fp_before"] = warmup.fp_rate();
  state.counters["fp_after"] = after.fp_rate();

  results::instance().set_headers({"election", "reorganization",
                                   "fp_phase1", "fp_phase2",
                                   "improvement_%", "false_negatives"});
  const double improvement =
      warmup.fp_rate() == 0.0
          ? 0.0
          : 100.0 * (warmup.fp_rate() - after.fp_rate()) / warmup.fp_rate();
  results::instance().add_row(
      {to_string(policy), enabled ? "on" : "off",
       table::cell(warmup.fp_rate(), 4), table::cell(after.fp_rate(), 4),
       table::cell(improvement, 1),
       table::cell(warmup.false_negatives + after.false_negatives)});
}

}  // namespace

BENCHMARK(BM_Reorganization)
    ->ArgsProduct({{0, 1},      // reorg off / on
                   {0, 2}})     // largest_mbr / random election
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E15: FP-driven dynamic reorganization (§3.2)",
    "Expect reorganization to recover accuracy under a deliberately "
    "suboptimal (random) election, and to be a no-op under the paper's "
    "largest-MBR election; false negatives stay 0 throughout.")
