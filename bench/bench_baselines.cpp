// Experiment E14 (§3.1/§4 comparison): DR-tree vs the alternatives.
//
// Expected shape (the paper's argument):
//  * flooding: FN = 0, maximal FP, message cost ~ N per event;
//  * dimension forest [3]: flat, high fan-out, significant FP;
//  * containment tree [11]: exact accuracy but virtual-root fan-out and
//    unbalanced height (chains) — degree grows with the workload;
//  * Z-curve DHT: exact accuracy and log-N routing, but subscription
//    state/installation traffic blow up with broad filters;
//  * DR-tree: FN = 0, low FP, bounded degree (<= M), logarithmic height —
//    "combines the best of both worlds".
#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/harness.h"
#include "baselines/containment_tree.h"
#include "baselines/dimension_forest.h"
#include "baselines/flooding.h"
#include "baselines/zcurve_dht.h"
#include "bench_common.h"
#include "drtree/checker.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;
using drt::workload::subscription_family;

constexpr std::size_t kN = 128;
constexpr std::size_t kEvents = 200;

struct shared_workload {
  std::vector<drt::spatial::box> subs;
  std::vector<std::pair<std::size_t, drt::spatial::pt>> pubs;
};

shared_workload make_workload(subscription_family family, std::uint64_t seed) {
  shared_workload w;
  drt::util::rng rng(seed);
  drt::workload::subscription_params params;
  params.workspace = drt::geo::make_rect2(0, 0, 1000, 1000);
  w.subs = drt::workload::make_subscriptions(family, kN, rng, params);
  for (std::size_t i = 0; i < kEvents; ++i) {
    w.pubs.emplace_back(rng.index(kN),
                        drt::workload::make_event_point(
                            drt::workload::event_family::matching, rng,
                            params.workspace, w.subs));
  }
  return w;
}

void add_baseline_row(const char* workload_name,
                      drt::baselines::pubsub_baseline& overlay,
                      const shared_workload& w) {
  overlay.build(w.subs);
  const auto acc = measure_accuracy(overlay, w.subs, w.pubs);
  const auto shape = overlay.shape();
  results::instance().add_row(
      {overlay.name(), workload_name, table::cell(acc.fp_rate(), 4),
       table::cell(acc.fn_rate(), 4),
       table::cell(static_cast<double>(acc.messages) / kEvents, 1),
       table::cell(shape.max_degree), table::cell(shape.height),
       table::cell(shape.routing_state)});
}

void BM_Baselines(benchmark::State& state) {
  const auto family = static_cast<subscription_family>(state.range(0));
  const auto w = make_workload(family, 107 + state.range(0));

  results::instance().set_headers({"system", "workload", "fp_rate",
                                   "fn_rate", "msgs/event", "max_degree",
                                   "height", "routing_state"});

  double drtree_fp = 0.0;
  for (auto _ : state) {
    // DR-tree on the identical workload, via the full protocol stack.
    drt::analysis::harness_config hc;
    hc.net.seed = 109 + state.range(0);
    testbed tb(hc);
    for (const auto& s : w.subs) tb.add(s);
    tb.converge();
    testbed::accuracy acc;
    acc.population = tb.overlay().live_count();
    for (const auto& [pub, value] : w.pubs) {
      const auto r = tb.overlay().publish_and_drain(
          tb.overlay().live_peers()[pub % tb.overlay().live_count()], value);
      ++acc.events;
      acc.deliveries += r.delivered;
      acc.interested += r.interested;
      acc.false_positives += r.false_positives;
      acc.false_negatives += r.false_negatives;
      acc.messages += r.messages;
    }
    drtree_fp = acc.fp_rate();
    const auto report = tb.report();
    results::instance().add_row(
        {"drtree", to_string(family), table::cell(acc.fp_rate(), 4),
         table::cell(acc.fn_rate(), 4),
         table::cell(acc.messages_per_event(), 1),
         table::cell(report.max_interior_children),
         table::cell(report.height), table::cell(report.memory_links)});

    drt::baselines::containment_tree ct;
    add_baseline_row(to_string(family), ct, w);
    drt::baselines::dimension_forest df;
    add_baseline_row(to_string(family), df, w);
    drt::baselines::flooding fl(4, 113);
    add_baseline_row(to_string(family), fl, w);
    drt::baselines::zcurve_dht dht(drt::geo::make_rect2(0, 0, 1000, 1000), 5, 127);
    add_baseline_row(to_string(family), dht, w);
  }
  state.counters["drtree_fp"] = drtree_fp;
}

}  // namespace

BENCHMARK(BM_Baselines)
    ->Arg(0)  // uniform
    ->Arg(3)  // nested
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E14: DR-tree vs baselines (§3.1/§4)",
    "Expect: flooding max FP; dimension forest high FP + fan-out; "
    "containment tree exact but unbalanced (degree/height); zcurve DHT "
    "exact but heavy routing_state; DR-tree low FP with bounded degree "
    "and logarithmic height.")
