// Experiment E14 (§3.1/§4 comparison): DR-tree vs the alternatives.
//
// Expected shape (the paper's argument):
//  * flooding: FN = 0, maximal FP, message cost ~ N per event;
//  * dimension forest [3]: flat, high fan-out, significant FP;
//  * containment tree [11]: exact accuracy but virtual-root fan-out and
//    unbalanced height (chains) — degree grows with the workload;
//  * Z-curve DHT: exact accuracy and log-N routing, but subscription
//    state/installation traffic blow up with broad filters;
//  * DR-tree: FN = 0, low FP, bounded degree (<= M), logarithmic height —
//    "combines the best of both worlds".
//
// Every system runs behind the engine backend interface, through the one
// scenario_runner, on the same scenarios with the same seeds.  Both
// timelines here stay inside every backend's capability mask, so every
// backend sees identical generated filters, identical event sequences,
// and identical victim picks, and the recorder's fixed-schema rows are
// directly comparable across backends (DESIGN.md §6).  Two scenarios
// per workload family:
//
//  * static_accuracy — the baselines' best case (populate, then sweep);
//  * rolling_churn   — the paper's actual regime: repeated join/leave
//    waves with accuracy sweeps in between.  The first dynamic-workload
//    E14: baselines pay a full structure rebuild per membership change
//    (their only honest dynamic semantics), the DR-tree repairs
//    incrementally.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::workload::subscription_family;

constexpr std::size_t kN = 128;
constexpr std::size_t kEvents = 200;

double run_all_backends(const drt::engine::scenario& sc) {
  drt::engine::overlay_backend_config bc;
  bc.net.seed = 109;

  double drtree_fp = 0.0;
  for (auto& be : drt::engine::make_all_backends(bc)) {
    drt::engine::scenario_runner runner(*be);
    const auto rec = runner.run(sc);
    // All five backends feed the identical schema: one table, one JSON.
    results::instance().set_headers(metrics_recorder::headers());
    const auto rows = rec.to_table();
    for (const auto& row : rows.data()) {
      results::instance().add_row(row);
    }
    if (be->name() == "drtree") {
      if (const auto* sweep = rec.last("publish_sweep")) {
        drtree_fp = sweep->fp_rate();
      }
    }
  }
  return drtree_fp;
}

void BM_BaselinesStatic(benchmark::State& state) {
  const auto family = static_cast<subscription_family>(state.range(0));
  const auto sc =
      drt::engine::scenario::make(std::string("static_") + to_string(family))
          .seed(107 + static_cast<std::uint64_t>(state.range(0)))
          .family(family)
          .populate(kN)
          .converge()
          .publish_sweep(kEvents, drt::workload::event_family::matching)
          .build();

  double drtree_fp = 0.0;
  for (auto _ : state) {
    drtree_fp = run_all_backends(sc);
  }
  state.counters["drtree_fp"] = drtree_fp;
}

void BM_BaselinesRollingChurn(benchmark::State& state) {
  const auto sc = drt::engine::canned::rolling_churn(
      /*n=*/48, /*waves=*/3, /*ops=*/12,
      /*seed=*/113 + static_cast<std::uint64_t>(state.range(0)));

  double drtree_fp = 0.0;
  for (auto _ : state) {
    drtree_fp = run_all_backends(sc);
  }
  state.counters["drtree_fp"] = drtree_fp;
}

}  // namespace

BENCHMARK(BM_BaselinesStatic)
    ->Arg(0)  // uniform
    ->Arg(3)  // nested
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_BaselinesRollingChurn)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E14: DR-tree vs baselines (§3.1/§4), static and under rolling churn",
    "Expect: flooding max FP; dimension forest high FP + fan-out; "
    "containment tree exact but unbalanced (degree/height); zcurve DHT "
    "exact but heavy routing_state + rebuild traffic under churn; "
    "DR-tree low FP with bounded degree, logarithmic height, and "
    "incremental (no-rebuild) repair.")
