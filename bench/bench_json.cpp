#include "bench_json.h"

#include <cstring>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

namespace drt::bench {
namespace {

constexpr double kSecondsToNanos = 1e9;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_string_array(std::ostream& out,
                        const std::vector<std::string>& items) {
  out << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out << ", ";
    out << '"' << json_escape(items[i]) << '"';
  }
  out << "]";
}

}  // namespace

void recording_reporter::ReportRuns(const std::vector<Run>& report) {
  for (const Run& run : report) {
    if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
    run_record rec;
    rec.name = run.benchmark_name();
    rec.iterations = static_cast<std::int64_t>(run.iterations);
    if (run.iterations > 0) {
      const double iters = static_cast<double>(run.iterations);
      rec.real_ns_per_op = run.real_accumulated_time * kSecondsToNanos / iters;
      rec.cpu_ns_per_op = run.cpu_accumulated_time * kSecondsToNanos / iters;
    }
    for (const auto& [cname, counter] : run.counters) {
      rec.counters.emplace_back(cname, counter.value);
    }
    records_.push_back(std::move(rec));
  }
  ::benchmark::ConsoleReporter::ReportRuns(report);
}

std::string extract_json_out(int* argc, char** argv) {
  static constexpr char kFlag[] = "--json_out=";
  static constexpr std::size_t kFlagLen = sizeof(kFlag) - 1;
  std::string path;
  int kept = 0;
  for (int i = 0; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      path.assign(argv[i] + kFlagLen);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;  // keep the argv[argc] == NULL convention
  *argc = kept;
  return path;
}

bool write_json(const std::string& path, const std::string& title,
                const std::string& description,
                const std::vector<run_record>& runs) {
  std::ofstream out(path);
  if (!out) return false;

  out << "{\n";
  out << "  \"title\": \"" << json_escape(title) << "\",\n";
  out << "  \"description\": \"" << json_escape(description) << "\",\n";

  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const run_record& r = runs[i];
    out << "    {\"name\": \"" << json_escape(r.name) << "\", "
        << "\"iterations\": " << r.iterations << ", "
        << "\"real_ns_per_op\": " << r.real_ns_per_op << ", "
        << "\"cpu_ns_per_op\": " << r.cpu_ns_per_op << ", "
        << "\"counters\": {";
    for (std::size_t c = 0; c < r.counters.size(); ++c) {
      if (c != 0) out << ", ";
      out << '"' << json_escape(r.counters[c].first)
          << "\": " << r.counters[c].second;
    }
    out << "}}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  const util::table* table = results::instance().table_ptr();
  out << "  \"table\": ";
  if (table == nullptr) {
    out << "null\n";
  } else {
    out << "{\n    \"headers\": ";
    write_string_array(out, table->headers());
    out << ",\n    \"rows\": [\n";
    const auto& rows = table->data();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "      ";
      write_string_array(out, rows[i]);
      out << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }\n";
  }
  out << "}\n";
  return out.good();
}

int bench_main(int argc, char** argv, const char* title,
               const char* description) {
  std::cout << title << "\n" << description << "\n\n";
  const std::string json_path = extract_json_out(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  recording_reporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  results::instance().print(title);
  if (!json_path.empty()) {
    if (!write_json(json_path, title, description, reporter.records())) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace drt::bench
