// Machine-readable bench output (DESIGN.md §4): every bench binary can
// emit a BENCH_<name>.json file via `--json_out=PATH` carrying the
// google-benchmark timings (name, iterations, ns/op, counters) plus the
// accumulated paper-table rows, so perf trajectories can be tracked
// across PRs without scraping console output.
#ifndef DRT_BENCH_JSON_H
#define DRT_BENCH_JSON_H

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace drt::bench {

/// One timing record captured from a google-benchmark run.
struct run_record {
  std::string name;
  std::int64_t iterations = 0;
  double real_ns_per_op = 0.0;
  double cpu_ns_per_op = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Console reporter that also records every (non-aggregate, non-error)
/// run for the JSON emitter.
class recording_reporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override;

  const std::vector<run_record>& records() const { return records_; }

 private:
  std::vector<run_record> records_;
};

/// Removes a `--json_out=PATH` argument from argv (if present) and
/// returns PATH; returns "" when the flag was not passed.  Must run
/// before benchmark::Initialize, which rejects unknown flags.
std::string extract_json_out(int* argc, char** argv);

/// Writes the bench JSON document: title, description, the recorded
/// timing runs, and the paper table accumulated in bench::results.
/// Returns false if the file could not be written.
bool write_json(const std::string& path, const std::string& title,
                const std::string& description,
                const std::vector<run_record>& runs);

/// Shared main body for every bench binary (see DRT_BENCH_MAIN).
int bench_main(int argc, char** argv, const char* title,
               const char* description);

}  // namespace drt::bench

#endif  // DRT_BENCH_JSON_H
