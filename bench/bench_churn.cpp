// Experiment E9 (Lemma 3.7): churn resistance — expected time before the
// DR-tree disconnects under Poisson departures, with stabilization
// silent for windows of length Delta.
//
// Model (paper): E[T] = prefactor * exp((N - Delta*lambda)^2 /
// (4*Delta*lambda)).  The exponent is exactly the Chernoff upper tail of
// Poisson(Delta*lambda) reaching N, so the modeled disconnection event is
// "the entire population (N departures) churns out inside one
// stabilization-free window".  We measure:
//
//  * series A — the lemma's event: E[T] = Delta / P[Poisson(Δλ) >= N],
//    with the probability estimated by Monte Carlo in the near-critical
//    regime (elsewhere it is astronomically small, exactly as the model
//    predicts);
//  * series B — a *structural* proxy on the real overlay: the first time
//    a surviving peer loses its entire ancestor chain within one window
//    (no in-band repair anchor).  This happens far sooner, which is why
//    the protocol stabilizes continuously instead of betting on the
//    bound.
//
// The overlay under measurement is built by the engine (scenario:
// populate → converge on the DR-tree backend); the ancestor chains are
// read off the converged structure.
//
// Expected shape: measured E[T] falls steeply as lambda grows and rises
// steeply with N — the model's exponential sensitivity to Δλ/N — and the
// near-critical measurements agree with the closed form within the
// Chernoff constant.
#include <benchmark/benchmark.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "analysis/models.h"
#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::util::table;

std::string sci(double v) {
  if (v < 0) return "-";
  std::ostringstream out;
  if (v == 0.0 || (v >= 0.01 && v < 1e6)) {
    out.precision(3);
    out << std::fixed << v;
  } else {
    out.precision(2);
    out << std::scientific << v;
  }
  return out.str();
}

/// Poisson(rate) via exponential inter-arrival counting.
std::size_t poisson(double rate, drt::util::rng& rng) {
  std::size_t k = 0;
  double acc = rng.exponential(1.0);
  while (acc < rate) {
    ++k;
    acc += rng.exponential(1.0);
  }
  return k;
}

/// Series A: Delta / P[Poisson(Delta*lambda) >= N], Monte Carlo.
double lemma_event_time(std::size_t n, double delta, double lambda,
                        drt::util::rng& rng, std::size_t samples) {
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    if (poisson(delta * lambda, rng) >= n) ++hits;
  }
  if (hits == 0) return -1.0;  // beyond measurable: report as lower bound
  return delta * static_cast<double>(samples) / static_cast<double>(hits);
}

/// Series B: structural proxy on real overlay ancestor chains.
std::vector<std::vector<std::size_t>> ancestor_chains(
    const drt::overlay::dr_overlay& ov) {
  const auto live = ov.live_peers();
  std::vector<std::vector<std::size_t>> chains;
  chains.reserve(live.size());
  for (const auto p : live) {
    std::vector<std::size_t> chain;
    auto cur = p;
    auto h = ov.peer(p).top();
    std::size_t guard = 0;
    while (guard++ < 64) {
      const auto* ins = ov.peer(cur).find_inst(h);
      if (ins == nullptr || ins->parent == cur) break;
      cur = ins->parent;
      ++h;
      chain.push_back(cur);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

double orphan_proxy_time(const std::vector<std::vector<std::size_t>>& chains,
                         std::size_t n, double delta, double lambda,
                         drt::util::rng& rng, double horizon) {
  double t = 0.0;
  while (t < horizon) {
    std::vector<bool> departed(n + 1, false);
    double when = rng.exponential(lambda);
    while (when < delta) {
      departed[rng.index(n)] = true;
      when += rng.exponential(lambda);
    }
    for (std::size_t i = 0; i < chains.size(); ++i) {
      if (departed[i] || chains[i].empty()) continue;
      bool anchored = false;
      for (const auto a : chains[i]) {
        if (a < departed.size() && !departed[a]) {
          anchored = true;
          break;
        }
      }
      if (!anchored) return t + delta;
    }
    t += delta;
  }
  return horizon;
}

void BM_Churn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double delta = static_cast<double>(state.range(1));
  const double lambda = static_cast<double>(state.range(2)) / 10.0;

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 61 + n;
  drt::engine::drtree_backend be(bc);
  drt::engine::scenario_runner runner(be);
  runner.run(drt::engine::scenario::make("churn_substrate")
                 .populate(n)
                 .converge()
                 .build());
  const auto chains = ancestor_chains(be.overlay());

  drt::util::rng rng(77 + n + static_cast<std::uint64_t>(lambda * 10));
  double lemma_time = 0.0;
  drt::util::accumulator proxy;
  for (auto _ : state) {
    lemma_time = lemma_event_time(n, delta, lambda, rng, 200000);
    for (int trial = 0; trial < 20; ++trial) {
      proxy.add(orphan_proxy_time(chains, n, delta, lambda, rng, 1e6));
    }
  }

  const auto model = drt::analysis::expected_disconnect_time(
      n, delta, lambda, drt::analysis::churn_prefactor::delta_times_n);

  state.counters["measured_T"] = lemma_time;
  state.counters["model_T"] =
      model.valid && !std::isinf(model.expected_time) ? model.expected_time
                                                      : -1.0;

  results::instance().set_headers({"N", "Delta", "lambda", "Dl/N",
                                   "measured_E[T]", "model_E[T] (ΔN)",
                                   "orphan_proxy_E[T]"});
  results::instance().add_row(
      {table::cell(n), table::cell(delta, 0), table::cell(lambda, 1),
       table::cell(delta * lambda / static_cast<double>(n), 2),
       lemma_time < 0 ? "> 4e5" : sci(lemma_time),
       model.valid ? sci(model.expected_time) : "-(degenerate)",
       sci(proxy.mean())});
}

}  // namespace

// lambda passed in tenths to keep integer benchmark args.  The sweep
// covers the near-critical regime Delta*lambda/N in [0.5, 1.5] where the
// lemma's event is measurable, plus an N sweep at fixed lambda.
BENCHMARK(BM_Churn)
    ->ArgsProduct({{32}, {4}, {40, 60, 80, 100, 120}})
    ->ArgsProduct({{16, 32, 48, 64}, {4}, {80}})
    ->ArgsProduct({{32}, {2, 4, 8}, {80}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E9: churn resistance (Lemma 3.7)",
    "Expect measured E[T] to fall steeply with lambda and rise steeply "
    "with N (the exp((N-Δλ)²/4Δλ) shape); the structural orphan proxy is "
    "orders of magnitude sooner — the reason stabilization runs "
    "continuously.")
