// Experiment E7 (Lemma 3.5): convergence after uncontrolled crashes.
//
// Paper prediction: the system reaches a legitimate configuration in a
// finite number of steps, O(N log_m N) in the worst case.  Expected
// shape: heavier crash fractions need more rounds (orphaned subtrees
// rejoin through the oracle), but convergence is always reached; crashing
// the root is survivable.
//
// Driven through the engine: the scenario is populate → converge →
// crash_burst → converge_until_legal; rounds and repair traffic come out
// of the recorder.  A second benchmark runs the canned massacre_then_heal
// scenario (crash a third including the root, corrupt half the
// survivors, heal, verify accuracy).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::util::table;

void BM_CrashStabilize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto crash_pct = static_cast<std::size_t>(state.range(1));
  const bool kill_root = state.range(2) != 0;

  const std::size_t target = std::max<std::size_t>(1, n * crash_pct / 100);
  const auto sc = drt::engine::scenario::make("crash_stabilize")
                      .populate(n)
                      .converge()
                      .crash_count(target, kill_root)
                      .converge(500)
                      .build();

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 41 + n + crash_pct;

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(bc);
    drt::engine::scenario_runner runner(be);
    rec = runner.run(sc);
  }

  const auto* heal = rec.last("converge_until_legal");
  state.counters["rounds"] = heal->rounds;
  state.counters["messages"] = static_cast<double>(heal->messages);
  state.counters["legal"] = heal->legal == 1 ? 1.0 : 0.0;

  results::instance().set_headers({"N", "crash_%", "root_killed",
                                   "rounds_to_legal", "repair_messages",
                                   "legal"});
  results::instance().add_row(
      {table::cell(n), table::cell(crash_pct), kill_root ? "yes" : "no",
       table::cell(static_cast<std::int64_t>(heal->rounds)),
       table::cell(static_cast<std::size_t>(heal->messages)),
       heal->legal == 1 ? "yes" : "NO"});
}

void BM_MassacreThenHeal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 47 + n;

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(bc);
    drt::engine::scenario_runner runner(be);
    rec = runner.run(drt::engine::canned::massacre_then_heal(n));
  }

  const auto* heal = rec.last("converge_until_legal");
  const auto* sweep = rec.last("publish_sweep");
  state.counters["rounds"] = heal->rounds;
  state.counters["legal"] = heal->legal == 1 ? 1.0 : 0.0;
  state.counters["fn_after_heal"] =
      static_cast<double>(sweep->false_negatives);

  results::instance().set_headers({"N", "crash_%", "root_killed",
                                   "rounds_to_legal", "repair_messages",
                                   "legal"});
  results::instance().add_row(
      {table::cell(n), "massacre", "yes",
       table::cell(static_cast<std::int64_t>(heal->rounds)),
       table::cell(static_cast<std::size_t>(heal->messages)),
       heal->legal == 1 && sweep->false_negatives == 0 ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_CrashStabilize)
    ->ArgsProduct({{64, 256}, {1, 5, 10, 25}, {0}})
    ->Args({256, 5, 1})  // root-crash scenario
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MassacreThenHeal)
    ->Arg(60)
    ->Arg(120)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E7: stabilization after uncontrolled crashes (Lemma 3.5)",
    "Expect convergence in every scenario (finite repair), with rounds "
    "growing with the crash fraction; root loss and the combined "
    "massacre (crash a third + corrupt survivors) are survivable.")
