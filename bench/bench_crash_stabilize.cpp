// Experiment E7 (Lemma 3.5): convergence after uncontrolled crashes.
//
// Paper prediction: the system reaches a legitimate configuration in a
// finite number of steps, O(N log_m N) in the worst case.  Expected
// shape: heavier crash fractions need more rounds (orphaned subtrees
// rejoin through the oracle), but convergence is always reached; crashing
// the root is survivable.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_CrashStabilize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto crash_pct = static_cast<std::size_t>(state.range(1));
  const bool kill_root = state.range(2) != 0;

  drt::analysis::harness_config hc;
  hc.net.seed = 41 + n + crash_pct;

  int rounds = 0;
  std::uint64_t messages = 0;
  bool legal = false;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();

    auto live = tb.overlay().live_peers();
    tb.workload_rng().shuffle(live);
    std::size_t crashed = 0;
    const std::size_t target = std::max<std::size_t>(1, n * crash_pct / 100);
    if (kill_root) {
      tb.overlay().crash(tb.overlay().current_root());
      ++crashed;
    }
    for (const auto p : live) {
      if (crashed >= target) break;
      if (tb.overlay().alive(p)) {
        tb.overlay().crash(p);
        ++crashed;
      }
    }
    const auto m0 = tb.overlay().sim().metrics().messages_sent;
    rounds = tb.converge(500);
    messages = tb.overlay().sim().metrics().messages_sent - m0;
    legal = tb.legal();
  }

  state.counters["rounds"] = rounds;
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["legal"] = legal ? 1.0 : 0.0;

  results::instance().set_headers({"N", "crash_%", "root_killed",
                                   "rounds_to_legal", "repair_messages",
                                   "legal"});
  results::instance().add_row(
      {table::cell(n), table::cell(crash_pct), kill_root ? "yes" : "no",
       table::cell(static_cast<std::int64_t>(rounds)), table::cell(messages),
       legal ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_CrashStabilize)
    ->ArgsProduct({{64, 256}, {1, 5, 10, 25}, {0}})
    ->Args({256, 5, 1})  // root-crash scenario
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E7: stabilization after uncontrolled crashes (Lemma 3.5)",
    "Expect convergence in every scenario (finite repair), with rounds "
    "growing with the crash fraction; root loss is survivable.")
