// Quiescence-aware stabilization overhead (DESIGN.md §11).
//
// The tentpole claim: with dirty-set scheduling, the cost of a
// maintenance round is proportional to *change*, not population.  The
// workload populates an N-peer shard forest, lets it go quiescent, and
// then measures stabilization rounds in two regimes:
//
//  * quiescent — no membership change at all.  Full mode still runs one
//    pass per peer per round; dirty mode runs only the background sweep
//    (population / sweep_stride) plus each shard's always-on root.  The
//    TIMED region of the benchmark is exactly these rounds, so the
//    tier-1 gate tracks stabilizer wall-clock per round directly, and
//    the dirty entry is expected >= 5x below the full entry at 100k.
//  * churning — a fixed number of crash+restart pairs per round
//    (reported in the churn_* counters, measured outside the timed
//    region).  Here the two modes converge: repair work dominates and
//    dirty mode pays it like full mode does — O(changed), as designed.
//
// Populations: 100k at 4 shards x {full, dirty} always registered (the
// tier-1 point scripts/compare_benches.sh gates); 1M at 4 shards only
// when DRT_MILLION_PEER is set (minutes of wall-clock, run once per PR
// for the committed artifact).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "engine/backends.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::util::table;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

const char* mode_name(drt::overlay::stabilize_mode m) {
  return m == drt::overlay::stabilize_mode::dirty ? "dirty" : "full";
}

void run_overhead(benchmark::State& state, std::size_t n, std::size_t shards,
                  drt::overlay::stabilize_mode mode) {
  drt::engine::overlay_backend_config cfg;
  // Same scale knobs as bench_million_peer: small dedup rings, and a
  // stretched stabilize cadence so populate is not drowned in O(N^2/2)
  // stabilizer firings — each step_round() still advances exactly one
  // period, firing every due pass whatever the period's length.
  cfg.dr.seen_ring = 64;
  cfg.dr.stabilize_period = 5000.0;
  cfg.dr.stabilize = mode;
  cfg.net.seed = 2007;

  const int quiescent_rounds = 8;
  const int churn_rounds = 4;
  const std::size_t churn_pairs = std::max<std::size_t>(16, n / 1000);

  double quiescent_s = 0.0;
  double churn_s = 0.0;
  std::uint64_t q_visited = 0, q_skipped = 0, q_msgs = 0;
  std::uint64_t c_visited = 0, c_msgs = 0;

  for (auto _ : state) {
    state.PauseTiming();
    drt::engine::sharded_drtree_backend be(cfg, shards);
    drt::util::rng rng(cfg.net.seed ^ (n * 31 + shards));
    const auto& ws = cfg.dr.workspace;
    const double wx = ws.hi[0] - ws.lo[0];
    const double wy = ws.hi[1] - ws.lo[1];
    auto small_filter = [&] {
      const double w = rng.uniform_real(wx * 0.001, wx * 0.005);
      const double h = rng.uniform_real(wy * 0.001, wy * 0.005);
      const double x = rng.uniform_real(ws.lo[0], ws.hi[0] - w);
      const double y = rng.uniform_real(ws.lo[1], ws.hi[1] - h);
      return drt::geo::make_rect2(x, y, x + w, y + h);
    };
    for (std::size_t i = 0; i < n; ++i) be.subscribe(small_filter());
    be.settle();
    // Warm-up: drain the join-time dirty backlog so the timed rounds
    // measure the steady quiescent state, not the populate tail.
    for (int r = 0; r < 4; ++r) be.step_round();

    // ---- timed region: quiescent maintenance rounds only ----
    const auto before = be.counters();
    auto t0 = std::chrono::steady_clock::now();
    state.ResumeTiming();
    for (int r = 0; r < quiescent_rounds; ++r) be.step_round();
    state.PauseTiming();
    quiescent_s = seconds_since(t0);
    const auto after_q = be.counters();
    q_visited = after_q.stabilize_visited - before.stabilize_visited;
    q_skipped = after_q.stabilize_skipped - before.stabilize_skipped;
    q_msgs = after_q.messages - before.messages;

    // ---- untimed: the same rounds under steady churn ----
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < churn_rounds; ++r) {
      std::vector<drt::engine::sub_id> victims;
      victims.reserve(churn_pairs);
      while (victims.size() < churn_pairs) {
        const auto s = static_cast<drt::engine::sub_id>(rng.index(n));
        if (be.crash(s)) victims.push_back(s);
      }
      for (const auto v : victims) be.restart(v);
      be.step_round();
    }
    churn_s = seconds_since(t0);
    const auto after_c = be.counters();
    c_visited = after_c.stabilize_visited - after_q.stabilize_visited;
    c_msgs = after_c.messages - after_q.messages;
    state.ResumeTiming();
  }

  const double q_round_s = quiescent_s / quiescent_rounds;
  const double c_round_s = churn_s / churn_rounds;
  state.counters["quiescent_round_s"] = q_round_s;
  state.counters["churn_round_s"] = c_round_s;
  state.counters["quiescent_visited_per_round"] =
      static_cast<double>(q_visited) / quiescent_rounds;
  state.counters["quiescent_skipped_per_round"] =
      static_cast<double>(q_skipped) / quiescent_rounds;
  state.counters["churn_visited_per_round"] =
      static_cast<double>(c_visited) / churn_rounds;

  results::instance().set_headers(
      {"N", "shards", "mode", "quiesc_s/round", "visited/round",
       "skipped/round", "msgs/round", "churn_s/round", "churn_visited",
       "churn_msgs"});
  results::instance().add_row(
      {table::cell(n), table::cell(shards), mode_name(mode),
       table::cell(q_round_s, 4),
       table::cell(static_cast<double>(q_visited) / quiescent_rounds, 0),
       table::cell(static_cast<double>(q_skipped) / quiescent_rounds, 0),
       table::cell(static_cast<double>(q_msgs) / quiescent_rounds, 0),
       table::cell(c_round_s, 4),
       table::cell(static_cast<double>(c_visited) / churn_rounds, 0),
       table::cell(static_cast<double>(c_msgs) / churn_rounds, 0)});
}

void BM_QuiescentOverhead(benchmark::State& state) {
  run_overhead(state, static_cast<std::size_t>(state.range(0)),
               static_cast<std::size_t>(state.range(1)),
               state.range(2) != 0 ? drt::overlay::stabilize_mode::dirty
                                   : drt::overlay::stabilize_mode::full);
}

// The gated full-scale sweep (see bench_million_peer for the pattern).
const bool registered_million = [] {
  if (std::getenv("DRT_MILLION_PEER") == nullptr) return false;
  for (const int dirty : {0, 1}) {
    benchmark::RegisterBenchmark(
        dirty != 0 ? "BM_QuiescentOverhead/1000000/4/dirty"
                   : "BM_QuiescentOverhead/1000000/4/full",
        [dirty](benchmark::State& s) {
          run_overhead(s, 1000000, 4,
                       dirty != 0 ? drt::overlay::stabilize_mode::dirty
                                  : drt::overlay::stabilize_mode::full);
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  return true;
}();

}  // namespace

BENCHMARK(BM_QuiescentOverhead)
    ->Args({100000, 4, 0})
    ->Args({100000, 4, 1})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

DRT_BENCH_MAIN(
    "Quiescent stabilization overhead: dirty-set vs full scheduling",
    "The timed region is the quiescent maintenance rounds alone "
    "(populate/settle are excluded via PauseTiming), so cpu_ns_per_op IS "
    "the stabilizer wall-clock: expect the dirty entry >= 5x below the "
    "full entry at equal N, with churn_round_s converging between modes "
    "(repair work is O(changed) either way); set DRT_MILLION_PEER=1 to "
    "also run the million-peer configurations.")
