// Experiment E11 (§1 claim): publish/subscribe operations logarithmic in
// the network size.
//
// Expected shape: publication hop count (longest delivery path) and join
// message count both track ~ 2*log_m(N); messages per event grow with
// the matching population, not with N.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "analysis/models.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_Latency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));

  drt::analysis::harness_config hc;
  hc.net.seed = 83 + n;

  testbed::accuracy acc;
  std::size_t height = 0;
  double join_msgs = 0.0;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();
    height = tb.report().height;

    // Join (subscribe) cost on the full overlay.
    drt::util::accumulator joins;
    auto params = hc.subs;
    params.workspace = hc.dr.workspace;
    const auto rects = drt::workload::make_subscriptions(
        hc.family, 10, tb.workload_rng(), params);
    for (const auto& r : rects) {
      const auto m0 = tb.overlay().sim().metrics().messages_sent;
      tb.add(r);
      joins.add(static_cast<double>(
          tb.overlay().sim().metrics().messages_sent - m0));
    }
    join_msgs = joins.mean();

    acc = tb.publish_sweep(200, drt::workload::event_family::matching);
  }

  state.counters["mean_hops"] = acc.mean_hops();
  state.counters["max_hops"] = static_cast<double>(acc.max_hops);
  state.counters["join_msgs"] = join_msgs;
  state.counters["height"] = static_cast<double>(height);

  results::instance().set_headers({"N", "height", "publish_hops(mean)",
                                   "publish_hops(max)", "join_msgs",
                                   "msgs/event", "2*log_m(N)"});
  results::instance().add_row(
      {table::cell(n), table::cell(height), table::cell(acc.mean_hops(), 2),
       table::cell(acc.max_hops), table::cell(join_msgs, 1),
       table::cell(acc.messages_per_event(), 1),
       table::cell(2 * drt::analysis::predicted_height(n, 2), 2)});
}

}  // namespace

BENCHMARK(BM_Latency)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E11: publish/subscribe latency vs N (§1 logarithmic-guarantee claim)",
    "Expect publish hops and join messages to track ~2*log(N): doubling N "
    "adds a constant number of hops.")
