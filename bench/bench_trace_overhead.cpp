// Flight-recorder overhead (DESIGN.md §12): the same 256-peer scenario —
// populate, converge, publish sweeps, churn, crashes — executed with the
// trace ring off, on (ring), and unbounded (full), on fresh backends.
//
// Two claims are gated on this table:
//  * off is free: trace = off leaves a null ring pointer, so every emit
//    site is one never-taken branch and the recorder digest column must
//    be bit-identical across all three modes (instrumentation may never
//    perturb protocol behavior — the golden-digest tests pin the same
//    invariant);
//  * ring is cheap: scripts/compare_benches.sh asserts the ring row's
//    cpu time stays within 10% of the off row on every PR (a special
//    intra-suite ratio gate, not the usual baseline diff — wall-clock
//    ratios are robust where absolute times are not).
//
// full mode is reported but not gated: it appends unbounded records plus
// one record per simulator message, and exists for post-mortem depth,
// not production cadence.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "obs/trace.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::util::table;

drt::engine::scenario make_scenario() {
  return drt::engine::scenario::make("trace_overhead")
      .seed(99)
      .populate(256)
      .converge()
      .publish_sweep(512, drt::workload::event_family::uniform)
      .churn_wave(64)
      .converge()
      .publish_batch(512, 16, drt::workload::event_family::uniform)
      .crash_burst(0.05)
      .converge()
      .build();
}

void run_trace_overhead(benchmark::State& state, drt::obs::trace_mode mode) {
  const auto sc = make_scenario();
  std::uint64_t digest = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    drt::engine::overlay_backend_config cfg;
    cfg.net.seed = 2007;
    cfg.dr.trace = mode;
    cfg.dr.trace_dump = false;  // measure the ring, not the dump path
    drt::engine::drtree_backend be(cfg);
    drt::engine::scenario_runner runner(be);
    const auto rec = runner.run(sc);
    digest = rec.digest();
    if (const auto* t = be.trace()) records = t->emitted();
    benchmark::DoNotOptimize(digest);
  }

  state.counters["digest_lo32"] =
      static_cast<double>(digest & 0xffffffffull);
  state.counters["trace_records"] = static_cast<double>(records);

  results::instance().set_headers({"trace", "digest", "records"});
  results::instance().add_row({std::string(drt::obs::to_string(mode)),
                               table::cell(digest), table::cell(records)});
}

void BM_TraceOff(benchmark::State& state) {
  run_trace_overhead(state, drt::obs::trace_mode::off);
}

void BM_TraceRing(benchmark::State& state) {
  run_trace_overhead(state, drt::obs::trace_mode::ring);
}

void BM_TraceFull(benchmark::State& state) {
  run_trace_overhead(state, drt::obs::trace_mode::full);
}

}  // namespace

BENCHMARK(BM_TraceOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceRing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceFull)->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "Flight-recorder overhead: the same scenario with trace off/ring/full",
    "Expect identical digest cells in all three rows (instrumentation "
    "never perturbs the protocol) and the ring row within 10% of the off "
    "row's cpu time — scripts/compare_benches.sh gates that ratio.")
