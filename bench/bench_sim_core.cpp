// Microbenchmarks of the simulator substrate itself: raw send→deliver
// message throughput (empty and dr_msg-sized payloads) and steady-state
// event-queue ops at 10k/100k/1M queued events.  Every overlay experiment
// (churn, loss, corruption sweeps) bottoms out in these two paths, so this
// is the bench that perf PRs against the substrate diff first
// (scripts/compare_benches.sh).
//
// The workload uses only the public simulator API, so the numbers are
// directly comparable across substrate rewrites (heap scheduler vs
// calendar queue, shared_ptr payloads vs inline envelopes).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "bench_common.h"
#include "sim/simulator.h"

namespace {

using drt::sim::process;
using drt::sim::process_id;
using drt::sim::simulator;
using drt::sim::simulator_config;

/// Payload shaped like the overlay's dr_msg (~112 bytes, trivially
/// copyable): the representative hot-path message body.
struct wire_msg {
  std::uint64_t words[14] = {};
};
static_assert(sizeof(wire_msg) == 112);

/// Counts deliveries; the cheapest possible handler, so the measurement
/// isolates the substrate cost.
struct sink : process {
  std::uint64_t seen = 0;
  void on_message(process_id, std::uint64_t, const drt::sim::envelope&) override {
    ++seen;
  }
};

/// Keeps the event queue at a constant size: every timer fire schedules
/// the next one.  Delays walk a golden-ratio low-discrepancy sequence so
/// events spread over the schedule horizon instead of piling on one
/// timestamp (no RNG: the bench stays deterministic and free of RNG cost).
struct timer_relay : process {
  void on_message(process_id, std::uint64_t, const drt::sim::envelope&) override {}
  double next_delay() {
    phase_ += 0.6180339887498949;
    if (phase_ >= 1.0) phase_ -= 1.0;
    return 0.5 + phase_;
  }
  void on_timer(std::uint64_t t) override {
    sim().schedule_timer(id(), t, next_delay());
  }
  double phase_ = 0.0;
};

constexpr int kProcs = 64;
constexpr std::uint64_t kBatch = 4096;

simulator_config core_config() {
  simulator_config cfg;
  cfg.seed = 1;  // default delays: uniform(0.5, 1.5), no loss
  return cfg;
}

void BM_SendDeliverEmpty(benchmark::State& state) {
  simulator s(core_config());
  for (int i = 0; i < kProcs; ++i) s.add_process(std::make_unique<sink>());
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      const auto from = static_cast<process_id>(i & (kProcs - 1));
      const auto to = static_cast<process_id>((i * 7 + 1) & (kProcs - 1));
      s.send(from, to, i);
    }
    s.run_steps(kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["msgs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SendDeliverEmpty);

void BM_SendDeliverPayload(benchmark::State& state) {
  simulator s(core_config());
  for (int i = 0; i < kProcs; ++i) s.add_process(std::make_unique<sink>());
  wire_msg body;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      const auto from = static_cast<process_id>(i & (kProcs - 1));
      const auto to = static_cast<process_id>((i * 7 + 1) & (kProcs - 1));
      body.words[0] = i;
      s.send<wire_msg>(from, to, i, body);
    }
    s.run_steps(kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["msgs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SendDeliverPayload);

/// Steady-state schedule+pop cost with `range(0)` events queued: every
/// executed timer re-arms itself, so each handler step is exactly one pop
/// plus one push at constant queue depth.
void BM_QueueOps(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  simulator s(core_config());
  auto relay = std::make_unique<timer_relay>();
  auto* r = relay.get();
  const auto id = s.add_process(std::move(relay));
  for (std::uint64_t i = 0; i < depth; ++i) {
    s.schedule_timer(id, i, r->next_delay());
  }
  for (auto _ : state) {
    s.run_steps(kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["ops_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QueueOps)->Arg(10000)->Arg(100000)->Arg(1000000);

}  // namespace

DRT_BENCH_MAIN("sim_core",
               "Simulator substrate microbenchmarks: send->deliver message "
               "throughput and event-queue ops at fixed queue depths")
