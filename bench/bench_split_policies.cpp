// Experiment E13 (§3.2 split methods): linear vs quadratic vs R* splits.
//
// Expected shape (classical R-tree results, which the DR-tree inherits
// because it runs the identical split code): R* yields the least interior
// overlap and area (fewest false positives downstream), quadratic close
// behind, linear cheapest to compute but loosest; in the overlay the FP
// rate follows the same ordering.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "rtree/rtree.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/workload.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::rtree::split_method;
using drt::util::table;

void BM_SplitPolicy(benchmark::State& state) {
  const auto method = static_cast<split_method>(state.range(0));
  const bool clustered = state.range(1) != 0;

  // Part 1: classic R-tree structure quality.
  drt::util::rng rng(101 + state.range(0));
  drt::workload::subscription_params params;
  params.workspace = drt::geo::make_rect2(0, 0, 1000, 1000);
  const auto rects = drt::workload::make_subscriptions(
      clustered ? drt::workload::subscription_family::clustered
                : drt::workload::subscription_family::uniform,
      2000, rng, params);

  drt::rtree::rtree_config rc;
  rc.method = method;
  rc.rstar_reinsert = method == split_method::rstar;
  drt::rtree::rtree_stats stats;
  double query_nodes = 0.0;
  for (auto _ : state) {
    drt::rtree::rtree2 index(rc);
    for (std::size_t i = 0; i < rects.size(); ++i) index.insert(rects[i], i);
    stats = index.stats();
    index.last_nodes_visited = 0;
    std::size_t queries = 0;
    std::vector<std::uint64_t> hits;  // reused query buffer
    for (int q = 0; q < 500; ++q) {
      const auto p = drt::workload::make_event_point(
          drt::workload::event_family::uniform, rng, params.workspace);
      index.search_point(p, hits);
      benchmark::DoNotOptimize(hits.data());
      ++queries;
    }
    query_nodes = static_cast<double>(index.last_nodes_visited) /
                  static_cast<double>(queries);
  }

  // Part 2: DR-tree overlay accuracy with the same split code.
  drt::analysis::harness_config hc;
  hc.dr.split = method;
  hc.family = clustered ? drt::workload::subscription_family::clustered
                        : drt::workload::subscription_family::uniform;
  hc.net.seed = 103 + state.range(0);
  testbed tb(hc);
  tb.populate(128);
  tb.converge();
  const auto acc = tb.publish_sweep(200, drt::workload::event_family::matching);

  state.counters["interior_overlap"] = stats.interior_overlap;
  state.counters["query_nodes"] = query_nodes;
  state.counters["overlay_fp"] = acc.fp_rate();

  results::instance().set_headers({"split", "workload", "rtree_overlap",
                                   "rtree_area", "splits", "reinserts",
                                   "query_nodes", "overlay_fp_rate"});
  results::instance().add_row(
      {to_string(method), clustered ? "clustered" : "uniform",
       table::cell(stats.interior_overlap, 0),
       table::cell(stats.interior_area, 0), table::cell(stats.splits),
       table::cell(stats.reinsertions), table::cell(query_nodes, 1),
       table::cell(acc.fp_rate(), 4)});
}

}  // namespace

BENCHMARK(BM_SplitPolicy)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})  // method x workload
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E13: split-policy ablation (linear vs quadratic vs R*, §3.2)",
    "Expect R* to minimize interior overlap/area and query cost, linear "
    "to be loosest; the overlay FP rate follows the same ordering.")
