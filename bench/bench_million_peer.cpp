// Million-peer scale run over the sharded kernel (DESIGN.md §8).
//
// The workload is the PR-gating scale story: populate N peers through
// the sharded DR-tree backend, run a churn wave (crash burst, repair
// rounds, partial restarts, repair again), then a publish sweep that
// fans every event out across the shard forest.  Measured per phase in
// wall-clock seconds, plus the real protocol-state footprint from the
// instance arenas (bytes/peer) and the kernel's cross-shard traffic.
//
// Two populations:
//  * 100k at shards {1, 4} — always registered; the tier-1 gate in
//    scripts/compare_benches.sh tracks it, and the 4-shard run is
//    expected >= 2x faster than 1-shard (the join contact walk and the
//    crash purge scan only their own shard).
//  * 1M at 4 shards — registered only when DRT_MILLION_PEER is set in
//    the environment (minutes of wall-clock; run once per PR to produce
//    the committed artifact, not in the regression loop).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "engine/backends.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::util::table;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void run_scale(benchmark::State& state, std::size_t n, std::size_t shards) {
  drt::engine::overlay_backend_config cfg;
  // Small duplicate-suppression rings: the default 2048-entry ring is
  // 16 GB of zeros at a million peers and a publish sweep this short
  // cannot wrap even a small one.
  cfg.dr.seen_ring = 64;
  // Stretch the stabilize cadence: every join cascade advances sim time
  // past the default 10s period, so populate at the default would spend
  // ~N^2/2 stabilizer firings drowning the scale signal (convergence-
  // vs-cadence is bench_*_stabilize territory; churn here drives repair
  // through explicit step_round() calls, which fire every peer once per
  // round whatever the period's length).
  cfg.dr.stabilize_period = 5000.0;
  cfg.net.seed = 2007;

  const std::size_t crashes = std::max<std::size_t>(16, n / 1000);
  const std::size_t publishes = 128;

  double populate_s = 0.0;
  double churn_s = 0.0;
  double stabilize_s = 0.0;
  double publish_s = 0.0;
  double bytes_per_peer = 0.0;
  double cross_messages = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t interested = 0;

  for (auto _ : state) {
    drt::engine::sharded_drtree_backend be(cfg, shards);
    drt::util::rng rng(cfg.net.seed ^ (n * 31 + shards));
    const auto& ws = cfg.dr.workspace;
    const double wx = ws.hi[0] - ws.lo[0];
    const double wy = ws.hi[1] - ws.lo[1];
    auto small_filter = [&] {
      // ~0.0009% of the workspace area each: a handful of matches per
      // event even at a million subscriptions.
      const double w = rng.uniform_real(wx * 0.001, wx * 0.005);
      const double h = rng.uniform_real(wy * 0.001, wy * 0.005);
      const double x = rng.uniform_real(ws.lo[0], ws.hi[0] - w);
      const double y = rng.uniform_real(ws.lo[1], ws.hi[1] - h);
      return drt::geo::make_rect2(x, y, x + w, y + h);
    };

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) be.subscribe(small_filter());
    populate_s = seconds_since(t0);

    // Churn: an uncontrolled crash burst, one repair round, revive half
    // the victims with their stale state, repair again.  The stabilizer
    // rounds are timed separately so the JSON splits repair wall-clock
    // from the crash/restart bookkeeping (churn_s stays the phase total,
    // comparable with older artifacts).
    t0 = std::chrono::steady_clock::now();
    stabilize_s = 0.0;
    std::vector<drt::engine::sub_id> victims;
    victims.reserve(crashes);
    while (victims.size() < crashes) {
      const auto s = static_cast<drt::engine::sub_id>(rng.index(n));
      if (be.crash(s)) victims.push_back(s);
    }
    auto ts = std::chrono::steady_clock::now();
    be.step_round();
    stabilize_s += seconds_since(ts);
    for (std::size_t i = 0; i < victims.size() / 2; ++i) {
      be.restart(victims[i]);
    }
    ts = std::chrono::steady_clock::now();
    be.step_round();
    stabilize_s += seconds_since(ts);
    churn_s = seconds_since(t0);

    // Publish sweep: every event publishes in one shard and fans out to
    // the rest through the kernel barrier.
    t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < publishes; ++i) {
      auto pub = static_cast<drt::engine::sub_id>(rng.index(n));
      while (!be.alive(pub)) {
        pub = static_cast<drt::engine::sub_id>(rng.index(n));
      }
      const drt::spatial::pt value{{rng.uniform_real(ws.lo[0], ws.hi[0]),
                                    rng.uniform_real(ws.lo[1], ws.hi[1])}};
      const auto rep = be.publish(pub, value);
      delivered += rep.delivered;
      interested += rep.interested;
    }
    publish_s = seconds_since(t0);

    const auto arena = be.arena_stats();
    bytes_per_peer = static_cast<double>(arena.total_bytes()) /
                     static_cast<double>(be.population());
    cross_messages =
        static_cast<double>(be.kernel().metrics().cross_messages);
  }

  state.counters["populate_s"] = populate_s;
  state.counters["churn_s"] = churn_s;
  state.counters["stabilize_s"] = stabilize_s;
  state.counters["publish_s"] = publish_s;
  state.counters["arena_bytes_per_peer"] = bytes_per_peer;
  state.counters["cross_messages"] = cross_messages;
  state.counters["joins_per_s"] =
      populate_s == 0.0 ? 0.0 : static_cast<double>(n) / populate_s;

  results::instance().set_headers({"N", "shards", "populate_s", "churn_s",
                                   "stabilize_s", "publish_s", "joins/s",
                                   "arena_B/peer", "cross_msgs", "delivered",
                                   "interested"});
  results::instance().add_row(
      {table::cell(n), table::cell(shards), table::cell(populate_s, 2),
       table::cell(churn_s, 2), table::cell(stabilize_s, 2),
       table::cell(publish_s, 2),
       table::cell(populate_s == 0.0 ? 0.0
                                     : static_cast<double>(n) / populate_s,
                   0),
       table::cell(bytes_per_peer, 1),
       table::cell(static_cast<std::size_t>(cross_messages)),
       table::cell(delivered), table::cell(interested)});
}

void BM_ShardedScale(benchmark::State& state) {
  run_scale(state, static_cast<std::size_t>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
}

// The gated full-scale run: DRT_BENCH_MAIN owns main(), so the extra
// registration happens in a static initializer guarded by the env var.
const bool registered_million = [] {
  if (std::getenv("DRT_MILLION_PEER") == nullptr) return false;
  benchmark::RegisterBenchmark("BM_ShardedScale/1000000/4",
                               [](benchmark::State& s) {
                                 run_scale(s, 1000000, 4);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  return true;
}();

}  // namespace

BENCHMARK(BM_ShardedScale)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

DRT_BENCH_MAIN(
    "Sharded kernel scale: churn + publish at 100k/1M peers",
    "Expect the 4-shard run >= 2x faster than 1-shard at equal N (join "
    "contact walks and crash purges scan only their own shard) with "
    "per-peer protocol state flat in N; set DRT_MILLION_PEER=1 to also "
    "run the million-peer 4-shard configuration.")
