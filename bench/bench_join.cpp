// Experiment E5 (Lemma 3.2): join cost vs N.
//
// Paper prediction: a join stabilizes in O(log_m N) steps — the request
// climbs to the root and descends to the last non-leaf level.  Expected
// shape: messages and handler steps per join grow logarithmically with N
// (doubling N adds a constant), for both uniform and clustered workloads.
//
// Driven through the engine: the scenario populates N, converges, then
// runs 20 single-join populate phases; each join's message cost is that
// phase's recorder row.  A second benchmark runs the canned flash_crowd
// scenario — a join storm against a small stable population — and
// compares per-join cost during the storm against the steady state.
#include <benchmark/benchmark.h>

#include "analysis/models.h"
#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::util::table;

constexpr std::size_t kMeasuredJoins = 20;

void BM_JoinCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool clustered = state.range(1) != 0;

  const auto sc =
      drt::engine::scenario::make("join_cost")
          .family(clustered ? drt::workload::subscription_family::clustered
                            : drt::workload::subscription_family::uniform)
          .populate(n)
          .converge()
          .repeat(kMeasuredJoins,
                  [](drt::engine::scenario::builder& b) { b.populate(1); })
          .build();

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 23 + n;

  drt::util::accumulator msgs;
  for (auto _ : state) {
    drt::engine::drtree_backend be(bc);
    drt::engine::scenario_runner runner(be);
    const auto rec = runner.run(sc);
    // The trailing single-join populate rows carry the join-attributable
    // message cost (draining also executes unrelated periodic stabilizer
    // passes, so handler steps are not comparable).
    for (const auto& row : rec.phases()) {
      if (row.phase == "populate" && row.joins == 1) {
        msgs.add(static_cast<double>(row.messages));
      }
    }
  }

  state.counters["msgs_per_join"] = msgs.mean();
  state.counters["log_m_N"] = drt::analysis::predicted_height(n, 2);

  results::instance().set_headers(
      {"N", "workload", "msgs/join", "max_msgs", "log_m(N)"});
  results::instance().add_row(
      {table::cell(n), clustered ? "clustered" : "uniform",
       table::cell(msgs.mean(), 1), table::cell(msgs.max(), 0),
       table::cell(drt::analysis::predicted_height(n, 2), 2)});
}

void BM_FlashCrowd(benchmark::State& state) {
  const auto base = static_cast<std::size_t>(state.range(0));
  const auto crowd = static_cast<std::size_t>(state.range(1));

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 29 + base + crowd;

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(bc);
    drt::engine::scenario_runner runner(be);
    rec = runner.run(drt::engine::canned::flash_crowd(base, crowd));
  }

  // Rows: populate(base), converge, sweep, populate(crowd), converge,
  // sweep, shape.  The second populate is the storm.
  double base_msgs_per_join = 0.0;
  double crowd_msgs_per_join = 0.0;
  int crowd_rounds = 0;
  std::size_t crowd_fn = 0;
  for (const auto& row : rec.phases()) {
    if (row.phase == "populate" && row.joins == base) {
      base_msgs_per_join = static_cast<double>(row.messages) /
                           static_cast<double>(row.joins);
    }
    if (row.phase == "populate" && row.joins == crowd) {
      crowd_msgs_per_join = static_cast<double>(row.messages) /
                            static_cast<double>(row.joins);
    }
  }
  if (const auto* conv = rec.last("converge_until_legal")) {
    crowd_rounds = conv->rounds;
  }
  if (const auto* sweep = rec.last("publish_sweep")) {
    crowd_fn = sweep->false_negatives;
  }

  state.counters["base_msgs_per_join"] = base_msgs_per_join;
  state.counters["crowd_msgs_per_join"] = crowd_msgs_per_join;
  state.counters["rounds_after_crowd"] = crowd_rounds;
  state.counters["fn_after_crowd"] = static_cast<double>(crowd_fn);

  // Same schema as BM_JoinCost; the row reports the storm's per-join
  // cost (max_msgs is not tracked for the aggregated crowd phase).
  results::instance().set_headers(
      {"N", "workload", "msgs/join", "max_msgs", "log_m(N)"});
  results::instance().add_row(
      {table::cell(base) + "+" + table::cell(crowd), "flash_crowd",
       table::cell(crowd_msgs_per_join, 1), "-",
       table::cell(drt::analysis::predicted_height(base + crowd, 2), 2)});
}

}  // namespace

BENCHMARK(BM_JoinCost)
    ->ArgsProduct({{32, 128, 512, 2048}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FlashCrowd)
    ->Args({24, 96})
    ->Args({64, 256})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E5: join cost vs N (Lemma 3.2)",
    "Expect messages/steps per join to grow ~ log(N): doubling N adds a "
    "constant, not a factor; a flash crowd pays the same per-join cost "
    "and the tree re-converges with zero false negatives.")
