// Experiment E5 (Lemma 3.2): join cost vs N.
//
// Paper prediction: a join stabilizes in O(log_m N) steps — the request
// climbs to the root and descends to the last non-leaf level.  Expected
// shape: messages and handler steps per join grow logarithmically with N
// (doubling N adds a constant), for both uniform and clustered workloads.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "analysis/models.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_JoinCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool clustered = state.range(1) != 0;

  drt::analysis::harness_config hc;
  hc.family = clustered ? drt::workload::subscription_family::clustered
                        : drt::workload::subscription_family::uniform;
  hc.net.seed = 23 + n;

  testbed tb(hc);
  tb.populate(n);
  tb.converge();

  drt::util::accumulator msgs;
  auto params = hc.subs;
  params.workspace = hc.dr.workspace;
  for (auto _ : state) {
    // Measure 20 additional joins against the size-N overlay.  Messages
    // are the join-attributable cost; draining also executes unrelated
    // periodic stabilizer passes, so handler steps are not comparable.
    const auto rects = drt::workload::make_subscriptions(
        hc.family, 20, tb.workload_rng(), params);
    for (const auto& r : rects) {
      const auto m0 = tb.overlay().sim().metrics().messages_sent;
      tb.add(r);
      msgs.add(static_cast<double>(
          tb.overlay().sim().metrics().messages_sent - m0));
    }
  }

  state.counters["msgs_per_join"] = msgs.mean();
  state.counters["log_m_N"] = drt::analysis::predicted_height(n, 2);

  results::instance().set_headers(
      {"N", "workload", "msgs/join", "max_msgs", "log_m(N)"});
  results::instance().add_row(
      {table::cell(n), clustered ? "clustered" : "uniform",
       table::cell(msgs.mean(), 1), table::cell(msgs.max(), 0),
       table::cell(drt::analysis::predicted_height(n, 2), 2)});
}

}  // namespace

BENCHMARK(BM_JoinCost)
    ->ArgsProduct({{32, 128, 512, 2048}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E5: join cost vs N (Lemma 3.2)",
    "Expect messages/steps per join to grow ~ log(N): doubling N adds a "
    "constant, not a factor.")
