// Experiment E6 (Lemmas 3.3/3.4): convergence after controlled leaves.
//
// Paper prediction: a controlled departure (and the compaction it may
// trigger) reaches a legitimate configuration in O(N log_m N) steps in
// the worst case.  Expected shape: rounds-to-legal stays small (a few
// stabilization periods) and grows mildly with N and with the leave
// fraction; messages grow near-linearly with the number of leavers.
#include <benchmark/benchmark.h>

#include "analysis/harness.h"
#include "bench_common.h"
#include "util/table.h"

namespace {

using drt::analysis::testbed;
using drt::bench::results;
using drt::util::table;

void BM_LeaveStabilize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto leave_pct = static_cast<std::size_t>(state.range(1));
  const bool handoff = state.range(2) != 0;

  drt::analysis::harness_config hc;
  hc.net.seed = 31 + n + leave_pct;
  hc.dr.efficient_leave = handoff;

  int rounds = 0;
  std::uint64_t messages = 0;
  bool legal = false;
  for (auto _ : state) {
    testbed tb(hc);
    tb.populate(n);
    tb.converge();

    auto live = tb.overlay().live_peers();
    tb.workload_rng().shuffle(live);
    const std::size_t leavers = std::max<std::size_t>(1, n * leave_pct / 100);
    const auto m0 = tb.overlay().sim().metrics().messages_sent;
    for (std::size_t i = 0; i < leavers && i < live.size(); ++i) {
      tb.overlay().controlled_leave(live[i]);
      tb.overlay().settle();
    }
    rounds = tb.converge(400);
    messages = tb.overlay().sim().metrics().messages_sent - m0;
    legal = tb.legal();
  }

  state.counters["rounds"] = rounds;
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["legal"] = legal ? 1.0 : 0.0;

  results::instance().set_headers({"N", "leave_%", "variant",
                                   "rounds_to_legal", "repair_messages",
                                   "legal"});
  results::instance().add_row({table::cell(n), table::cell(leave_pct),
                               handoff ? "handoff" : "fig9",
                               table::cell(static_cast<std::int64_t>(rounds)),
                               table::cell(messages), legal ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_LeaveStabilize)
    ->ArgsProduct({{64, 256, 1024}, {1, 5, 10}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E6: stabilization after controlled leaves (Lemmas 3.3/3.4)",
    "Expect a handful of rounds to re-reach a legitimate configuration, "
    "with repair traffic scaling with the number of leavers; the paper's "
    "suggested handoff variant (leave drives the repair, reconnecting "
    "whole subtrees) should cut rounds and repair traffic further.")
