// Experiment E6 (Lemmas 3.3/3.4): convergence after controlled leaves.
//
// Paper prediction: a controlled departure (and the compaction it may
// trigger) reaches a legitimate configuration in O(N log_m N) steps in
// the worst case.  Expected shape: rounds-to-legal stays small (a few
// stabilization periods) and grows mildly with N and with the leave
// fraction; messages grow near-linearly with the number of leavers.
//
// Driven through the engine: populate → converge → controlled_leave_wave
// → converge_until_legal; the handoff variant flips dr.efficient_leave
// on the backend config.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "util/table.h"

namespace {

using drt::bench::results;
using drt::engine::metrics_recorder;
using drt::util::table;

void BM_LeaveStabilize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto leave_pct = static_cast<std::size_t>(state.range(1));
  const bool handoff = state.range(2) != 0;

  const std::size_t leavers = std::max<std::size_t>(1, n * leave_pct / 100);
  const auto sc = drt::engine::scenario::make("leave_stabilize")
                      .populate(n)
                      .converge()
                      .leave_count(leavers)
                      .converge(400)
                      .build();

  drt::engine::overlay_backend_config bc;
  bc.net.seed = 31 + n + leave_pct;
  bc.dr.efficient_leave = handoff;

  metrics_recorder rec;
  for (auto _ : state) {
    drt::engine::drtree_backend be(bc);
    drt::engine::scenario_runner runner(be);
    rec = runner.run(sc);
  }

  const auto* wave = rec.last("controlled_leave_wave");
  const auto* heal = rec.last("converge_until_legal");
  // Repair traffic spans the departures themselves plus the rounds to
  // re-legalize (the historical measurement window).
  const auto messages = wave->messages + heal->messages;

  state.counters["rounds"] = heal->rounds;
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["legal"] = heal->legal == 1 ? 1.0 : 0.0;

  results::instance().set_headers({"N", "leave_%", "variant",
                                   "rounds_to_legal", "repair_messages",
                                   "legal"});
  results::instance().add_row(
      {table::cell(n), table::cell(leave_pct),
       handoff ? "handoff" : "fig9",
       table::cell(static_cast<std::int64_t>(heal->rounds)),
       table::cell(static_cast<std::size_t>(messages)),
       heal->legal == 1 ? "yes" : "NO"});
}

}  // namespace

BENCHMARK(BM_LeaveStabilize)
    ->ArgsProduct({{64, 256, 1024}, {1, 5, 10}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

DRT_BENCH_MAIN(
    "E6: stabilization after controlled leaves (Lemmas 3.3/3.4)",
    "Expect a handful of rounds to re-reach a legitimate configuration, "
    "with repair traffic scaling with the number of leavers; the paper's "
    "suggested handoff variant (leave drives the repair, reconnecting "
    "whole subtrees) should cut rounds and repair traffic further.")
