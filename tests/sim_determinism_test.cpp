// Determinism contract of the simulator substrate (DESIGN.md):
// event execution follows the strict total order (at, seq), so a seeded
// run is bit-reproducible — across repeated runs, and across scheduler
// implementations (the binary-heap seed vs the calendar queue).
//
// The scenario below exercises every queue path at once: joins, periodic
// stabilizers, message loss, crashes (in-flight purge), controlled
// leaves, corruption repair, publishes and range searches.  Its delivery
// trace is folded into an FNV-1a hash (including the raw bit patterns of
// the delivery timestamps) and compared against golden values recorded
// with the original std::priority_queue scheduler.  If a scheduler change
// reorders two events or perturbs one timestamp, these hashes move.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "drtree/corruptor.h"
#include "drtree/overlay.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace drt {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_u64(h, bits);
}

struct scenario_digest {
  std::uint64_t trace_hash = kFnvOffset;
  std::uint64_t metrics_hash = kFnvOffset;
  std::uint64_t deliveries = 0;

  friend bool operator==(const scenario_digest&,
                         const scenario_digest&) = default;
};

/// Churn + corruption + dissemination workload over the full overlay
/// stack, fingerprinted via the simulator trace hook.
scenario_digest run_scenario(std::uint64_t seed) {
  overlay::dr_config dcfg;
  dcfg.workspace = geo::make_rect2(0, 0, 100, 100);
  sim::simulator_config scfg;
  scfg.seed = seed;
  scfg.message_loss = 0.02;
  overlay::dr_overlay o(dcfg, scfg);

  scenario_digest d;
  o.sim().set_trace([&d](const sim::simulator::trace_event& e) {
    fnv_double(d.trace_hash, e.at);
    fnv_u64(d.trace_hash, e.from);
    fnv_u64(d.trace_hash, e.to);
    fnv_u64(d.trace_hash, e.type);
    ++d.deliveries;
  });

  util::rng geo_rng(seed ^ 0x9e3779b97f4a7c15ull);
  auto random_box = [&] {
    const double x1 = geo_rng.uniform_real(0, 100);
    const double x2 = geo_rng.uniform_real(0, 100);
    const double y1 = geo_rng.uniform_real(0, 100);
    const double y2 = geo_rng.uniform_real(0, 100);
    return geo::make_rect2(std::min(x1, x2), std::min(y1, y2),
                           std::max(x1, x2), std::max(y1, y2));
  };

  for (int i = 0; i < 48; ++i) o.add_peer_and_settle(random_box());

  auto publish_some = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const auto live = o.live_peers();
      const auto pub = live[geo_rng.index(live.size())];
      const spatial::pt value{
          {geo_rng.uniform_real(0, 100), geo_rng.uniform_real(0, 100)}};
      o.publish_and_drain(pub, value);
    }
  };

  publish_some(10);

  // Uncontrolled churn: crashes with traffic still in flight.
  for (int i = 0; i < 6; ++i) {
    const auto live = o.live_peers();
    if (live.size() <= 4) break;
    o.crash(live[geo_rng.index(live.size())]);
  }
  o.advance(dcfg.stabilize_period);
  o.settle();

  // Controlled churn.
  for (int i = 0; i < 4; ++i) {
    const auto live = o.live_peers();
    if (live.size() <= 4) break;
    o.controlled_leave(live[geo_rng.index(live.size())]);
  }
  o.settle();

  // Transient corruption, then stabilization rounds.
  overlay::corruptor c(o, seed + 17);
  c.corrupt(overlay::uniform_corruption(0.05));
  for (int round = 0; round < 6; ++round) {
    o.advance(dcfg.stabilize_period);
    o.settle();
  }

  publish_some(10);
  for (int i = 0; i < 3; ++i) {
    const auto live = o.live_peers();
    o.search_and_drain(live[geo_rng.index(live.size())], random_box());
  }

  // Drain completely before reading the counters so the crash-time /
  // delivery-time accounting split of messages_to_dead cannot show.
  o.settle();

  const auto& m = o.sim().metrics();
  fnv_u64(d.metrics_hash, m.messages_sent);
  fnv_u64(d.metrics_hash, m.messages_delivered);
  fnv_u64(d.metrics_hash, m.messages_dropped);
  fnv_u64(d.metrics_hash, m.messages_partitioned);
  fnv_u64(d.metrics_hash, m.messages_to_dead);
  fnv_u64(d.metrics_hash, m.timers_fired);
  fnv_u64(d.metrics_hash, m.handler_steps);
  fnv_double(d.metrics_hash, o.sim().now());
  fnv_u64(d.metrics_hash, o.live_peers().size());
  return d;
}

TEST(SimDeterminism, SameSeedSameDigest) {
  const auto a = run_scenario(7);
  const auto b = run_scenario(7);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.deliveries, 0u);
}

TEST(SimDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_scenario(7), run_scenario(8));
}

// Golden digests recorded with the seed std::priority_queue scheduler.
// A scheduler that preserves the exact (at, seq) delivery order — and the
// exact RNG consumption order — reproduces them bit-for-bit.
TEST(SimDeterminism, MatchesHeapSchedulerGolden) {
  const auto d7 = run_scenario(7);
  EXPECT_EQ(d7.trace_hash, 13395966864903312472ull);
  EXPECT_EQ(d7.metrics_hash, 9174459223774240891ull);
  EXPECT_EQ(d7.deliveries, 561ull);

  const auto d11 = run_scenario(11);
  EXPECT_EQ(d11.trace_hash, 10523553348140203879ull);
  EXPECT_EQ(d11.metrics_hash, 1650083232181740924ull);
  EXPECT_EQ(d11.deliveries, 588ull);
}

// Direct scheduler equivalence: the calendar queue must pop the exact
// (at, seq) sequence a binary heap pops, under adversarial mixes of
// zero/short/long delays (long ones land in the overflow heap), partial
// drains, and mid-stream purges.
TEST(CalendarQueue, MatchesBinaryHeapPopOrder) {
  using ref_item = std::pair<double, std::uint64_t>;  // (at, seq)
  util::rng r(2026);
  for (int trial = 0; trial < 6; ++trial) {
    // Exercise narrow and wide buckets relative to the delay mix.
    sim::calendar_queue q(trial % 2 == 0 ? 0.125 : 0.9);
    std::priority_queue<ref_item, std::vector<ref_item>,
                        std::greater<ref_item>>
        ref;
    double now = 0.0;
    std::uint64_t seq = 0;
    auto push_one = [&] {
      double delay = 0.0;
      switch (r.uniform_int(0, 3)) {
        case 0: delay = 0.0; break;                        // active bucket
        case 1: delay = r.uniform_real(0.0, 1.5); break;   // nearby
        case 2: delay = r.uniform_real(0.0, 30.0); break;  // window-scale
        default: delay = r.uniform_real(0.0, 500.0);       // overflow
      }
      sim::pending_event ev;
      ev.at = now + delay;
      ev.seq = seq;
      ev.what = sim::pending_event::kind::timer;
      ev.to = static_cast<sim::process_id>(seq % 7);
      q.push(std::move(ev));
      ref.emplace(now + delay, seq);
      ++seq;
    };
    for (int op = 0; op < 20000; ++op) {
      if (ref.empty() || r.chance(0.55)) {
        push_one();
      } else if (r.chance(0.002)) {
        // Crash-style purge: drop every event addressed to one target
        // from both structures, then keep comparing.
        const auto victim = static_cast<sim::process_id>(r.uniform_int(0, 6));
        q.erase_if([victim](const sim::pending_event& ev) {
          return ev.to == victim;
        });
        std::priority_queue<ref_item, std::vector<ref_item>,
                            std::greater<ref_item>>
            kept;
        while (!ref.empty()) {
          if (static_cast<sim::process_id>(ref.top().second % 7) != victim) {
            kept.push(ref.top());
          }
          ref.pop();
        }
        ref = std::move(kept);
      } else {
        const auto ev = q.pop();
        ASSERT_EQ(ev.at, ref.top().first);
        ASSERT_EQ(ev.seq, ref.top().second);
        ref.pop();
        ASSERT_GE(ev.at, now);
        now = ev.at;
      }
    }
    while (!ref.empty()) {
      const auto ev = q.pop();
      ASSERT_EQ(ev.at, ref.top().first);
      ASSERT_EQ(ev.seq, ref.top().second);
      ref.pop();
      now = ev.at;
    }
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace drt
