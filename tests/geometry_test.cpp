#include <gtest/gtest.h>

#include <limits>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "util/rng.h"

namespace drt::geo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Rect, EmptyProperties) {
  const auto e = rect2::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.area(), 0.0);
  EXPECT_EQ(e.margin(), 0.0);
  EXPECT_FALSE(e.contains(point2{{0, 0}}));
  EXPECT_FALSE(e.intersects(e));
}

TEST(Rect, UniverseContainsEverything) {
  const auto u = rect2::universe();
  EXPECT_FALSE(u.is_empty());
  EXPECT_FALSE(u.is_bounded());
  EXPECT_TRUE(u.contains(point2{{1e300, -1e300}}));
  EXPECT_TRUE(u.contains(make_rect2(0, 0, 1, 1)));
  EXPECT_EQ(u.area(), kInf);
}

TEST(Rect, PointContainmentIsInclusive) {
  const auto r = make_rect2(0, 0, 10, 5);
  EXPECT_TRUE(r.contains(point2{{0, 0}}));
  EXPECT_TRUE(r.contains(point2{{10, 5}}));
  EXPECT_TRUE(r.contains(point2{{5, 2.5}}));
  EXPECT_FALSE(r.contains(point2{{10.001, 2}}));
  EXPECT_FALSE(r.contains(point2{{5, -0.001}}));
}

TEST(Rect, RectContainment) {
  const auto outer = make_rect2(0, 0, 10, 10);
  const auto inner = make_rect2(2, 2, 8, 8);
  const auto crossing = make_rect2(5, 5, 15, 15);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(crossing));
  EXPECT_TRUE(outer.contains(rect2::empty()));
  EXPECT_FALSE(rect2::empty().contains(outer));
}

TEST(Rect, Intersection) {
  const auto a = make_rect2(0, 0, 10, 10);
  const auto b = make_rect2(5, 5, 15, 15);
  const auto c = make_rect2(20, 20, 30, 30);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  const auto inter = intersection(a, b);
  EXPECT_EQ(inter, make_rect2(5, 5, 10, 10));
  EXPECT_TRUE(intersection(a, c).is_empty());
  // Touching edges intersect (closed rectangles).
  EXPECT_TRUE(a.intersects(make_rect2(10, 0, 20, 10)));
}

TEST(Rect, JoinIsSmallestCover) {
  const auto a = make_rect2(0, 0, 2, 2);
  const auto b = make_rect2(5, 1, 6, 7);
  const auto j = join(a, b);
  EXPECT_EQ(j, make_rect2(0, 0, 6, 7));
  EXPECT_TRUE(j.contains(a));
  EXPECT_TRUE(j.contains(b));
}

TEST(Rect, JoinWithEmptyIsIdentity) {
  const auto a = make_rect2(1, 2, 3, 4);
  EXPECT_EQ(join(a, rect2::empty()), a);
  EXPECT_EQ(join(rect2::empty(), a), a);
}

TEST(Rect, AreaMarginCenter) {
  const auto r = make_rect2(0, 0, 4, 3);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.margin(), 7.0);
  EXPECT_EQ(r.center(), (point2{{2.0, 1.5}}));
  // Degenerate: zero width.
  EXPECT_DOUBLE_EQ(make_rect2(1, 0, 1, 5).area(), 0.0);
  EXPECT_FALSE(make_rect2(1, 0, 1, 5).is_empty());
}

TEST(Rect, Enlargement) {
  const auto r = make_rect2(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(r.enlargement(make_rect2(2, 2, 5, 5)), 0.0);
  EXPECT_DOUBLE_EQ(r.enlargement(make_rect2(0, 0, 20, 10)), 100.0);
}

TEST(Rect, OverlapArea) {
  const auto a = make_rect2(0, 0, 10, 10);
  const auto b = make_rect2(5, 5, 15, 15);
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 25.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(make_rect2(20, 20, 30, 30)), 0.0);
}

TEST(Rect, UnboundedDimensionModelsUndefinedAttribute) {
  // A filter that constrains only dimension 0 (Fig. 1: "if one attribute
  // is undefined, the rectangle is unbounded in that dimension").
  rect2 r;
  r.lo = {2.0, -kInf};
  r.hi = {4.0, kInf};
  EXPECT_FALSE(r.is_bounded());
  EXPECT_TRUE(r.contains(point2{{3.0, 1e9}}));
  EXPECT_FALSE(r.contains(point2{{5.0, 0.0}}));
  EXPECT_EQ(r.area(), kInf);
  const auto clamped = r.clamped(make_rect2(0, 0, 100, 100));
  EXPECT_TRUE(clamped.is_bounded());
  EXPECT_EQ(clamped, make_rect2(2, 0, 4, 100));
}

TEST(Rect, ClampedToWorkspace) {
  const auto r = make_rect2(-5, 50, 200, 60);
  EXPECT_EQ(r.clamped(make_rect2(0, 0, 100, 100)), make_rect2(0, 50, 100, 60));
}

TEST(Rect, MinDist2) {
  const auto r = make_rect2(10, 10, 20, 20);
  EXPECT_DOUBLE_EQ(r.min_dist2(point2{{15, 15}}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.min_dist2(point2{{10, 10}}), 0.0);   // corner
  EXPECT_DOUBLE_EQ(r.min_dist2(point2{{5, 15}}), 25.0);   // left face
  EXPECT_DOUBLE_EQ(r.min_dist2(point2{{15, 25}}), 25.0);  // above
  EXPECT_DOUBLE_EQ(r.min_dist2(point2{{7, 6}}), 9.0 + 16.0);  // corner dist
}

TEST(Rect, AtPoint) {
  const auto r = rect2::at(point2{{3, 4}});
  EXPECT_TRUE(r.contains(point2{{3, 4}}));
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  EXPECT_FALSE(r.is_empty());
}

TEST(Rect, ToStringIsReadable) {
  EXPECT_EQ(rect2::empty().to_string(), "[empty]");
  EXPECT_NE(make_rect2(0, 0, 1, 1).to_string().find("0..1"),
            std::string::npos);
}

TEST(Rect, HigherDimensions) {
  rect3 r;
  r.lo = {0, 0, 0};
  r.hi = {2, 3, 4};
  EXPECT_DOUBLE_EQ(r.area(), 24.0);
  EXPECT_DOUBLE_EQ(r.margin(), 9.0);
  EXPECT_TRUE(r.contains(point3{{1, 1, 1}}));
  EXPECT_FALSE(r.contains(point3{{1, 1, 5}}));

  rect<4> q;
  q.lo = {0, 0, 0, 0};
  q.hi = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(q.area(), 1.0);
  EXPECT_EQ(q.dims(), 4u);
}

// Property-style sweep: join/intersection algebra on random rectangles.
class RectAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RectAlgebraProperty, JoinCoversAndIntersectionIsContained) {
  util::rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    auto random_rect = [&] {
      const double x1 = rng.uniform_real(-50, 50);
      const double x2 = rng.uniform_real(-50, 50);
      const double y1 = rng.uniform_real(-50, 50);
      const double y2 = rng.uniform_real(-50, 50);
      return make_rect2(std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                        std::max(y1, y2));
    };
    const auto a = random_rect();
    const auto b = random_rect();
    const auto j = join(a, b);
    EXPECT_TRUE(j.contains(a));
    EXPECT_TRUE(j.contains(b));
    EXPECT_GE(j.area(), std::max(a.area(), b.area()));
    EXPECT_EQ(join(a, b), join(b, a));  // commutative

    const auto inter = intersection(a, b);
    if (!inter.is_empty()) {
      EXPECT_TRUE(a.contains(inter));
      EXPECT_TRUE(b.contains(inter));
      EXPECT_LE(inter.area(), std::min(a.area(), b.area()));
      EXPECT_DOUBLE_EQ(inter.area(), a.overlap_area(b));
    } else {
      EXPECT_FALSE(a.intersects(b));
    }

    // Containment is consistent with join/intersection.
    if (a.contains(b)) {
      EXPECT_EQ(join(a, b), a);
      EXPECT_EQ(intersection(a, b), b);
    }

    // Point membership respects intersection.
    point2 p{{rng.uniform_real(-50, 50), rng.uniform_real(-50, 50)}};
    EXPECT_EQ(a.contains(p) && b.contains(p),
              !inter.is_empty() && inter.contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectAlgebraProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace drt::geo
