// Dirty-set stabilization (DESIGN.md §11): scheduling must never change
// *what* the protocol computes, only *when* passes run.
//
//   * full mode stays bit-for-bit the legacy scheduler — the recorder
//     digests of the pre-PR goldens pin that;
//   * dirty mode produces the same delivery/accuracy metrics on canned
//     scenarios (metric equality, not digest equality: message counts
//     legitimately drop when clean peers skip their passes);
//   * silent corruption — state scrambled behind the scheduler's back,
//     with no dirty mark — is still found and repaired, because the
//     background sweep visits every peer within sweep_stride ticks;
//   * a quiescent overlay's backlog drains to zero and its pass count
//     collapses by ~sweep_stride, which is the whole point.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"

namespace drt::overlay {
namespace {

using engine::drtree_backend;
using engine::scenario_runner;
using spatial::kNoPeer;
using spatial::peer_id;

/// A populated DR-tree behind the engine interface, with white-box
/// access for fault staging (same rig as stabilizer_test).
struct rig {
  explicit rig(engine::overlay_backend_config config)
      : backend(std::make_unique<drtree_backend>(config)),
        runner(std::make_unique<scenario_runner>(*backend)) {}

  void populate(std::size_t n) { runner->populate(n); }
  int converge(int max_rounds = 80) { return runner->converge(max_rounds); }
  int step_rounds(int rounds) { return runner->step_rounds(rounds); }
  bool legal() const { return backend->legal(); }
  dr_overlay& overlay() { return backend->overlay(); }

  std::unique_ptr<drtree_backend> backend;
  std::unique_ptr<scenario_runner> runner;
};

engine::overlay_backend_config mode_config(stabilize_mode mode,
                                           std::uint64_t seed) {
  engine::overlay_backend_config bc;
  bc.net.seed = seed;
  bc.dr.stabilize = mode;
  return bc;
}

peer_id interior_non_root(rig& r) {
  const auto root = r.overlay().current_root();
  for (const auto p : r.overlay().live_peers()) {
    if (p != root && r.overlay().peer(p).top() > 0) return p;
  }
  return kNoPeer;
}

// ------------------------------------------------- full-mode golden pin

engine::metrics_recorder run_mode(const engine::scenario& sc,
                                  stabilize_mode mode,
                                  engine::overlay_backend_config bc) {
  bc.dr.stabilize = mode;
  drtree_backend be(engine::configured_for(sc, bc));
  scenario_runner runner(be);
  return runner.run(sc);
}

// The same pre-PR goldens net_test pins: stabilize_mode::full must stay
// the default AND keep the legacy periodic-timer schedule bit-for-bit.
constexpr std::uint64_t kGoldenRollingChurn = 2727552842464279799ull;
constexpr std::uint64_t kGoldenFlashCrowd = 2725230533165199554ull;
constexpr std::uint64_t kGoldenMassacreLossy = 12904214689126478679ull;

TEST(DirtyStabilize, FullModeKeepsPrePrGoldenDigests) {
  engine::overlay_backend_config bc;
  bc.net.seed = 41;
  // Explicitly full (also the default — a changed default would be a
  // silent behavior change for every existing config).
  ASSERT_EQ(engine::overlay_backend_config{}.dr.stabilize,
            stabilize_mode::full);
  EXPECT_EQ(run_mode(engine::canned::rolling_churn(48, 3, 12, 7),
                     stabilize_mode::full, bc)
                .digest(),
            kGoldenRollingChurn);
  EXPECT_EQ(run_mode(engine::canned::flash_crowd(24, 96, 7),
                     stabilize_mode::full, bc)
                .digest(),
            kGoldenFlashCrowd);

  auto lossy = bc;
  lossy.net.message_loss = 0.05;
  EXPECT_EQ(run_mode(engine::canned::massacre_then_heal(60, 1.0 / 3, 0.5, 7),
                     stabilize_mode::full, lossy)
                .digest(),
            kGoldenMassacreLossy);
}

// --------------------------------------------- dirty-vs-full metric parity

// `exact_accuracy`: compare FP/delivery counts cell-for-cell.  That holds
// when repairs are driven entirely by marked peers (joins, controlled
// leaves) so both modes walk the identical repair schedule.  After crash
// waves the *interleaving* differs — in full mode unmarked bystanders run
// passes mid-repair and may compact earlier — so the trees can converge
// to different (both legal) shapes; there only the ground-truth columns
// and zero-FN are invariants.
void expect_metric_parity(const engine::scenario& sc, bool exact_accuracy) {
  engine::overlay_backend_config bc;
  bc.net.seed = 41;
  const auto full = run_mode(sc, stabilize_mode::full, bc);
  const auto dirty = run_mode(sc, stabilize_mode::dirty, bc);

  ASSERT_EQ(full.phases().size(), dirty.phases().size()) << sc.name;
  for (std::size_t i = 0; i < full.phases().size(); ++i) {
    const auto& f = full.phases()[i];
    const auto& d = dirty.phases()[i];
    SCOPED_TRACE(sc.name + " phase " + std::to_string(i) + " (" + f.phase +
                 ")");
    ASSERT_EQ(f.phase, d.phase);
    // Population evolution and ground truth must be identical; message
    // and visited counts legitimately differ (that is the optimization).
    EXPECT_EQ(f.population, d.population);
    EXPECT_EQ(f.events, d.events);
    EXPECT_EQ(f.interested, d.interested);
    EXPECT_EQ(f.false_negatives, d.false_negatives);
    EXPECT_EQ(d.false_negatives, 0u);
    if (exact_accuracy) {
      EXPECT_EQ(f.deliveries, d.deliveries);
      EXPECT_EQ(f.false_positives, d.false_positives);
    }
    if (f.phase == "converge_until_legal") {
      EXPECT_GE(f.rounds, 0);
      EXPECT_GE(d.rounds, 0);
    }
  }
  // The scheduler actually did something different: clean peers skipped.
  std::uint64_t full_visited = 0, dirty_visited = 0, dirty_skipped = 0;
  for (const auto& m : full.phases()) full_visited += m.stabilize_visited;
  for (const auto& m : dirty.phases()) {
    dirty_visited += m.stabilize_visited;
    dirty_skipped += m.stabilize_skipped;
  }
  EXPECT_LT(dirty_visited, full_visited) << sc.name;
  EXPECT_GT(dirty_skipped, 0u) << sc.name;
}

TEST(DirtyStabilize, MetricsMatchFullModeOnRollingChurn) {
  expect_metric_parity(engine::canned::rolling_churn(48, 3, 12, 7), true);
}

TEST(DirtyStabilize, MetricsMatchFullModeOnFlashCrowd) {
  expect_metric_parity(engine::canned::flash_crowd(24, 96, 7), true);
}

TEST(DirtyStabilize, MetricsMatchFullModeOnMassacre) {
  expect_metric_parity(engine::canned::massacre_then_heal(60, 1.0 / 3, 0.5, 7),
                       false);
}

// ------------------------------------------- silent-corruption soundness

// Corruption kinds staged through the corruptor's targeted primitives,
// all of which scribble on arena state directly — no mark_dirty, no
// message, nothing the dirty-set scheduler can observe.  Soundness then
// rests entirely on the background sweep: every peer fires within
// sweep_stride ticks, so the fault is found and repair cascades (the
// repair traffic itself marks, so follow-up work is scheduled normally).
enum class silent_fault { leaf_mbr, parent, children, flag };

const char* fault_name(silent_fault f) {
  switch (f) {
    case silent_fault::leaf_mbr: return "leaf_mbr";
    case silent_fault::parent: return "parent";
    case silent_fault::children: return "children";
    case silent_fault::flag: return "flag";
  }
  return "?";
}

TEST(DirtyStabilize, SilentCorruptionRepairedByBackgroundSweep) {
  const silent_fault kinds[] = {silent_fault::leaf_mbr, silent_fault::parent,
                                silent_fault::children, silent_fault::flag};
  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    for (const auto kind : kinds) {
      SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " fault " +
                   fault_name(kind));
      auto bc = mode_config(stabilize_mode::dirty, seed);
      rig r(bc);
      r.populate(36);
      ASSERT_GE(r.converge(), 0);
      // Drain the post-join backlog so the corruption is the only
      // outstanding fault when it lands.
      const int stride = static_cast<int>(bc.dr.sweep_stride);
      r.step_rounds(stride);

      corruptor c(r.overlay(), seed * 131 + static_cast<std::uint64_t>(kind));
      switch (kind) {
        case silent_fault::leaf_mbr: {
          const auto victim = r.overlay().live_peers()[seed % 30];
          c.scramble_mbr(victim, 0);
          break;
        }
        case silent_fault::parent: {
          const auto victim = interior_non_root(r);
          ASSERT_NE(victim, kNoPeer);
          c.scramble_parent(victim, r.overlay().peer(victim).top());
          break;
        }
        case silent_fault::children: {
          const auto victim = interior_non_root(r);
          ASSERT_NE(victim, kNoPeer);
          c.scramble_children(victim, r.overlay().peer(victim).top());
          break;
        }
        case silent_fault::flag: {
          const auto victim = interior_non_root(r);
          ASSERT_NE(victim, kNoPeer);
          c.flip_underloaded(victim, r.overlay().peer(victim).top());
          break;
        }
      }
      if (r.legal()) continue;  // the scramble happened to be benign

      // The bound: one sweep_stride window to *find* the fault, one for
      // chained discoveries (e.g. orphaned children noticing their own
      // broken parent link), plus repair rounds proper.
      const int rounds = r.converge(3 * stride + 60);
      EXPECT_GE(rounds, 0) << "silent corruption never repaired";
      const auto report = checker(r.overlay()).check();
      EXPECT_TRUE(report.legal())
          << (report.violations.empty() ? "?" : report.violations.front());
    }
  }
}

// ------------------------------------------------ quiescence white-box

TEST(DirtyStabilize, QuiescentBacklogDrainsAndPassCountCollapses) {
  const std::uint64_t seed = 43;
  rig full(mode_config(stabilize_mode::full, seed));
  rig dirty(mode_config(stabilize_mode::dirty, seed));
  for (rig* r : {&full, &dirty}) {
    r->populate(48);
    ASSERT_GE(r->converge(), 0);
    // One full sweep window drains join-time marks.
    r->step_rounds(
        static_cast<int>(r->backend->overlay().config().sweep_stride));
  }
  EXPECT_EQ(dirty.overlay().dirty_pending(), 0u)
      << "backlog did not drain at quiescence";

  const auto full0 = full.backend->counters();
  const auto dirty0 = dirty.backend->counters();
  const int window = 32;
  full.step_rounds(window);
  dirty.step_rounds(window);
  const auto full_visited =
      full.backend->counters().stabilize_visited - full0.stabilize_visited;
  const auto dirty_visited =
      dirty.backend->counters().stabilize_visited - dirty0.stabilize_visited;
  const auto dirty_skipped =
      dirty.backend->counters().stabilize_skipped - dirty0.stabilize_skipped;

  // Full mode visits everyone every round; dirty visits ~population/K
  // per round (background sweep only).  4x is a loose floor on the
  // K=16 design ratio.
  EXPECT_EQ(full_visited, 48u * window);
  EXPECT_GT(dirty_visited, 0u);  // the sweep does keep scanning
  EXPECT_LT(dirty_visited * 4, full_visited)
      << "dirty=" << dirty_visited << " full=" << full_visited;
  EXPECT_EQ(dirty_visited + dirty_skipped, full_visited)
      << "skipped accounting must cover exactly the passes not run";
  EXPECT_EQ(dirty.overlay().dirty_pending(), 0u);
  EXPECT_TRUE(full.legal());
  EXPECT_TRUE(dirty.legal());
}

TEST(DirtyStabilize, ChurnMarksThenQuiesces) {
  rig r(mode_config(stabilize_mode::dirty, 47));
  r.populate(40);
  ASSERT_GE(r.converge(), 0);
  r.step_rounds(static_cast<int>(r.overlay().config().sweep_stride));
  ASSERT_EQ(r.overlay().dirty_pending(), 0u);

  // A crash marks the dead peer's neighborhood: backlog becomes nonzero
  // without any stabilization having run yet.
  const auto victim = interior_non_root(r);
  ASSERT_NE(victim, kNoPeer);
  r.overlay().crash(victim);
  EXPECT_GT(r.overlay().dirty_pending(), 0u)
      << "crash did not mark the survivors that must repair around it";

  ASSERT_GE(r.converge(120), 0);
  r.step_rounds(static_cast<int>(r.overlay().config().sweep_stride));
  EXPECT_EQ(r.overlay().dirty_pending(), 0u)
      << "backlog did not re-drain after repair";
  EXPECT_TRUE(r.legal());
}

// ------------------------------------------------- sharded-kernel skip

TEST(DirtyStabilize, ShardedDirtyQuiescesPerShard) {
  engine::overlay_backend_config bc;
  bc.net.seed = 53;
  bc.dr.stabilize = stabilize_mode::dirty;
  engine::sharded_drtree_backend be(bc, 4);
  scenario_runner runner(be);
  runner.populate(64);
  ASSERT_GE(runner.converge(120), 0);
  runner.step_rounds(static_cast<int>(bc.dr.sweep_stride));
  ASSERT_TRUE(be.legal());
  for (std::size_t s = 0; s < be.shards(); ++s) {
    EXPECT_EQ(be.dirty_pending(s), 0u) << "shard " << s;
  }
  // The quiescent fleet's pass count collapses: per round only the
  // background sweep (population / sweep_stride) plus each shard's
  // always-on root runs, instead of the whole population.
  const auto v0 = be.counters().stabilize_visited;
  const int window = 16;
  runner.step_rounds(window);
  const auto visited = be.counters().stabilize_visited - v0;
  const auto full_equiv =
      static_cast<std::uint64_t>(be.population()) * window;
  EXPECT_GT(visited, 0u);
  EXPECT_LT(visited * 4, full_equiv)
      << "visited=" << visited << " full-equivalent=" << full_equiv;
}

}  // namespace
}  // namespace drt::overlay
