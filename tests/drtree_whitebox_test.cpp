// White-box tests of individual protocol modules: each CHECK_* routine is
// driven directly against hand-crafted instance states, verifying the
// exact repair the pseudo-code of Figs. 10-14 specifies.  Also covers the
// DOT renderers and per-instance data structures.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "drtree/checker.h"
#include "drtree/dot.h"
#include "drtree/overlay.h"

namespace drt::overlay {
namespace {

using analysis::harness_config;
using analysis::testbed;
using geo::make_rect2;
using spatial::kNoPeer;
using spatial::peer_id;

harness_config quiet_config(std::uint64_t seed = 1) {
  harness_config hc;
  hc.net.seed = seed;
  hc.dr.min_children = 2;
  hc.dr.max_children = 4;
  return hc;
}

// ------------------------------------------------------------- instance

TEST(Instance, ChildSetOperations) {
  instance ins;
  EXPECT_FALSE(ins.has_child(3));
  ins.add_child(3);
  ins.add_child(5);
  ins.add_child(3);  // duplicate ignored
  EXPECT_EQ(ins.children.size(), 2u);
  EXPECT_TRUE(ins.has_child(3));
  EXPECT_TRUE(ins.remove_child(3));
  EXPECT_FALSE(ins.remove_child(3));
  EXPECT_EQ(ins.children.size(), 1u);
}

// ------------------------------------------------------------ check_mbr

TEST(CheckMbr, LeafRestoresFilter) {
  testbed tb(quiet_config(3));
  const auto a = tb.add(make_rect2(0, 0, 10, 10));
  auto& peer = tb.overlay().peer(a);
  peer.inst(0).mbr = make_rect2(5, 5, 6, 6);
  peer.check_mbr(0);
  EXPECT_EQ(peer.inst(0).mbr, peer.filter());
}

TEST(CheckMbr, InteriorRecomputesUnionOfChildren) {
  testbed tb(quiet_config(5));
  const auto a = tb.add(make_rect2(0, 0, 10, 10));
  const auto b = tb.add(make_rect2(20, 20, 500, 500));
  tb.overlay().settle();
  tb.converge();
  const auto root = tb.overlay().current_root();
  ASSERT_EQ(root, b);  // larger coverage wins the election
  auto& root_peer = tb.overlay().peer(root);
  root_peer.inst(1).mbr = make_rect2(0, 0, 1, 1);  // corrupt
  root_peer.check_mbr(1);
  EXPECT_EQ(root_peer.inst(1).mbr,
            join(tb.overlay().peer(a).filter(),
                 tb.overlay().peer(b).filter()));
}

// --------------------------------------------------------- check_parent

TEST(CheckParent, NonTopInstanceRepairsOwnChainLocally) {
  testbed tb(quiet_config(7));
  testbed* tbp = &tb;
  // Build until some peer owns at least heights 0..2.
  peer_id deep = kNoPeer;
  for (int n = 0; n < 40 && deep == kNoPeer; ++n) {
    tbp->populate(1);
    tbp->converge();
    for (const auto p : tbp->overlay().live_peers()) {
      if (tbp->overlay().peer(p).top() >= 2) {
        deep = p;
        break;
      }
    }
  }
  ASSERT_NE(deep, kNoPeer);
  auto& peer = tbp->overlay().peer(deep);
  // Corrupt the own-chain parent pointer of a non-top instance.
  peer.inst(0).parent = kNoPeer;
  peer.check_parent(0);
  EXPECT_EQ(peer.inst(0).parent, deep);
  // And the membership in its own children set is restored.
  EXPECT_TRUE(peer.inst(1).has_child(deep));
}

TEST(CheckParent, UnlistedTopRejoins) {
  testbed tb(quiet_config(11));
  tb.populate(12);
  tb.converge();
  const auto root = tb.overlay().current_root();
  peer_id victim = kNoPeer;
  for (const auto p : tb.overlay().live_peers()) {
    if (p != root && tb.overlay().peer(p).top() == 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  auto& vp = tb.overlay().peer(victim);
  const auto old_parent = vp.inst(0).parent;
  // Remove the victim from its parent's children set (one-sided fault).
  tb.overlay().peer(old_parent).inst(1).remove_child(victim);
  vp.check_parent(0);
  // Fig. 11: "the node sets itself as parent and initiates a join".
  EXPECT_EQ(vp.inst(0).parent, victim);
  // The join probe is in flight; draining re-attaches the victim.
  tb.overlay().settle();
  ASSERT_GE(tb.converge(60), 0);
  EXPECT_TRUE(tb.legal());
}

// ------------------------------------------------------- check_children

TEST(CheckChildren, DiscardsDeadAndForeignChildren) {
  testbed tb(quiet_config(13));
  tb.populate(12);
  tb.converge();
  const auto root = tb.overlay().current_root();
  auto& rp = tb.overlay().peer(root);
  const auto h = rp.top();
  const auto before = rp.inst(h).children.size();

  // Kill one real child and adopt one foreign child.
  peer_id dead_child = kNoPeer;
  for (const auto c : rp.inst(h).children) {
    if (c != root) {
      dead_child = c;
      break;
    }
  }
  ASSERT_NE(dead_child, kNoPeer);
  tb.overlay().crash(dead_child);
  // Foreign: a peer whose parent is someone else.
  peer_id foreign = kNoPeer;
  for (const auto p : tb.overlay().live_peers()) {
    if (p != root && !rp.inst(h).has_child(p)) {
      foreign = p;
      break;
    }
  }
  if (foreign != kNoPeer) rp.inst(h).add_child(foreign);

  rp.check_children(h);
  EXPECT_FALSE(rp.inst(h).has_child(dead_child));
  if (foreign != kNoPeer) {
    EXPECT_FALSE(rp.inst(h).has_child(foreign));
  }
  EXPECT_LE(rp.inst(h).children.size(), before);
  // The underloaded flag reflects the new size.
  EXPECT_EQ(rp.inst(h).underloaded,
            rp.inst(h).children.size() < tb.config().dr.min_children);
}

TEST(CheckChildren, ChildlessInteriorDissolves) {
  testbed tb(quiet_config(17));
  tb.populate(8);
  tb.converge();
  const auto root = tb.overlay().current_root();
  auto& rp = tb.overlay().peer(root);
  const auto h = rp.top();
  ASSERT_GT(h, 0u);
  rp.inst(h).children.clear();
  rp.check_children(h);
  EXPECT_FALSE(rp.has_instance(h));
}

TEST(CheckChildren, SingletonRootDemotesItself) {
  testbed tb(quiet_config(19));
  const auto a = tb.add(make_rect2(0, 0, 50, 50));
  const auto b = tb.add(make_rect2(10, 10, 20, 20));
  tb.overlay().settle();
  tb.converge();
  const auto root = tb.overlay().current_root();
  ASSERT_EQ(root, a);
  auto& rp = tb.overlay().peer(root);
  // Remove the non-self child: the root instance holds only itself.
  rp.inst(1).remove_child(b);
  rp.check_children(1);
  EXPECT_FALSE(rp.has_instance(1));  // demoted to a plain leaf root
  EXPECT_EQ(rp.inst(0).parent, root);
}

// ----------------------------------------------------------- check_cover

TEST(CheckCover, PromotesBetterCoveringChild) {
  testbed tb(quiet_config(23));
  const auto small = tb.add(make_rect2(0, 0, 10, 10));
  const auto big = tb.add(make_rect2(0, 0, 800, 800));
  tb.overlay().settle();
  tb.converge();
  ASSERT_EQ(tb.overlay().current_root(), big);

  // Manually invert the hierarchy: small leads, big beneath.
  auto& bp = tb.overlay().peer(big);
  auto& sp = tb.overlay().peer(small);
  bp.erase_inst(1);
  auto& si = sp.ensure_inst(1);
  si.parent = small;
  si.children = {small, big};
  si.mbr = join(sp.filter(), bp.filter());
  si.underloaded = false;
  sp.inst(0).parent = small;
  bp.inst(0).parent = small;

  sp.check_cover(1);  // Fig. 13 fires: big covers better
  EXPECT_TRUE(bp.is_root());
  EXPECT_EQ(sp.top(), 0u);
  EXPECT_TRUE(bp.inst(1).has_child(small));
  EXPECT_TRUE(bp.inst(1).has_child(big));
}

// ------------------------------------------------------------------ dot

TEST(Dot, RendersInstanceAndPeerGraphs) {
  testbed tb(quiet_config(29));
  tb.populate(10);
  tb.converge();
  const auto instances = to_dot_instances(tb.overlay());
  EXPECT_NE(instances.find("digraph drtree"), std::string::npos);
  EXPECT_NE(instances.find("(root)"), std::string::npos);
  EXPECT_NE(instances.find("->"), std::string::npos);

  const auto peers = to_dot_peers(tb.overlay());
  EXPECT_NE(peers.find("graph drtree_peers"), std::string::npos);
  EXPECT_NE(peers.find("--"), std::string::npos);
}

// ----------------------------------------------------- join edge cases

TEST(JoinEdgeCases, DuplicateJoinProbesAreHarmless) {
  testbed tb(quiet_config(31));
  tb.populate(10);
  tb.converge();
  // The root's stabilize pass sends probes every period; run many periods
  // and verify the structure neither churns nor corrupts.
  const auto before = tb.report();
  for (int i = 0; i < 10; ++i) {
    tb.overlay().advance(tb.config().dr.stabilize_period);
    tb.overlay().settle();
  }
  const auto after = tb.report();
  EXPECT_TRUE(after.legal());
  EXPECT_EQ(after.height, before.height);
  EXPECT_EQ(after.live_peers, before.live_peers);
}

TEST(JoinEdgeCases, TallerFragmentAbsorbsShorterTree) {
  // Build two overlays in one simulator world: fragment A (well grown)
  // and a lone root B; B's probe must end with a single legal tree no
  // matter which side absorbs.
  testbed tb(quiet_config(37));
  tb.populate(20);
  tb.converge();
  // Detach a subtree by crashing its parent chain... simpler: add a peer
  // whose join probe is lost (message loss burst), leaving it a fragment
  // root, then let stabilization merge it.
  const auto loner = tb.overlay().add_peer(make_rect2(1, 1, 2, 2));
  // Do not settle: drop everything in flight by crashing and restarting
  // the loner (its outgoing probe dies with it).
  tb.overlay().crash(loner);
  tb.overlay().settle();
  tb.overlay().sim().restart(loner);
  EXPECT_TRUE(tb.overlay().peer(loner).is_root());
  ASSERT_GE(tb.converge(80), 0);
  EXPECT_TRUE(tb.legal());
  EXPECT_EQ(tb.report().reachable, 21u);
}

}  // namespace
}  // namespace drt::overlay
