#include <gtest/gtest.h>

#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace drt::sim {
namespace {

/// Records everything it receives.
struct probe_process : process {
  std::vector<std::pair<process_id, std::uint64_t>> received;
  std::vector<std::uint64_t> timers;
  std::vector<std::string> payloads;
  int starts = 0;
  int crashes = 0;

  void on_start() override { ++starts; }
  void on_crash() override { ++crashes; }
  void on_message(process_id from, std::uint64_t type,
                  const envelope& msg) override {
    received.emplace_back(from, type);
    if (const auto* s = msg.visit<std::string>()) {
      payloads.push_back(*s);
    }
  }
  void on_timer(std::uint64_t t) override { timers.push_back(t); }
};

probe_process& probe(simulator& s, process_id id) {
  return static_cast<probe_process&>(s.get(id));
}

TEST(Simulator, DeliversMessagesWithDelayBounds) {
  simulator_config cfg;
  cfg.min_delay = 2.0;
  cfg.max_delay = 3.0;
  simulator s(cfg);
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  s.send(a, b, 7);
  s.run_until(1.9);
  EXPECT_TRUE(probe(s, b).received.empty());  // not before min_delay
  s.run_until(3.1);
  ASSERT_EQ(probe(s, b).received.size(), 1u);
  EXPECT_EQ(probe(s, b).received[0], std::make_pair(a, std::uint64_t{7}));
}

TEST(Simulator, PayloadRoundTrip) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  s.send<std::string>(a, b, 1, "hello overlay");
  s.run_steps(10);
  ASSERT_EQ(probe(s, b).payloads.size(), 1u);
  EXPECT_EQ(probe(s, b).payloads[0], "hello overlay");
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    simulator_config cfg;
    cfg.seed = seed;
    simulator s(cfg);
    const auto a = s.add_process(std::make_unique<probe_process>());
    const auto b = s.add_process(std::make_unique<probe_process>());
    for (int i = 0; i < 50; ++i) {
      s.send(a, b, static_cast<std::uint64_t>(i));
    }
    s.run_steps(1000);
    std::vector<std::uint64_t> order;
    for (const auto& [from, type] : probe(s, b).received) {
      order.push_back(type);
    }
    return order;
  };
  EXPECT_EQ(run(5), run(5));
  // Different seeds give different interleavings (with high probability).
  EXPECT_NE(run(5), run(6));
}

TEST(Simulator, MessageLossDropsRoughlyTheConfiguredFraction) {
  simulator_config cfg;
  cfg.message_loss = 0.5;
  simulator s(cfg);
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  for (int i = 0; i < 2000; ++i) s.send(a, b, 1);
  s.run_steps(5000);
  const auto delivered = probe(s, b).received.size();
  EXPECT_GT(delivered, 800u);
  EXPECT_LT(delivered, 1200u);
  EXPECT_EQ(s.metrics().messages_dropped + s.metrics().messages_delivered,
            2000u);
}

TEST(Simulator, CrashStopsDeliveryAndRestartResumes) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  s.crash(b);
  EXPECT_FALSE(s.is_alive(b));
  EXPECT_EQ(probe(s, b).crashes, 1);
  s.send(a, b, 1);
  s.run_steps(10);
  EXPECT_TRUE(probe(s, b).received.empty());
  EXPECT_EQ(s.metrics().messages_to_dead, 1u);

  s.restart(b);
  EXPECT_TRUE(s.is_alive(b));
  EXPECT_EQ(probe(s, b).starts, 2);
  s.send(a, b, 2);
  s.run_steps(10);
  EXPECT_EQ(probe(s, b).received.size(), 1u);
}

TEST(Simulator, CrashIsIdempotent) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  s.crash(a);
  s.crash(a);
  EXPECT_EQ(probe(s, a).crashes, 1);
}

TEST(Simulator, OneShotTimerFiresOnce) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  s.schedule_timer(a, 42, 5.0);
  s.run_until(4.9);
  EXPECT_TRUE(probe(s, a).timers.empty());
  s.run_until(100.0);
  EXPECT_EQ(probe(s, a).timers, std::vector<std::uint64_t>{42});
}

TEST(Simulator, PeriodicTimerRepeatsAndCancels) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  s.schedule_periodic(a, 9, 10.0, 10.0);
  s.run_until(35.0);
  EXPECT_EQ(probe(s, a).timers.size(), 3u);  // t = 10, 20, 30
  s.cancel_periodic(a, 9);
  s.run_until(100.0);
  EXPECT_EQ(probe(s, a).timers.size(), 3u);
}

TEST(Simulator, PeriodicTimerSkipsDeadProcessButSurvivesRestart) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  s.schedule_periodic(a, 9, 10.0, 10.0);
  s.run_until(15.0);
  EXPECT_EQ(probe(s, a).timers.size(), 1u);
  s.crash(a);
  s.run_until(45.0);
  EXPECT_EQ(probe(s, a).timers.size(), 1u);  // silent while dead
  s.restart(a);
  s.run_until(65.0);
  EXPECT_GT(probe(s, a).timers.size(), 1u);  // chain kept re-arming
}

TEST(Simulator, RunStepsDrainsOnlyPendingWork) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  s.schedule_periodic(a, 1, 5.0, 5.0);
  s.send(a, b, 3);
  EXPECT_EQ(s.pending_work(), 1u);
  const auto steps = s.run_steps(100);
  EXPECT_EQ(steps, 1u);  // the message; the periodic chain doesn't count
  EXPECT_EQ(s.pending_work(), 0u);
}

TEST(Simulator, TimestampsAreMonotonic) {
  simulator s;
  struct echo : process {
    void on_message(process_id from, std::uint64_t type,
                    const envelope&) override {
      if (type > 0) sim().send(id(), from, type - 1);
    }
  };
  const auto a = s.add_process(std::make_unique<echo>());
  const auto b = s.add_process(std::make_unique<echo>());
  s.send(a, b, 20);  // ping-pong 20 times
  const auto t0 = s.now();
  s.run_steps(100);
  EXPECT_GT(s.now(), t0);
  EXPECT_EQ(s.metrics().messages_delivered, 21u);
}

TEST(Simulator, TraceHookSeesDeliveries) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  std::vector<simulator::trace_event> seen;
  s.set_trace([&](const simulator::trace_event& e) { seen.push_back(e); });
  s.send(a, b, 9);
  s.send(b, a, 10);
  s.run_steps(10);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].from + seen[1].from, a + b);  // both directions seen
  s.set_trace(nullptr);
  s.send(a, b, 11);
  s.run_steps(10);
  EXPECT_EQ(seen.size(), 2u);  // disabled
}

TEST(Simulator, LinkFilterPartitionsAndHeals) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  s.set_link_filter([&](process_id from, process_id to) {
    return from == to || !((from == a && to == b) || (from == b && to == a));
  });
  s.send(a, b, 1);
  s.run_steps(10);
  EXPECT_TRUE(probe(s, b).received.empty());
  EXPECT_EQ(s.metrics().messages_partitioned, 1u);

  s.set_link_filter(nullptr);  // heal
  s.send(a, b, 2);
  s.run_steps(10);
  EXPECT_EQ(probe(s, b).received.size(), 1u);
}

TEST(Simulator, SendToSelfWorks) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  s.send(a, a, 5);
  s.run_steps(5);
  ASSERT_EQ(probe(s, a).received.size(), 1u);
  EXPECT_EQ(probe(s, a).received[0].first, a);
}

// Regression: the old periodic-timer registry packed (id << 32) ^ type
// into one 64-bit key, so a timer type with bits above 32 aliased another
// process's chain — cancelling one silently cancelled the other.
TEST(Simulator, PeriodicTimersWithHighTypeBitsDoNotAlias) {
  // Old scheme: key(p1, type=0) == (1<<32) == key(p0, type=1<<32).
  constexpr std::uint64_t kHighType = std::uint64_t{1} << 32;
  simulator s;
  const auto p0 = s.add_process(std::make_unique<probe_process>());
  const auto p1 = s.add_process(std::make_unique<probe_process>());
  s.schedule_periodic(p0, kHighType, 10.0, 10.0);
  s.schedule_periodic(p1, 0, 10.0, 10.0);
  s.cancel_periodic(p0, kHighType);
  s.run_until(35.0);
  EXPECT_TRUE(probe(s, p0).timers.empty());       // cancelled
  EXPECT_EQ(probe(s, p1).timers.size(), 3u);      // must keep firing
}

TEST(Simulator, CrashPurgesInFlightMessagesImmediately) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  for (int i = 0; i < 5; ++i) s.send(a, b, 1);
  EXPECT_EQ(s.pending_work(), 5u);
  s.crash(b);
  // Dead letters are dropped at crash time: no run_steps() budget is
  // spent walking them, and they are accounted as messages_to_dead.
  EXPECT_EQ(s.pending_work(), 0u);
  EXPECT_EQ(s.metrics().messages_to_dead, 5u);
  EXPECT_EQ(s.run_steps(100), 0u);
  // A restart after the purge starts from a clean slate.
  s.restart(b);
  s.run_steps(100);
  EXPECT_TRUE(probe(s, b).received.empty());
}

TEST(Simulator, CrashPurgeKeepsOtherTraffic) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  const auto c = s.add_process(std::make_unique<probe_process>());
  s.send(a, b, 1);
  s.send(a, c, 2);
  s.schedule_timer(b, 7, 1.0);
  s.crash(b);
  EXPECT_EQ(s.metrics().messages_to_dead, 1u);
  s.run_steps(100);
  EXPECT_EQ(probe(s, c).received.size(), 1u);  // unrelated message intact
  // The timer stayed queued (timers survive for restart semantics) but
  // did not fire on the dead process.
  EXPECT_TRUE(probe(s, b).timers.empty());
}

// Pool-backed payloads (non-trivially-copyable) round-trip through the
// envelope and release their blocks for reuse.
TEST(Simulator, PooledPayloadRoundTrip) {
  simulator s;
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  const std::string big(1000, 'x');  // defeats SSO and the inline buffer
  for (int i = 0; i < 100; ++i) {
    s.send<std::string>(a, b, 1, big + std::to_string(i));
    s.run_steps(10);
  }
  ASSERT_EQ(probe(s, b).payloads.size(), 100u);
  EXPECT_EQ(probe(s, b).payloads[99], big + "99");
}

TEST(Envelope, PooledBlocksRecycle) {
  payload_pool pool;
  struct tiny {
    int x;
  };
  auto e = envelope::wrap(pool, tiny{41});
  ASSERT_NE(e.visit<tiny>(), nullptr);
  EXPECT_EQ(e.visit<tiny>()->x, 41);
  EXPECT_EQ(pool.slab_count(), 1u);

  envelope moved = std::move(e);
  EXPECT_TRUE(e.empty());
  ASSERT_NE(moved.visit<tiny>(), nullptr);
  EXPECT_EQ(moved.visit<tiny>()->x, 41);

  // Release and re-wrap many times: blocks recycle from the free list,
  // no new slab is ever carved.
  moved.reset();
  for (int i = 0; i < 10000; ++i) {
    auto again = envelope::wrap(pool, tiny{i});
    ASSERT_EQ(again.visit<tiny>()->x, i);
  }
  EXPECT_EQ(pool.slab_count(), 1u);
}

TEST(Envelope, VisitReturnsNullForEmpty) {
  envelope e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.visit<int>(), nullptr);
}

// Events pushed exactly on, just inside, and far beyond the
// kBuckets-wide ring horizon must pop in strict (at, seq) order: the
// boundary event goes to the overflow heap, near-boundary ones stay in
// the ring, and deep-overflow events migrate into the window only after
// the cursor advances far enough — possibly across several refills.
TEST(CalendarQueue, OverflowHorizonBoundaries) {
  using ref_item = std::pair<double, std::uint64_t>;  // (at, seq)
  const double width = 0.5;
  const double horizon = 1024 * width;  // kBuckets * width
  calendar_queue q(width);
  std::priority_queue<ref_item, std::vector<ref_item>, std::greater<ref_item>>
      ref;
  std::uint64_t seq = 0;
  auto push_at = [&](double at) {
    pending_event ev;
    ev.at = at;
    ev.seq = seq;
    ev.what = pending_event::kind::timer;
    ev.to = static_cast<process_id>(seq % 5);
    q.push(std::move(ev));
    ref.emplace(at, seq);
    ++seq;
  };
  auto pop_and_check = [&] {
    const auto ev = q.pop();
    ASSERT_EQ(ev.at, ref.top().first);
    ASSERT_EQ(ev.seq, ref.top().second);
    ref.pop();
  };

  // Straddle the horizon from t = 0: the last ring bucket, the exact
  // boundary (first overflow bucket), one past, and deep overflow events
  // that must survive multiple window refills.
  push_at(0.0);
  push_at(width * 0.5);
  push_at(horizon - width * 0.5);   // last ring bucket
  push_at(horizon);                 // exactly on the boundary -> overflow
  push_at(horizon + width * 0.25);  // first bucket past the window
  push_at(2.0 * horizon);           // one full window away
  push_at(4.0 * horizon + 1.0);     // several windows away
  // Ties on the boundary bucket resolve by seq.
  push_at(horizon);

  // Drain the in-window events; the cursor then jumps to the overflow
  // front and migrates what now fits.
  for (int i = 0; i < 3; ++i) pop_and_check();

  // New pushes relative to the advanced cursor: some land in the ring,
  // some in overflow again.
  push_at(horizon + width * 0.75);
  push_at(horizon + horizon * 0.5);
  push_at(3.0 * horizon);

  // A purge that spans ring and overflow must keep the pop order of the
  // survivors intact (erase_if re-heapifies the overflow).
  q.erase_if([](const pending_event& ev) { return ev.to == 1; });
  {
    std::priority_queue<ref_item, std::vector<ref_item>,
                        std::greater<ref_item>>
        kept;
    while (!ref.empty()) {
      if (static_cast<process_id>(ref.top().second % 5) != 1) {
        kept.push(ref.top());
      }
      ref.pop();
    }
    ref = std::move(kept);
  }

  while (!ref.empty()) pop_and_check();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// Crash purges destroy in-flight pooled envelopes; their blocks must
// return to the pool's free lists, so repeated storm-then-crash cycles
// reuse the same slabs instead of carving new ones.
TEST(Simulator, PayloadPoolRecyclesAcrossCrashPurges) {
  simulator_config cfg;
  cfg.min_delay = 5.0;  // keep the storm in flight until the crash
  cfg.max_delay = 6.0;
  simulator s(cfg);
  const auto a = s.add_process(std::make_unique<probe_process>());
  const auto b = s.add_process(std::make_unique<probe_process>());
  const std::string big(1000, 'y');

  // Prime: one storm establishes the steady-state slab footprint.
  for (int i = 0; i < 200; ++i) s.send<std::string>(a, b, 1, big);
  s.crash(b);  // purge releases every pooled payload
  s.restart(b);
  const auto slabs = s.pool().slab_count();
  EXPECT_GE(slabs, 1u);

  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 200; ++i) s.send<std::string>(a, b, 1, big);
    s.crash(b);
    s.restart(b);
    EXPECT_EQ(s.pool().slab_count(), slabs);
  }
  // Delivered traffic recycles the same way.
  for (int i = 0; i < 200; ++i) s.send<std::string>(a, b, 1, big);
  s.run_steps(1000);
  EXPECT_EQ(s.pool().slab_count(), slabs);
}

}  // namespace
}  // namespace drt::sim
