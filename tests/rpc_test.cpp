// Service-mode tests (DESIGN.md §10): the wire codec (round-trip + fuzz +
// malformed-input rejection), the hierarchical timer wheel, the event
// loop, the drtd service against real localhost sockets, and the
// engine::net_backend adapter — including the digest-parity guarantee:
// a churn-free timeline served over TCP must reproduce the
// drtree_backend's recorder digest bit for bit.
//
// The soak test at the bottom is gated behind DRT_NET_SOAK=1 (CI runs it
// under ASan); everything else is tier-1.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/backends.h"
#include "engine/metrics.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "geometry/rect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/event_loop.h"
#include "rpc/net_backend.h"
#include "rpc/service.h"
#include "rpc/timer_wheel.h"
#include "rpc/wire.h"
#include "util/rng.h"

namespace drt::rpc {
namespace {

using drt::geo::make_rect2;

// ============================================================ wire codec

template <typename T>
frame_view decode_one(const std::vector<std::byte>& buf, T& out) {
  frame_view f;
  std::size_t consumed = 0;
  EXPECT_EQ(try_decode(buf.data(), buf.size(), f, consumed),
            decode_status::ok);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_TRUE(f.read(out));
  return f;
}

TEST(WireCodec, RoundTripsEveryRpcBody) {
  {
    subscribe_body in;
    in.filter = make_rect2(1, 2, 3, 4);
    std::vector<std::byte> buf;
    put_frame(buf, frame_type::subscribe, 7, in);
    subscribe_body out;
    const auto f = decode_one(buf, out);
    EXPECT_EQ(f.type, frame_type::subscribe);
    EXPECT_EQ(f.seq, 7u);
    EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);
  }
  {
    report_body in;
    in.interested = 5;
    in.delivered = 4;
    in.false_positives = 1;
    in.false_negatives = 2;
    in.messages = 99;
    in.max_hops = 6;
    in.ok = 1;
    std::vector<std::byte> buf;
    put_frame(buf, frame_type::publish_report, 3, in);
    report_body out;
    decode_one(buf, out);
    EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);
  }
  {
    stat_body in;
    in.population = 12;
    in.height = 3;
    in.avg_degree = 2.75;
    in.root = 4;
    in.legal = 1;
    std::vector<std::byte> buf;
    put_frame(buf, frame_type::stat_ok, 9, in);
    stat_body out;
    decode_one(buf, out);
    EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);
  }
  {
    event_push_body in;
    in.sub = 17;
    in.ev.id = 40;
    in.ev.publisher = 3;
    in.ev.value = spatial::pt{{0.5, 0.25}};
    in.max_hops = 4;
    std::vector<std::byte> buf;
    put_frame(buf, frame_type::event_push, 0, in);
    event_push_body out;
    const auto f = decode_one(buf, out);
    EXPECT_EQ(f.seq, 0u);  // pushes are unsolicited
    EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);
  }
  {
    // Payload-less frames (ping / stat requests).
    std::vector<std::byte> buf;
    put_frame(buf, frame_type::ping, 42);
    frame_view f;
    std::size_t consumed = 0;
    ASSERT_EQ(try_decode(buf.data(), buf.size(), f, consumed),
              decode_status::ok);
    EXPECT_EQ(f.type, frame_type::ping);
    EXPECT_EQ(f.size, 0u);
    EXPECT_EQ(consumed, sizeof(frame_header));
  }
}

TEST(WireCodec, FuzzRoundTripsRandomizedOverlayMessages) {
  util::rng rng(0x5eedu);
  for (int iter = 0; iter < 500; ++iter) {
    overlay::dr_msg in{};
    in.kind = static_cast<overlay::msg_kind>(rng.uniform_int(0, 11));
    in.subject = static_cast<spatial::peer_id>(rng.next_u64());
    in.h = static_cast<std::size_t>(rng.uniform_int(0, 1 << 20));
    in.mbr = make_rect2(rng.uniform_real(-1e6, 1e6),
                        rng.uniform_real(-1e6, 1e6),
                        rng.uniform_real(-1e6, 1e6),
                        rng.uniform_real(-1e6, 1e6));
    in.hops_left = static_cast<std::size_t>(rng.uniform_int(0, 4096));
    in.descending = rng.chance(0.5);
    in.hop = static_cast<std::size_t>(rng.uniform_int(0, 4096));
    in.query_id = rng.next_u64();
    in.reply_to = static_cast<spatial::peer_id>(rng.next_u64());

    std::vector<std::byte> buf;
    put_frame(buf, frame_type::overlay_msg,
              static_cast<std::uint32_t>(rng.next_u64()), in);
    overlay::dr_msg out{};
    decode_one(buf, out);
    ASSERT_EQ(std::memcmp(&in, &out, sizeof(in)), 0) << "iter " << iter;
  }
}

TEST(WireCodec, FuzzRoundTripsPrefixEncodedBatchesAtEveryCount) {
  util::rng rng(0xba7c4u);
  for (std::size_t count = 0; count <= overlay::dr_batch_msg::kMaxEvents;
       ++count) {
    overlay::dr_batch_msg in{};
    in.kind = rng.chance(0.5) ? overlay::msg_kind::batch_down
                              : overlay::msg_kind::batch_up;
    in.count = static_cast<std::uint32_t>(count);
    in.h = static_cast<std::uint32_t>(rng.uniform_int(0, 31));
    in.hops_left = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
    in.hop = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
    for (std::size_t i = 0; i < count; ++i) {
      in.events[i].id = rng.next_u64();
      in.events[i].publisher = static_cast<spatial::peer_id>(rng.next_u64());
      in.events[i].value =
          spatial::pt{{rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)}};
    }

    // Size-prefixed: a k-event batch travels as bytes_for(k) bytes.
    const std::size_t wire = overlay::dr_batch_msg::bytes_for(count);
    std::vector<std::byte> buf;
    put_frame(buf, frame_type::overlay_batch, 1, in, wire);
    EXPECT_EQ(buf.size(), sizeof(frame_header) + wire);

    frame_view f;
    std::size_t consumed = 0;
    ASSERT_EQ(try_decode(buf.data(), buf.size(), f, consumed),
              decode_status::ok);
    overlay::dr_batch_msg out{};
    ASSERT_TRUE(read_batch(f, out)) << "count " << count;
    EXPECT_EQ(std::memcmp(&in, &out, wire), 0);
    // The decoded tail past `count` must be zeroed, never garbage.
    for (std::size_t i = count; i < overlay::dr_batch_msg::kMaxEvents; ++i) {
      EXPECT_EQ(out.events[i].id, 0u);
    }
  }
}

TEST(WireCodec, EveryTruncatedPrefixAsksForMoreBytes) {
  publish_body body;
  body.publisher = 3;
  body.value = spatial::pt{{10, 20}};
  std::vector<std::byte> buf;
  put_frame(buf, frame_type::publish, 5, body);

  for (std::size_t len = 0; len < buf.size(); ++len) {
    frame_view f;
    std::size_t consumed = 1;
    EXPECT_EQ(try_decode(buf.data(), len, f, consumed),
              decode_status::need_more)
        << "prefix " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireCodec, RejectsBadMagicVersionAndLength) {
  std::vector<std::byte> buf;
  put_frame(buf, frame_type::ping, 1);

  auto corrupt = buf;
  corrupt[0] = std::byte{0xff};
  frame_view f;
  std::size_t consumed = 0;
  EXPECT_EQ(try_decode(corrupt.data(), corrupt.size(), f, consumed),
            decode_status::bad_magic);

  corrupt = buf;
  const std::uint16_t vers = kWireVersion + 1;
  std::memcpy(corrupt.data() + offsetof(frame_header, version), &vers,
              sizeof(vers));
  EXPECT_EQ(try_decode(corrupt.data(), corrupt.size(), f, consumed),
            decode_status::bad_version);

  corrupt = buf;
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(corrupt.data() + offsetof(frame_header, length), &huge,
              sizeof(huge));
  EXPECT_EQ(try_decode(corrupt.data(), corrupt.size(), f, consumed),
            decode_status::bad_length);
}

TEST(WireCodec, RejectsBatchCountSizeMismatch) {
  overlay::dr_batch_msg b{};
  b.count = 6;  // lies: only 5 events' worth of bytes on the wire
  std::vector<std::byte> buf;
  put_frame(buf, frame_type::overlay_batch, 1, b,
            overlay::dr_batch_msg::bytes_for(5));
  frame_view f;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode(buf.data(), buf.size(), f, consumed),
            decode_status::ok);
  overlay::dr_batch_msg out{};
  EXPECT_FALSE(read_batch(f, out));

  // A frame too short to even hold the batch header is rejected outright.
  std::vector<std::byte> tiny;
  put_frame_bytes(tiny, frame_type::overlay_batch, 1, &b, 4);
  ASSERT_EQ(try_decode(tiny.data(), tiny.size(), f, consumed),
            decode_status::ok);
  EXPECT_FALSE(read_batch(f, out));
}

TEST(WireCodec, ChainedFramesDecodeSequentially) {
  std::vector<std::byte> buf;
  put_frame(buf, frame_type::ping, 1);
  sub_body sub;
  sub.sub = 77;
  put_frame(buf, frame_type::unsubscribe, 2, sub);
  bool_body yes;
  yes.value = 1;
  put_frame(buf, frame_type::unsubscribe_ok, 2, yes);

  const std::byte* cursor = buf.data();
  std::size_t left = buf.size();
  std::vector<frame_type> seen;
  frame_view f;
  std::size_t consumed = 0;
  while (try_decode(cursor, left, f, consumed) == decode_status::ok) {
    seen.push_back(f.type);
    cursor += consumed;
    left -= consumed;
  }
  EXPECT_EQ(left, 0u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], frame_type::ping);
  EXPECT_EQ(seen[1], frame_type::unsubscribe);
  EXPECT_EQ(seen[2], frame_type::unsubscribe_ok);
}

TEST(WireCodec, ExactSizeReadRejectsWrongPayloadSize) {
  sub_body sub;
  sub.sub = 1;
  std::vector<std::byte> buf;
  put_frame(buf, frame_type::subscribe_ok, 1, sub);
  frame_view f;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode(buf.data(), buf.size(), f, consumed),
            decode_status::ok);
  report_body wrong;  // sizeof(report_body) != sizeof(sub_body)
  EXPECT_FALSE(f.read(wrong));
}

TEST(WireCodecDeathTest, OversizedPayloadIsAnEncoderContractViolation) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::byte> buf;
  const std::vector<std::byte> big(kMaxPayloadBytes + 1);
  EXPECT_DEATH(
      put_frame_bytes(buf, frame_type::overlay_msg, 1, big.data(), big.size()),
      "");
}

// =========================================================== timer wheel

TEST(TimerWheel, FiresInDeadlineOrderAtExactTicks) {
  timer_wheel w;
  std::vector<std::pair<int, std::uint64_t>> fired;
  w.schedule(30, [&] { fired.emplace_back(3, w.now()); });
  w.schedule(10, [&] { fired.emplace_back(1, w.now()); });
  w.schedule(20, [&] { fired.emplace_back(2, w.now()); });
  EXPECT_EQ(w.pending(), 3u);
  EXPECT_EQ(w.advance(100), 3u);
  EXPECT_EQ(w.pending(), 0u);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<int, std::uint64_t>{1, 10}));
  EXPECT_EQ(fired[1], (std::pair<int, std::uint64_t>{2, 20}));
  EXPECT_EQ(fired[2], (std::pair<int, std::uint64_t>{3, 30}));
}

TEST(TimerWheel, SameTickFiresInScheduleOrder) {
  timer_wheel w;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    w.schedule(5, [&order, i] { order.push_back(i); });
  }
  w.advance(5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TimerWheel, PastDeadlinesFireOnTheNextTick) {
  timer_wheel w;
  w.advance(50);
  bool fired = false;
  w.schedule(10, [&] { fired = true; });  // already in the past
  w.advance(51);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, CancelIsExactIncludingFromACallbackOnTheSameTick) {
  timer_wheel w;
  bool late_fired = false;
  const timer_id victim = w.schedule(10, [&] { late_fired = true; });
  EXPECT_TRUE(w.cancel(victim));
  EXPECT_FALSE(w.cancel(victim));  // second cancel: already gone

  // Same-tick assassination: the first timer cancels the second before
  // the wheel reaches it.
  timer_id second = kNoTimer;
  bool second_fired = false;
  w.schedule(20, [&] { w.cancel(second); });
  second = w.schedule(20, [&] { second_fired = true; });
  w.advance(100);
  EXPECT_FALSE(late_fired);
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, PeriodicRepeatsAndCancelStops) {
  timer_wheel w;
  int count = 0;
  timer_id id = kNoTimer;
  id = w.schedule_periodic(10, 10, [&] {
    if (++count == 3) w.cancel(id);
  });
  // Fine-grained advances: one firing per period boundary.
  for (std::uint64_t t = 1; t <= 100; ++t) w.advance(t);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, PeriodicSkipsMissedPeriodsInsteadOfBursting) {
  timer_wheel w;
  std::vector<std::uint64_t> fires;
  w.schedule_periodic(10, 10, [&] { fires.push_back(w.now()); });
  // One big jump across 4 period boundaries: the stabilizer that slept
  // through them runs once, and the next deadline lands past the jump.
  w.advance(45);
  EXPECT_EQ(fires, (std::vector<std::uint64_t>{10}));
  w.advance(55);
  EXPECT_EQ(fires, (std::vector<std::uint64_t>{10, 50}));
}

TEST(TimerWheel, CascadesAcrossLevelBoundaries) {
  // Deltas straddling the level-0 lap (64) and the level-1 lap (4096):
  // each must fire at its exact deadline, not at a cascade boundary.
  for (const std::uint64_t delta :
       {63ull, 64ull, 65ull, 4095ull, 4096ull, 4097ull}) {
    timer_wheel w;
    w.advance(7);  // misalign the cursor from slot 0
    std::uint64_t fired_at = 0;
    w.schedule(7 + delta, [&] { fired_at = w.now(); });
    w.advance(7 + delta - 1);
    EXPECT_EQ(fired_at, 0u) << "delta " << delta << " fired early";
    w.advance(7 + delta);
    EXPECT_EQ(fired_at, 7 + delta) << "delta " << delta;
  }
}

TEST(TimerWheel, OverflowBeyondHorizonFiresExactlyOnce) {
  timer_wheel w;
  const std::uint64_t deadline = timer_wheel::kHorizon + 1234;
  std::uint64_t fired_at = 0;
  int fires = 0;
  w.schedule(deadline, [&] {
    fired_at = w.now();
    ++fires;
  });
  // Before the horizon lap the wheel only promises a wake at the lap.
  EXPECT_LE(w.next_wake(), timer_wheel::kHorizon);
  w.advance(deadline - 1);
  EXPECT_EQ(fires, 0);
  w.advance(deadline + 10);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_at, deadline);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, NextWakeIsExactWithinLevelZeroAndNeverWhenIdle) {
  timer_wheel w;
  EXPECT_EQ(w.next_wake(), timer_wheel::kNever);
  const timer_id id = w.schedule(17, [] {});
  EXPECT_EQ(w.next_wake(), 17u);
  w.cancel(id);
  // Cancelled ids linger in slots; the wake hint may still point there,
  // but advancing through it fires nothing.
  EXPECT_EQ(w.advance(100), 0u);
  EXPECT_EQ(w.next_wake(), timer_wheel::kNever);
}

TEST(TimerWheel, AdvanceJumpsIdleSpansWithoutPerTickWork) {
  timer_wheel w;
  int fires = 0;
  w.schedule(1'000'000, [&] { ++fires; });
  // One advance spanning a million ticks; with per-tick iteration this
  // would time out, with next_wake jumps it is near-instant.
  const auto start = std::chrono::steady_clock::now();
  w.advance(2'000'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(fires, 1);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST(TimerWheelDeathTest, ZeroPeriodIsAContractViolation) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  timer_wheel w;
  EXPECT_DEATH(w.schedule_periodic(5, 0, [] {}), "");
}

// ============================================================ event loop

TEST(EventLoop, AfterFiresOnceAndStopsTheLoop) {
  event_loop loop;
  int fires = 0;
  loop.after(5, [&] {
    ++fires;
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoop, EveryRepeatsUntilCancelled) {
  event_loop loop;
  int fires = 0;
  timer_id id = kNoTimer;
  id = loop.every(2, [&] {
    if (++fires == 3) {
      loop.cancel(id);
      loop.stop();
    }
  });
  loop.run();
  EXPECT_EQ(fires, 3);
}

TEST(EventLoop, PostRunsOnTheLoopThread) {
  event_loop loop;
  std::thread::id loop_thread;
  std::thread poster([&] {
    loop.post([&] {
      loop_thread = std::this_thread::get_id();
      loop.stop();
    });
  });
  loop.run();
  poster.join();
  EXPECT_EQ(loop_thread, std::this_thread::get_id());
}

TEST(EventLoop, StopFromAnotherThreadWakesABlockedLoop) {
  event_loop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.stop();
  });
  loop.run();  // blocked in poll until the stopper's wakeup
  stopper.join();
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoop, DispatchesPipeReadability) {
  for (const bool force_poll : {false, true}) {
    event_loop loop(event_loop_config{force_poll});
    int fds[2] = {-1, -1};
    ASSERT_EQ(::pipe(fds), 0);
    char received = 0;
    loop.watch(fds[0], event_loop::kReadable, [&](std::uint32_t mask) {
      EXPECT_NE(mask & event_loop::kReadable, 0u);
      ASSERT_EQ(::read(fds[0], &received, 1), 1);
      loop.stop();
    });
    // watched() includes the loop's internal self-pipe wakeup watch.
    EXPECT_EQ(loop.watched(), 2u);
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    loop.run();
    EXPECT_EQ(received, 'x');
    loop.unwatch(fds[0]);
    EXPECT_EQ(loop.watched(), 1u);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST(EventLoop, ForcePollDisablesEpoll) {
  event_loop loop(event_loop_config{true});
  EXPECT_FALSE(loop.using_epoll());
#ifdef __linux__
  event_loop native;
  EXPECT_TRUE(native.using_epoll());
#endif
}

// ======================================================= service + client

engine::overlay_backend_config small_config(std::uint64_t seed) {
  engine::overlay_backend_config bc;
  bc.net.seed = seed;
  return bc;
}

/// A service on its own thread, stopped and joined at scope exit.
class service_fixture {
 public:
  explicit service_fixture(service_config config = {})
      : service_(std::move(config)),
        thread_([this] { service_.run(); }) {}
  ~service_fixture() {
    service_.stop();
    thread_.join();
  }
  service& get() { return service_; }
  std::uint16_t port() const { return service_.port(); }

 private:
  service service_;
  std::thread thread_;
};

/// Poll the daemon (through its own protocol) until the population
/// reaches `want` — EOF processing is asynchronous to the closing side.
void await_population(std::uint16_t port, std::uint64_t want) {
  client monitor(port);
  ASSERT_TRUE(monitor.ok());
  for (int i = 0; i < 2000 && monitor.stat().population != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(monitor.stat().population, want);
}

TEST(Service, SubscribePublishUnsubscribeRoundTrip) {
  service_config cfg;
  cfg.backend = small_config(5);
  service_fixture fx(cfg);

  client c(fx.port());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.ping());

  const auto a = c.subscribe(make_rect2(0, 0, 500, 500));
  const auto b = c.subscribe(make_rect2(250, 250, 750, 750));
  ASSERT_NE(a, static_cast<std::uint64_t>(engine::kNoSub));
  ASSERT_NE(b, static_cast<std::uint64_t>(engine::kNoSub));
  EXPECT_TRUE(c.alive(a));
  EXPECT_TRUE(c.alive(b));
  EXPECT_EQ(c.stat().population, 2u);

  const auto ids = c.active();
  EXPECT_EQ(ids.size(), 2u);

  // (300, 300) is inside both filters.
  const auto report = c.publish(a, spatial::pt{{300, 300}});
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.interested, 2u);
  EXPECT_EQ(report.delivered, 2u);
  EXPECT_EQ(report.false_negatives, 0u);
  // Both receivers are ours, so both pushes land on this connection.
  EXPECT_TRUE(c.ping());
  EXPECT_EQ(c.events().size(), 2u);

  EXPECT_TRUE(c.unsubscribe(a));
  EXPECT_FALSE(c.alive(a));
  EXPECT_FALSE(c.unsubscribe(a));  // second time: unknown
  EXPECT_EQ(c.stat().population, 1u);
}

TEST(Service, PublishBatchAggregatesChunksTransparently) {
  service_config cfg;
  cfg.backend = small_config(6);
  service_fixture fx(cfg);
  client c(fx.port());
  ASSERT_TRUE(c.ok());

  const auto s = c.subscribe(make_rect2(0, 0, 1000, 1000));
  ASSERT_TRUE(c.alive(s));

  // 100 events forces two wire chunks (64 + 36).
  std::vector<spatial::pt> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(spatial::pt{{static_cast<double>(i % 37) * 10.0, 500}});
  }
  const auto report = c.publish_batch(s, values.data(), values.size());
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.interested, 100u);
  EXPECT_EQ(report.delivered, 100u);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_TRUE(c.ping());
  EXPECT_EQ(c.events().size(), 100u);
}

TEST(Service, AbruptDisconnectIsTheChurnPrimitive) {
  service_config cfg;
  cfg.backend = small_config(7);
  service_fixture fx(cfg);

  client keeper(fx.port());
  ASSERT_TRUE(keeper.ok());
  const auto kept = keeper.subscribe(make_rect2(0, 0, 100, 100));
  ASSERT_TRUE(keeper.alive(kept));

  {
    client vanishing(fx.port());
    ASSERT_TRUE(vanishing.ok());
    ASSERT_NE(vanishing.subscribe(make_rect2(0, 0, 50, 50)),
              static_cast<std::uint64_t>(engine::kNoSub));
    ASSERT_NE(vanishing.subscribe(make_rect2(50, 50, 100, 100)),
              static_cast<std::uint64_t>(engine::kNoSub));
    ASSERT_EQ(vanishing.stat().population, 3u);
  }  // closes without unsubscribing

  await_population(fx.port(), 1);
  EXPECT_TRUE(keeper.alive(kept));
  EXPECT_GE(fx.get().stats().disconnect_unsubscribes, 2u);
}

TEST(Service, ForeignSubscriptionOperationsAreRejected) {
  service_config cfg;
  cfg.backend = small_config(8);
  service_fixture fx(cfg);

  client owner(fx.port());
  client intruder(fx.port());
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(intruder.ok());

  const auto s = owner.subscribe(make_rect2(0, 0, 100, 100));
  ASSERT_TRUE(owner.alive(s));

  // The intruder can observe the subscription but not act as it.
  EXPECT_TRUE(intruder.alive(s));
  EXPECT_FALSE(intruder.unsubscribe(s));
  EXPECT_EQ(intruder.publish(s, spatial::pt{{10, 10}}).ok, 0u);
  EXPECT_EQ(intruder.publish(999999, spatial::pt{{10, 10}}).ok, 0u);

  // The owner is unaffected.
  EXPECT_TRUE(owner.alive(s));
  EXPECT_TRUE(owner.unsubscribe(s));
}

TEST(Service, GarbageBytesCloseTheConnection) {
  service_config cfg;
  cfg.backend = small_config(9);
  service_fixture fx(cfg);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Not a wire frame and not an HTTP request (GET is sniffed and served
  // since the observability PR — see HttpGetMetricsServesPrometheus).
  const char garbage[] = "SSH-2.0-OpenSSH_9.6\r\nnot a drt frame at all";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
  char buf[64];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // EOF: daemon closed us
  ::close(fd);

  // The daemon itself shrugged it off and keeps serving.
  client c(fx.port());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.ping());
  EXPECT_GE(fx.get().stats().protocol_errors, 1u);
}

TEST(Service, ManyConcurrentClients) {
  service_config cfg;
  cfg.backend = small_config(10);
  service_fixture fx(cfg);

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      client c(fx.port());
      if (!c.ok()) {
        ++failures;
        return;
      }
      const double lo = t * 100.0;
      const auto s = c.subscribe(make_rect2(lo, lo, lo + 100, lo + 100));
      if (s == static_cast<std::uint64_t>(engine::kNoSub)) {
        ++failures;
        return;
      }
      for (int i = 0; i < 20; ++i) {
        const auto r = c.publish(s, spatial::pt{{lo + 50, lo + 50}});
        if (r.ok != 1 || r.false_negatives != 0 || r.interested == 0) {
          ++failures;
          return;
        }
      }
      if (!c.unsubscribe(s)) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  await_population(fx.port(), 0);
}

TEST(Service, ServesOverPollFallback) {
  service_config cfg;
  cfg.backend = small_config(11);
  cfg.force_poll = true;
  service_fixture fx(cfg);

  client c(fx.port());
  ASSERT_TRUE(c.ok());
  const auto s = c.subscribe(make_rect2(0, 0, 10, 10));
  ASSERT_TRUE(c.alive(s));
  EXPECT_EQ(c.publish(s, spatial::pt{{5, 5}}).delivered, 1u);
  EXPECT_TRUE(c.unsubscribe(s));
}

TEST(Service, WallClockStabilizerRunsRounds) {
  service_config cfg;
  cfg.backend = small_config(12);
  cfg.stabilize_every_ms = 5;
  service_fixture fx(cfg);

  client c(fx.port());
  ASSERT_TRUE(c.ok());
  ASSERT_NE(c.subscribe(make_rect2(0, 0, 10, 10)),
            static_cast<std::uint64_t>(engine::kNoSub));
  for (int i = 0; i < 200 && fx.get().stats().stabilize_rounds < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Structure must stay legal under background stabilization.
  EXPECT_TRUE(c.stat().legal);
  EXPECT_GE(fx.get().stats().stabilize_rounds, 3u);
}

// ========================================================= introspection

TEST(Service, LiveStatsMidChurn) {
  // The observability contract (DESIGN.md §12): a serving daemon answers
  // STATS while clients churn, the text is Prometheus-parseable, counters
  // are monotonic across reads, and the overlay gauges reflect the
  // population actually subscribed.
  service_config cfg;
  cfg.backend = small_config(31);
  cfg.backend.dr.trace = obs::trace_mode::ring;
  cfg.stabilize_every_ms = 5;
  service_fixture fx(cfg);

  client owner(fx.port());
  ASSERT_TRUE(owner.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_NE(owner.subscribe(make_rect2(i * 10, i * 10, i * 10 + 80,
                                         i * 10 + 80)),
              static_cast<std::uint64_t>(engine::kNoSub));
  }

  // First read lands mid-churn: ephemeral clients join and vanish while
  // the daemon pages the exposition back.
  std::thread churn([port = fx.port()] {
    for (int round = 0; round < 6; ++round) {
      client ephemeral(port);
      if (!ephemeral.ok()) continue;
      ephemeral.subscribe(make_rect2(0, 0, 30, 30));
      ephemeral.subscribe(make_rect2(40, 40, 90, 90));
      // Destructor = abrupt disconnect, the churn primitive.
    }
  });
  const auto first_text = owner.stats_text();
  churn.join();
  ASSERT_FALSE(first_text.empty());
  const auto first = obs::parse_exposition(first_text);
  ASSERT_NE(first.count("drtd_frames_in_total"), 0u);
  ASSERT_NE(first.count("drtd_overlay_population"), 0u);
  EXPECT_GT(first.at("drtd_frames_in_total"), 0.0);

  // After the churn drains, the gauges settle on the surviving owner
  // subscriptions and the tree has real height.
  await_population(fx.port(), 12);
  const auto second = obs::parse_exposition(owner.stats_text());
  EXPECT_DOUBLE_EQ(second.at("drtd_overlay_population"), 12.0);
  EXPECT_GE(second.at("drtd_overlay_height"), 1.0);
  EXPECT_GT(second.at("drtd_trace_records_total"), 0.0);
  // Monotonic counters never move backwards between reads.
  for (const char* name :
       {"drtd_frames_in_total", "drtd_frames_out_total",
        "drtd_connections_accepted_total", "drtd_stabilize_rounds_total"}) {
    ASSERT_NE(second.count(name), 0u) << name;
    EXPECT_GE(second.at(name), first.at(name)) << name;
  }
}

TEST(Service, StatsSnapshotIsSafeFromAnyThreadWhileServing) {
  service_config cfg;
  cfg.backend = small_config(32);
  service_fixture fx(cfg);

  client c(fx.port());
  ASSERT_TRUE(c.ok());
  ASSERT_NE(c.subscribe(make_rect2(0, 0, 100, 100)),
            static_cast<std::uint64_t>(engine::kNoSub));

  // This thread is neither the loop thread nor a wire client: the
  // snapshot marshals through the event loop and comes back consistent.
  const auto snap = fx.get().stats_snapshot();
  EXPECT_GE(snap.connections_accepted, 1u);
  EXPECT_GT(snap.frames_in, 0u);

  const auto text = fx.get().metrics_text();
  const auto parsed = obs::parse_exposition(text);
  ASSERT_NE(parsed.count("drtd_overlay_population"), 0u);
  EXPECT_DOUBLE_EQ(parsed.at("drtd_overlay_population"), 1.0);
}

TEST(Service, HttpGetMetricsServesPrometheus) {
  service_config cfg;
  cfg.backend = small_config(33);
  service_fixture fx(cfg);

  client c(fx.port());
  ASSERT_TRUE(c.ok());
  ASSERT_NE(c.subscribe(make_rect2(0, 0, 200, 200)),
            static_cast<std::uint64_t>(engine::kNoSub));

  auto http_get = [&](const char* request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_GT(::send(fd, request, std::strlen(request), 0), 0);
    std::string response;
    char buf[4096];
    for (;;) {
      const auto n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // daemon closes after one response
      response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };

  const auto ok = http_get("GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_EQ(ok.compare(0, 15, "HTTP/1.0 200 OK"), 0) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const auto body_at = ok.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const auto parsed = obs::parse_exposition(ok.substr(body_at + 4));
  ASSERT_NE(parsed.count("drtd_connections_accepted_total"), 0u);
  EXPECT_DOUBLE_EQ(parsed.at("drtd_overlay_population"), 1.0);

  const auto missing = http_get("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.compare(0, 12, "HTTP/1.0 404"), 0) << missing;

  // The wire protocol still works on the same port after HTTP traffic.
  EXPECT_TRUE(c.ping());
}

// ============================================================ net backend

TEST(NetBackend, CapabilitiesAreHonest) {
  service_config cfg;
  cfg.backend = small_config(13);
  engine::net_backend be(cfg);
  EXPECT_EQ(be.name(), "net");
  EXPECT_TRUE(be.can(engine::cap_unsubscribe));
  EXPECT_FALSE(be.can(engine::cap_crash));
  EXPECT_FALSE(be.can(engine::cap_restart));
  EXPECT_FALSE(be.can(engine::cap_corruption));
  EXPECT_FALSE(be.can(engine::cap_stabilize));
  EXPECT_FALSE(be.can(engine::cap_partition));
  EXPECT_FALSE(be.can(engine::cap_degrade));
}

TEST(NetBackend, ServesTheBackendInterfaceOverSockets) {
  service_config cfg;
  cfg.backend = small_config(14);
  engine::net_backend be(cfg);
  ASSERT_TRUE(be.connected());

  const auto a = be.subscribe(make_rect2(0, 0, 500, 500));
  const auto b = be.subscribe(make_rect2(400, 400, 600, 600));
  ASSERT_NE(a, engine::kNoSub);
  ASSERT_NE(b, engine::kNoSub);
  EXPECT_EQ(be.population(), 2u);
  EXPECT_TRUE(be.alive(a));
  EXPECT_TRUE(be.legal());
  EXPECT_EQ(be.active().size(), 2u);
  EXPECT_EQ(be.shape().population, 2u);

  const auto r = be.publish(a, spatial::pt{{450, 450}});
  EXPECT_EQ(r.interested, 2u);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_GT(be.counters().messages, 0u);

  const spatial::pt pts[3] = {spatial::pt{{10, 10}}, spatial::pt{{20, 20}},
                              spatial::pt{{450, 450}}};
  const auto rb = be.publish_batch(a, pts, 3);
  EXPECT_EQ(rb.false_negatives, 0u);
  EXPECT_EQ(rb.interested, 4u);  // 1 + 1 + 2 receivers across the batch

  EXPECT_TRUE(be.unsubscribe(b));
  EXPECT_EQ(be.population(), 1u);
}

/// The parity timeline: churn-free (populate + publishes only), because
/// the wall-clock daemon honestly lacks round-stepped stabilization.
engine::scenario parity_scenario() {
  return engine::scenario::make("net_parity")
      .seed(7)
      .populate(40)
      .publish_sweep(50, workload::event_family::matching)
      .publish_batch(48, 16)
      .build();
}

TEST(NetBackend, ChurnFreeTimelineMatchesDrtreeDigestBitForBit) {
  const auto sc = parity_scenario();

  engine::drtree_backend dr(small_config(23));
  engine::scenario_runner rd(dr);
  const auto rec_dr = rd.run(sc);

  service_config cfg;
  cfg.backend = small_config(23);
  cfg.stabilize_every_ms = 0;  // only client operations may make traffic
  engine::net_backend net(cfg);
  engine::scenario_runner rn(net);
  const auto rec_net = rn.run(sc);

  EXPECT_EQ(rec_dr.digest(), rec_net.digest());
  ASSERT_EQ(rec_dr.phases().size(), rec_net.phases().size());
  for (std::size_t i = 0; i < rec_dr.phases().size(); ++i) {
    EXPECT_EQ(rec_dr.phases()[i].messages, rec_net.phases()[i].messages) << i;
    EXPECT_EQ(rec_dr.phases()[i].population, rec_net.phases()[i].population)
        << i;
  }
  const auto* sweep = rec_net.last("publish_sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->false_negatives, 0u);
  const auto* batch = rec_net.last("publish_batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->false_negatives, 0u);
}

TEST(NetBackend, ChurnTimelineAlsoMatchesDrtree) {
  // Connection-close churn drives the same controlled-leave path the
  // drtree backend uses, so even a churning timeline (still without
  // converge/step_rounds) must agree.
  const auto sc = engine::scenario::make("net_churn")
                      .seed(11)
                      .populate(24)
                      .churn_wave(10, 0.5, 6)
                      .publish_sweep(30, workload::event_family::matching)
                      .build();

  engine::drtree_backend dr(small_config(31));
  engine::scenario_runner rd(dr);
  const auto rec_dr = rd.run(sc);

  service_config cfg;
  cfg.backend = small_config(31);
  engine::net_backend net(cfg);
  engine::scenario_runner rn(net);
  const auto rec_net = rn.run(sc);

  EXPECT_EQ(rec_dr.digest(), rec_net.digest());
}

TEST(NetBackend, TwoSpawnedServicesAreDeterministic) {
  const auto sc = parity_scenario();
  auto run_once = [&] {
    service_config cfg;
    cfg.backend = small_config(17);
    engine::net_backend be(cfg);
    engine::scenario_runner runner(be);
    return runner.run(sc);
  };
  EXPECT_EQ(run_once().digest(), run_once().digest());
}

TEST(NetBackend, StepRoundsPhasesAreRecordedAsSkipped) {
  // Satellite regression: on a backend without cap_stabilize the runner
  // must record step_rounds as skipped, not silently no-op it.
  const auto sc = engine::scenario::make("steps")
                      .seed(3)
                      .populate(8)
                      .step_rounds(3)
                      .build();

  service_config cfg;
  cfg.backend = small_config(19);
  engine::net_backend net(cfg);
  engine::scenario_runner rn(net);
  const auto rec_net = rn.run(sc);
  const auto* net_row = rec_net.last("step_rounds");
  ASSERT_NE(net_row, nullptr);
  EXPECT_TRUE(net_row->skipped);

  engine::drtree_backend dr(small_config(19));
  engine::scenario_runner rd(dr);
  const auto rec_dr = rd.run(sc);
  const auto* dr_row = rec_dr.last("step_rounds");
  ASSERT_NE(dr_row, nullptr);
  EXPECT_FALSE(dr_row->skipped);
}

// ============================================================ gated soak

TEST(Soak, ConcurrentClientsWithMidRunDisconnects) {
  if (std::getenv("DRT_NET_SOAK") == nullptr) {
    GTEST_SKIP() << "set DRT_NET_SOAK=1 to run the localhost soak";
  }
  int seconds = 20;
  if (const char* env = std::getenv("DRT_NET_SOAK_SECONDS")) {
    seconds = std::max(1, std::atoi(env));
  }

  service_config cfg;
  cfg.backend = small_config(2007);
  cfg.stabilize_every_ms = 20;
  service_fixture fx(cfg);

  constexpr int kThreads = 16;
  std::atomic<int> failures{0};
  std::atomic<long> publishes{0};
  // Mid-churn false negatives are transient DR-tree behavior (the
  // delivery guarantee is eventual, restored by stabilization) — counted
  // here for the log, only the quiescent sweep below must be exact.
  std::atomic<long> transient_fn{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::rng rng(0x50a17ull + static_cast<std::uint64_t>(t));
      while (std::chrono::steady_clock::now() < deadline) {
        client c(fx.port());
        if (!c.ok()) {
          ++failures;
          return;
        }
        std::vector<std::uint64_t> subs;
        const auto nsubs = rng.uniform_int(1, 3);
        for (std::int64_t i = 0; i < nsubs; ++i) {
          const double x = rng.uniform_real(0, 900);
          const double y = rng.uniform_real(0, 900);
          const auto s = c.subscribe(make_rect2(x, y, x + 100, y + 100));
          if (s == static_cast<std::uint64_t>(engine::kNoSub)) {
            ++failures;
            return;
          }
          subs.push_back(s);
        }
        const auto npubs = rng.uniform_int(2, 10);
        for (std::int64_t i = 0; i < npubs; ++i) {
          const auto r = c.publish(
              subs[rng.index(subs.size())],
              spatial::pt{{rng.uniform_real(0, 1000),
                           rng.uniform_real(0, 1000)}});
          if (r.ok != 1) {
            ++failures;
            return;
          }
          transient_fn += static_cast<long>(r.false_negatives);
          ++publishes;
          c.events().clear();
        }
        // Half the sessions leave cleanly, half just vanish — the
        // disconnect-churn path under load.
        if (rng.chance(0.5)) {
          for (const auto s : subs) {
            if (!c.unsubscribe(s)) {
              ++failures;
              return;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(publishes.load(), 0l);
  std::fprintf(stderr, "soak: %ld publishes, %ld transient fn\n",
               publishes.load(), transient_fn.load());

  // Quiescent sweep: every session is gone, the daemon processed all the
  // departures, and the surviving structure still delivers exactly.
  await_population(fx.port(), 0);
  client c(fx.port());
  ASSERT_TRUE(c.ok());
  const auto s = c.subscribe(make_rect2(0, 0, 1000, 1000));
  ASSERT_TRUE(c.alive(s));
  const auto r = c.publish(s, spatial::pt{{500, 500}});
  EXPECT_EQ(r.ok, 1u);
  EXPECT_EQ(r.interested, 1u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_TRUE(c.stat().legal);
  EXPECT_TRUE(c.unsubscribe(s));
}

}  // namespace
}  // namespace drt::rpc
