// The network-model subsystem (DESIGN.md §7).
//
// Four contracts pinned here:
//  1. The default uniform model is a strict no-op refactor of the old
//     hard-coded delay/loss fields — golden recorder digests captured on
//     the pre-subsystem code must reproduce bit-for-bit, with the legacy
//     shorthand fields and with an explicit uniform_model_config alike.
//  2. Every model is deterministic: same scenario + seed + net config ⇒
//     bit-identical metrics_recorder digest.
//  3. The cluster and dynamic models actually shape traffic: intra beats
//     inter latency, partitions cut (and purge) cross-side traffic,
//     duplication re-delivers, degradation stretches delays.
//  4. The stabilizer's behavior under partition is measured, not
//     assumed: a partition produces genuine split-brain (both sides
//     internally stable, two roots, globally illegitimate), and after
//     the heal the overlay re-legalizes with zero false negatives.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/flooding.h"
#include "drtree/checker.h"
#include "drtree/overlay.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "net/config.h"
#include "net/model.h"
#include "sim/simulator.h"

namespace drt {
namespace {

using engine::drtree_backend;
using engine::metrics_recorder;
using engine::overlay_backend_config;
using engine::scenario_runner;

// ---------------------------------------------------------- validation

using NetConfigDeathTest = ::testing::Test;

TEST(NetConfigDeathTest, RejectsInvalidConfigs) {
  net::uniform_model_config bad_delay;
  bad_delay.min_delay = 2.0;
  bad_delay.max_delay = 1.0;
  EXPECT_DEATH(net::validate(net::model_config{bad_delay}), "");

  net::uniform_model_config bad_loss;
  bad_loss.loss = 1.5;
  EXPECT_DEATH(net::validate(net::model_config{bad_loss}), "");

  net::cluster_model_config bad_matrix;  // 2 clusters, 3-cell matrix
  bad_matrix.min_matrix = {0.1, 0.2, 0.3};
  bad_matrix.max_matrix = {1.0, 1.0, 1.0};
  EXPECT_DEATH(net::validate(net::model_config{bad_matrix}), "");

  net::cluster_model_config negative_cell;
  negative_cell.min_matrix = {-0.1, 0.2, 0.2, 0.1};
  negative_cell.max_matrix = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DEATH(net::validate(net::model_config{negative_cell}), "");

  net::cluster_model_config inverted_cell;
  inverted_cell.min_matrix = {0.5, 0.2, 0.2, 0.5};
  inverted_cell.max_matrix = {0.1, 1.0, 1.0, 1.0};
  EXPECT_DEATH(net::validate(net::model_config{inverted_cell}), "");

  net::dynamic_model_config bad_dup;
  bad_dup.duplicate = 2.0;
  EXPECT_DEATH(net::validate(net::model_config{bad_dup}), "");

  // The simulator validates at construction (the satellite contract:
  // fail loudly instead of silently misbehaving).
  sim::simulator_config scfg;
  scfg.model = net::model_config{bad_delay};
  EXPECT_DEATH(sim::simulator{scfg}, "");
}

TEST(NetConfig, NamesAreStable) {
  EXPECT_STREQ(net::model_name(net::uniform_model_config{}), "uniform");
  EXPECT_STREQ(net::model_name(net::cluster_model_config{}), "cluster");
  EXPECT_STREQ(net::model_name(net::dynamic_model_config{}), "dynamic");
}

// ------------------------------------------------- uniform no-op golden

metrics_recorder run_drtree(const engine::scenario& sc,
                            overlay_backend_config bc) {
  drtree_backend be(engine::configured_for(sc, bc));
  scenario_runner runner(be);
  return runner.run(sc);
}

// Golden digests captured on the pre-subsystem code (hard-coded
// delay/loss fields), pinning "default uniform_model is a strict no-op".
constexpr std::uint64_t kGoldenRollingChurn = 2727552842464279799ull;
constexpr std::uint64_t kGoldenFlashCrowd = 2725230533165199554ull;
constexpr std::uint64_t kGoldenMassacreLossy = 12904214689126478679ull;

TEST(UniformModel, MatchesPrePrGoldenDigests) {
  overlay_backend_config bc;
  bc.net.seed = 41;
  EXPECT_EQ(run_drtree(engine::canned::rolling_churn(48, 3, 12, 7), bc)
                .digest(),
            kGoldenRollingChurn);
  EXPECT_EQ(run_drtree(engine::canned::flash_crowd(24, 96, 7), bc).digest(),
            kGoldenFlashCrowd);

  overlay_backend_config lossy = bc;
  lossy.net.message_loss = 0.05;
  EXPECT_EQ(
      run_drtree(engine::canned::massacre_then_heal(60, 1.0 / 3, 0.5, 7),
                 lossy)
          .digest(),
      kGoldenMassacreLossy);
}

TEST(UniformModel, ExplicitConfigEqualsLegacyShorthand) {
  // The same transport expressed via simulator_config's legacy fields
  // and via an explicit uniform_model_config must be bit-identical.
  overlay_backend_config shorthand;
  shorthand.net.seed = 41;
  shorthand.net.message_loss = 0.05;

  net::uniform_model_config u;
  u.loss = 0.05;
  overlay_backend_config explicit_model;
  explicit_model.net.seed = 41;
  explicit_model.net.model = net::model_config{u};

  const auto sc = engine::canned::massacre_then_heal(60, 1.0 / 3, 0.5, 7);
  EXPECT_EQ(run_drtree(sc, shorthand).digest(), kGoldenMassacreLossy);
  EXPECT_EQ(run_drtree(sc, explicit_model).digest(), kGoldenMassacreLossy);
}

// --------------------------------------------- per-model determinism

engine::scenario churny(std::uint64_t seed,
                        const net::model_config& model) {
  return engine::scenario::make("net_churn")
      .seed(seed)
      .net(model)
      .populate(32)
      .converge()
      .churn_wave(12, 0.5, 8)
      .converge()
      .publish_sweep(40, workload::event_family::matching)
      .build();
}

TEST(NetDeterminism, SameScenarioSeedAndModelAreBitIdentical) {
  net::cluster_model_config cl;
  cl.clusters = 3;
  cl.jitter = 0.2;
  cl.loss = 0.01;

  net::dynamic_model_config dyn;
  dyn.base = cl;
  dyn.extra_loss = 0.01;
  dyn.duplicate = 0.05;
  dyn.reorder = 0.05;

  const net::model_config models[] = {net::uniform_model_config{}, cl, dyn};
  for (const auto& m : models) {
    overlay_backend_config bc;
    bc.net.seed = 77;
    const auto sc = churny(9, m);
    const auto a = run_drtree(sc, bc);
    const auto b = run_drtree(sc, bc);
    EXPECT_EQ(a.digest(), b.digest()) << net::model_name(m);
    // And the model shapes the run: a different seed diverges.
    EXPECT_NE(run_drtree(churny(10, m), bc).digest(), a.digest())
        << net::model_name(m);
  }
}

TEST(NetDeterminism, DifferentModelsDiverge) {
  overlay_backend_config bc;
  bc.net.seed = 77;
  net::cluster_model_config cl;  // defaults: 2 clusters, slow inter
  EXPECT_NE(run_drtree(churny(9, net::uniform_model_config{}), bc).digest(),
            run_drtree(churny(9, net::model_config{cl}), bc).digest());
}

// ----------------------------------------------------- cluster shaping

struct sink_process : sim::process {
  void on_message(sim::process_id, std::uint64_t,
                  const sim::envelope&) override {}
};

TEST(ClusterModel, IntraClusterBeatsInterClusterLatency) {
  // Default shape: 2 clusters, intra [0.2, 0.6], inter [2, 6] — the
  // ranges are disjoint, so every same-cluster delivery must beat every
  // cross-cluster one.  Round-robin assignment puts even ids in cluster
  // 0 and odd ids in cluster 1.
  net::cluster_model_config cl;
  sim::simulator_config scfg;
  scfg.model = net::model_config{cl};

  double intra_worst = 0.0;
  double inter_best = 1e9;
  for (int i = 0; i < 64; ++i) {
    scfg.seed = 5 + static_cast<std::uint64_t>(i);
    sim::simulator s(scfg);
    for (int p = 0; p < 4; ++p) {
      s.add_process(std::make_unique<sink_process>());
    }
    double at = -1.0;
    s.set_trace([&at](const sim::simulator::trace_event& e) { at = e.at; });
    if (i % 2 == 0) {
      s.send(0, 2, 1);  // intra: both cluster 0
    } else {
      s.send(0, 1, 1);  // inter: cluster 0 -> 1
    }
    s.run_steps(1);
    ASSERT_GE(at, 0.0);
    if (i % 2 == 0) {
      intra_worst = std::max(intra_worst, at);
    } else {
      inter_best = std::min(inter_best, at);
    }
  }
  EXPECT_LT(intra_worst, inter_best);
}

TEST(ClusterModel, PerLinkJitterIsDeterministicAndBounded) {
  net::cluster_model_config cl;
  cl.jitter = 0.25;
  sim::simulator_config scfg;
  scfg.seed = 19;
  scfg.model = net::model_config{cl};

  auto trace_of = [&] {
    sim::simulator s(scfg);
    for (int p = 0; p < 6; ++p) {
      s.add_process(std::make_unique<sink_process>());
    }
    std::vector<double> ats;
    s.set_trace([&ats](const sim::simulator::trace_event& e) {
      ats.push_back(e.at);
    });
    for (int i = 0; i < 30; ++i) {
      s.send(static_cast<sim::process_id>(i % 6),
             static_cast<sim::process_id>((i + 2) % 6), 1);
    }
    s.run_steps(64);
    return ats;
  };
  const auto a = trace_of();
  const auto b = trace_of();
  EXPECT_EQ(a, b);  // jitter is hash-derived, not an extra RNG stream
  // Jittered delays stay within the advertised bounds.
  for (const auto at : a) {
    EXPECT_GE(at, 0.2 * (1.0 - cl.jitter));
    EXPECT_LE(at, 6.0 * (1.0 + cl.jitter));
  }
}

TEST(ClusterModel, CountsIntraAndInterSends) {
  net::cluster_model_config cl;
  sim::simulator_config scfg;
  scfg.model = net::model_config{cl};
  sim::simulator s(scfg);
  for (int p = 0; p < 4; ++p) s.add_process(std::make_unique<sink_process>());
  s.send(0, 2, 1);  // intra
  s.send(0, 2, 1);  // intra
  s.send(1, 2, 1);  // inter
  EXPECT_EQ(s.net_model().counters().intra_cluster, 2u);
  EXPECT_EQ(s.net_model().counters().inter_cluster, 1u);
}

// ------------------------------------------------------ dynamic faults

sim::simulator_config dynamic_sim_config(std::uint64_t seed,
                                         net::dynamic_model_config dyn = {}) {
  sim::simulator_config scfg;
  scfg.seed = seed;
  scfg.model = net::model_config{dyn};
  return scfg;
}

TEST(DynamicModel, PartitionCutsPurgesAndHeals) {
  sim::simulator s(dynamic_sim_config(3));
  for (int p = 0; p < 4; ++p) s.add_process(std::make_unique<sink_process>());

  // In-flight cross-cut traffic is purged when the partition lands.
  s.send(0, 2, 1);
  ASSERT_EQ(s.pending_work(), 1u);
  ASSERT_TRUE(s.partition({2, 3}));
  EXPECT_EQ(s.pending_work(), 0u);
  EXPECT_EQ(s.metrics().messages_partitioned, 1u);

  // New cross-cut sends drop at the source; same-side sends deliver.
  EXPECT_FALSE(s.reachable(0, 2));
  EXPECT_TRUE(s.reachable(0, 1));
  s.send(0, 2, 1);
  s.send(0, 1, 1);
  s.run_steps(10);
  EXPECT_EQ(s.metrics().messages_partitioned, 2u);
  EXPECT_EQ(s.metrics().messages_delivered, 1u);
  EXPECT_EQ(s.net_model().counters().partitioned, 1u);  // send-path cut

  ASSERT_TRUE(s.heal_partition());
  EXPECT_TRUE(s.reachable(0, 2));
  s.send(0, 2, 1);
  s.run_steps(10);
  EXPECT_EQ(s.metrics().messages_delivered, 2u);
}

TEST(DynamicModel, StaticModelRefusesRuntimeFaults) {
  sim::simulator s{sim::simulator_config{}};
  s.add_process(std::make_unique<sink_process>());
  EXPECT_EQ(s.dynamic_net(), nullptr);
  EXPECT_FALSE(s.partition({0}));
  EXPECT_FALSE(s.heal_partition());
  EXPECT_FALSE(s.degrade_links(2.0, 0.0, 0.0));
  EXPECT_TRUE(s.reachable(0, 0));
}

TEST(DynamicModel, DuplicationDeliversTwiceWithIntactPayload) {
  net::dynamic_model_config dyn;
  dyn.duplicate = 1.0;  // every message grows a copy
  sim::simulator s(dynamic_sim_config(3, dyn));
  struct counting : sim::process {
    int hits = 0;
    std::vector<int> values;
    void on_message(sim::process_id, std::uint64_t,
                    const sim::envelope& msg) override {
      ++hits;
      if (const auto* v = msg.visit<int>()) values.push_back(*v);
    }
  };
  s.add_process(std::make_unique<counting>());
  const auto b = s.add_process(std::make_unique<counting>());
  s.send<int>(0, b, 1, 42);
  s.run_steps(10);
  auto& sink = static_cast<counting&>(s.get(b));
  EXPECT_EQ(sink.hits, 2);
  ASSERT_EQ(sink.values.size(), 2u);
  EXPECT_EQ(sink.values[0], 42);
  EXPECT_EQ(sink.values[1], 42);  // the shared payload block survived
  EXPECT_EQ(s.metrics().messages_duplicated, 1u);
  EXPECT_EQ(s.metrics().messages_sent, 1u);
  EXPECT_EQ(s.metrics().messages_delivered, 2u);
}

TEST(DynamicModel, DegradationStretchesDelaysAndStacksLoss) {
  // Base delays in [0.5, 1.5]; a held 4x degradation must push every
  // delivery past the undegraded maximum.
  sim::simulator degraded(dynamic_sim_config(11));
  for (int p = 0; p < 2; ++p) {
    degraded.add_process(std::make_unique<sink_process>());
  }
  ASSERT_TRUE(degraded.degrade_links(4.0, 0.0, 0.0));  // instant, held
  double worst = 0.0;
  double best = 1e9;
  degraded.set_trace([&](const sim::simulator::trace_event& e) {
    best = std::min(best, e.at);
    worst = std::max(worst, e.at);
  });
  for (int i = 0; i < 16; ++i) degraded.send(0, 1, 1);
  degraded.run_steps(32);
  EXPECT_GT(best, 1.5);  // undegraded max delay
  EXPECT_LE(worst, 6.0);
  EXPECT_GT(degraded.net_model().counters().degraded, 0u);

  // Degradation-stacked loss: extra_loss = 1 drops everything.
  sim::simulator lossy(dynamic_sim_config(11));
  for (int p = 0; p < 2; ++p) {
    lossy.add_process(std::make_unique<sink_process>());
  }
  ASSERT_TRUE(lossy.degrade_links(1.0, 1.0, 0.0));
  for (int i = 0; i < 8; ++i) lossy.send(0, 1, 1);
  lossy.run_steps(32);
  EXPECT_EQ(lossy.metrics().messages_delivered, 0u);
  EXPECT_EQ(lossy.metrics().messages_dropped, 8u);
  EXPECT_TRUE(lossy.clear_degradation());
  lossy.send(0, 1, 1);
  lossy.run_steps(8);
  EXPECT_EQ(lossy.metrics().messages_delivered, 1u);
}

// --------------------------------- stabilizer under partition (measured)

TEST(PartitionHeal, SplitBrainFormsAndHealsWithZeroFalseNegatives) {
  // Direct overlay drive: converge, cut a third off, let both sides
  // stabilize, measure the split-brain, heal, measure recovery.
  overlay::dr_config dcfg;
  sim::simulator_config scfg;
  scfg.seed = 7;
  scfg.model = net::model_config{net::dynamic_model_config{}};
  overlay::dr_overlay o(dcfg, scfg);

  util::rng boxes(99);
  auto random_box = [&] {
    const double x1 = boxes.uniform_real(0, 1000);
    const double x2 = boxes.uniform_real(0, 1000);
    const double y1 = boxes.uniform_real(0, 1000);
    const double y2 = boxes.uniform_real(0, 1000);
    return geo::make_rect2(std::min(x1, x2), std::min(y1, y2),
                           std::max(x1, x2), std::max(y1, y2));
  };
  for (int i = 0; i < 48; ++i) o.add_peer_and_settle(random_box());
  for (int r = 0; r < 60 && !overlay::checker(o).check().legal(); ++r) {
    o.advance(dcfg.stabilize_period);
    o.settle();
  }
  ASSERT_TRUE(overlay::checker(o).check().legal());

  const auto live = o.live_peers();
  const std::vector<spatial::peer_id> minority(live.begin(),
                                               live.begin() + 16);
  ASSERT_TRUE(o.partition(minority));
  EXPECT_TRUE(o.partitioned());
  for (int r = 0; r < 15; ++r) {
    o.advance(dcfg.stabilize_period);
    o.settle();
  }
  // Split brain, measured: both sides elected a root, the global
  // configuration is illegitimate, and cross-cut events orphan the far
  // side's interested subscribers.
  EXPECT_GE(o.root_peers().size(), 2u);
  EXPECT_FALSE(overlay::checker(o).check().legal());
  std::size_t fn_during = 0;
  for (int i = 0; i < 10; ++i) {
    const auto r = o.publish_and_drain(
        minority[static_cast<std::size_t>(i) % minority.size()],
        {{100.0 * i, 50.0 * i}});
    fn_during += r.false_negatives;
  }
  EXPECT_GT(fn_during, 0u);

  // Heal: the two trees merge back (root probes) into one legal overlay.
  ASSERT_TRUE(o.heal_partition());
  EXPECT_FALSE(o.partitioned());
  int rounds = -1;
  for (int r = 0; r < 100; ++r) {
    if (overlay::checker(o).check().legal()) {
      rounds = r;
      break;
    }
    o.advance(dcfg.stabilize_period);
    o.settle();
  }
  ASSERT_GE(rounds, 0) << "overlay did not re-legalize after heal";
  EXPECT_EQ(o.root_peers().size(), 1u);

  // Zero false negatives after the heal — the paper's guarantee holds
  // again once the transport assumption does.
  std::size_t fn_after = 0;
  for (int i = 0; i < 10; ++i) {
    const auto r = o.publish_and_drain(live[static_cast<std::size_t>(i)],
                                       {{100.0 * i, 50.0 * i}});
    EXPECT_GT(r.delivered, 0u);
    fn_after += r.false_negatives;
  }
  EXPECT_EQ(fn_after, 0u);
}

TEST(PartitionHeal, CannedScenarioRecoversOnDrtreeAndBroker) {
  const auto sc = engine::canned::split_brain_heal(48, 1.0 / 3, 6, 7);
  overlay_backend_config bc;
  bc.net.seed = 53;

  auto check = [&](engine::backend& be) -> std::uint64_t {
    scenario_runner runner(be);
    const auto rec = runner.run(sc);
    // The step_rounds row inside the cut must record illegality
    // (split brain) and the mid-partition sweep must show FNs.
    const auto* cut = rec.last("step_rounds");
    EXPECT_NE(cut, nullptr);
    if (cut != nullptr) {
      EXPECT_EQ(cut->legal, 0) << be.name();
    }
    const engine::phase_metrics* during = nullptr;
    bool inside = false;
    for (const auto& m : rec.phases()) {
      if (m.phase == "partition") inside = true;
      if (m.phase == "heal") break;
      if (inside && m.phase == "publish_sweep") during = &m;
    }
    EXPECT_NE(during, nullptr);
    if (during != nullptr) {
      EXPECT_GT(during->false_negatives, 0u) << be.name();
    }
    // After the heal: legal again, zero false negatives.
    const auto* heal = rec.last("converge_until_legal");
    EXPECT_EQ(heal->legal, 1) << be.name();
    const auto* after = rec.last("publish_sweep");
    EXPECT_EQ(after->false_negatives, 0u) << be.name();
    return rec.digest();
  };

  drtree_backend dr(engine::configured_for(sc, bc));
  engine::broker_backend br(engine::configured_for(sc, bc));
  // The two overlay adapters drive the identical protocol stack; a
  // partition timeline is churn-free, so their digests must agree.
  EXPECT_EQ(check(dr), check(br));
}

TEST(PartitionHeal, PhasesSkipOnBackendsWithoutTheCapability) {
  const auto sc = engine::canned::split_brain_heal(16, 0.5, 2, 7);

  // Static uniform model: the overlay adapter has no dynamic layer, so
  // partition/heal record skipped and the run completes legally.
  drtree_backend be{overlay_backend_config{}};
  EXPECT_FALSE(be.can(engine::cap_partition));
  scenario_runner runner(be);
  const auto rec = runner.run(sc);
  bool saw_skipped_partition = false;
  for (const auto& m : rec.phases()) {
    if (m.phase == "partition") {
      EXPECT_TRUE(m.skipped);
      saw_skipped_partition = true;
    }
    if (m.phase == "heal") {
      EXPECT_TRUE(m.skipped);
    }
  }
  EXPECT_TRUE(saw_skipped_partition);
  const auto* after = rec.last("publish_sweep");
  EXPECT_EQ(after->false_negatives, 0u);  // never partitioned, never torn

  // A structural baseline skips too (no capability, no crash).
  engine::baseline_backend flood(
      std::make_unique<baselines::flooding>(4, 113));
  EXPECT_FALSE(flood.can(engine::cap_partition));
  scenario_runner flood_runner(flood);
  const auto flood_rec = flood_runner.run(sc);
  for (const auto& m : flood_rec.phases()) {
    if (m.phase == "partition" || m.phase == "heal") {
      EXPECT_TRUE(m.skipped);
    }
  }
}

}  // namespace
}  // namespace drt
