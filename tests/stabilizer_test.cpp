// Stabilization-module ablation: each CHECK_* module of Figs. 10-14 is
// *necessary* — with the module disabled, the fault class it repairs
// persists forever; with it enabled, the same fault converges.  Also
// covers the efficient-leave handoff variant and peer restart with stale
// state (the transient-fault model of §2.1).
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "drtree/checker.h"
#include "drtree/corruptor.h"

namespace drt::overlay {
namespace {

using analysis::harness_config;
using analysis::testbed;
using spatial::kNoPeer;
using spatial::peer_id;

harness_config config_with(stabilizer_switches sw, std::uint64_t seed) {
  harness_config hc;
  hc.net.seed = seed;
  hc.dr.stabilizers = sw;
  return hc;
}

peer_id interior_non_root(testbed& tb) {
  const auto root = tb.overlay().current_root();
  for (const auto p : tb.overlay().live_peers()) {
    if (p != root && tb.overlay().peer(p).top() > 0) return p;
  }
  return kNoPeer;
}

TEST(StabilizerAblation, CheckMbrIsNecessary) {
  // Interior MBRs are also recomputed by CHECK_CHILDREN (by design:
  // redundant repair), so the *isolated* fault class of Fig. 10 is a
  // corrupted LEAF MBR — only "if Is_Leaf(p,l): mbr <- filter" fixes it.
  auto sw = stabilizer_switches{};
  sw.check_mbr = false;
  testbed tb(config_with(sw, 3));
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);

  corruptor c(tb.overlay(), 7);
  const auto victim = tb.overlay().live_peers()[5];
  c.scramble_mbr(victim, 0);  // leaf MBR != filter
  if (tb.overlay().peer(victim).inst(0).mbr ==
      tb.overlay().peer(victim).filter()) {
    c.scramble_mbr(victim, 0);  // astronomically unlikely collision
  }
  ASSERT_FALSE(tb.legal());
  EXPECT_EQ(tb.converge(40), -1)
      << "leaf MBR corruption repaired with CHECK_MBR disabled?";

  // Control: the full stabilizer fixes the same fault class.
  testbed control(config_with(stabilizer_switches{}, 3));
  control.populate(30);
  ASSERT_GE(control.converge(), 0);
  corruptor c2(control.overlay(), 7);
  control.overlay().peer(control.overlay().live_peers()[5]).inst(0).mbr =
      geo::make_rect2(1, 2, 3, 4);
  ASSERT_FALSE(control.legal());
  EXPECT_GE(control.converge(40), 0);
}

TEST(StabilizerAblation, CheckParentIsNecessary) {
  // A *dead or missing* parent link is redundantly repaired by the root
  // probes (a broken-chain peer acts as a fragment root when a probe
  // passes through it).  The isolated Fig. 11 fault is a parent pointer
  // at a live peer that does NOT list the victim: probes route through
  // it transparently, the old parent discards the victim via
  // CHECK_CHILDREN, and only "if p not in C(parent): rejoin" recovers it.
  auto sw = stabilizer_switches{};
  sw.check_parent = false;
  testbed tb(config_with(sw, 5));
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);

  const auto victim = interior_non_root(tb);
  ASSERT_NE(victim, kNoPeer);
  auto& victim_peer = tb.overlay().peer(victim);
  auto& ins = victim_peer.inst(victim_peer.top());
  // Pick a live impostor that is neither the victim nor its real parent.
  spatial::peer_id impostor = kNoPeer;
  for (const auto p : tb.overlay().live_peers()) {
    if (p != victim && p != ins.parent) {
      impostor = p;
      break;
    }
  }
  ASSERT_NE(impostor, kNoPeer);
  ins.parent = impostor;
  ASSERT_FALSE(tb.legal());
  EXPECT_EQ(tb.converge(40), -1)
      << "orphan rejoined with CHECK_PARENT disabled?";

  // Control: with CHECK_PARENT enabled the identical fault heals.
  testbed control(config_with(stabilizer_switches{}, 5));
  control.populate(30);
  ASSERT_GE(control.converge(), 0);
  const auto victim2 = interior_non_root(control);
  ASSERT_NE(victim2, kNoPeer);
  auto& vp2 = control.overlay().peer(victim2);
  auto& ins2 = vp2.inst(vp2.top());
  spatial::peer_id impostor2 = kNoPeer;
  for (const auto p : control.overlay().live_peers()) {
    if (p != victim2 && p != ins2.parent) {
      impostor2 = p;
      break;
    }
  }
  ins2.parent = impostor2;
  ASSERT_FALSE(control.legal());
  EXPECT_GE(control.converge(60), 0);
}

TEST(StabilizerAblation, CheckChildrenIsNecessary) {
  auto sw = stabilizer_switches{};
  sw.check_children = false;
  testbed tb(config_with(sw, 7));
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);

  // Adopt a stranger: the stranger's parent pointer does not change, so
  // only CHECK_CHILDREN ("simply discards the child") can repair it.
  const auto root = tb.overlay().current_root();
  const auto victim = interior_non_root(tb);
  ASSERT_NE(victim, kNoPeer);
  auto& victim_peer = tb.overlay().peer(victim);
  auto& ins = victim_peer.inst(victim_peer.top());
  ins.add_child(root);  // the root is never a legitimate child here
  ASSERT_FALSE(tb.legal());
  EXPECT_EQ(tb.converge(40), -1)
      << "stranger child discarded with CHECK_CHILDREN disabled?";
}

TEST(StabilizerAblation, CheckStructureIsNecessary) {
  auto sw = stabilizer_switches{};
  sw.check_structure = false;
  auto hc = config_with(sw, 11);
  hc.dr.min_children = 3;
  hc.dr.max_children = 6;
  testbed tb(hc);
  tb.populate(60);
  ASSERT_GE(tb.converge(), 0);

  // Shrink some interior node below m by discarding children: without
  // compaction/redistribution nothing restores the m bound (joins could,
  // but none arrive).
  const auto root = tb.overlay().current_root();
  peer_id victim = kNoPeer;
  for (const auto p : tb.overlay().live_peers()) {
    const auto& peer = tb.overlay().peer(p);
    if (p == root || peer.top() == 0) continue;
    const auto& ins = peer.inst(peer.top());
    if (ins.children.size() >= 4) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  // Crash children of the victim until it is underloaded.
  auto& victim_peer = tb.overlay().peer(victim);
  const auto h = victim_peer.top();
  std::size_t crashed = 0;
  for (const auto c : victim_peer.inst(h).children) {
    if (c == victim) continue;
    if (victim_peer.inst(h).children.size() - crashed <= 2) break;
    tb.overlay().crash(c);
    ++crashed;
  }
  ASSERT_GT(crashed, 0u);
  EXPECT_EQ(tb.converge(40), -1)
      << "m bound restored with CHECK_STRUCTURE disabled?";

  // Control: full stabilizer handles the identical scenario.
  auto hc2 = config_with(stabilizer_switches{}, 11);
  hc2.dr.min_children = 3;
  hc2.dr.max_children = 6;
  testbed control(hc2);
  control.populate(60);
  ASSERT_GE(control.converge(), 0);
  auto live = control.overlay().live_peers();
  for (std::size_t i = 0; i < 6; ++i) {
    control.overlay().crash(live[i * 7 % live.size()]);
  }
  EXPECT_GE(control.converge(200), 0);
}

// Hand-build a three-peer tree where a *small*-filter peer is the root
// and a big-filter peer sits below it — the Fig. 13 violation ("the child
// of a node may better cover the node sub-tree than the node itself").
void stage_cover_violation(testbed& tb, spatial::peer_id a,
                           spatial::peer_id b, spatial::peer_id c) {
  auto& ov = tb.overlay();
  for (const auto p : {a, b, c}) {
    auto& peer = ov.peer(p);
    while (peer.top() > 0) peer.erase_inst(peer.top());
  }
  auto& ap = ov.peer(a);
  auto& root = ap.ensure_inst(1);
  root.parent = a;
  root.children = {a, b, c};
  root.mbr = join(join(ov.peer(a).filter(), ov.peer(b).filter()),
                  ov.peer(c).filter());
  root.underloaded = false;
  for (const auto p : {a, b, c}) {
    auto& leaf = ov.peer(p).inst(0);
    leaf.parent = a;
    leaf.mbr = ov.peer(p).filter();
  }
}

TEST(StabilizerAblation, CheckCoverIsNecessary) {
  auto sw = stabilizer_switches{};
  sw.check_cover = false;
  auto hc = config_with(sw, 13);
  hc.dr.min_children = 2;
  hc.dr.max_children = 4;
  testbed tb(hc);
  const auto a = tb.add(geo::make_rect2(0, 0, 10, 10));     // small: root
  const auto b = tb.add(geo::make_rect2(20, 0, 30, 10));    // small
  const auto c = tb.add(geo::make_rect2(0, 0, 900, 900));   // big: child
  tb.overlay().settle();
  stage_cover_violation(tb, a, b, c);
  ASSERT_FALSE(tb.legal());  // "child c offers a better cover"
  EXPECT_EQ(tb.converge(40), -1)
      << "cover violation repaired with CHECK_COVER disabled?";

  // Control: with CHECK_COVER enabled the big filter is promoted.
  auto hc2 = config_with(stabilizer_switches{}, 13);
  hc2.dr.min_children = 2;
  hc2.dr.max_children = 4;
  testbed control(hc2);
  const auto a2 = control.add(geo::make_rect2(0, 0, 10, 10));
  const auto b2 = control.add(geo::make_rect2(20, 0, 30, 10));
  const auto c2 = control.add(geo::make_rect2(0, 0, 900, 900));
  control.overlay().settle();
  stage_cover_violation(control, a2, b2, c2);
  ASSERT_FALSE(control.legal());
  ASSERT_GE(control.converge(40), 0);
  EXPECT_EQ(control.overlay().current_root(), c2);  // promoted
}

TEST(EfficientLeave, HandoffKeepsStructureLegalImmediately) {
  harness_config hc;
  hc.net.seed = 17;
  hc.dr.efficient_leave = true;
  testbed tb(hc);
  tb.populate(50);
  ASSERT_GE(tb.converge(), 0);

  // Remove interior peers one by one; with handoff the structure should
  // be repairable within very few rounds each time.
  for (int i = 0; i < 10; ++i) {
    const auto victim = interior_non_root(tb);
    if (victim == kNoPeer) break;
    tb.overlay().controlled_leave(victim);
    tb.overlay().settle();
    const int rounds = tb.converge(40);
    ASSERT_GE(rounds, 0) << "handoff leave " << i << " diverged";
    EXPECT_LE(rounds, 6) << "handoff leave " << i << " needed " << rounds;
  }
  EXPECT_TRUE(tb.legal());
}

TEST(EfficientLeave, RootHandoffElectsNewRoot) {
  harness_config hc;
  hc.net.seed = 19;
  hc.dr.efficient_leave = true;
  testbed tb(hc);
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);
  const auto root = tb.overlay().current_root();
  tb.overlay().controlled_leave(root);
  tb.overlay().settle();
  ASSERT_GE(tb.converge(60), 0);
  EXPECT_TRUE(tb.legal());
  EXPECT_NE(tb.overlay().current_root(), kNoPeer);
  EXPECT_NE(tb.overlay().current_root(), root);
}

TEST(EfficientLeave, CheaperThanFig9Baseline) {
  auto run = [](bool handoff) {
    harness_config hc;
    hc.net.seed = 23;
    hc.dr.efficient_leave = handoff;
    testbed tb(hc);
    tb.populate(60);
    tb.converge();
    auto live = tb.overlay().live_peers();
    tb.workload_rng().shuffle(live);
    const auto m0 = tb.overlay().sim().metrics().messages_sent;
    for (int i = 0; i < 15; ++i) {
      if (tb.overlay().alive(live[i])) {
        tb.overlay().controlled_leave(live[i]);
        tb.overlay().settle();
      }
    }
    tb.converge(300);
    return tb.overlay().sim().metrics().messages_sent - m0;
  };
  const auto baseline = run(false);
  const auto handoff = run(true);
  EXPECT_LT(handoff, baseline)
      << "handoff=" << handoff << " baseline=" << baseline;
}

TEST(Restart, PeerRestartingWithStaleStateConverges) {
  // §2.1: processes "can fail temporarily (transient faults)".  A
  // restarted peer resumes with its pre-crash state, which is stale by
  // then; stabilization must absorb it.
  harness_config hc;
  hc.net.seed = 29;
  testbed tb(hc);
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);

  auto live = tb.overlay().live_peers();
  tb.workload_rng().shuffle(live);
  std::vector<peer_id> downed(live.begin(), live.begin() + 8);
  for (const auto p : downed) tb.overlay().crash(p);
  // Let the survivors repair around the hole...
  ASSERT_GE(tb.converge(200), 0);
  // ...then bring the peers back with their stale instance chains.
  for (const auto p : downed) tb.overlay().sim().restart(p);
  ASSERT_GE(tb.converge(200), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.live_peers, 40u);
  EXPECT_EQ(r.reachable, 40u);
}

}  // namespace
}  // namespace drt::overlay
