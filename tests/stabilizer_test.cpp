// Stabilization-module ablation on the engine API: each CHECK_* module
// of Figs. 10-14 is *necessary* — with the module disabled, the fault
// class it repairs persists forever; with it enabled, the same fault
// converges.  Also covers the efficient-leave handoff variant and peer
// restart with stale state (the transient-fault model of §2.1).
//
// The populated, converged overlays come from engine::scenario_runner
// over a drtree_backend; the targeted faults are staged white-box
// through the backend's overlay accessor.
#include <gtest/gtest.h>

#include <memory>

#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"

namespace drt::overlay {
namespace {

using engine::drtree_backend;
using engine::scenario_runner;
using spatial::kNoPeer;
using spatial::peer_id;

/// A populated DR-tree behind the engine interface, with white-box
/// access for fault staging.
struct rig {
  explicit rig(engine::overlay_backend_config config)
      : backend(std::make_unique<drtree_backend>(config)),
        runner(std::make_unique<scenario_runner>(*backend)) {}

  void populate(std::size_t n) { runner->populate(n); }
  peer_id add(const spatial::box& filter) {
    return static_cast<peer_id>(runner->add(filter));
  }
  int converge(int max_rounds = 80) { return runner->converge(max_rounds); }
  bool legal() const { return backend->legal(); }
  dr_overlay& overlay() { return backend->overlay(); }
  util::rng& rng() { return runner->rng(); }

  std::unique_ptr<drtree_backend> backend;
  std::unique_ptr<scenario_runner> runner;
};

engine::overlay_backend_config config_with(stabilizer_switches sw,
                                           std::uint64_t seed) {
  engine::overlay_backend_config bc;
  bc.net.seed = seed;
  bc.dr.stabilizers = sw;
  return bc;
}

peer_id interior_non_root(rig& r) {
  const auto root = r.overlay().current_root();
  for (const auto p : r.overlay().live_peers()) {
    if (p != root && r.overlay().peer(p).top() > 0) return p;
  }
  return kNoPeer;
}

TEST(StabilizerAblation, CheckMbrIsNecessary) {
  // Interior MBRs are also recomputed by CHECK_CHILDREN (by design:
  // redundant repair), so the *isolated* fault class of Fig. 10 is a
  // corrupted LEAF MBR — only "if Is_Leaf(p,l): mbr <- filter" fixes it.
  auto sw = stabilizer_switches{};
  sw.check_mbr = false;
  rig r(config_with(sw, 3));
  r.populate(30);
  ASSERT_GE(r.converge(), 0);

  corruptor c(r.overlay(), 7);
  const auto victim = r.overlay().live_peers()[5];
  c.scramble_mbr(victim, 0);  // leaf MBR != filter
  if (r.overlay().peer(victim).inst(0).mbr ==
      r.overlay().peer(victim).filter()) {
    c.scramble_mbr(victim, 0);  // astronomically unlikely collision
  }
  ASSERT_FALSE(r.legal());
  EXPECT_EQ(r.converge(40), -1)
      << "leaf MBR corruption repaired with CHECK_MBR disabled?";

  // Control: the full stabilizer fixes the same fault class.
  rig control(config_with(stabilizer_switches{}, 3));
  control.populate(30);
  ASSERT_GE(control.converge(), 0);
  corruptor c2(control.overlay(), 7);
  control.overlay().peer(control.overlay().live_peers()[5]).inst(0).mbr =
      geo::make_rect2(1, 2, 3, 4);
  ASSERT_FALSE(control.legal());
  EXPECT_GE(control.converge(40), 0);
}

TEST(StabilizerAblation, CheckParentIsNecessary) {
  // A *dead or missing* parent link is redundantly repaired by the root
  // probes (a broken-chain peer acts as a fragment root when a probe
  // passes through it).  The isolated Fig. 11 fault is a parent pointer
  // at a live peer that does NOT list the victim: probes route through
  // it transparently, the old parent discards the victim via
  // CHECK_CHILDREN, and only "if p not in C(parent): rejoin" recovers it.
  auto sw = stabilizer_switches{};
  sw.check_parent = false;
  rig r(config_with(sw, 5));
  r.populate(30);
  ASSERT_GE(r.converge(), 0);

  const auto victim = interior_non_root(r);
  ASSERT_NE(victim, kNoPeer);
  auto& victim_peer = r.overlay().peer(victim);
  auto& ins = victim_peer.inst(victim_peer.top());
  // Pick a live impostor that is neither the victim nor its real parent.
  spatial::peer_id impostor = kNoPeer;
  for (const auto p : r.overlay().live_peers()) {
    if (p != victim && p != ins.parent) {
      impostor = p;
      break;
    }
  }
  ASSERT_NE(impostor, kNoPeer);
  ins.parent = impostor;
  ASSERT_FALSE(r.legal());
  EXPECT_EQ(r.converge(40), -1)
      << "orphan rejoined with CHECK_PARENT disabled?";

  // Control: with CHECK_PARENT enabled the identical fault heals.
  rig control(config_with(stabilizer_switches{}, 5));
  control.populate(30);
  ASSERT_GE(control.converge(), 0);
  const auto victim2 = interior_non_root(control);
  ASSERT_NE(victim2, kNoPeer);
  auto& vp2 = control.overlay().peer(victim2);
  auto& ins2 = vp2.inst(vp2.top());
  spatial::peer_id impostor2 = kNoPeer;
  for (const auto p : control.overlay().live_peers()) {
    if (p != victim2 && p != ins2.parent) {
      impostor2 = p;
      break;
    }
  }
  ins2.parent = impostor2;
  ASSERT_FALSE(control.legal());
  EXPECT_GE(control.converge(60), 0);
}

TEST(StabilizerAblation, CheckChildrenIsNecessary) {
  auto sw = stabilizer_switches{};
  sw.check_children = false;
  rig r(config_with(sw, 7));
  r.populate(30);
  ASSERT_GE(r.converge(), 0);

  // Adopt a stranger: the stranger's parent pointer does not change, so
  // only CHECK_CHILDREN ("simply discards the child") can repair it.
  const auto root = r.overlay().current_root();
  const auto victim = interior_non_root(r);
  ASSERT_NE(victim, kNoPeer);
  auto& victim_peer = r.overlay().peer(victim);
  auto& ins = victim_peer.inst(victim_peer.top());
  ins.add_child(root);  // the root is never a legitimate child here
  ASSERT_FALSE(r.legal());
  EXPECT_EQ(r.converge(40), -1)
      << "stranger child discarded with CHECK_CHILDREN disabled?";
}

TEST(StabilizerAblation, CheckStructureIsNecessary) {
  auto sw = stabilizer_switches{};
  sw.check_structure = false;
  auto bc = config_with(sw, 11);
  bc.dr.min_children = 3;
  bc.dr.max_children = 6;
  rig r(bc);
  r.populate(60);
  ASSERT_GE(r.converge(), 0);

  // Shrink some interior node below m by discarding children: without
  // compaction/redistribution nothing restores the m bound (joins could,
  // but none arrive).
  const auto root = r.overlay().current_root();
  peer_id victim = kNoPeer;
  for (const auto p : r.overlay().live_peers()) {
    const auto& peer = r.overlay().peer(p);
    if (p == root || peer.top() == 0) continue;
    const auto& ins = peer.inst(peer.top());
    if (ins.children.size() >= 4) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  // Crash children of the victim until it is underloaded.
  auto& victim_peer = r.overlay().peer(victim);
  const auto h = victim_peer.top();
  std::size_t crashed = 0;
  for (const auto c : victim_peer.inst(h).children) {
    if (c == victim) continue;
    if (victim_peer.inst(h).children.size() - crashed <= 2) break;
    r.overlay().crash(c);
    ++crashed;
  }
  ASSERT_GT(crashed, 0u);
  EXPECT_EQ(r.converge(40), -1)
      << "m bound restored with CHECK_STRUCTURE disabled?";

  // Control: full stabilizer handles the identical scenario.
  auto bc2 = config_with(stabilizer_switches{}, 11);
  bc2.dr.min_children = 3;
  bc2.dr.max_children = 6;
  rig control(bc2);
  control.populate(60);
  ASSERT_GE(control.converge(), 0);
  auto live = control.overlay().live_peers();
  for (std::size_t i = 0; i < 6; ++i) {
    control.overlay().crash(live[i * 7 % live.size()]);
  }
  EXPECT_GE(control.converge(200), 0);
}

// Hand-build a three-peer tree where a *small*-filter peer is the root
// and a big-filter peer sits below it — the Fig. 13 violation ("the child
// of a node may better cover the node sub-tree than the node itself").
void stage_cover_violation(rig& r, spatial::peer_id a, spatial::peer_id b,
                           spatial::peer_id c) {
  auto& ov = r.overlay();
  for (const auto p : {a, b, c}) {
    auto& peer = ov.peer(p);
    while (peer.top() > 0) peer.erase_inst(peer.top());
  }
  auto& ap = ov.peer(a);
  auto& root = ap.ensure_inst(1);
  root.parent = a;
  root.children = {a, b, c};
  root.mbr = join(join(ov.peer(a).filter(), ov.peer(b).filter()),
                  ov.peer(c).filter());
  root.underloaded = false;
  for (const auto p : {a, b, c}) {
    auto& leaf = ov.peer(p).inst(0);
    leaf.parent = a;
    leaf.mbr = ov.peer(p).filter();
  }
}

TEST(StabilizerAblation, CheckCoverIsNecessary) {
  auto sw = stabilizer_switches{};
  sw.check_cover = false;
  auto bc = config_with(sw, 13);
  bc.dr.min_children = 2;
  bc.dr.max_children = 4;
  rig r(bc);
  const auto a = r.add(geo::make_rect2(0, 0, 10, 10));     // small: root
  const auto b = r.add(geo::make_rect2(20, 0, 30, 10));    // small
  const auto c = r.add(geo::make_rect2(0, 0, 900, 900));   // big: child
  r.overlay().settle();
  stage_cover_violation(r, a, b, c);
  ASSERT_FALSE(r.legal());  // "child c offers a better cover"
  EXPECT_EQ(r.converge(40), -1)
      << "cover violation repaired with CHECK_COVER disabled?";

  // Control: with CHECK_COVER enabled the big filter is promoted.
  auto bc2 = config_with(stabilizer_switches{}, 13);
  bc2.dr.min_children = 2;
  bc2.dr.max_children = 4;
  rig control(bc2);
  const auto a2 = control.add(geo::make_rect2(0, 0, 10, 10));
  const auto b2 = control.add(geo::make_rect2(20, 0, 30, 10));
  const auto c2 = control.add(geo::make_rect2(0, 0, 900, 900));
  control.overlay().settle();
  stage_cover_violation(control, a2, b2, c2);
  ASSERT_FALSE(control.legal());
  ASSERT_GE(control.converge(40), 0);
  EXPECT_EQ(control.overlay().current_root(), c2);  // promoted
}

TEST(EfficientLeave, HandoffKeepsStructureLegalImmediately) {
  auto bc = config_with(stabilizer_switches{}, 17);
  bc.dr.efficient_leave = true;
  rig r(bc);
  r.populate(50);
  ASSERT_GE(r.converge(), 0);

  // Remove interior peers one by one; with handoff the structure should
  // be repairable within very few rounds each time.
  for (int i = 0; i < 10; ++i) {
    const auto victim = interior_non_root(r);
    if (victim == kNoPeer) break;
    ASSERT_TRUE(r.backend->unsubscribe(victim));
    const int rounds = r.converge(40);
    ASSERT_GE(rounds, 0) << "handoff leave " << i << " diverged";
    EXPECT_LE(rounds, 6) << "handoff leave " << i << " needed " << rounds;
  }
  EXPECT_TRUE(r.legal());
}

TEST(EfficientLeave, RootHandoffElectsNewRoot) {
  auto bc = config_with(stabilizer_switches{}, 19);
  bc.dr.efficient_leave = true;
  rig r(bc);
  r.populate(30);
  ASSERT_GE(r.converge(), 0);
  const auto root = r.overlay().current_root();
  ASSERT_TRUE(r.backend->unsubscribe(root));
  ASSERT_GE(r.converge(60), 0);
  EXPECT_TRUE(r.legal());
  EXPECT_NE(r.overlay().current_root(), kNoPeer);
  EXPECT_NE(r.overlay().current_root(), root);
}

TEST(EfficientLeave, CheaperThanFig9Baseline) {
  auto run = [](bool handoff) {
    auto bc = config_with(stabilizer_switches{}, 23);
    bc.dr.efficient_leave = handoff;
    rig r(bc);
    r.populate(60);
    r.converge();
    auto live = r.overlay().live_peers();
    r.rng().shuffle(live);
    const auto m0 = r.backend->counters().messages;
    for (int i = 0; i < 15; ++i) {
      if (r.backend->alive(live[i])) {
        r.backend->unsubscribe(live[i]);
      }
    }
    r.converge(300);
    return r.backend->counters().messages - m0;
  };
  const auto baseline = run(false);
  const auto handoff = run(true);
  EXPECT_LT(handoff, baseline)
      << "handoff=" << handoff << " baseline=" << baseline;
}

TEST(Restart, PeerRestartingWithStaleStateConverges) {
  // §2.1: processes "can fail temporarily (transient faults)".  A
  // restarted peer resumes with its pre-crash state, which is stale by
  // then; stabilization must absorb it.  Declaratively: crash_burst,
  // heal, restart_burst, heal again.
  engine::overlay_backend_config bc;
  bc.net.seed = 29;
  drtree_backend backend(bc);
  scenario_runner runner(backend);
  const auto rec = runner.run(engine::scenario::make("stale_restart")
                                  .populate(40)
                                  .converge(80)
                                  .crash_count(8)
                                  .converge(200)
                                  .restart_burst(8)
                                  .converge(200)
                                  .build());
  for (const auto& m : rec.phases()) {
    if (m.phase == "converge_until_legal") {
      ASSERT_GE(m.rounds, 0) << "phase " << m.index;
    }
  }
  const auto* restarts = rec.last("restart_burst");
  ASSERT_NE(restarts, nullptr);
  EXPECT_EQ(restarts->restarts, 8u);
  const auto report = checker(backend.overlay()).check();
  EXPECT_TRUE(report.legal()) << (report.violations.empty()
                                      ? "?"
                                      : report.violations.front());
  EXPECT_EQ(report.live_peers, 40u);
  EXPECT_EQ(report.reachable, 40u);
}

}  // namespace
}  // namespace drt::overlay
