#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace drt::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBoundsAndHitsAll) {
  rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSingleton) {
  rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformRealRespectsBounds) {
  rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, ChanceExtremes) {
  rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  rng r(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  rng r(23);
  accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  EXPECT_GE(acc.min(), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  rng r(29);
  accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, ZipfUniformWhenExponentZero) {
  rng r(31);
  std::array<int, 4> counts{};
  for (int i = 0; i < 40000; ++i) {
    const auto v = r.zipf(4, 0.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 4);
    ++counts[static_cast<std::size_t>(v - 1)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  rng r(37);
  int rank1 = 0;
  int rank_rest = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.zipf(100, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    if (v == 1) {
      ++rank1;
    } else {
      ++rank_rest;
    }
  }
  // With s = 1.2 and n = 100, rank 1 mass is ~35%.
  EXPECT_GT(rank1, 5000);
}

TEST(Rng, ShuffleIsPermutation) {
  rng r(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, IndexWithinBounds) {
  rng r(43);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.index(5), 5u);
}

TEST(Accumulator, BasicMoments) {
  accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_NEAR(a.variance(), 1.25, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(SampleSet, PercentilesInterpolate) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, SingleSample) {
  sample_set s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Histogram, BucketsAndOverflow) {
  histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);  // [0,2): 0.0 and 1.9
  EXPECT_EQ(h.bucket(2), 1u);  // [4,6): 5.0
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Table, PrintsAlignedRowsAndCsv) {
  table t({"N", "height", "fp_rate"});
  t.add_row({table::cell(std::size_t{128}), table::cell(3), table::cell(0.023, 3)});
  t.add_row({table::cell(std::size_t{1024}), table::cell(5), table::cell(0.031, 3)});
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream pretty;
  t.print(pretty);
  EXPECT_NE(pretty.str().find("height"), std::string::npos);
  EXPECT_NE(pretty.str().find("0.023"), std::string::npos);

  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("N,height,fp_rate"), std::string::npos);
  EXPECT_NE(csv.str().find("1024,5,0.031"), std::string::npos);
}

}  // namespace
}  // namespace drt::util
