// DR-tree protocol tests: joins, leaves, crashes, stabilization from
// arbitrary corruption, dissemination accuracy, and the legality
// predicates of Definition 3.1.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/harness.h"
#include "analysis/models.h"
#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "drtree/overlay.h"
#include "spatial/sample.h"

namespace drt::overlay {
namespace {

using analysis::harness_config;
using analysis::testbed;
using spatial::kNoPeer;
using spatial::peer_id;

harness_config small_config(std::uint64_t seed = 1) {
  harness_config hc;
  hc.net.seed = seed;
  hc.workload_seed = seed * 97 + 13;
  hc.dr.min_children = 2;
  hc.dr.max_children = 6;
  return hc;
}

// ------------------------------------------------------------ bootstrap

TEST(DrTree, SinglePeerIsLegalRoot) {
  testbed tb(small_config());
  tb.add(geo::make_rect2(0, 0, 10, 10));
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.roots, 1u);
  EXPECT_EQ(r.height, 0u);
  EXPECT_EQ(r.live_peers, 1u);
}

TEST(DrTree, TwoPeersElectRootByLargestMbr) {
  testbed tb(small_config());
  const auto small = tb.add(geo::make_rect2(0, 0, 10, 10));
  const auto large = tb.add(geo::make_rect2(0, 0, 500, 500));
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(tb.overlay().current_root(), large);
  EXPECT_FALSE(tb.overlay().peer(small).is_root());
  EXPECT_EQ(r.height, 1u);
  // The root appears at both levels (recursively its own child).
  EXPECT_TRUE(tb.overlay().peer(large).inst(1).has_child(large));
}

TEST(DrTree, ConcurrentJoinStormConverges) {
  // Launch many joins without settling between them: probes, descents,
  // and splits interleave arbitrarily in flight.
  testbed tb(small_config(251));
  for (int i = 0; i < 30; ++i) {
    auto params = tb.config().subs;
    params.workspace = tb.config().dr.workspace;
    const auto rects = workload::make_subscriptions(
        workload::subscription_family::uniform, 1, tb.workload_rng(), params);
    tb.overlay().add_peer(rects[0]);  // no settle!
  }
  tb.overlay().settle();
  ASSERT_GE(tb.converge(150), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.live_peers, 30u);
  EXPECT_EQ(r.reachable, 30u);
}

TEST(DrTree, LeaveDuringJoinInFlight) {
  testbed tb(small_config(257));
  tb.populate(20);
  ASSERT_GE(tb.converge(), 0);
  // Start joins, then immediately remove peers before draining.
  auto params = tb.config().subs;
  params.workspace = tb.config().dr.workspace;
  const auto rects = workload::make_subscriptions(
      workload::subscription_family::uniform, 5, tb.workload_rng(), params);
  for (const auto& r : rects) tb.overlay().add_peer(r);
  auto live = tb.overlay().live_peers();
  for (int i = 0; i < 5; ++i) {
    tb.overlay().controlled_leave(live[static_cast<std::size_t>(i) * 3]);
  }
  tb.overlay().settle();
  ASSERT_GE(tb.converge(200), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.live_peers, 20u);  // 20 + 5 joined - 5 left
}

TEST(DrTree, SequentialJoinsStayLegal) {
  testbed tb(small_config(3));
  for (std::size_t i = 0; i < 40; ++i) {
    tb.populate(1);
    ASSERT_GE(tb.converge(), 0) << "diverged after join " << i;
  }
  const auto r = tb.report();
  EXPECT_TRUE(r.legal());
  EXPECT_EQ(r.live_peers, 40u);
  EXPECT_EQ(r.reachable, 40u);
}

TEST(DrTree, HeightStaysLogarithmic) {
  auto hc = small_config(5);
  hc.dr.min_children = 2;
  hc.dr.max_children = 8;
  testbed tb(hc);
  tb.populate(128);
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report();
  ASSERT_TRUE(r.legal()) << r.violations.front();
  // Lemma 3.1: height O(log_m N); for N=128, m=2: <= ~7 + slack.
  EXPECT_TRUE(checker::within_height_bound(r.height, 2, 128, 2))
      << "height " << r.height;
  EXPECT_GE(r.height, 2u);
}

TEST(DrTree, PaperSampleBuildsLegalTree) {
  testbed tb(small_config(7));
  for (const auto& sub : spatial::sample_subscriptions()) {
    tb.add(sub.filter);
  }
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report(/*check_containment=*/true);
  EXPECT_TRUE(r.legal());
  // Property 3.1 (weak containment awareness) holds on the sample.
  EXPECT_EQ(r.weak_violations, 0u);
  EXPECT_GT(r.containment_pairs, 0u);
}

// --------------------------------------------------------- dissemination

TEST(DrTree, NoFalseNegativesOnUniformWorkload) {
  testbed tb(small_config(11));
  tb.populate(60);
  ASSERT_GE(tb.converge(), 0);
  const auto acc = tb.publish_sweep(200, workload::event_family::uniform);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_GT(acc.deliveries, 0u);
}

TEST(DrTree, NoFalseNegativesOnMatchingWorkload) {
  testbed tb(small_config(13));
  tb.populate(60);
  ASSERT_GE(tb.converge(), 0);
  const auto acc = tb.publish_sweep(200, workload::event_family::matching);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_GT(acc.interested, 0u);
}

TEST(DrTree, FalsePositiveRateIsLow) {
  testbed tb(small_config(17));
  tb.populate(100);
  ASSERT_GE(tb.converge(), 0);
  const auto acc = tb.publish_sweep(300, workload::event_family::matching);
  // §4: "the false positive rate is in the order of 2-3% with most
  // workloads" — measured as the probability a peer receives an event it
  // did not subscribe to.  Allow headroom; bench E10 reports exact rates.
  EXPECT_LT(acc.fp_rate(), 0.10) << "fp rate " << acc.fp_rate();
  EXPECT_EQ(acc.false_negatives, 0u);
}

TEST(DrTree, PublicationCostLogarithmicNotBroadcast) {
  testbed tb(small_config(19));
  tb.populate(100);
  ASSERT_GE(tb.converge(), 0);
  const auto acc = tb.publish_sweep(100, workload::event_family::uniform);
  // An event must not degenerate into a broadcast: messages per event
  // should be far below N on a sparse-match workload.
  EXPECT_LT(acc.messages_per_event(), 60.0);
}

TEST(DrTree, EventFromSampleWalkthrough) {
  // The paper's Fig. 4 walkthrough: event `a` published by S2 reaches
  // exactly the interested peers (S2, S3, S4 in our reconstruction, plus
  // any containers — no false negative, and the FP count is reported).
  testbed tb(small_config(23));
  std::vector<peer_id> ids;
  for (const auto& sub : spatial::sample_subscriptions()) {
    ids.push_back(tb.add(sub.filter));
  }
  ASSERT_GE(tb.converge(), 0);
  const auto a = spatial::sample_events()[0];
  const auto publisher = ids[1];  // S2
  const auto r = tb.overlay().publish_and_drain(publisher, a.value);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.interested, 5u);  // S2, S3, S4, S5, S6 contain `a`
  EXPECT_GE(r.delivered, r.interested);
}

// ------------------------------------------------------- departures

TEST(DrTree, ControlledLeavesStabilize) {
  testbed tb(small_config(29));
  tb.populate(50);
  ASSERT_GE(tb.converge(), 0);
  auto live = tb.overlay().live_peers();
  // Remove a third of the peers via controlled departures.
  for (std::size_t i = 0; i < 16; ++i) {
    const auto victim = live[i * 3 % live.size()];
    if (!tb.overlay().alive(victim)) continue;
    tb.overlay().controlled_leave(victim);
    tb.overlay().settle();
  }
  ASSERT_GE(tb.converge(120), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.reachable, r.live_peers);
}

TEST(DrTree, UncontrolledCrashesStabilize) {
  testbed tb(small_config(31));
  tb.populate(50);
  ASSERT_GE(tb.converge(), 0);
  auto live = tb.overlay().live_peers();
  tb.workload_rng().shuffle(live);
  for (std::size_t i = 0; i < 12; ++i) {
    tb.overlay().crash(live[i]);
  }
  ASSERT_GE(tb.converge(150), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.live_peers, 38u);
  EXPECT_EQ(r.reachable, 38u);
}

TEST(DrTree, RootCrashRecovers) {
  testbed tb(small_config(37));
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);
  const auto root = tb.overlay().current_root();
  ASSERT_NE(root, kNoPeer);
  tb.overlay().crash(root);
  ASSERT_GE(tb.converge(150), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.live_peers, 29u);
  EXPECT_NE(tb.overlay().current_root(), root);
}

TEST(DrTree, MassCrashRecovers) {
  testbed tb(small_config(41));
  tb.populate(60);
  ASSERT_GE(tb.converge(), 0);
  auto live = tb.overlay().live_peers();
  tb.workload_rng().shuffle(live);
  for (std::size_t i = 0; i < 30; ++i) tb.overlay().crash(live[i]);
  ASSERT_GE(tb.converge(250), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.live_peers, 30u);
}

// ---------------------------------------------------- self-stabilization

class CorruptionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionTest, ArbitraryCorruptionConverges) {
  // Lemma 3.6: from an arbitrary configuration the system reaches a
  // legitimate configuration in a finite number of steps.
  testbed tb(small_config(GetParam()));
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);

  corruptor c(tb.overlay(), GetParam() * 31 + 5);
  const auto mutations = c.corrupt(uniform_corruption(0.35));
  ASSERT_GT(mutations, 0u);

  const int rounds = tb.converge(250);
  ASSERT_GE(rounds, 0) << "never re-stabilized";
  const auto r = tb.report();
  EXPECT_TRUE(r.legal());
  EXPECT_EQ(r.reachable, r.live_peers);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest,
                         ::testing::Values(43, 47, 53, 59, 61));

TEST(DrTree, CheckerDetectsEachCorruptionKind) {
  testbed tb(small_config(67));
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);
  ASSERT_TRUE(tb.legal());

  // Convergence can reshape the tree between corruptions, so re-pick a
  // non-root interior victim before each mutation.
  auto pick_victim = [&]() -> peer_id {
    const auto root = tb.overlay().current_root();
    for (const auto p : tb.overlay().live_peers()) {
      if (p != root && tb.overlay().peer(p).top() > 0) return p;
    }
    return kNoPeer;
  };

  corruptor c(tb.overlay(), 71);

  auto victim = pick_victim();
  ASSERT_NE(victim, kNoPeer);
  c.scramble_mbr(victim, tb.overlay().peer(victim).top());
  EXPECT_FALSE(tb.legal());
  ASSERT_GE(tb.converge(100), 0);

  victim = pick_victim();
  ASSERT_NE(victim, kNoPeer);
  c.flip_underloaded(victim, tb.overlay().peer(victim).top());
  EXPECT_FALSE(tb.legal());
  ASSERT_GE(tb.converge(100), 0);

  victim = pick_victim();
  ASSERT_NE(victim, kNoPeer);
  c.scramble_children(victim, tb.overlay().peer(victim).top());
  EXPECT_FALSE(tb.legal());
  ASSERT_GE(tb.converge(150), 0);

  victim = pick_victim();
  ASSERT_NE(victim, kNoPeer);
  c.scramble_parent(victim, tb.overlay().peer(victim).top());
  EXPECT_FALSE(tb.legal());
  ASSERT_GE(tb.converge(150), 0);
}

TEST(DrTree, FabricatedInstancesDissolve) {
  testbed tb(small_config(73));
  tb.populate(25);
  ASSERT_GE(tb.converge(), 0);
  corruptor c(tb.overlay(), 79);
  for (int i = 0; i < 5; ++i) {
    const auto live = tb.overlay().live_peers();
    c.fabricate_instance(live[i * 4 % live.size()]);
  }
  EXPECT_FALSE(tb.legal());
  ASSERT_GE(tb.converge(200), 0);
  EXPECT_TRUE(tb.legal());
}

TEST(DrTree, DroppedInstancesRepair) {
  testbed tb(small_config(83));
  tb.populate(25);
  ASSERT_GE(tb.converge(), 0);
  corruptor c(tb.overlay(), 89);
  const auto root = tb.overlay().current_root();
  c.drop_top_instance(root);
  EXPECT_FALSE(tb.legal());
  ASSERT_GE(tb.converge(200), 0);
  EXPECT_TRUE(tb.legal());
}

// ------------------------------------------------------------- churn

TEST(DrTree, MixedChurnStaysRecoverable) {
  testbed tb(small_config(97));
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);
  auto& rng = tb.workload_rng();
  for (int step = 0; step < 30; ++step) {
    const double dice = rng.next_double();
    const auto live = tb.overlay().live_peers();
    if (dice < 0.4 || live.size() < 10) {
      tb.populate(1);
    } else if (dice < 0.7) {
      tb.overlay().controlled_leave(live[rng.index(live.size())]);
    } else {
      tb.overlay().crash(live[rng.index(live.size())]);
    }
    tb.overlay().advance(tb.config().dr.stabilize_period / 2);
    tb.overlay().settle();
  }
  ASSERT_GE(tb.converge(250), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.reachable, r.live_peers);
  // Accuracy survives churn.
  const auto acc = tb.publish_sweep(50, workload::event_family::matching);
  EXPECT_EQ(acc.false_negatives, 0u);
}

// --------------------------------------------- parameterized variations

struct variation {
  rtree::split_method split;
  std::size_t m;
  std::size_t big_m;
  const char* name;
};

class VariationTest : public ::testing::TestWithParam<variation> {};

TEST_P(VariationTest, JoinsLeavesStayLegal) {
  auto hc = small_config(101);
  hc.dr.split = GetParam().split;
  hc.dr.min_children = GetParam().m;
  hc.dr.max_children = GetParam().big_m;
  testbed tb(hc);
  tb.populate(60);
  ASSERT_GE(tb.converge(), 0);
  EXPECT_TRUE(tb.legal());
  auto live = tb.overlay().live_peers();
  tb.workload_rng().shuffle(live);
  for (int i = 0; i < 15; ++i) tb.overlay().controlled_leave(live[i]);
  ASSERT_GE(tb.converge(200), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  const auto acc = tb.publish_sweep(50);
  EXPECT_EQ(acc.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VariationTest,
    ::testing::Values(
        variation{rtree::split_method::linear, 2, 4, "linear_m2M4"},
        variation{rtree::split_method::quadratic, 2, 8, "quadratic_m2M8"},
        variation{rtree::split_method::rstar, 3, 6, "rstar_m3M6"},
        variation{rtree::split_method::quadratic, 4, 10, "quadratic_m4M10"}),
    [](const auto& info) { return info.param.name; });

class ElectionTest : public ::testing::TestWithParam<election_policy> {};

TEST_P(ElectionTest, OverlayLegalUnderAnyPolicy) {
  auto hc = small_config(103);
  hc.dr.election = GetParam();
  testbed tb(hc);
  tb.populate(50);
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  const auto acc = tb.publish_sweep(80);
  EXPECT_EQ(acc.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ElectionTest,
                         ::testing::Values(election_policy::largest_mbr,
                                           election_policy::smallest_mbr,
                                           election_policy::random_member),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(DrTree, JoinsSucceedUnderMessageLoss) {
  auto hc = small_config(107);
  hc.net.message_loss = 0.15;
  testbed tb(hc);
  tb.populate(30);
  // With loss, joins may need several probe rounds.
  ASSERT_GE(tb.converge(300), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.reachable, 30u);
}

TEST(DrTree, OracleRootModeWorks) {
  testbed tb(small_config(109));
  tb.overlay().oracle = oracle_mode::root;
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);
  EXPECT_TRUE(tb.legal());
}

TEST(DrTree, FpReorganizationKeepsLegality) {
  auto hc = small_config(113);
  hc.dr.fp_reorganization = true;
  testbed tb(hc);
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);
  const auto acc = tb.publish_sweep(300, workload::event_family::hotspot);
  EXPECT_EQ(acc.false_negatives, 0u);
  ASSERT_GE(tb.converge(150), 0);
  EXPECT_TRUE(tb.legal());
}

// --------------------------------------------------------------- search

TEST(DrTreeSearch, RangeQueriesMatchBruteForce) {
  testbed tb(small_config(211));
  tb.populate(80);
  ASSERT_GE(tb.converge(), 0);
  auto& rng = tb.workload_rng();
  const auto live = tb.overlay().live_peers();
  for (int q = 0; q < 40; ++q) {
    const double x = rng.uniform_real(0, 900);
    const double y = rng.uniform_real(0, 900);
    const auto query = geo::make_rect2(x, y, x + rng.uniform_real(10, 100),
                                       y + rng.uniform_real(10, 100));
    const auto origin = live[rng.index(live.size())];
    const auto r = tb.overlay().search_and_drain(origin, query);
    EXPECT_EQ(r.false_negatives, 0u) << "query " << q;
    EXPECT_EQ(r.false_positives, 0u) << "query " << q;
  }
}

TEST(DrTreeSearch, CostIsLogarithmicNotLinear) {
  testbed tb(small_config(223));
  tb.populate(120);
  ASSERT_GE(tb.converge(), 0);
  auto& rng = tb.workload_rng();
  const auto live = tb.overlay().live_peers();
  // A tiny query touching few filters must not visit most of the overlay.
  std::uint64_t total_messages = 0;
  int queries = 0;
  for (int q = 0; q < 20; ++q) {
    const double x = rng.uniform_real(0, 990);
    const double y = rng.uniform_real(0, 990);
    const auto query = geo::make_rect2(x, y, x + 5, y + 5);
    const auto r =
        tb.overlay().search_and_drain(live[rng.index(live.size())], query);
    EXPECT_EQ(r.false_negatives, 0u);
    total_messages += r.messages;
    ++queries;
  }
  EXPECT_LT(static_cast<double>(total_messages) / queries, 60.0);
}

TEST(DrTreeSearch, WholeWorkspaceQueryFindsEveryone) {
  testbed tb(small_config(227));
  tb.populate(50);
  ASSERT_GE(tb.converge(), 0);
  const auto origin = tb.overlay().live_peers().front();
  const auto r = tb.overlay().search_and_drain(
      origin, tb.config().dr.workspace);
  EXPECT_EQ(r.hits.size(), 50u);
  EXPECT_EQ(r.false_negatives, 0u);
}

// ------------------------------------------------------------ partition

TEST(DrTreePartition, SplitBrainHealsAfterPartitionLifts) {
  testbed tb(small_config(229));
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);

  // Surgically detach a subtree: pick a child of the root, make it a
  // fragment root, and drop it from the root's children.
  const auto root = tb.overlay().current_root();
  auto& rp = tb.overlay().peer(root);
  const auto h = rp.top();
  peer_id detached = kNoPeer;
  for (const auto c : rp.inst(h).children) {
    if (c != root) {
      detached = c;
      break;
    }
  }
  ASSERT_NE(detached, kNoPeer);
  rp.inst(h).remove_child(detached);
  tb.overlay().peer(detached).inst(h - 1).parent = detached;

  // Collect the fragment membership (peers under the detached subtree).
  std::set<peer_id> fragment;
  std::vector<std::pair<peer_id, std::size_t>> frontier{{detached, h - 1}};
  while (!frontier.empty()) {
    const auto [p, hh] = frontier.back();
    frontier.pop_back();
    fragment.insert(p);
    if (hh == 0) continue;
    if (const auto* ins = tb.overlay().peer(p).find_inst(hh)) {
      for (const auto c : ins->children) {
        if (c != p) frontier.emplace_back(c, hh - 1);
      }
    }
  }
  ASSERT_GE(fragment.size(), 1u);

  // Partition the network between the fragment and the rest: probes
  // cannot cross, so two legal-but-separate trees persist.
  tb.overlay().sim().set_link_filter(
      [fragment](sim::process_id from, sim::process_id to) {
        return fragment.count(static_cast<peer_id>(from)) ==
               fragment.count(static_cast<peer_id>(to));
      });
  for (int round = 0; round < 10; ++round) {
    tb.overlay().advance(tb.config().dr.stabilize_period);
    tb.overlay().settle();
  }
  EXPECT_EQ(tb.overlay().root_peers().size(), 2u)
      << "fragments merged across a partition?";

  // Heal the partition: the root probes merge the fragments back.
  tb.overlay().sim().set_link_filter(nullptr);
  ASSERT_GE(tb.converge(150), 0);
  const auto r = tb.report();
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_EQ(r.roots, 1u);
  EXPECT_EQ(r.reachable, 40u);
}

// --------------------------------------------------------- memory/shape

TEST(DrTree, MemoryPerPeerIsPolylogarithmic) {
  testbed tb(small_config(127));
  tb.populate(120);
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report();
  ASSERT_TRUE(r.legal());
  // Lemma 3.1: per-peer memory O(M log^2 N / log m).  Generous constant.
  const double bound =
      8.0 * analysis::predicted_memory(120, tb.config().dr.min_children,
                                       tb.config().dr.max_children);
  EXPECT_LT(static_cast<double>(r.max_peer_links), bound);
}

TEST(DrTree, WeakContainmentMostlyHoldsOnNestedWorkload) {
  // Property 3.1 is promoted by the largest-MBR election.  Under dynamic
  // insertion orders a containee whose *subtree MBR* outgrew a container's
  // can occasionally sit above it (the paper itself concedes "the order of
  // node insertion and removal may lead to sub-optimal configurations"),
  // so we bound the violation rate rather than assert zero.
  auto hc = small_config(131);
  hc.family = workload::subscription_family::nested;
  testbed tb(hc);
  tb.populate(50);
  ASSERT_GE(tb.converge(), 0);
  const auto r = tb.report(/*check_containment=*/true);
  EXPECT_TRUE(r.legal()) << r.violations.front();
  ASSERT_GT(r.containment_pairs, 0u);
  const double violation_rate =
      static_cast<double>(r.weak_violations) /
      static_cast<double>(r.containment_pairs);
  EXPECT_LT(violation_rate, 0.05) << r.weak_violations << " of "
                                  << r.containment_pairs;
  // Most containees should satisfy the strong property too.
  EXPECT_GT(static_cast<double>(r.strong_satisfied),
            0.6 * static_cast<double>(r.containment_pairs));
}

}  // namespace
}  // namespace drt::overlay
