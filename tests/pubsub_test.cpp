// Broker façade tests: multi-subscription clients, unsubscribe, delivery
// callbacks, client-level accuracy, handle hashing, and whole-client
// teardown.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "pubsub/broker.h"
#include "workload/workload.h"

namespace drt::pubsub {
namespace {

using geo::make_rect2;

broker_config small_config(std::uint64_t seed = 5) {
  broker_config bc;
  bc.net.seed = seed;
  bc.dr.min_children = 2;
  bc.dr.max_children = 6;
  return bc;
}

TEST(Broker, SingleClientSingleSubscription) {
  broker b(small_config());
  const auto alice = b.add_client();
  b.subscribe(alice, make_rect2(0, 0, 100, 100));
  EXPECT_GE(b.stabilize(), 0);

  const auto out = b.publish(alice, {{50, 50}});
  EXPECT_EQ(out.notified, std::vector<client_id>{alice});
  EXPECT_EQ(out.matching_clients, 1u);
  EXPECT_EQ(out.client_false_negatives, 0u);
}

TEST(Broker, MultipleClientsRouteByFilter) {
  broker b(small_config(7));
  const auto alice = b.add_client();
  const auto bob = b.add_client();
  const auto carol = b.add_client();
  b.subscribe(alice, make_rect2(0, 0, 40, 40));
  b.subscribe(bob, make_rect2(60, 60, 100, 100));
  b.subscribe(carol, make_rect2(0, 0, 100, 100));
  ASSERT_GE(b.stabilize(), 0);

  const auto out = b.publish(alice, {{20, 20}});
  // alice and carol match; bob must not be counted as matching.
  EXPECT_EQ(out.matching_clients, 2u);
  EXPECT_EQ(out.client_false_negatives, 0u);
  std::set<client_id> notified(out.notified.begin(), out.notified.end());
  EXPECT_TRUE(notified.count(alice));
  EXPECT_TRUE(notified.count(carol));
}

TEST(Broker, MultiSubscriptionClientNotifiedOnce) {
  broker b(small_config(11));
  const auto alice = b.add_client();
  // Three overlapping filters, all matching the same event.
  b.subscribe(alice, make_rect2(0, 0, 50, 50));
  b.subscribe(alice, make_rect2(10, 10, 60, 60));
  b.subscribe(alice, make_rect2(20, 20, 70, 70));
  const auto bob = b.add_client();
  b.subscribe(bob, make_rect2(80, 80, 90, 90));
  ASSERT_GE(b.stabilize(), 0);
  EXPECT_EQ(b.subscriptions_of(alice).size(), 3u);

  int alice_deliveries = 0;
  b.set_delivery_callback([&](client_id c, const spatial::event&) {
    if (c == alice) ++alice_deliveries;
  });
  const auto out = b.publish(bob, {{30, 30}});
  EXPECT_EQ(out.client_false_negatives, 0u);
  // De-duplication: one notification despite three matching filters.
  EXPECT_EQ(alice_deliveries, 1);
}

TEST(Broker, UnsubscribeStopsMatching) {
  broker b(small_config(13));
  const auto alice = b.add_client();
  const auto bob = b.add_client();
  const auto sub = b.subscribe(alice, make_rect2(0, 0, 50, 50));
  b.subscribe(bob, make_rect2(0, 0, 100, 100));
  ASSERT_GE(b.stabilize(), 0);

  EXPECT_TRUE(b.unsubscribe(sub));
  ASSERT_GE(b.stabilize(), 0);
  EXPECT_TRUE(b.subscriptions_of(alice).empty());

  const auto out = b.publish(bob, {{25, 25}});
  EXPECT_EQ(out.matching_clients, 1u);  // only bob now
  EXPECT_EQ(out.client_false_negatives, 0u);
}

TEST(Broker, UnsubscribeUnknownHandleFails) {
  broker b(small_config(17));
  const auto alice = b.add_client();
  const auto sub = b.subscribe(alice, make_rect2(0, 0, 10, 10));
  EXPECT_TRUE(b.unsubscribe(sub));
  EXPECT_FALSE(b.unsubscribe(sub));  // second time: gone
  subscription_handle bogus{alice, 999};
  EXPECT_FALSE(b.unsubscribe(bogus));
}

TEST(Broker, PublisherWithoutSubscriptionsCanPublish) {
  broker b(small_config(19));
  const auto producer = b.add_client();  // pure publisher
  const auto consumer = b.add_client();
  b.subscribe(consumer, make_rect2(0, 0, 100, 100));
  ASSERT_GE(b.stabilize(), 0);

  const auto out = b.publish(producer, {{10, 10}});
  EXPECT_EQ(out.client_false_negatives, 0u);
  EXPECT_EQ(out.matching_clients, 1u);
}

TEST(Broker, NoClientFalseNegativesUnderLoad) {
  broker b(small_config(23));
  util::rng rng(29);
  workload::subscription_params params;
  params.workspace = b.raw_overlay().config().workspace;
  std::vector<client_id> clients;
  // 20 clients x 3 subscriptions.
  const auto rects = workload::make_subscriptions(
      workload::subscription_family::uniform, 60, rng, params);
  for (int c = 0; c < 20; ++c) clients.push_back(b.add_client());
  for (std::size_t i = 0; i < rects.size(); ++i) {
    b.subscribe(clients[i % clients.size()], rects[i]);
  }
  ASSERT_GE(b.stabilize(), 0);

  std::uint64_t fn = 0;
  std::uint64_t fp = 0;
  std::uint64_t matches = 0;
  for (int e = 0; e < 200; ++e) {
    const auto value = workload::make_event_point(
        workload::event_family::matching, rng, params.workspace, rects);
    const auto out = b.publish(clients[rng.index(clients.size())], value);
    fn += out.client_false_negatives;
    fp += out.client_false_positives;
    matches += out.matching_clients;
  }
  EXPECT_EQ(fn, 0u);
  EXPECT_GT(matches, 0u);
  // Client-level FP rate (probability a client is notified of an event
  // none of its filters match) stays bounded.  It aggregates the per-peer
  // FP of all the client's logical subscribers, so it sits above the
  // ~3% per-peer rate but far below broadcast.
  EXPECT_LT(static_cast<double>(fp),
            0.25 * 200.0 * static_cast<double>(clients.size()));
}

TEST(Broker, SurvivesChurnOfSubscriptions) {
  broker b(small_config(31));
  util::rng rng(37);
  workload::subscription_params params;
  params.workspace = b.raw_overlay().config().workspace;
  std::vector<subscription_handle> handles;
  const auto alice = b.add_client();
  const auto rects = workload::make_subscriptions(
      workload::subscription_family::uniform, 40, rng, params);
  for (const auto& r : rects) handles.push_back(b.subscribe(alice, r));
  ASSERT_GE(b.stabilize(), 0);

  // Remove every other subscription, then add fresh ones.
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    EXPECT_TRUE(b.unsubscribe(handles[i]));
  }
  const auto fresh = workload::make_subscriptions(
      workload::subscription_family::clustered, 10, rng, params);
  for (const auto& r : fresh) b.subscribe(alice, r);
  ASSERT_GE(b.stabilize(200), 0);
  EXPECT_TRUE(b.overlay_legal());
  EXPECT_EQ(b.subscriptions_of(alice).size(), 30u);
}

TEST(Broker, HandlesHashIntoUnorderedContainers) {
  broker b(small_config(53));
  const auto alice = b.add_client();
  const auto bob = b.add_client();
  std::unordered_set<subscription_handle> handles;
  handles.insert(b.subscribe(alice, make_rect2(0, 0, 10, 10)));
  handles.insert(b.subscribe(alice, make_rect2(5, 5, 20, 20)));
  handles.insert(b.subscribe(bob, make_rect2(0, 0, 10, 10)));
  EXPECT_EQ(handles.size(), 3u);  // distinct peers => distinct handles

  // Re-inserting an existing handle is a no-op; lookup round-trips.
  const auto h = *handles.begin();
  handles.insert(h);
  EXPECT_EQ(handles.size(), 3u);
  EXPECT_TRUE(handles.count(h));
  // Different (client, peer) pairs hash to different buckets in practice
  // (splitmix64 finalizer): equality is what matters, but a degenerate
  // all-collide hash would make the container useless.
  const std::size_t h1 = std::hash<subscription_handle>{}(
      subscription_handle{1, 1});
  const std::size_t h2 = std::hash<subscription_handle>{}(
      subscription_handle{1, 2});
  const std::size_t h3 = std::hash<subscription_handle>{}(
      subscription_handle{2, 1});
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(Broker, UnsubscribeAllTearsDownWithoutHandles) {
  broker b(small_config(59));
  const auto alice = b.add_client();
  const auto bob = b.add_client();
  b.subscribe(alice, make_rect2(0, 0, 50, 50));
  b.subscribe(alice, make_rect2(20, 20, 80, 80));
  b.subscribe(alice, make_rect2(40, 0, 90, 30));
  b.subscribe(bob, make_rect2(0, 0, 100, 100));
  ASSERT_GE(b.stabilize(), 0);

  EXPECT_EQ(b.unsubscribe_all(alice), 3u);
  EXPECT_TRUE(b.subscriptions_of(alice).empty());
  EXPECT_EQ(b.unsubscribe_all(alice), 0u);    // idempotent
  EXPECT_EQ(b.unsubscribe_all(999), 0u);      // unknown client
  ASSERT_GE(b.stabilize(200), 0);
  EXPECT_TRUE(b.overlay_legal());

  // The client is still registered: it can publish and re-subscribe.
  const auto out = b.publish(alice, {{30, 30}});
  EXPECT_EQ(out.matching_clients, 1u);  // only bob matches now
  EXPECT_EQ(out.client_false_negatives, 0u);
  b.subscribe(alice, make_rect2(0, 0, 60, 60));
  ASSERT_GE(b.stabilize(200), 0);
  EXPECT_EQ(b.subscriptions_of(alice).size(), 1u);
}

TEST(Broker, PublishReportsMaxHops) {
  broker b(small_config(61));
  const auto alice = b.add_client();
  util::rng rng(67);
  workload::subscription_params params;
  params.workspace = b.raw_overlay().config().workspace;
  const auto rects = workload::make_subscriptions(
      workload::subscription_family::uniform, 24, rng, params);
  for (const auto& r : rects) b.subscribe(alice, r);
  ASSERT_GE(b.stabilize(), 0);

  std::size_t worst = 0;
  for (int e = 0; e < 50; ++e) {
    const auto value = workload::make_event_point(
        workload::event_family::matching, rng, params.workspace, rects);
    worst = std::max(worst, b.publish(alice, value).max_hops);
  }
  // Dissemination paths exist and are bounded by the overlay's hop
  // budget (they run root-to-leaf in a balanced tree).
  EXPECT_GT(worst, 0u);
  EXPECT_LE(worst, b.raw_overlay().config().max_route_hops);
}

TEST(Broker, RemoveClientDropsAllSubscriptions) {
  broker b(small_config(47));
  const auto alice = b.add_client();
  const auto bob = b.add_client();
  b.subscribe(alice, make_rect2(0, 0, 50, 50));
  b.subscribe(alice, make_rect2(20, 20, 80, 80));
  b.subscribe(bob, make_rect2(0, 0, 100, 100));
  ASSERT_GE(b.stabilize(), 0);

  EXPECT_TRUE(b.remove_client(alice));
  EXPECT_FALSE(b.remove_client(alice));  // already gone
  ASSERT_GE(b.stabilize(200), 0);
  EXPECT_TRUE(b.overlay_legal());

  const auto out = b.publish(bob, {{30, 30}});
  EXPECT_EQ(out.matching_clients, 1u);  // only bob remains
  EXPECT_EQ(out.client_false_negatives, 0u);
  for (const auto c : out.notified) EXPECT_NE(c, alice);
}

TEST(Broker, EfficientLeaveVariantWorks) {
  auto bc = small_config(41);
  bc.dr.efficient_leave = true;
  broker b(bc);
  const auto alice = b.add_client();
  util::rng rng(43);
  workload::subscription_params params;
  params.workspace = b.raw_overlay().config().workspace;
  const auto rects = workload::make_subscriptions(
      workload::subscription_family::uniform, 30, rng, params);
  std::vector<subscription_handle> handles;
  for (const auto& r : rects) handles.push_back(b.subscribe(alice, r));
  ASSERT_GE(b.stabilize(), 0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.unsubscribe(handles[i]));
  }
  ASSERT_GE(b.stabilize(200), 0);
  EXPECT_TRUE(b.overlay_legal());
}

}  // namespace
}  // namespace drt::pubsub
