#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rtree/rtree.h"
#include "rtree/split.h"
#include "util/rng.h"

namespace drt::rtree {
namespace {

using geo::make_rect2;
using geo::point2;
using geo::rect2;

// The query API is allocation-free (visitor / caller-owned buffer); these
// helpers keep the assertions below value-style.
template <std::size_t D>
std::vector<std::uint64_t> hits_at(const rtree<D>& t, const geo::point<D>& p) {
  std::vector<std::uint64_t> out;
  t.search_point(p, out);
  return out;
}

template <std::size_t D>
std::vector<std::uint64_t> hits_in(const rtree<D>& t, const geo::rect<D>& q) {
  std::vector<std::uint64_t> out;
  t.search_intersects(q, out);
  return out;
}

rect2 random_rect(util::rng& rng, double span = 100.0, double max_side = 10.0) {
  const double x = rng.uniform_real(0, span - max_side);
  const double y = rng.uniform_real(0, span - max_side);
  const double w = rng.uniform_real(0.1, max_side);
  const double h = rng.uniform_real(0.1, max_side);
  return make_rect2(x, y, x + w, y + h);
}

// ---------------------------------------------------------------- splits

class SplitPolicyTest : public ::testing::TestWithParam<split_method> {};

TEST_P(SplitPolicyTest, RespectsMinFill) {
  util::rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<split_entry<2>> entries;
    const auto n = static_cast<std::size_t>(rng.uniform_int(6, 20));
    for (std::size_t i = 0; i < n; ++i) {
      entries.push_back({random_rect(rng), i});
    }
    const std::size_t min_fill = 3;
    auto out = split_entries<2>(entries, min_fill, GetParam());
    EXPECT_GE(out.left.size(), min_fill);
    EXPECT_GE(out.right.size(), min_fill);
    EXPECT_EQ(out.left.size() + out.right.size(), n);

    // Partition: every handle appears exactly once.
    std::set<std::uint64_t> handles;
    for (const auto& e : out.left) handles.insert(e.handle);
    for (const auto& e : out.right) handles.insert(e.handle);
    EXPECT_EQ(handles.size(), n);
  }
}

TEST_P(SplitPolicyTest, SeparatesTwoClusters) {
  // Two well-separated clusters must end up in different groups.
  std::vector<split_entry<2>> entries;
  util::rng rng(7);
  for (std::uint64_t i = 0; i < 4; ++i) {
    entries.push_back(
        {make_rect2(rng.uniform_real(0, 5), rng.uniform_real(0, 5),
                    rng.uniform_real(5, 10), rng.uniform_real(5, 10)),
         i});
  }
  for (std::uint64_t i = 4; i < 8; ++i) {
    entries.push_back(
        {make_rect2(rng.uniform_real(1000, 1005), rng.uniform_real(1000, 1005),
                    rng.uniform_real(1005, 1010), rng.uniform_real(1005, 1010)),
         i});
  }
  auto out = split_entries<2>(entries, 2, GetParam());
  auto group_of = [&](std::uint64_t handle) {
    for (const auto& e : out.left) {
      if (e.handle == handle) return 0;
    }
    return 1;
  };
  const int g0 = group_of(0);
  for (std::uint64_t i = 1; i < 4; ++i) EXPECT_EQ(group_of(i), g0);
  for (std::uint64_t i = 4; i < 8; ++i) EXPECT_NE(group_of(i), g0);
}

TEST_P(SplitPolicyTest, MinimumSizedInput) {
  std::vector<split_entry<2>> entries{{make_rect2(0, 0, 1, 1), 0},
                                      {make_rect2(5, 5, 6, 6), 1}};
  auto out = split_entries<2>(entries, 1, GetParam());
  EXPECT_EQ(out.left.size(), 1u);
  EXPECT_EQ(out.right.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SplitPolicyTest,
                         ::testing::Values(split_method::linear,
                                           split_method::quadratic,
                                           split_method::rstar),
                         [](const auto& info) { return to_string(info.param); });

// ---------------------------------------------------------------- rtree

TEST(Rtree, EmptyTree) {
  rtree2 t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_TRUE(hits_at(t, point2{{0, 0}}).empty());
}

TEST(Rtree, InsertAndFindSingle) {
  rtree2 t;
  t.insert(make_rect2(0, 0, 10, 10), 42);
  EXPECT_EQ(t.size(), 1u);
  const auto hits = hits_at(t, point2{{5, 5}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(hits_at(t, point2{{20, 20}}).empty());
}

TEST(Rtree, RejectsBadConfig) {
  rtree_config bad;
  bad.min_fill = 3;
  bad.max_fill = 5;  // M < 2m
  EXPECT_DEATH(rtree2 t(bad), "precondition");
}

TEST(Rtree, GrowsAndStaysBalanced) {
  rtree_config cfg;
  cfg.min_fill = 2;
  cfg.max_fill = 4;
  rtree2 t(cfg);
  util::rng rng(1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    t.insert(random_rect(rng), i);
    t.check_invariants();
  }
  EXPECT_EQ(t.size(), 200u);
  // Height bounded by log_m(N): N=200, m=2 -> <= ~9; expect far less.
  EXPECT_LE(t.height(), 9u);
  EXPECT_GE(t.height(), 3u);
}

class RtreePolicyParam : public ::testing::TestWithParam<split_method> {};

TEST_P(RtreePolicyParam, PointQueriesMatchBruteForce) {
  rtree_config cfg;
  cfg.min_fill = 2;
  cfg.max_fill = 6;
  cfg.method = GetParam();
  rtree2 t(cfg);
  util::rng rng(17);
  std::vector<rect2> rects;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto r = random_rect(rng);
    rects.push_back(r);
    t.insert(r, i);
  }
  t.check_invariants();
  for (int q = 0; q < 200; ++q) {
    point2 p{{rng.uniform_real(0, 100), rng.uniform_real(0, 100)}};
    auto hits = hits_at(t, p);
    std::sort(hits.begin(), hits.end());
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < rects.size(); ++i) {
      if (rects[i].contains(p)) expected.push_back(i);
    }
    EXPECT_EQ(hits, expected) << "query " << p.to_string();
  }
}

TEST_P(RtreePolicyParam, IntersectionQueriesMatchBruteForce) {
  rtree_config cfg;
  cfg.method = GetParam();
  rtree2 t(cfg);
  util::rng rng(23);
  std::vector<rect2> rects;
  for (std::uint64_t i = 0; i < 250; ++i) {
    const auto r = random_rect(rng);
    rects.push_back(r);
    t.insert(r, i);
  }
  for (int q = 0; q < 100; ++q) {
    const auto query = random_rect(rng, 100.0, 30.0);
    auto hits = hits_in(t, query);
    std::sort(hits.begin(), hits.end());
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < rects.size(); ++i) {
      if (rects[i].intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(hits, expected);
  }
}

TEST_P(RtreePolicyParam, EraseMaintainsInvariantsAndQueries) {
  rtree_config cfg;
  cfg.min_fill = 2;
  cfg.max_fill = 5;
  cfg.method = GetParam();
  rtree2 t(cfg);
  util::rng rng(31);
  std::vector<std::pair<rect2, std::uint64_t>> live;
  for (std::uint64_t i = 0; i < 150; ++i) {
    const auto r = random_rect(rng);
    live.emplace_back(r, i);
    t.insert(r, i);
  }
  // Remove two thirds in random order, checking as we go.
  rng.shuffle(live);
  while (live.size() > 50) {
    auto [r, id] = live.back();
    live.pop_back();
    EXPECT_TRUE(t.erase(r, id));
    t.check_invariants();
  }
  EXPECT_EQ(t.size(), 50u);
  // Erased entries are gone; surviving entries are findable.
  for (const auto& [r, id] : live) {
    const auto hits = hits_at(t, r.center());
    EXPECT_NE(std::find(hits.begin(), hits.end(), id), hits.end());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RtreePolicyParam,
                         ::testing::Values(split_method::linear,
                                           split_method::quadratic,
                                           split_method::rstar),
                         [](const auto& info) { return to_string(info.param); });

TEST(Rtree, EraseMissingReturnsFalse) {
  rtree2 t;
  t.insert(make_rect2(0, 0, 1, 1), 1);
  EXPECT_FALSE(t.erase(make_rect2(0, 0, 1, 1), 2));
  EXPECT_FALSE(t.erase(make_rect2(5, 5, 6, 6), 1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Rtree, EraseToEmptyAndReuse) {
  rtree2 t;
  for (std::uint64_t i = 0; i < 40; ++i) {
    t.insert(make_rect2(i, i, i + 1.0, i + 1.0), i);
  }
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(t.erase(make_rect2(i, i, i + 1.0, i + 1.0), i));
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
  t.insert(make_rect2(0, 0, 1, 1), 7);
  EXPECT_EQ(hits_at(t, point2{{0.5, 0.5}}).size(), 1u);
}

TEST(Rtree, DuplicateRectanglesAllRetrievable) {
  rtree2 t;
  for (std::uint64_t i = 0; i < 30; ++i) {
    t.insert(make_rect2(10, 10, 20, 20), i);
  }
  auto hits = hits_at(t, point2{{15, 15}});
  EXPECT_EQ(hits.size(), 30u);
  t.check_invariants();
}

TEST(Rtree, RstarReinsertionKicksIn) {
  rtree_config cfg;
  cfg.method = split_method::rstar;
  cfg.rstar_reinsert = true;
  rtree2 t(cfg);
  util::rng rng(41);
  for (std::uint64_t i = 0; i < 400; ++i) t.insert(random_rect(rng), i);
  t.check_invariants();
  EXPECT_GT(t.stats().reinsertions, 0u);
  // Queries still exact after reinsertions.
  point2 p{{50, 50}};
  auto hits = hits_at(t, p);
  for (auto h : hits) EXPECT_LT(h, 400u);
}

TEST(Rtree, StatsAreConsistent) {
  rtree2 t;
  util::rng rng(43);
  for (std::uint64_t i = 0; i < 120; ++i) t.insert(random_rect(rng), i);
  const auto s = t.stats();
  EXPECT_GT(s.nodes, s.leaves);
  EXPECT_EQ(s.height, t.height());
  EXPECT_GT(s.splits, 0u);
  EXPECT_GT(s.interior_area, 0.0);
  // Substrate footprint: the arena holds at least the reachable nodes,
  // and bytes_allocated covers their bounds + slot + header slabs.
  EXPECT_GE(s.node_count, s.nodes);
  const std::size_t per_node_floor =
      2 * 2 * (t.config().max_fill + 1) * sizeof(double);
  EXPECT_GE(s.bytes_allocated, s.node_count * per_node_floor);
}

TEST(Rtree, ArenaRecyclesFreedNodes) {
  // Erase-to-empty then refill: the arena must reuse free-listed nodes
  // instead of growing without bound.
  rtree2 t;
  util::rng rng(53);
  std::vector<std::pair<rect2, std::uint64_t>> live;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto r = random_rect(rng);
    live.emplace_back(r, i);
    t.insert(r, i);
  }
  const auto grown = t.stats().node_count;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const auto& [r, id] : live) ASSERT_TRUE(t.erase(r, id));
    EXPECT_TRUE(t.empty());
    for (const auto& [r, id] : live) t.insert(r, id);
    t.check_invariants();
  }
  // Reinsertion can shape the tree differently, but repeated churn must
  // be served almost entirely from the free list.
  EXPECT_LE(t.stats().node_count, 2 * grown);
}

TEST(Rtree, BoundingBoxCoversAll) {
  rtree2 t;
  util::rng rng(47);
  auto bb = rect2::empty();
  for (std::uint64_t i = 0; i < 80; ++i) {
    const auto r = random_rect(rng);
    bb = join(bb, r);
    t.insert(r, i);
  }
  EXPECT_EQ(t.bounding_box(), bb);
}

TEST(Nearest, EmptyTreeReturnsNothing) {
  rtree2 t;
  EXPECT_FALSE(t.nearest(point2{{0, 0}}).has_value());
}

TEST(Nearest, InsidePointHasZeroDistance) {
  rtree2 t;
  t.insert(make_rect2(0, 0, 10, 10), 1);
  t.insert(make_rect2(50, 50, 60, 60), 2);
  const auto nn = t.nearest(point2{{5, 5}});
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->first, 1u);
  EXPECT_DOUBLE_EQ(nn->second, 0.0);
}

TEST(Nearest, MatchesBruteForceOnRandomData) {
  util::rng rng(79);
  rtree2 t;
  std::vector<rect2> rects;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const auto r = random_rect(rng);
    rects.push_back(r);
    t.insert(r, i);
  }
  for (int q = 0; q < 200; ++q) {
    point2 p{{rng.uniform_real(-20, 120), rng.uniform_real(-20, 120)}};
    const auto nn = t.nearest(p);
    ASSERT_TRUE(nn.has_value());
    double best = std::numeric_limits<double>::infinity();
    for (const auto& r : rects) best = std::min(best, r.min_dist2(p));
    EXPECT_DOUBLE_EQ(nn->second, best) << "query " << p.to_string();
  }
}

TEST(Nearest, WorksAfterBulkLoadAndErase) {
  util::rng rng(83);
  std::vector<std::pair<rect2, std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 150; ++i) {
    items.emplace_back(random_rect(rng), i);
  }
  auto t = rtree2::bulk_load(items);
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.erase(items[i].first, items[i].second));
  }
  for (int q = 0; q < 50; ++q) {
    point2 p{{rng.uniform_real(0, 100), rng.uniform_real(0, 100)}};
    const auto nn = t.nearest(p);
    ASSERT_TRUE(nn.has_value());
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 50; i < items.size(); ++i) {
      best = std::min(best, items[i].first.min_dist2(p));
    }
    EXPECT_DOUBLE_EQ(nn->second, best);
  }
}

TEST(BulkLoad, EmptyAndSingleton) {
  auto empty = rtree2::bulk_load({});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.height(), 1u);

  auto one = rtree2::bulk_load({{make_rect2(0, 0, 1, 1), 7}});
  EXPECT_EQ(one.size(), 1u);
  one.check_invariants();
  EXPECT_EQ(hits_at(one, point2{{0.5, 0.5}}),
            std::vector<std::uint64_t>{7});
}

TEST(BulkLoad, InvariantsAndQueriesMatchBruteForce) {
  util::rng rng(61);
  std::vector<std::pair<rect2, std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 500; ++i) {
    items.emplace_back(random_rect(rng), i);
  }
  rtree_config cfg;
  cfg.min_fill = 2;
  cfg.max_fill = 8;
  auto t = rtree2::bulk_load(items, cfg);
  EXPECT_EQ(t.size(), 500u);
  t.check_invariants();
  for (int q = 0; q < 100; ++q) {
    point2 p{{rng.uniform_real(0, 100), rng.uniform_real(0, 100)}};
    auto hits = hits_at(t, p);
    std::sort(hits.begin(), hits.end());
    std::vector<std::uint64_t> expected;
    for (const auto& [r, id] : items) {
      if (r.contains(p)) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected);
  }
}

TEST(BulkLoad, DenserThanIncrementalInsertion) {
  util::rng rng(67);
  std::vector<std::pair<rect2, std::uint64_t>> items;
  rtree_config cfg;
  rtree2 incremental(cfg);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto r = random_rect(rng);
    items.emplace_back(r, i);
    incremental.insert(r, i);
  }
  auto packed = rtree2::bulk_load(items, cfg);
  packed.check_invariants();
  // STR packs nodes nearly full: fewer nodes and no larger height.
  EXPECT_LT(packed.stats().nodes, incremental.stats().nodes);
  EXPECT_LE(packed.height(), incremental.height());
}

TEST(BulkLoad, SupportsSubsequentUpdates) {
  util::rng rng(71);
  std::vector<std::pair<rect2, std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 200; ++i) {
    items.emplace_back(random_rect(rng), i);
  }
  auto t = rtree2::bulk_load(items);
  for (std::uint64_t i = 200; i < 260; ++i) {
    t.insert(random_rect(rng), i);
    t.check_invariants();
  }
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(t.erase(items[i].first, items[i].second));
  }
  t.check_invariants();
  EXPECT_EQ(t.size(), 210u);
}

TEST(BulkLoad, OneDimensionalDegeneratesToBPlusTreeShape) {
  // §4: "DR-trees generalize P-trees, the dynamic version of B+-trees";
  // with D = 1 the R-tree is an interval tree over a 1-D key space.
  rtree<1> t;
  util::rng rng(73);
  std::vector<geo::rect<1>> keys;
  for (std::uint64_t i = 0; i < 200; ++i) {
    geo::rect<1> r;
    const double k = rng.uniform_real(0, 1000);
    r.lo[0] = k;
    r.hi[0] = k;  // point keys, B+-tree style
    keys.push_back(r);
    t.insert(r, i);
  }
  t.check_invariants();
  // Range scan [200, 400): exactly the keys inside.
  geo::rect<1> range;
  range.lo[0] = 200;
  range.hi[0] = 400;
  auto hits = hits_in(t, range);
  std::size_t expected = 0;
  for (const auto& k : keys) {
    if (k.lo[0] >= 200 && k.lo[0] <= 400) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(Rtree, HigherDimensionalTree) {
  rtree<3> t;
  util::rng rng(53);
  std::vector<geo::rect3> rects;
  for (std::uint64_t i = 0; i < 100; ++i) {
    geo::rect3 r;
    for (std::size_t d = 0; d < 3; ++d) {
      const double lo = rng.uniform_real(0, 90);
      r.lo[d] = lo;
      r.hi[d] = lo + rng.uniform_real(0.1, 10);
    }
    rects.push_back(r);
    t.insert(r, i);
  }
  t.check_invariants();
  for (int q = 0; q < 50; ++q) {
    geo::point3 p{{rng.uniform_real(0, 100), rng.uniform_real(0, 100),
                   rng.uniform_real(0, 100)}};
    auto hits = hits_at(t, p);
    std::sort(hits.begin(), hits.end());
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < rects.size(); ++i) {
      if (rects[i].contains(p)) expected.push_back(i);
    }
    EXPECT_EQ(hits, expected);
  }
}

}  // namespace
}  // namespace drt::rtree
